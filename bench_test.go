package voiceguard_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VI and §VII), per DESIGN.md §4. Each benchmark runs the
// corresponding experiment and logs the regenerated rows, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The wall time of one iteration is the
// cost of regenerating that artifact.

import (
	"math/rand"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/experiment"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

func logDistanceRows(b *testing.B, title string, rows []experiment.DistanceRow) {
	b.Helper()
	b.Log(title)
	for _, r := range rows {
		b.Logf("  %v", r)
	}
}

// BenchmarkTableI regenerates Table I: ASV FAR for GMM-UBM and ISV on the
// five-speaker imitation panel (test 1) and the cross-corpus protocol
// (test 2).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunTableI(experiment.TableIConfig{Seed: 4, UBMComponents: 32})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("Table I — speaker-identity verification FAR")
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: the received high-frequency pilot
// spectrogram ridge while the phone moves.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunFig6(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Fig. 6 — pilot ridge over %d frames (first/mid/last):", len(pts))
			for _, idx := range []int{0, len(pts) / 2, len(pts) - 1} {
				p := pts[idx]
				b.Logf("  t=%.2fs  peak=%.0f Hz  mag=%.1f", p.TimeSec, p.PeakHz, p.Magnitude)
			}
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: PCA separation of mouth vs earphone
// sound fields.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunFig8(10, 40)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var mx, ex float64
			var nm, ne int
			for _, p := range pts {
				if p.Class == "mouth" {
					mx += p.PC1
					nm++
				} else {
					ex += p.PC1
					ne++
				}
			}
			b.Logf("Fig. 8 — PCA scatter: %d mouth pts (PC1 centroid %.2f), %d earphone pts (PC1 centroid %.2f)",
				nm, mx/float64(nm), ne, ex/float64(ne))
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10: the polar magnetic-field profile of
// the Logitech LS21.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiment.RunFig10(0)
		if i == 0 {
			b.Logf("Fig. 10 — LS21 polar field at 4.5 cm: peak %.0f µT (paper window 30–210 µT)",
				experiment.MaxField(pts))
			for d := 0; d < len(pts); d += 9 {
				b.Logf("  %3.0f°: %6.1f µT", pts[d].AngleDeg, pts[d].FieldUT)
			}
		}
	}
}

// BenchmarkFig12a regenerates Fig. 12(a): FAR/FRR/EER vs distance, no
// shielding.
func BenchmarkFig12a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunDistanceSweep(experiment.DistanceSweepConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logDistanceRows(b, "Fig. 12(a) — impact of sound-source distance (no shielding)", rows)
		}
	}
}

// BenchmarkFig12b regenerates Fig. 12(b): the Mu-metal-shielded variant.
func BenchmarkFig12b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunDistanceSweep(experiment.DistanceSweepConfig{Seed: 1, Shielded: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logDistanceRows(b, "Fig. 12(b) — impact of distance with Mu-metal shielding", rows)
		}
	}
}

// BenchmarkFig14a regenerates Fig. 14(a): near a computer.
func BenchmarkFig14a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunDistanceSweep(experiment.DistanceSweepConfig{
			Seed: 1, Environment: magnetics.EnvNearComputer,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logDistanceRows(b, "Fig. 14(a) — environmental interference: near a computer", rows)
		}
	}
}

// BenchmarkFig14b regenerates Fig. 14(b): in a car front seat.
func BenchmarkFig14b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunDistanceSweep(experiment.DistanceSweepConfig{
			Seed: 1, Environment: magnetics.EnvCar,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logDistanceRows(b, "Fig. 14(b) — environmental interference: in a car", rows)
		}
	}
}

// BenchmarkFig15 regenerates Fig. 15: authentication-time comparison.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunTiming(experiment.TimingConfig{Users: 4, TrialsPerUser: 3, Seed: 12})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("Fig. 15 — authentication time comparison")
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// BenchmarkTableIV regenerates the Table IV battery: all 25 loudspeakers
// replayed at the operating distance.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunSpeakerBattery(5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			detected := 0
			for _, r := range rows {
				if r.Detected {
					detected++
				}
			}
			b.Logf("Table IV battery — %d/%d loudspeakers detected at 5 cm", detected, len(rows))
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// BenchmarkSoundTube regenerates the §VII sound-tube attack evaluation.
func BenchmarkSoundTube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunSoundTube(6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("§VII — sound-tube attacks")
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// BenchmarkUnconventional regenerates the §VII unconventional-speaker
// evaluation (electrostatic, piezoelectric).
func BenchmarkUnconventional(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunUnconventional(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("§VII — unconventional loudspeakers")
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// BenchmarkAdaptiveThreshold regenerates the §VII adaptive-thresholding
// comparison in high-EMF environments.
func BenchmarkAdaptiveThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunAdaptiveThresholding(8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("§VII — adaptive thresholding under EMF")
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// ablationSweep runs a one-distance sweep with selected stages disabled.
func ablationSweep(b *testing.B, cfg core.SystemConfig, title string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rates, err := experiment.RunAblation(cfg, 0.06, 20+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s @6 cm: %v", title, rates)
		}
	}
}

// BenchmarkAblationSoundField measures the cascade with the sound-field
// stage removed: earphone attacks must slip through the magnetics-only
// detector.
func BenchmarkAblationSoundField(b *testing.B) {
	ablationSweep(b, core.SystemConfig{DisableDistance: true, DisableField: true},
		"ablation: no sound-field stage")
}

// BenchmarkAblationMagnetics measures the cascade with the magnetometer
// stage removed.
func BenchmarkAblationMagnetics(b *testing.B) {
	ablationSweep(b, core.SystemConfig{DisableDistance: true, DisableMagnetic: true},
		"ablation: no loudspeaker-detection stage")
}

// BenchmarkAblationFull measures the full machine-attack cascade for
// comparison with the ablations.
func BenchmarkAblationFull(b *testing.B) {
	ablationSweep(b, core.SystemConfig{DisableDistance: true},
		"full stages 2+3")
}

// BenchmarkDualMic regenerates the §VII dual-microphone comparison: the
// shortened sweep + SLD features vs the full single-mic sweep.
func BenchmarkDualMic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunDualMic(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("§VII — dual-microphone extension")
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// BenchmarkBaselineComparison contrasts the §II acoustic-only replay
// detector with VoiceGuard's physical stages on the same replay battery.
func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunBaselineComparison(11)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("acoustic baseline vs physical stages (replay battery at 6 cm)")
			for _, r := range rows {
				b.Logf("  %v", r)
			}
		}
	}
}

// BenchmarkPerStageLatency measures the paper's §V response-time result
// at stage granularity: it runs genuine sessions through the cascade and
// accumulates each stage's Elapsed into telemetry histograms — the same
// series a running server exports on /metrics — then reports the p50 and
// p95 of every stage as benchmark metrics, so BENCH_*.json entries carry
// a per-stage breakdown instead of only an end-to-end number.
func BenchmarkPerStageLatency(b *testing.B) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 14})
	if err != nil {
		b.Fatal(err)
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(14)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 14})
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	pipeline := reg.Histogram("pipeline", nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := sys.Verify(session)
		if err != nil {
			b.Fatal(err)
		}
		pipeline.ObserveDuration(d.Elapsed)
		for _, st := range d.Stages {
			reg.Histogram("stage", nil, telemetry.Labels{"stage": st.Stage.MetricName()}).
				ObserveDuration(st.Elapsed)
		}
	}
	b.StopTimer()
	for _, stage := range []string{"distance", "soundfield", "loudspeaker"} {
		h := reg.Histogram("stage", nil, telemetry.Labels{"stage": stage})
		if h.Count() == 0 {
			continue
		}
		b.ReportMetric(h.Quantile(0.5)*1e3, stage+"-p50-ms")
		b.ReportMetric(h.Quantile(0.95)*1e3, stage+"-p95-ms")
	}
	b.ReportMetric(pipeline.Quantile(0.5)*1e3, "pipeline-p50-ms")
}

// BenchmarkFig13 regenerates the Fig. 13 analog: bare vs Mu-metal-
// shielded loudspeaker field across distance.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiment.RunFig13()
		if i == 0 {
			b.Log("Fig. 13 — bare vs shielded field magnitude")
			for _, p := range pts {
				b.Logf("  %4.0f cm: bare %8.1f µT   shielded %6.1f µT", p.DistanceCM, p.BareUT, p.ShieldedUT)
			}
		}
	}
}
