// Command voiceguard-client simulates a mobile client: it records one
// verification session — genuine or one of the attack types — and submits
// it to a running voiceguard-server, printing the decision and timing.
//
// Usage:
//
//	voiceguard-client -server http://127.0.0.1:8443 -mode genuine
//	voiceguard-client -mode replay -speaker 0 -distance 0.06
//	voiceguard-client -mode tube
//	voiceguard-client -stream 127.0.0.1:8444 -mode replay
//
// With -stream the session goes over the binary streaming protocol
// (PROTOCOL.md) instead of one HTTP POST, and the verdict can arrive
// before the upload finishes.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/protocol"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/speech"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8443", "server base URL")
	streamAddr := flag.String("stream", "", "submit over the binary streaming protocol to this host:port instead of HTTP")
	mode := flag.String("mode", "genuine", "genuine | replay | morph | synthesis | imitation | tube | shielded")
	speakerIdx := flag.Int("speaker", 0, "loudspeaker catalog index (0-24) for machine attacks")
	distance := flag.Float64("distance", 0.06, "true sound-source distance in meters")
	user := flag.String("user", "victim", "claimed user")
	seed := flag.Int64("seed", 1, "session seed")
	flag.Parse()

	if err := run(*serverURL, *streamAddr, *mode, *speakerIdx, *distance, *user, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "voiceguard-client:", err)
		os.Exit(1)
	}
}

func run(serverURL, streamAddr, mode string, speakerIdx int, distance float64, user string, seed int64) error {
	session, err := buildSession(mode, speakerIdx, distance, user, seed)
	if err != nil {
		return err
	}
	if streamAddr != "" {
		res, err := client.New(serverURL).VerifyStream(context.Background(), streamAddr, session)
		if err != nil {
			return err
		}
		printStreamResult(mode, res)
		return nil
	}
	res, err := client.New(serverURL).Verify(session)
	if err != nil {
		return err
	}
	printResult(mode, res)
	return nil
}

func buildSession(mode string, speakerIdx int, distance float64, user string, seed int64) (*core.SessionData, error) {
	rng := rand.New(rand.NewSource(seed))
	victim := speech.RandomProfile(user, rng)
	sc := attack.Scenario{Distance: distance, ClaimedUser: user, Seed: seed}

	cat := device.Catalog()
	if speakerIdx < 0 || speakerIdx >= len(cat) {
		return nil, fmt.Errorf("speaker index %d outside catalog (0-%d)", speakerIdx, len(cat)-1)
	}
	spk := cat[speakerIdx]

	switch mode {
	case "genuine":
		return attack.Genuine(victim, sc)
	case "replay":
		rec, err := attack.Record(victim, "472913", seed)
		if err != nil {
			return nil, err
		}
		return attack.Replay(rec, spk, sc)
	case "shielded":
		rec, err := attack.Record(victim, "472913", seed)
		if err != nil {
			return nil, err
		}
		return attack.ShieldedReplay(rec, spk, sc)
	case "morph":
		attacker := speech.RandomProfile("attacker", rng)
		return attack.Morph(attacker, victim, speech.ConverterAdvanced, spk, sc)
	case "synthesis":
		return attack.Synthesis(victim, spk, sc)
	case "imitation":
		attacker := speech.RandomProfile("attacker", rng)
		return attack.Imitation(attacker, victim, speech.ImitatorProfessional, sc)
	case "tube":
		rec, err := attack.Record(victim, "472913", seed)
		if err != nil {
			return nil, err
		}
		tube := &soundfield.Tube{OpeningRadius: 0.012, Length: 0.3, LevelAt1m: 62}
		return attack.SoundTube(rec, spk, tube, sc)
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
}

func printStreamResult(mode string, res *client.StreamResult) {
	verdict := "REJECTED"
	if res.Response.Accepted {
		verdict = "ACCEPTED"
	}
	early := ""
	if res.EarlyExit {
		early = ", early exit"
	}
	fmt.Printf("mode=%s: %s in %v (decision after %v, %d/%d frames, %d bytes uploaded%s, trace %s)\n",
		mode, verdict, res.Elapsed, res.TimeToDecision,
		res.FramesSent, res.FramesTotal, res.BytesSent, early, res.TraceID)
	printStages(res.Response)
}

func printResult(mode string, res *client.Result) {
	verdict := "REJECTED"
	if res.Response.Accepted {
		verdict = "ACCEPTED"
	}
	fmt.Printf("mode=%s: %s in %v (server pipeline %v, %d bytes uploaded, trace %s)\n",
		mode, verdict, res.Elapsed, res.ServerElapsed, res.PayloadBytes, res.TraceID)
	printStages(res.Response)
}

func printStages(resp *protocol.VerifyResponse) {
	if resp.FailedStage != "" {
		fmt.Printf("  failed stage: %s\n", resp.FailedStage)
	}
	for _, st := range resp.Stages {
		status := "PASS"
		if !st.Pass {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %-30s score=%+.3f  %6dµs  %s\n", status, st.Stage, st.Score, st.ElapsedUS, st.Detail)
	}
	if resp.Error != "" {
		fmt.Printf("  error: %s\n", resp.Error)
	}
}
