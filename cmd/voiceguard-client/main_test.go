package main

import "testing"

func TestBuildSessionModes(t *testing.T) {
	for _, mode := range []string{
		"genuine", "replay", "shielded", "morph", "synthesis", "imitation", "tube",
	} {
		t.Run(mode, func(t *testing.T) {
			s, err := buildSession(mode, 0, 0.06, "victim", 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("invalid session: %v", err)
			}
		})
	}
}

func TestBuildSessionErrors(t *testing.T) {
	if _, err := buildSession("warp-drive", 0, 0.06, "v", 1); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := buildSession("replay", 99, 0.06, "v", 1); err == nil {
		t.Error("out-of-range speaker accepted")
	}
	if _, err := buildSession("replay", -1, 0.06, "v", 1); err == nil {
		t.Error("negative speaker accepted")
	}
}
