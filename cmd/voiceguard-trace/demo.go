package main

// The demo subcommand: builds a traced pipeline, runs a genuine session
// and a handful of machine attacks through it, and writes the resulting
// flight-recorder contents as JSONL. CI uses it to produce a sample trace
// dump artifact; the README's example tree comes from the same output.
//
// The pipeline is constructed through rebuild.System from an explicit
// evidence.Provenance recipe — the same recipe `pack build -demo` embeds
// in its packs — so a demo pack's provenance is exactly what this
// generator ran, not a parallel construction that could drift.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/evidence"
	"voiceguard/internal/evidence/rebuild"
	"voiceguard/internal/telemetry"
)

// demoPassphrase is the digit passphrase all demo sessions speak.
const demoPassphrase = "472913"

// demoProvenance is the construction recipe of the demo pipeline: the
// field seed plus, when the identity stage is on, a small background
// roster with the victim enrolled from the same seed.
func demoProvenance(seed int64, withASV bool) evidence.Provenance {
	p := evidence.Provenance{Generator: "demo", FieldSeed: seed}
	if withASV {
		p.ASV = &evidence.ASVProvenance{
			Seed: seed, Roster: 6, Sessions: 2, Utterances: 2, Digits: 6,
			Enroll: []evidence.EnrollProvenance{
				{User: "victim", Seed: seed, Passphrase: demoPassphrase, Utterances: 4},
			},
		}
	}
	return p
}

// demoSession is one generated demo attempt with its deterministic trace
// ID.
type demoSession struct {
	traceID string
	session *core.SessionData
}

// demoSessions builds the demo's attempt list: one genuine session plus n
// replay attacks through loudspeakers drawn from the device catalog.
func demoSessions(n int, seed int64) ([]demoSession, error) {
	victim := rebuild.Profile("victim", seed)
	sc := attack.Scenario{Distance: 0.06, ClaimedUser: "victim", Seed: seed}
	genuine, err := attack.Genuine(victim, sc)
	if err != nil {
		return nil, fmt.Errorf("building genuine session: %w", err)
	}
	out := []demoSession{{traceID: "demo-genuine", session: genuine}}
	recording, err := attack.Record(victim, demoPassphrase, seed)
	if err != nil {
		return nil, fmt.Errorf("recording victim: %w", err)
	}
	cat := device.Catalog()
	for i := 0; i < n; i++ {
		spk := cat[(i*5)%len(cat)]
		replaySc := sc
		replaySc.Seed = seed + int64(i) + 1
		session, err := attack.Replay(recording, spk, replaySc)
		if err != nil {
			return nil, fmt.Errorf("building replay session %d (%s %s): %w", i, spk.Maker, spk.Model, err)
		}
		out = append(out, demoSession{traceID: fmt.Sprintf("demo-replay-%d", i), session: session})
	}
	return out, nil
}

// runDemo implements the demo subcommand.
func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	out := fs.String("o", "-", "output JSONL path (- for stdout)")
	n := fs.Int("n", 4, "number of replay-attack sessions")
	seed := fs.Int64("seed", 1, "scenario seed")
	withASV := fs.Bool("asv", true, "train and attach the speaker-identity stage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	recorder := telemetry.NewFlightRecorder(*n + 2)
	records, err := generateDemo(recorder, *n, *seed, *withASV)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := recorder.WriteJSONL(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d traces (%d sessions) to %s\n", len(recorder.Snapshot()), records, *out)
	return nil
}

// generateDemo runs 1 genuine + n replay sessions through a traced
// pipeline, filling recorder. It returns the session count.
func generateDemo(recorder *telemetry.FlightRecorder, n int, seed int64, withASV bool) (int, error) {
	sys, err := rebuild.System(demoProvenance(seed, withASV))
	if err != nil {
		return 0, err
	}
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{Recorder: recorder})
	sessions, err := demoSessions(n, seed)
	if err != nil {
		return 0, err
	}
	for i, ds := range sessions {
		if _, err := sys.VerifyTraced(ds.traceID, ds.session); err != nil {
			return i, fmt.Errorf("verifying session %s: %w", ds.traceID, err)
		}
	}
	return len(sessions), nil
}
