package main

// The demo subcommand: builds a traced pipeline, runs a genuine session
// and a handful of machine attacks through it, and writes the resulting
// flight-recorder contents as JSONL. CI uses it to produce a sample trace
// dump artifact; the README's example tree comes from the same output.

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

// demoPassphrase is the digit passphrase all demo sessions speak.
const demoPassphrase = "472913"

// runDemo implements the demo subcommand.
func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	out := fs.String("o", "-", "output JSONL path (- for stdout)")
	n := fs.Int("n", 4, "number of replay-attack sessions")
	seed := fs.Int64("seed", 1, "scenario seed")
	withASV := fs.Bool("asv", true, "train and attach the speaker-identity stage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	recorder := telemetry.NewFlightRecorder(*n + 2)
	records, err := generateDemo(recorder, *n, *seed, *withASV)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := recorder.WriteJSONL(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d traces (%d sessions) to %s\n", len(recorder.Snapshot()), records, *out)
	return nil
}

// generateDemo runs 1 genuine + n replay sessions through a traced
// pipeline, filling recorder. It returns the session count.
func generateDemo(recorder *telemetry.FlightRecorder, n int, seed int64, withASV bool) (int, error) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: seed})
	if err != nil {
		return 0, fmt.Errorf("building pipeline: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	victim := speech.RandomProfile("victim", rng)
	if withASV {
		verifier, err := demoASV(victim, seed)
		if err != nil {
			return 0, fmt.Errorf("training ASV: %w", err)
		}
		sys.AttachIdentity(verifier)
	}
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{Recorder: recorder})

	sc := attack.Scenario{Distance: 0.06, ClaimedUser: "victim", Seed: seed}
	sessions := 0
	genuine, err := attack.Genuine(victim, sc)
	if err != nil {
		return sessions, fmt.Errorf("building genuine session: %w", err)
	}
	if _, err := sys.Verify(genuine); err != nil {
		return sessions, fmt.Errorf("verifying genuine session: %w", err)
	}
	sessions++

	recording, err := attack.Record(victim, demoPassphrase, seed)
	if err != nil {
		return sessions, fmt.Errorf("recording victim: %w", err)
	}
	cat := device.Catalog()
	for i := 0; i < n; i++ {
		spk := cat[(i*5)%len(cat)]
		replaySc := sc
		replaySc.Seed = seed + int64(i) + 1
		session, err := attack.Replay(recording, spk, replaySc)
		if err != nil {
			return sessions, fmt.Errorf("building replay session %d (%s %s): %w", i, spk.Maker, spk.Model, err)
		}
		if _, err := sys.Verify(session); err != nil {
			return sessions, fmt.Errorf("verifying replay session %d: %w", i, err)
		}
		sessions++
	}
	return sessions, nil
}

// demoASV trains a small identity back-end and enrolls the victim, enough
// for the demo traces to include the mfcc-extract/gmm-score sub-tree.
func demoASV(victim speech.Profile, seed int64) (*core.SpeakerVerifier, error) {
	roster := speech.NewRoster(6, seed+100)
	utts, err := roster.Generate(speech.CorpusConfig{
		Sessions: 2, UtterancesPerSession: 2, Digits: 6,
	})
	if err != nil {
		return nil, err
	}
	background := make(map[string][][]*audio.Signal)
	for spk, us := range speech.BySpeaker(utts) {
		perSession := map[int][]*audio.Signal{}
		maxSess := 0
		for _, u := range us {
			perSession[u.Session] = append(perSession[u.Session], u.Audio)
			if u.Session > maxSess {
				maxSess = u.Session
			}
		}
		for s := 0; s <= maxSess; s++ {
			background[spk] = append(background[spk], perSession[s])
		}
	}
	verifier, err := core.TrainSpeakerVerifier(background, core.SpeakerVerifierConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	synth, err := speech.NewSynthesizer(victim, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	var session []*audio.Signal
	for k := 0; k < 4; k++ {
		utt, err := synth.SayDigits(demoPassphrase)
		if err != nil {
			return nil, err
		}
		session = append(session, utt)
	}
	if err := verifier.Enroll("victim", [][]*audio.Signal{session}); err != nil {
		return nil, err
	}
	return verifier, nil
}
