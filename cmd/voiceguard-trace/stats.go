package main

// The stats subcommand: per-stage evidence distributions over a JSONL
// dump. For each "stage:<name>" span the numeric attributes (measured
// quantities and live thresholds) are pooled across traces and summarized
// as count/p50/p95/min/max — the empirical distributions the §VII
// adaptive-threshold calibration reads thresholds off.

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"voiceguard/internal/telemetry"
)

// evidenceKey addresses one pooled distribution.
type evidenceKey struct {
	stage, attr string
}

// percentile returns the q-quantile (0 ≤ q ≤ 1) of sorted values by
// linear interpolation; NaN for an empty slice.
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + (sorted[lo+1]-sorted[lo])*frac
}

// runStats implements the stats subcommand.
func runStats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stats wants <file.jsonl>, got %d args", len(args))
	}
	recs, err := loadTraces(args[0])
	if err != nil {
		return err
	}
	pooled := make(map[evidenceKey][]float64)
	units := make(map[evidenceKey]string)
	durs := make(map[string][]float64)
	for _, rec := range recs {
		for _, sp := range rec.Spans {
			if !strings.HasPrefix(sp.Name, telemetry.StageSpanName) {
				continue
			}
			stage := strings.TrimPrefix(sp.Name, telemetry.StageSpanName)
			durs[stage] = append(durs[stage], float64(sp.DurUS)/1e3)
			for _, a := range sp.Attrs {
				v, ok := a.Number()
				if !ok {
					continue
				}
				k := evidenceKey{stage, a.Key}
				pooled[k] = append(pooled[k], v)
				if a.Unit != "" {
					units[k] = a.Unit
				}
			}
		}
	}
	if len(pooled) == 0 {
		fmt.Printf("no stage spans in %d traces\n", len(recs))
		return nil
	}
	keys := make([]evidenceKey, 0, len(pooled))
	for k := range pooled {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stage != keys[j].stage {
			return keys[i].stage < keys[j].stage
		}
		return keys[i].attr < keys[j].attr
	})
	w := os.Stdout
	fmt.Fprintf(w, "%d traces\n\n", len(recs))
	fmt.Fprintf(w, "%-12s %-24s %6s %12s %12s %12s %12s %s\n",
		"stage", "evidence", "n", "p50", "p95", "min", "max", "unit")
	last := ""
	for _, k := range keys {
		if k.stage != last && last != "" {
			fmt.Fprintln(w)
		}
		last = k.stage
		vs := pooled[k]
		sort.Float64s(vs)
		fmt.Fprintf(w, "%-12s %-24s %6d %12.4g %12.4g %12.4g %12.4g %s\n",
			k.stage, k.attr, len(vs),
			percentile(vs, 0.50), percentile(vs, 0.95), vs[0], vs[len(vs)-1], units[k])
	}
	fmt.Fprintln(w)
	stages := make([]string, 0, len(durs))
	for s := range durs {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	fmt.Fprintf(w, "%-12s %6s %12s %12s  latency (ms)\n", "stage", "n", "p50", "p95")
	for _, s := range stages {
		vs := durs[s]
		sort.Float64s(vs)
		fmt.Fprintf(w, "%-12s %6d %12.4g %12.4g\n", s, len(vs), percentile(vs, 0.50), percentile(vs, 0.95))
	}
	return nil
}
