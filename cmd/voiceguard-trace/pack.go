package main

// The pack subcommand family works with evidence packs — the
// self-contained digest-chained zips the server exports per decision:
//
//	pack build   -demo          assemble a pack from generated demo sessions
//	pack verify  <pack.zip>     integrity + internal-consistency check
//	pack inspect <pack.zip>     human summary of manifest/decisions/models
//	pack diff    <a.zip> <b.zip>  semantic comparison of two packs
//	pack replay  <pack.zip>     rebuild the producing system from the
//	                            pack's provenance and assert bit-identical
//	                            verdicts
//
// verify, diff and replay exit non-zero on any problem, difference or
// divergence, so they work as CI gates.

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/evidence"
	"voiceguard/internal/evidence/rebuild"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/telemetry"
)

// runPack dispatches the pack subcommand family.
func runPack(args []string) error {
	if len(args) < 1 {
		packUsage()
		return fmt.Errorf("pack: subcommand required")
	}
	switch args[0] {
	case "build":
		return runPackBuild(args[1:])
	case "verify":
		return runPackVerify(args[1:])
	case "inspect":
		return runPackInspect(args[1:])
	case "diff":
		return runPackDiff(args[1:])
	case "replay":
		return runPackReplay(args[1:])
	case "-h", "--help", "help":
		packUsage()
		return nil
	default:
		packUsage()
		return fmt.Errorf("pack: unknown subcommand %q", args[0])
	}
}

func packUsage() {
	fmt.Fprintln(os.Stderr, `usage:
  voiceguard-trace pack build -demo [-o pack.zip] [-seed N] [-n N] [-asv] [-redact none|digests]
  voiceguard-trace pack verify  <pack.zip>
  voiceguard-trace pack inspect <pack.zip>
  voiceguard-trace pack diff    <a.zip> <b.zip>
  voiceguard-trace pack replay  <pack.zip>`)
}

// runPackBuild assembles a demo evidence pack: the demo sessions run
// through the wire codec (encode + decode, the same lossy WAV round trip
// the server path takes) before verification, so the packed request is
// exactly what the cascade consumed and `pack replay` reproduces the
// verdicts bit-for-bit.
func runPackBuild(args []string) error {
	fs := flag.NewFlagSet("pack build", flag.ContinueOnError)
	out := fs.String("o", "pack.zip", "output pack path")
	demo := fs.Bool("demo", false, "build from generated demo sessions")
	seed := fs.Int64("seed", 1, "scenario seed")
	n := fs.Int("n", 2, "number of replay-attack sessions")
	withASV := fs.Bool("asv", true, "train and attach the speaker-identity stage")
	redact := fs.String("redact", evidence.RedactNone,
		"session redaction: none (replayable) or digests (audio replaced by content digests)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*demo {
		return fmt.Errorf("pack build: only -demo packs are built locally; live packs come from GET %s{trace_id}",
			"/debug/evidence/")
	}
	if *redact != evidence.RedactNone && *redact != evidence.RedactDigests {
		return fmt.Errorf("pack build: unknown redact mode %q (want %q or %q)",
			*redact, evidence.RedactNone, evidence.RedactDigests)
	}

	prov := demoProvenance(*seed, *withASV)
	sys, err := rebuild.System(prov)
	if err != nil {
		return err
	}
	recorder := telemetry.NewFlightRecorder(*n + 2)
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{Recorder: recorder})
	sessions, err := demoSessions(*n, *seed)
	if err != nil {
		return err
	}

	b := evidence.NewBuilder(time.Now())
	accepted := 0
	for _, ds := range sessions {
		req, err := protocol.FromSession(ds.session, ranging.DefaultPilotHz)
		if err != nil {
			return fmt.Errorf("packaging session %s: %w", ds.traceID, err)
		}
		decoded, err := protocol.ToSession(req)
		if err != nil {
			return fmt.Errorf("decoding session %s: %w", ds.traceID, err)
		}
		decision, err := sys.VerifyTraced(ds.traceID, decoded)
		if err != nil {
			return fmt.Errorf("verifying session %s: %w", ds.traceID, err)
		}
		if decision.Accepted {
			accepted++
		}
		env, err := protocol.SessionEnvelopeFromRequest(ds.traceID, req, *redact)
		if err != nil {
			return fmt.Errorf("building session envelope %s: %w", ds.traceID, err)
		}
		b.AddDecision(core.DecisionEvidence(decision), recorder.Find(ds.traceID), env)
	}
	digests, err := sys.ModelDigests()
	if err != nil {
		return fmt.Errorf("digesting models: %w", err)
	}
	b.SetModels(digests, &prov)

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("creating %s: %w", *out, err)
	}
	if err := b.WriteZip(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", *out, err)
	}
	fmt.Fprintf(os.Stderr, "packed %d decisions (%d accepted, %d rejected) into %s\n",
		len(sessions), accepted, len(sessions)-accepted, *out)
	return nil
}

// runPackVerify checks a pack's digest chain and internal consistency,
// exiting non-zero with one line per problem.
func runPackVerify(args []string) error {
	if len(args) != 1 {
		packUsage()
		return fmt.Errorf("pack verify: exactly one pack path required")
	}
	p, err := evidence.ReadFile(args[0])
	if err != nil {
		return err
	}
	if problems := evidence.Verify(p); len(problems) > 0 {
		for _, pr := range problems {
			fmt.Fprintln(os.Stderr, "  "+pr.String())
		}
		return fmt.Errorf("pack verify: %s: %d problems", args[0], len(problems))
	}
	fmt.Printf("ok: %s verified (%d members, %d decisions, root %s)\n",
		args[0], len(p.Manifest.Members), len(p.Decisions), p.Manifest.RootDigest)
	return nil
}

// runPackInspect prints a human summary of one pack.
func runPackInspect(args []string) error {
	if len(args) != 1 {
		packUsage()
		return fmt.Errorf("pack inspect: exactly one pack path required")
	}
	p, err := evidence.ReadFile(args[0])
	if err != nil {
		return err
	}
	m := p.Manifest
	fmt.Printf("pack %s\n", args[0])
	fmt.Printf("  schema %d, created %s, go %s", m.SchemaVersion, m.CreatedAt.Format(time.RFC3339), m.Build.GoVersion)
	if m.Build.Revision != "" {
		fmt.Printf(", rev %s", m.Build.Revision)
	}
	fmt.Println()
	fmt.Printf("  root %s\n", m.RootDigest)
	for _, mem := range m.Members {
		fmt.Printf("  member %-16s %7d bytes  %s\n", mem.Name, mem.Size, mem.Digest)
	}

	fmt.Printf("decisions (%d):\n", len(p.Decisions))
	for _, d := range p.Decisions {
		verdict := "ACCEPTED"
		if !d.Accepted {
			verdict = "REJECTED at " + d.FailedStage
		}
		fmt.Printf("  %s  %s  (%d stages, %dµs)\n", d.TraceID, verdict, len(d.Stages), d.ElapsedUS)
		for _, st := range d.Stages {
			mark := "pass"
			if !st.Pass {
				mark = "FAIL"
			}
			fmt.Printf("    %-12s %s  score=%g (bits %s)", st.Stage, mark, st.Score, st.ScoreBits)
			if st.Detail != "" {
				fmt.Printf("  %s", st.Detail)
			}
			fmt.Println()
		}
		if env, ok := p.Session(d.TraceID); ok {
			fmt.Printf("    session: redaction=%s digest=%s\n", env.Redaction, env.SessionDigest)
		} else {
			fmt.Printf("    session: (not packed)\n")
		}
	}

	fmt.Printf("models (%d digests):\n", len(p.Models.Digests))
	keys := make([]string, 0, len(p.Models.Digests))
	for k := range p.Models.Digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %s\n", k, p.Models.Digests[k])
	}
	if prov := p.Models.Provenance; prov != nil {
		fmt.Printf("provenance: generator=%s field_seed=%d", prov.Generator, prov.FieldSeed)
		if prov.ASV != nil {
			fmt.Printf(" asv(seed=%d roster=%d enrolled=%d)", prov.ASV.Seed, prov.ASV.Roster, len(prov.ASV.Enroll))
		}
		fmt.Println()
	} else {
		fmt.Println("provenance: (none — pack cannot be replayed)")
	}
	return nil
}

// runPackDiff compares two packs semantically, exiting non-zero when they
// differ.
func runPackDiff(args []string) error {
	if len(args) != 2 {
		packUsage()
		return fmt.Errorf("pack diff: exactly two pack paths required")
	}
	a, err := evidence.ReadFile(args[0])
	if err != nil {
		return err
	}
	b, err := evidence.ReadFile(args[1])
	if err != nil {
		return err
	}
	diffs := evidence.DiffPacks(a, b)
	if len(diffs) == 0 {
		fmt.Printf("packs match: %s == %s\n", args[0], args[1])
		return nil
	}
	for _, d := range diffs {
		fmt.Fprintln(os.Stderr, "  "+d)
	}
	return fmt.Errorf("pack diff: %d differences", len(diffs))
}

// runPackReplay verifies a pack, rebuilds the producing system from its
// embedded provenance, gates on model-digest equality and replays every
// packed session, exiting non-zero unless every reproduced verdict is
// bit-identical to the packed one.
func runPackReplay(args []string) error {
	if len(args) != 1 {
		packUsage()
		return fmt.Errorf("pack replay: exactly one pack path required")
	}
	p, err := evidence.ReadFile(args[0])
	if err != nil {
		return err
	}
	if problems := evidence.Verify(p); len(problems) > 0 {
		for _, pr := range problems {
			fmt.Fprintln(os.Stderr, "  "+pr.String())
		}
		return fmt.Errorf("pack replay: refusing to replay a pack that fails verification (%d problems)", len(problems))
	}
	sys, err := rebuild.SystemFromPack(p)
	if err != nil {
		return err
	}
	if err := rebuild.CheckModels(p, sys); err != nil {
		return err
	}
	fmt.Printf("models ok: %d digests match the rebuilt system\n", len(p.Models.Digests))
	results, err := rebuild.Replay(p, sys)
	if err != nil {
		return err
	}
	diverged := 0
	for _, r := range results {
		if r.Match {
			fmt.Printf("  %s  bit-identical\n", r.TraceID)
			continue
		}
		diverged++
		fmt.Fprintf(os.Stderr, "  %s  DIVERGED:\n    %s\n", r.TraceID, strings.Join(r.Diffs, "\n    "))
	}
	if diverged > 0 {
		return fmt.Errorf("pack replay: %d of %d sessions diverged", diverged, len(results))
	}
	fmt.Printf("replayed %d sessions, all verdicts bit-identical\n", len(results))
	return nil
}
