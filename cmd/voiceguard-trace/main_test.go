package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"voiceguard/internal/telemetry"
)

// sampleRecord builds one finished trace with a three-level span tree and
// evidence attrs, via the real tracer.
func sampleRecord(t *testing.T, traceID string, accepted bool) *telemetry.TraceRecord {
	t.Helper()
	tr := telemetry.NewTracer(telemetry.TracerConfig{})
	root := tr.StartTrace(traceID, "verify")
	stage := root.StartSpan("stage:distance")
	stage.SetFloat("distance_cm", 11.7, "cm")
	stage.SetFloat("threshold_dt_cm", 6, "cm")
	est := stage.StartSpan("trajectory-estimate")
	est.End()
	stage.SetBool("pass", accepted)
	stage.End()
	v := telemetry.Verdict{Accepted: accepted, Elapsed: 2 * time.Millisecond}
	if !accepted {
		v.FailedStage = "distance"
	}
	rec := tr.Finish(root, v)
	if rec == nil {
		t.Fatal("Finish returned nil")
	}
	return rec
}

// TestTreeReproducedFromJSONL pins the export contract: rendering a trace
// straight from the recorder and rendering it after a JSONL round trip
// must produce byte-identical span trees.
func TestTreeReproducedFromJSONL(t *testing.T) {
	rec := sampleRecord(t, "req-1", false)

	var direct bytes.Buffer
	printTrace(&direct, rec)

	var jsonl bytes.Buffer
	if err := telemetry.WriteJSONL(&jsonl, []*telemetry.TraceRecord{rec}); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip produced %d records", len(back))
	}
	var reparsed bytes.Buffer
	printTrace(&reparsed, back[0])

	if direct.String() != reparsed.String() {
		t.Fatalf("tree differs after JSONL round trip:\ndirect:\n%s\nreparsed:\n%s",
			direct.String(), reparsed.String())
	}
	out := direct.String()
	for _, want := range []string{
		"REJECTED at distance", "stage:distance", "trajectory-estimate",
		"distance_cm=11.7cm", "threshold_dt_cm=6cm",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
}

func TestBuildTreeNestsAndOrphans(t *testing.T) {
	rec := sampleRecord(t, "req-2", true)
	roots := buildTree(rec)
	if len(roots) != 1 || roots[0].span.Name != "verify" {
		t.Fatalf("roots = %+v", roots)
	}
	if len(roots[0].children) != 1 || roots[0].children[0].span.Name != "stage:distance" {
		t.Fatalf("stage not nested under root")
	}
	if len(roots[0].children[0].children) != 1 {
		t.Fatal("sub-operation not nested under stage")
	}

	// A span whose parent was dropped must surface as an extra root, not
	// vanish from the rendering.
	orphaned := &telemetry.TraceRecord{
		TraceID: "o",
		Spans: []telemetry.SpanRecord{
			{SpanID: "r", Name: "verify"},
			{SpanID: "x", ParentID: "gone", Name: "stranded"},
		},
	}
	roots = buildTree(orphaned)
	if len(roots) != 2 {
		t.Fatalf("orphan handling: %d roots, want 2", len(roots))
	}
}

func TestFindTracePrefersLatestDuplicate(t *testing.T) {
	recs := []*telemetry.TraceRecord{
		{TraceID: "dup", ElapsedUS: 1},
		{TraceID: "dup", ElapsedUS: 2},
	}
	got, err := findTrace(recs, "dup")
	if err != nil || got.ElapsedUS != 2 {
		t.Fatalf("findTrace = %+v, %v", got, err)
	}
	if _, err := findTrace(recs, "absent"); err == nil {
		t.Fatal("missing trace did not error")
	}
}

func TestFlattenPathsDisambiguatesSiblings(t *testing.T) {
	rec := &telemetry.TraceRecord{
		TraceID: "p",
		Spans: []telemetry.SpanRecord{
			{SpanID: "r", Name: "verify"},
			{SpanID: "a", ParentID: "r", Name: "block", StartUS: 1},
			{SpanID: "b", ParentID: "r", Name: "block", StartUS: 2},
		},
	}
	paths, order := flattenPaths(rec)
	if len(paths) != 3 || len(order) != 3 {
		t.Fatalf("paths = %v", order)
	}
	if _, ok := paths["/verify/block"]; !ok {
		t.Errorf("first sibling path missing: %v", order)
	}
	if _, ok := paths["/verify/block#1"]; !ok {
		t.Errorf("second sibling not disambiguated: %v", order)
	}
}

func TestPercentile(t *testing.T) {
	if !math.IsNaN(percentile(nil, 0.5)) {
		t.Error("empty slice did not give NaN")
	}
	vs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {0.95, 4.8},
	}
	for _, c := range cases {
		if got := percentile(vs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("percentile(%.2f) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single element percentile = %g", got)
	}
}

func TestFormatDur(t *testing.T) {
	cases := []struct {
		us   int64
		want string
	}{
		{250, "250µs"}, {1500, "1.5ms"}, {2_340_000, "2.34s"},
	}
	for _, c := range cases {
		if got := formatDur(c.us); got != c.want {
			t.Errorf("formatDur(%d) = %q, want %q", c.us, got, c.want)
		}
	}
}

// TestGenerateDemoFillsRecorder runs the demo generator end to end (ASV
// off to keep it fast) and checks every produced trace is replayable.
func TestGenerateDemoFillsRecorder(t *testing.T) {
	rec := telemetry.NewFlightRecorder(4)
	sessions, err := generateDemo(rec, 1, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if sessions != 2 {
		t.Fatalf("sessions = %d, want genuine + 1 replay", sessions)
	}
	snap := rec.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("recorder kept %d traces, want 2", len(snap))
	}
	for _, r := range snap {
		if len(r.Spans) < 4 {
			t.Errorf("trace %s has only %d spans", r.TraceID, len(r.Spans))
		}
		if _, ok := r.StageSpan("distance"); !ok {
			t.Errorf("trace %s missing the distance stage span", r.TraceID)
		}
	}
}
