// Command voiceguard-trace works with decision flight-recorder dumps: the
// JSONL exported by a server's /debug/decisions.jsonl (or written by the
// demo subcommand). It renders evidence-carrying span trees, diffs two
// traces span-by-span, and aggregates per-stage evidence distributions —
// the offline half of the §VII threshold-calibration loop.
//
// Usage:
//
//	voiceguard-trace show traces.jsonl            # every retained trace
//	voiceguard-trace show traces.jsonl <trace-id> # one span tree
//	voiceguard-trace diff traces.jsonl <id-a> <id-b>
//	voiceguard-trace stats traces.jsonl           # evidence p50/p95 per stage
//	voiceguard-trace demo -o traces.jsonl         # generate a sample dump
//	voiceguard-trace pack build -demo -o pack.zip # assemble an evidence pack
//	voiceguard-trace pack verify pack.zip         # digest-chain + consistency
//	voiceguard-trace pack replay pack.zip         # reproduce verdicts offline
//
// A file argument of "-" reads stdin.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "show":
		err = runShow(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "demo":
		err = runDemo(os.Args[2:])
	case "pack":
		err = runPack(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "voiceguard-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  voiceguard-trace show  <file.jsonl> [trace-id]   render span trees
  voiceguard-trace diff  <file.jsonl> <id-a> <id-b> compare two traces
  voiceguard-trace stats <file.jsonl>              per-stage evidence p50/p95
  voiceguard-trace demo  [-o out.jsonl] [-n N]     generate a sample dump
  voiceguard-trace pack  build|verify|inspect|diff|replay   evidence packs
a file of "-" reads stdin`)
}
