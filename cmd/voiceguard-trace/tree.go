package main

// Span-tree rendering and the show/diff subcommands.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"voiceguard/internal/telemetry"
)

// loadTraces reads a JSONL dump from path ("-" for stdin).
func loadTraces(path string) ([]*telemetry.TraceRecord, error) {
	if path == "-" {
		return telemetry.ReadJSONL(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	recs, err := telemetry.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return recs, nil
}

// findTrace returns the record with the given ID (the latest when
// duplicated).
func findTrace(recs []*telemetry.TraceRecord, id string) (*telemetry.TraceRecord, error) {
	var best *telemetry.TraceRecord
	for _, r := range recs {
		if r.TraceID == id {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("trace %s not in dump (%d traces)", id, len(recs))
	}
	return best, nil
}

// node is one span plus its resolved children, ordered by start time.
type node struct {
	span     telemetry.SpanRecord
	children []*node
}

// buildTree links a record's flat spans into root nodes. Spans whose
// parent is missing (dropped past the span budget) surface as extra
// roots rather than disappearing.
func buildTree(rec *telemetry.TraceRecord) []*node {
	nodes := make(map[string]*node, len(rec.Spans))
	for _, sp := range rec.Spans {
		nodes[sp.SpanID] = &node{span: sp}
	}
	var roots []*node
	for _, sp := range rec.Spans {
		n := nodes[sp.SpanID]
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.children = append(parent.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.children)
	}
	return roots
}

// sortNodes orders siblings by start time, span ID breaking ties so the
// rendering is deterministic.
func sortNodes(ns []*node) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i].span, ns[j].span
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		return a.SpanID < b.SpanID
	})
}

// formatDur renders microseconds human-readably.
func formatDur(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// spanLabel renders one span's name, duration and attributes.
func spanLabel(sp telemetry.SpanRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)", sp.Name, formatDur(sp.DurUS))
	for _, a := range sp.Attrs {
		b.WriteString(" ")
		b.WriteString(a.String())
	}
	return b.String()
}

// writeTree renders nodes with box-drawing guides.
func writeTree(w io.Writer, ns []*node, prefix string) {
	for i, n := range ns {
		connector, childPrefix := "├─ ", prefix+"│  "
		if i == len(ns)-1 {
			connector, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(w, "%s%s%s\n", prefix, connector, spanLabel(n.span))
		writeTree(w, n.children, childPrefix)
	}
}

// printTrace renders one trace: a verdict header then the span tree.
func printTrace(w io.Writer, rec *telemetry.TraceRecord) {
	verdict := "ACCEPTED"
	if !rec.Accepted {
		verdict = "REJECTED at " + rec.FailedStage
	}
	fmt.Fprintf(w, "trace %s  %s  elapsed %s  spans %d",
		rec.TraceID, verdict, formatDur(rec.ElapsedUS), len(rec.Spans))
	if rec.Dropped > 0 {
		fmt.Fprintf(w, "  dropped %d", rec.Dropped)
	}
	fmt.Fprintln(w)
	writeTree(w, buildTree(rec), "")
}

// runShow implements the show subcommand.
func runShow(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("show wants <file.jsonl> [trace-id], got %d args", len(args))
	}
	recs, err := loadTraces(args[0])
	if err != nil {
		return err
	}
	if len(args) == 2 {
		rec, err := findTrace(recs, args[1])
		if err != nil {
			return err
		}
		printTrace(os.Stdout, rec)
		return nil
	}
	for i, rec := range recs {
		if i > 0 {
			fmt.Println()
		}
		printTrace(os.Stdout, rec)
	}
	return nil
}

// pathOf addresses a span by its name chain from the root, with a
// sibling index to disambiguate repeated names (worker blocks).
func pathOf(prefix string, idx map[string]int, name string) string {
	p := prefix + "/" + name
	n := idx[p]
	idx[p] = n + 1
	if n > 0 {
		return fmt.Sprintf("%s#%d", p, n)
	}
	return p
}

// flattenPaths maps span path → span for structural diffing.
func flattenPaths(rec *telemetry.TraceRecord) (map[string]telemetry.SpanRecord, []string) {
	out := make(map[string]telemetry.SpanRecord, len(rec.Spans))
	var order []string
	idx := make(map[string]int)
	var walk func(prefix string, ns []*node)
	walk = func(prefix string, ns []*node) {
		for _, n := range ns {
			p := pathOf(prefix, idx, n.span.Name)
			out[p] = n.span
			order = append(order, p)
			walk(p, n.children)
		}
	}
	walk("", buildTree(rec))
	return out, order
}

// runDiff implements the diff subcommand: structural and evidence
// comparison of two traces from one dump.
func runDiff(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("diff wants <file.jsonl> <id-a> <id-b>, got %d args", len(args))
	}
	recs, err := loadTraces(args[0])
	if err != nil {
		return err
	}
	a, err := findTrace(recs, args[1])
	if err != nil {
		return err
	}
	b, err := findTrace(recs, args[2])
	if err != nil {
		return err
	}
	verdict := func(r *telemetry.TraceRecord) string {
		if r.Accepted {
			return "ACCEPTED"
		}
		return "REJECTED at " + r.FailedStage
	}
	fmt.Printf("a: trace %s  %s  elapsed %s\n", a.TraceID, verdict(a), formatDur(a.ElapsedUS))
	fmt.Printf("b: trace %s  %s  elapsed %s\n\n", b.TraceID, verdict(b), formatDur(b.ElapsedUS))

	pa, orderA := flattenPaths(a)
	pb, orderB := flattenPaths(b)
	for _, p := range orderA {
		sa := pa[p]
		sb, ok := pb[p]
		if !ok {
			fmt.Printf("- %s (only in a: %s)\n", p, formatDur(sa.DurUS))
			continue
		}
		line := fmt.Sprintf("  %s  %s -> %s", p, formatDur(sa.DurUS), formatDur(sb.DurUS))
		var attrDiffs []string
		for _, aa := range sa.Attrs {
			ba, ok := sb.Attr(aa.Key)
			switch {
			case !ok:
				attrDiffs = append(attrDiffs, fmt.Sprintf("%s only in a", aa.String()))
			case aa.String() != ba.String():
				attrDiffs = append(attrDiffs, fmt.Sprintf("%s -> %s", aa.String(), ba.String()))
			}
		}
		for _, ba := range sb.Attrs {
			if _, ok := sa.Attr(ba.Key); !ok {
				attrDiffs = append(attrDiffs, fmt.Sprintf("%s only in b", ba.String()))
			}
		}
		if len(attrDiffs) > 0 {
			line += "  [" + strings.Join(attrDiffs, "; ") + "]"
		}
		fmt.Println(line)
	}
	for _, p := range orderB {
		if _, ok := pa[p]; !ok {
			fmt.Printf("+ %s (only in b: %s)\n", p, formatDur(pb[p].DurUS))
		}
	}
	return nil
}
