package main

import (
	"math/rand"
	"strings"
	"testing"

	"voiceguard/internal/evidence/rebuild"
	"voiceguard/internal/speech"
)

func TestProvenanceTrainsASV(t *testing.T) {
	p, err := provenance(config{seed: 1, withASV: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.ASV == nil || p.ASV.Roster != 8 {
		t.Fatalf("ASV recipe = %+v", p.ASV)
	}
	v, err := rebuild.TrainASV(p.ASV)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("nil verifier")
	}
}

func TestProvenanceEnrollSpec(t *testing.T) {
	p, err := provenance(config{seed: 2, withASV: true, enrollSpec: "alice:seed=3,bob:seed=9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ASV.Enroll) != 2 {
		t.Fatalf("enroll entries = %+v", p.ASV.Enroll)
	}
	v, err := rebuild.TrainASV(p.ASV)
	if err != nil {
		t.Fatal(err)
	}
	// Enrolled users score their own voices: regenerate each enrollment
	// voice with the same one-source draw rebuild.Enroll used.
	for _, tc := range []struct {
		name string
		seed int64
	}{{"alice", 3}, {"bob", 9}} {
		rng := rand.New(rand.NewSource(tc.seed))
		profile := speech.RandomProfile(tc.name, rng)
		synth, err := speech.NewSynthesizer(profile, rng)
		if err != nil {
			t.Fatal(err)
		}
		utt, err := synth.SayDigits("472913")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Score(tc.name, utt); err != nil {
			t.Errorf("%s not enrolled: %v", tc.name, err)
		}
	}
}

func TestProvenanceBadSpec(t *testing.T) {
	for _, spec := range []string{"missingseed", "x:seed=abc"} {
		if _, err := provenance(config{withASV: true, enrollSpec: spec}); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := provenance(config{enrollSpec: "alice:seed=3"}); err == nil ||
		!strings.Contains(err.Error(), "-asv") {
		t.Errorf("-enroll without -asv accepted: %v", err)
	}
}
