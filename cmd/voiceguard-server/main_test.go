package main

import (
	"testing"

	"voiceguard/internal/speech"
)

func TestTrainASV(t *testing.T) {
	v, err := trainASV(1)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("nil verifier")
	}
}

func TestEnrollUsersSpec(t *testing.T) {
	v, err := trainASV(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := enrollUsers(v, "alice:seed=3,bob:seed=9"); err != nil {
		t.Fatal(err)
	}
	// Enrolled users score their own voices.
	for _, tc := range []struct {
		name string
		seed int64
	}{{"alice", 3}, {"bob", 9}} {
		rng := newDeterministicRand(tc.seed)
		profile := speech.RandomProfile(tc.name, rng)
		synth, err := speech.NewSynthesizer(profile, rng)
		if err != nil {
			t.Fatal(err)
		}
		utt, err := synth.SayDigits("472913")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Score(tc.name, utt); err != nil {
			t.Errorf("%s not enrolled: %v", tc.name, err)
		}
	}
}

func TestEnrollUsersBadSpec(t *testing.T) {
	v, err := trainASV(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"missingseed", "x:seed=abc"} {
		if err := enrollUsers(v, spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
