// Command voiceguard-server runs the verification backend: it trains the
// anti-spoofing pipeline (and optionally an ASV back-end over a synthetic
// background population), then serves /verify, /voiceprint, /healthz,
// /stats and /metrics over HTTP. The decision flight-recorder endpoints
// (/debug/decisions, /debug/decisions.jsonl, /debug/trace/{id}) expose
// verification verdicts and evidence, so they are opt-in via -decisions,
// like -pprof. SIGINT/SIGTERM drain in-flight verifications before exit.
//
// Usage:
//
//	voiceguard-server -addr :8443
//	voiceguard-server -addr :8443 -asv -enroll victim:seed=17
//	voiceguard-server -addr :8443 -pprof -decisions -metrics=false
//	voiceguard-server -addr :8443 -verify-timeout 2s -max-inflight 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/server"
	"voiceguard/internal/speech"
)

// config carries the parsed command line into run.
type config struct {
	addr          string
	seed          int64
	withASV       bool
	enrollSpec    string
	metrics       bool
	withPprof     bool
	decisions     bool
	flight        int
	traceSample   float64
	verifyTimeout time.Duration
	maxInflight   int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8443", "listen address")
	flag.Int64Var(&cfg.seed, "seed", 1, "training seed")
	flag.BoolVar(&cfg.withASV, "asv", false, "train and attach the ASV (speaker-identity) stage")
	flag.StringVar(&cfg.enrollSpec, "enroll", "", "comma-separated user:seed=N pairs to enroll synthetic users")
	flag.BoolVar(&cfg.metrics, "metrics", true, "expose the GET /metrics Prometheus endpoint")
	flag.BoolVar(&cfg.withPprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.BoolVar(&cfg.decisions, "decisions", false, "mount the decision flight-recorder endpoints under /debug/ (they expose verdicts and evidence)")
	flag.IntVar(&cfg.flight, "flight", 0, "decision flight-recorder capacity (0 = default)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "fraction of requests recording span traces [0, 1]")
	flag.DurationVar(&cfg.verifyTimeout, "verify-timeout", 0, "per-request verification deadline; exceeded attempts answer 503 (0 = unbounded)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "concurrent verification cap; excess requests are shed with 429 (0 = unbounded)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, logger); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config, logger *slog.Logger) error {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: cfg.seed})
	if err != nil {
		return fmt.Errorf("building pipeline: %w", err)
	}
	if cfg.withASV {
		verifier, err := trainASV(cfg.seed)
		if err != nil {
			return fmt.Errorf("training ASV: %w", err)
		}
		if cfg.enrollSpec != "" {
			if err := enrollUsers(verifier, cfg.enrollSpec); err != nil {
				return fmt.Errorf("enrolling users: %w", err)
			}
		}
		sys.AttachIdentity(verifier)
		logger.Info("ASV stage attached", "backend", verifier.Backend())
	}
	opts := []server.Option{
		server.WithMetricsEndpoint(cfg.metrics),
		server.WithFlightRecorder(cfg.flight),
		server.WithTraceSampling(cfg.traceSample),
	}
	if cfg.withPprof {
		opts = append(opts, server.WithPprof())
	}
	if cfg.decisions {
		opts = append(opts, server.WithDecisionEndpoints())
	}
	if cfg.verifyTimeout > 0 {
		opts = append(opts, server.WithVerifyTimeout(cfg.verifyTimeout))
	}
	if cfg.maxInflight > 0 {
		opts = append(opts, server.WithMaxInflightVerifies(cfg.maxInflight))
	}
	srv, err := server.New(sys, logger, opts...)
	if err != nil {
		return err
	}
	ready := make(chan string, 1)
	go func() {
		logger.Info("listening", "addr", <-ready, "metrics", cfg.metrics,
			"pprof", cfg.withPprof, "decisions", cfg.decisions,
			"verify_timeout", cfg.verifyTimeout, "max_inflight", cfg.maxInflight)
	}()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(cfg.addr, ready) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		logger.Info("shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutting down: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		st := srv.Stats()
		logger.Info("stopped", "requests", st.Requests, "accepted", st.Accepted,
			"rejected", st.Rejected, "errors", st.Errors,
			"deadline_exceeded", st.DeadlineExceeded, "shed", st.Shed)
		return nil
	}
}

// trainASV trains the identity back-end on a synthetic background
// population.
func trainASV(seed int64) (*core.SpeakerVerifier, error) {
	roster := speech.NewRoster(8, seed+100)
	utts, err := roster.Generate(speech.CorpusConfig{
		Sessions: 2, UtterancesPerSession: 2, Digits: 6,
	})
	if err != nil {
		return nil, err
	}
	background := make(map[string][][]*audio.Signal)
	for spk, us := range speech.BySpeaker(utts) {
		perSession := map[int][]*audio.Signal{}
		maxSess := 0
		for _, u := range us {
			perSession[u.Session] = append(perSession[u.Session], u.Audio)
			if u.Session > maxSess {
				maxSess = u.Session
			}
		}
		for s := 0; s <= maxSess; s++ {
			background[spk] = append(background[spk], perSession[s])
		}
	}
	return core.TrainSpeakerVerifier(background, core.SpeakerVerifierConfig{Seed: seed})
}

// newDeterministicRand returns a seeded source (kept as a helper so tests
// reproduce the enrollment voices).
func newDeterministicRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// enrollUsers parses "alice:seed=3,bob:seed=9" and enrolls synthetic
// voices for each.
func enrollUsers(v *core.SpeakerVerifier, spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		name, seedPart, ok := strings.Cut(entry, ":seed=")
		if !ok {
			return fmt.Errorf("bad enroll entry %q (want user:seed=N)", entry)
		}
		s, err := strconv.ParseInt(seedPart, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed in %q: %w", entry, err)
		}
		rng := newDeterministicRand(s)
		profile := speech.RandomProfile(name, rng)
		synth, err := speech.NewSynthesizer(profile, rng)
		if err != nil {
			return err
		}
		var session []*audio.Signal
		for k := 0; k < 4; k++ {
			utt, err := synth.SayDigits("472913")
			if err != nil {
				return err
			}
			session = append(session, utt)
		}
		if err := v.Enroll(name, [][]*audio.Signal{session}); err != nil {
			return err
		}
	}
	return nil
}
