// Command voiceguard-server runs the verification backend: it trains the
// anti-spoofing pipeline (and optionally an ASV back-end over a synthetic
// background population), then serves /verify, /voiceprint, /healthz,
// /stats and /metrics over HTTP. The decision flight-recorder endpoints
// (/debug/decisions, /debug/decisions.jsonl, /debug/trace/{id}) expose
// verification verdicts and evidence, so they are opt-in via -decisions,
// like -pprof; -evidence mounts the per-decision evidence-pack download
// and -evidence-dir spools packs for rejected decisions to disk.
// SIGINT/SIGTERM drain in-flight verifications before exit.
//
// The pipeline is constructed through rebuild.System from an explicit
// evidence.Provenance recipe, which is embedded in every exported pack —
// `voiceguard-trace pack replay` rebuilds the exact serving system from a
// pack alone and reproduces its verdicts bit-for-bit.
//
// Usage:
//
//	voiceguard-server -addr :8443
//	voiceguard-server -addr :8443 -asv -enroll victim:seed=17
//	voiceguard-server -addr :8443 -asv -asv-fast -asv-batch
//	voiceguard-server -addr :8443 -pprof -decisions -metrics=false
//	voiceguard-server -addr :8443 -verify-timeout 2s -max-inflight 16
//	voiceguard-server -addr :8443 -decisions -evidence -evidence-dir /var/spool/voiceguard
//	voiceguard-server -addr :8443 -stream-addr :8444 -stream-frame-timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"voiceguard/internal/evidence"
	"voiceguard/internal/evidence/rebuild"
	"voiceguard/internal/gmm"
	"voiceguard/internal/server"
)

// config carries the parsed command line into run.
type config struct {
	addr          string
	streamAddr    string
	streamFrameTO time.Duration
	seed          int64
	withASV       bool
	enrollSpec    string
	metrics       bool
	withPprof     bool
	decisions     bool
	flight        int
	traceSample   float64
	verifyTimeout time.Duration
	maxInflight   int
	evidenceOn    bool
	evidenceDir   string
	evidenceKeep  int
	asvFast       bool
	asvTopC       int
	asvCache      int
	asvBatch      bool
	asvBatchWin   time.Duration
	asvBatchMax   int

	drift          bool
	driftAlertPSI  float64 // unit: dimensionless
	sloAvail       float64 // unit: dimensionless
	sloLatency     float64 // unit: dimensionless
	sloLatencyGood time.Duration
	stageResources bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8443", "listen address")
	flag.StringVar(&cfg.streamAddr, "stream-addr", "", "also serve the binary streaming verification protocol on this TCP address (see PROTOCOL.md; empty = disabled)")
	flag.DurationVar(&cfg.streamFrameTO, "stream-frame-timeout", 0, "per-frame read/write deadline on streaming sessions (0 = default 30s)")
	flag.Int64Var(&cfg.seed, "seed", 1, "training seed")
	flag.BoolVar(&cfg.withASV, "asv", false, "train and attach the ASV (speaker-identity) stage")
	flag.StringVar(&cfg.enrollSpec, "enroll", "", "comma-separated user:seed=N pairs to enroll synthetic users")
	flag.BoolVar(&cfg.metrics, "metrics", true, "expose the GET /metrics Prometheus endpoint")
	flag.BoolVar(&cfg.withPprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.BoolVar(&cfg.decisions, "decisions", false, "mount the decision flight-recorder endpoints under /debug/ (they expose verdicts and evidence)")
	flag.IntVar(&cfg.flight, "flight", 0, "decision flight-recorder capacity (0 = default)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "fraction of requests recording span traces [0, 1]")
	flag.DurationVar(&cfg.verifyTimeout, "verify-timeout", 0, "per-request verification deadline; exceeded attempts answer 503 (0 = unbounded)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "concurrent verification cap; excess requests are shed with 429 (0 = unbounded)")
	flag.BoolVar(&cfg.evidenceOn, "evidence", false, "mount GET /debug/evidence/{trace_id} serving per-decision evidence packs (they embed session audio unless ?redact=digests)")
	flag.StringVar(&cfg.evidenceDir, "evidence-dir", "", "spool an evidence pack into this directory for every rejected decision")
	flag.IntVar(&cfg.evidenceKeep, "evidence-retention", 0, "evidence session retention ring capacity (0 = default)")
	flag.BoolVar(&cfg.asvFast, "asv-fast", false, "serve ASV scoring through the compiled top-C shortlist path (requires -asv)")
	flag.IntVar(&cfg.asvTopC, "asv-topc", 0, "shortlist width for -asv-fast (0 = default)")
	flag.IntVar(&cfg.asvCache, "asv-cache", 0, "compiled speaker-model LRU capacity for -asv-fast (0 = default)")
	flag.BoolVar(&cfg.asvBatch, "asv-batch", false, "coalesce concurrent verifies into batched UBM scoring passes (implies -asv-fast)")
	flag.DurationVar(&cfg.asvBatchWin, "asv-batch-window", 0, "batching window for -asv-batch (0 = default)")
	flag.IntVar(&cfg.asvBatchMax, "asv-batch-frames", 0, "frame count that flushes a batch early for -asv-batch (0 = default)")
	flag.BoolVar(&cfg.drift, "drift", true, "mount the GET /debug/drift aggregate drift/SLO report (windows are always fed)")
	flag.Float64Var(&cfg.driftAlertPSI, "drift-alert-psi", 0, "PSI above which a drift series alerts (0 = default 0.25)")
	flag.Float64Var(&cfg.sloAvail, "slo-availability", 0, "availability objective, e.g. 0.999 (0 disables the availability SLO)")
	flag.Float64Var(&cfg.sloLatency, "slo-latency", 0, "latency objective, e.g. 0.99 (0 disables the latency SLO)")
	flag.DurationVar(&cfg.sloLatencyGood, "slo-latency-threshold", time.Second, "latency at or under which a decided verify counts as good for -slo-latency")
	flag.BoolVar(&cfg.stageResources, "stage-resources", false, "attribute per-stage thread CPU time (voiceguard_stage_cpu_seconds_total; costs one thread pin per stage)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, logger); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config, logger *slog.Logger) error {
	prov, err := provenance(cfg)
	if err != nil {
		return err
	}
	sys, err := rebuild.System(prov)
	if err != nil {
		return fmt.Errorf("building pipeline: %w", err)
	}
	if cfg.withASV {
		logger.Info("ASV stage attached", "backend", sys.Identity.Backend())
	}
	opts := []server.Option{
		server.WithMetricsEndpoint(cfg.metrics),
		server.WithFlightRecorder(cfg.flight),
		server.WithTraceSampling(cfg.traceSample),
		server.WithEvidenceProvenance(prov),
	}
	if cfg.withPprof {
		opts = append(opts, server.WithPprof())
	}
	if cfg.decisions {
		opts = append(opts, server.WithDecisionEndpoints())
	}
	if cfg.verifyTimeout > 0 {
		opts = append(opts, server.WithVerifyTimeout(cfg.verifyTimeout))
	}
	if cfg.maxInflight > 0 {
		opts = append(opts, server.WithMaxInflightVerifies(cfg.maxInflight))
	}
	if cfg.evidenceOn {
		opts = append(opts, server.WithEvidenceEndpoint())
	}
	if cfg.evidenceDir != "" {
		opts = append(opts, server.WithEvidenceDir(cfg.evidenceDir))
	}
	if cfg.evidenceKeep > 0 {
		opts = append(opts, server.WithEvidenceRetention(cfg.evidenceKeep))
	}
	if cfg.asvFast {
		opts = append(opts, server.WithASVFastPath(cfg.asvTopC))
	}
	if cfg.asvCache > 0 {
		opts = append(opts, server.WithASVModelCache(cfg.asvCache))
	}
	if cfg.asvBatch {
		opts = append(opts, server.WithASVBatching(cfg.asvBatchWin, cfg.asvBatchMax))
	}
	opts = append(opts, server.WithDriftEndpoint(cfg.drift))
	if cfg.driftAlertPSI > 0 {
		opts = append(opts, server.WithDriftAlertPSI(cfg.driftAlertPSI))
	}
	if cfg.sloAvail > 0 || cfg.sloLatency > 0 {
		opts = append(opts, server.WithSLO(cfg.sloAvail, cfg.sloLatency, cfg.sloLatencyGood))
	}
	if cfg.stageResources {
		opts = append(opts, server.WithStageResources())
	}
	if cfg.streamFrameTO > 0 {
		opts = append(opts, server.WithStreamFrameTimeout(cfg.streamFrameTO))
	}
	srv, err := server.New(sys, logger, opts...)
	if err != nil {
		return err
	}
	ready := make(chan string, 1)
	go func() {
		logger.Info("listening", "addr", <-ready, "metrics", cfg.metrics,
			"pprof", cfg.withPprof, "decisions", cfg.decisions,
			"evidence", cfg.evidenceOn, "evidence_dir", cfg.evidenceDir,
			"verify_timeout", cfg.verifyTimeout, "max_inflight", cfg.maxInflight)
	}()
	errCh := make(chan error, 2)
	serving := 1
	go func() { errCh <- srv.ListenAndServe(cfg.addr, ready) }()
	if cfg.streamAddr != "" {
		serving++
		streamReady := make(chan string, 1)
		go func() { logger.Info("stream listening", "addr", <-streamReady) }()
		go func() { errCh <- srv.ListenAndServeStream(cfg.streamAddr, streamReady) }()
	}
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		logger.Info("shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutting down: %w", err)
		}
		for i := 0; i < serving; i++ {
			if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
		}
		st := srv.Stats()
		logger.Info("stopped", "requests", st.Requests, "accepted", st.Accepted,
			"rejected", st.Rejected, "errors", st.Errors,
			"deadline_exceeded", st.DeadlineExceeded, "shed", st.Shed)
		return nil
	}
}

// provenance derives the system construction recipe from the command
// line. The recipe both drives rebuild.System and is embedded in every
// exported evidence pack, so a pack records exactly what this process
// served with.
func provenance(cfg config) (evidence.Provenance, error) {
	p := evidence.Provenance{Generator: "server", FieldSeed: cfg.seed}
	if !cfg.withASV {
		if cfg.enrollSpec != "" {
			return p, fmt.Errorf("-enroll requires -asv")
		}
		if cfg.asvFast || cfg.asvBatch {
			return p, fmt.Errorf("-asv-fast/-asv-batch require -asv")
		}
		return p, nil
	}
	p.ASV = &evidence.ASVProvenance{
		Seed: cfg.seed, Roster: 8, Sessions: 2, Utterances: 2, Digits: 6,
	}
	if cfg.asvFast || cfg.asvBatch {
		// Record the serving shortlist width so a pack replayer rebuilds
		// with the same scoring path and reproduces scores bit-for-bit.
		p.ASV.FastTopC = cfg.asvTopC
		if p.ASV.FastTopC <= 0 {
			p.ASV.FastTopC = gmm.DefaultShortlistC
		}
	}
	if cfg.enrollSpec == "" {
		return p, nil
	}
	for _, entry := range strings.Split(cfg.enrollSpec, ",") {
		name, seedPart, ok := strings.Cut(entry, ":seed=")
		if !ok {
			return p, fmt.Errorf("bad enroll entry %q (want user:seed=N)", entry)
		}
		s, err := strconv.ParseInt(seedPart, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed in %q: %w", entry, err)
		}
		p.ASV.Enroll = append(p.ASV.Enroll, evidence.EnrollProvenance{
			User: name, Seed: s, Passphrase: "472913", Utterances: 4,
		})
	}
	return p, nil
}
