// Command voiceguard-lint runs the domain-aware static-analysis suite
// (internal/analysis) over Go packages and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/voiceguard-lint ./...
//	go run ./cmd/voiceguard-lint -list
//	go run ./cmd/voiceguard-lint -only floatcmp,nopanic ./internal/dsp
//	go run ./cmd/voiceguard-lint -json ./... > diagnostics.json
//
// Findings are suppressed in source with a pragma on the same line or the
// line above:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"voiceguard/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list available analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout (for CI archiving)")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: voiceguard-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		selected, err := selectAnalyzers(suite, *only)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voiceguard-lint:", err)
			os.Exit(2)
		}
		suite = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voiceguard-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voiceguard-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "voiceguard-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "voiceguard-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// jsonDiagnostic is the machine-readable diagnostic record.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// writeJSON renders the diagnostics as one indented JSON array. An empty
// run emits [] so CI consumers always parse a valid document.
func writeJSON(w *os.File, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers filters the suite by a comma-separated name list.
func selectAnalyzers(suite []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
