package main

import (
	"testing"

	"voiceguard/internal/analysis"
)

func TestSelectAnalyzers(t *testing.T) {
	suite := analysis.All()

	got, err := selectAnalyzers(suite, "floatcmp, nopanic")
	if err != nil {
		t.Fatalf("selectAnalyzers: %v", err)
	}
	if len(got) != 2 || got[0].Name != "floatcmp" || got[1].Name != "nopanic" {
		t.Fatalf("selectAnalyzers returned %v", names(got))
	}

	if _, err := selectAnalyzers(suite, "nosuchcheck"); err == nil {
		t.Fatal("unknown analyzer name accepted")
	}
	if _, err := selectAnalyzers(suite, " , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
