// Command voiceguard-top renders a refreshing terminal view of a running
// verification server: outcome and stage-latency summaries scraped from
// /metrics, drift scores, SLO burn rates and resource attribution from
// /debug/drift, and the ASV cache/batcher serving state from /healthz —
// the at-a-glance answer to "is the fleet healthy and has the evidence
// distribution moved".
//
// Usage:
//
//	voiceguard-top -addr http://127.0.0.1:8443
//	voiceguard-top -addr http://127.0.0.1:8443 -interval 5s
//	voiceguard-top -once            # print one frame and exit (CI smoke)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"voiceguard/internal/client"
	"voiceguard/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8443", "server base URL")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print a single frame and exit")
	timeline := flag.Int("timeline", 8, "drift-report timeline slots to request")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := client.New(*addr)
	if *once {
		frame, err := render(ctx, c, *timeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voiceguard-top:", err)
			os.Exit(1)
		}
		fmt.Print(frame)
		return
	}
	for {
		frame, err := render(ctx, c, *timeline)
		if err != nil {
			frame = fmt.Sprintf("voiceguard-top: %v\n", err)
		}
		// Clear screen + home, then the frame: a flicker-free refresh
		// without taking over the terminal.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-time.After(*interval):
		}
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseMetrics extracts samples from a Prometheus text exposition. Only
// the subset voiceguard-top displays needs to parse; unparseable lines
// are skipped, never fatal.
func parseMetrics(text string) []promSample {
	var out []promSample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		nameAndLabels, valuePart, ok := cutLast(line, " ")
		if !ok {
			continue
		}
		var value float64
		if _, err := fmt.Sscanf(valuePart, "%g", &value); err != nil {
			continue
		}
		s := promSample{value: value, labels: map[string]string{}}
		if open := strings.IndexByte(nameAndLabels, '{'); open >= 0 {
			s.name = nameAndLabels[:open]
			body := strings.TrimSuffix(nameAndLabels[open+1:], "}")
			for _, pair := range strings.Split(body, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					continue
				}
				s.labels[k] = strings.Trim(v, `"`)
			}
		} else {
			s.name = nameAndLabels
		}
		out = append(out, s)
	}
	return out
}

// cutLast splits at the last occurrence of sep (exemplar-free exposition
// lines may still carry a timestamp; the value is the token before it,
// so split on the first space after the name/labels instead — labels
// never contain unquoted spaces in our exposition, quoted values might,
// so find the space after the closing brace when one exists).
func cutLast(line, sep string) (string, string, bool) {
	if close := strings.IndexByte(line, '}'); close >= 0 {
		rest := line[close+1:]
		if !strings.HasPrefix(rest, sep) {
			return "", "", false
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", "", false
		}
		return line[:close+1], fields[0], true
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// metricsView aggregates the scraped families voiceguard-top shows.
type metricsView struct {
	outcomes   map[string]float64
	inflight   float64
	stageSum   map[string]float64 // stage → latency seconds sum
	stageCount map[string]float64
	stageCPU   map[string]float64
	goHeap     float64
	goGC       float64
	goRoutines float64
}

func buildView(samples []promSample) metricsView {
	v := metricsView{
		outcomes:   map[string]float64{},
		stageSum:   map[string]float64{},
		stageCount: map[string]float64{},
		stageCPU:   map[string]float64{},
	}
	for _, s := range samples {
		switch s.name {
		case "voiceguard_verify_total":
			v.outcomes[s.labels["outcome"]] += s.value
		case "voiceguard_verify_inflight":
			v.inflight = s.value
		case "voiceguard_stage_latency_seconds_sum":
			v.stageSum[s.labels["stage"]] += s.value
		case "voiceguard_stage_latency_seconds_count":
			v.stageCount[s.labels["stage"]] += s.value
		case "voiceguard_stage_cpu_seconds_total":
			v.stageCPU[s.labels["stage"]] += s.value
		case "voiceguard_go_heap_bytes":
			v.goHeap = s.value
		case "voiceguard_go_gc_pause_us":
			v.goGC = s.value
		case "voiceguard_go_goroutines":
			v.goRoutines = s.value
		}
	}
	return v
}

// asvView is the /healthz ASV section (mirrors the server's asvHealth).
type asvView struct {
	CacheEntries       int     `json:"cache_entries"`
	CacheResidentBytes int64   `json:"cache_resident_bytes"`
	CacheHits          int64   `json:"cache_hits"`
	CacheMisses        int64   `json:"cache_misses"`
	CacheHitRatio      float64 `json:"cache_hit_ratio"`
	Batching           bool    `json:"batching"`
	QueueDepth         int     `json:"queue_depth"`
	PendingFrames      int     `json:"pending_frames"`
}

// render fetches one snapshot of every surface and formats the frame.
func render(ctx context.Context, c *client.Client, timeline int) (string, error) {
	rep, err := c.DriftReport(ctx, timeline)
	if err != nil {
		return "", err
	}
	text, err := c.MetricsText(ctx)
	if err != nil {
		return "", err
	}
	view := buildView(parseMetrics(text))
	var asv *asvView
	if health, err := c.Health(ctx); err == nil {
		if raw, ok := health["asv"]; ok {
			var a asvView
			if json.Unmarshal(raw, &a) == nil {
				asv = &a
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "voiceguard-top — %s — %s\n\n", c.BaseURL,
		time.Unix(rep.GeneratedUnix, 0).UTC().Format(time.RFC3339))

	fmt.Fprintf(&b, "verify   accepted %.0f  rejected %.0f  errors %.0f  deadline %.0f  shed %.0f  inflight %.0f\n",
		view.outcomes["accepted"], view.outcomes["rejected"], view.outcomes["error"],
		view.outcomes["deadline_exceeded"], view.outcomes["shed"], view.inflight)
	fmt.Fprintf(&b, "process  heap %s  goroutines %.0f  gc pause %s  alloc/decision %s\n\n",
		bytesHuman(view.goHeap), view.goRoutines,
		durHuman(view.goGC/1e6), bytesHuman(rep.Resources.AllocPerDecisionBytes))

	b.WriteString("stage             mean latency    cpu total\n")
	stages := make([]string, 0, len(view.stageCount))
	for st := range view.stageCount {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		mean := 0.0
		if n := view.stageCount[st]; n > 0 {
			mean = view.stageSum[st] / n
		}
		cpu := "-"
		if c, ok := view.stageCPU[st]; ok {
			cpu = durHuman(c)
		}
		fmt.Fprintf(&b, "  %-14s  %12s  %11s\n", st, durHuman(mean), cpu)
	}

	fmt.Fprintf(&b, "\ndrift (live %s vs baseline%s, alert PSI > %.2f)\n",
		rep.LiveWindow, baselineNote(rep), rep.AlertPSI)
	b.WriteString("  stage/metric               PSI      KS    live    base\n")
	for _, d := range rep.Drift {
		flag := ""
		if d.Alert {
			flag = "  << ALERT"
		}
		fmt.Fprintf(&b, "  %-24s %6.3f  %6.3f  %6d  %6d%s\n",
			d.Stage+"/"+d.Metric, d.PSI, d.KS, d.LiveCount, d.BaselineCount, flag)
	}

	if len(rep.Burn) > 0 {
		b.WriteString("\nslo burn (budget multiples; >1 = burning budget)\n")
		bySLO := map[string][]telemetry.BurnEntry{}
		var names []string
		for _, e := range rep.Burn {
			if _, ok := bySLO[e.SLO]; !ok {
				names = append(names, e.SLO)
			}
			bySLO[e.SLO] = append(bySLO[e.SLO], e)
		}
		for _, name := range names {
			fmt.Fprintf(&b, "  %-13s", name)
			for _, e := range bySLO[name] {
				fmt.Fprintf(&b, "  %s %.2f", e.Window, e.Burn)
			}
			b.WriteString("\n")
		}
	}

	if asv != nil {
		fmt.Fprintf(&b, "\nasv      cache %d models / %s  hit %.1f%%",
			asv.CacheEntries, bytesHuman(float64(asv.CacheResidentBytes)), asv.CacheHitRatio*100)
		if asv.Batching {
			fmt.Fprintf(&b, "  batch queue %d (%d frames)", asv.QueueDepth, asv.PendingFrames)
		}
		b.WriteString("\n")
	}

	if len(rep.Timeline) > 0 {
		b.WriteString("\ntimeline (per minute)\n")
		b.WriteString("  time      acc  rej  err  latency\n")
		for _, p := range rep.Timeline {
			fmt.Fprintf(&b, "  %s  %3d  %3d  %3d  %s\n",
				time.Unix(p.Unix, 0).UTC().Format("15:04:05"),
				p.Accepted, p.Rejected, p.Errors+p.DeadlineExceeded+p.Shed,
				durHuman(p.LatencyMeanUS/1e6))
		}
	}
	return b.String(), nil
}

func baselineNote(rep *telemetry.DriftReport) string {
	if rep.BaselinePinnedUnix == 0 {
		return " (none pinned)"
	}
	return " pinned " + rep.BaselineWindow
}

// bytesHuman renders a byte count compactly.
func bytesHuman(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1f GiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// durHuman renders seconds compactly.
func durHuman(seconds float64) string {
	switch {
	case seconds <= 0:
		return "0"
	case seconds < 1e-3:
		return fmt.Sprintf("%.0f µs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.1f ms", seconds*1e3)
	default:
		return fmt.Sprintf("%.2f s", seconds)
	}
}
