package main

// -bench-json mode: times the hot-path primitives and the headline
// experiments in-process and writes machine-readable rows, so CI and the
// repo can track pipeline latency without parsing `go test -bench` text.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
	"voiceguard/internal/experiment"
	"voiceguard/internal/features"
	"voiceguard/internal/gmm"
)

// benchRow is one benchmark observation, mirroring the fields of
// `go test -bench -benchmem` output that matter for latency tracking.
type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// measure runs fn iters times and reports mean wall time and heap
// allocation count per run. One-shot experiment rows pass iters=1; the
// micro rows average over enough iterations to stabilize the mean.
func measure(name string, iters int, fn func() error) (benchRow, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return benchRow{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return benchRow{
		Name:        name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: (m1.Mallocs - m0.Mallocs) / uint64(iters),
	}, nil
}

// benchSignal synthesizes a deterministic speech-like test utterance.
func benchSignal(seconds float64) *audio.Signal {
	rng := rand.New(rand.NewSource(3))
	n := int(seconds * 16000)
	samples := make([]float64, n)
	for i := range samples {
		t := float64(i) / 16000
		samples[i] = 0.5*math.Sin(2*math.Pi*190*t) +
			0.25*math.Sin(2*math.Pi*380*t) +
			0.1*rng.NormFloat64()
	}
	return &audio.Signal{Rate: 16000, Samples: samples}
}

// benchJSONRows runs every benchmark and returns the rows in a fixed order:
// hot-path micros first, then the experiment-level latencies.
func benchJSONRows(seed int64) ([]benchRow, error) {
	sig := benchSignal(2)

	gmmRng := rand.New(rand.NewSource(seed))
	gmmTrain := make([][]float64, 400)
	for i := range gmmTrain {
		row := make([]float64, 13)
		for d := range row {
			row[d] = gmmRng.NormFloat64() + float64(i%4)
		}
		gmmTrain[i] = row
	}
	model, err := gmm.Train(gmmTrain, gmm.TrainConfig{Components: 16, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("training bench GMM: %w", err)
	}
	scoreFrames := gmmTrain[:300]

	var rows []benchRow
	for _, spec := range []struct {
		name  string
		iters int
		fn    func() error
	}{
		{"micro/dsp.FFT1024", 200, func() error {
			buf := make([]complex128, 1024)
			for i := range buf {
				buf[i] = complex(sig.Samples[i], 0)
			}
			dsp.FFT(buf)
			return nil
		}},
		{"micro/dsp.STFT", 50, func() error {
			_, err := dsp.STFT(sig.Samples, dsp.STFTConfig{
				FrameSize: 400, HopSize: 160, FFTSize: 512, SampleRate: 16000,
			})
			return err
		}},
		{"micro/features.Extract", 20, func() error {
			_, err := features.Extract(sig, features.DefaultMFCCConfig())
			return err
		}},
		{"micro/gmm.MeanLogLikelihood", 50, func() error {
			model.MeanLogLikelihood(scoreFrames)
			return nil
		}},
		{"experiment/table1", 1, func() error {
			_, err := experiment.RunTableI(experiment.TableIConfig{Seed: seed + 3, UBMComponents: 32})
			return err
		}},
		{"experiment/fig6", 1, func() error {
			_, err := experiment.RunFig6(seed)
			return err
		}},
		{"experiment/timing", 1, func() error {
			_, err := experiment.RunTiming(experiment.TimingConfig{Users: 4, TrialsPerUser: 3, Seed: seed})
			return err
		}},
	} {
		row, err := measure(spec.name, spec.iters, spec.fn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// writeBenchJSON runs the suite and writes the rows to path.
func writeBenchJSON(path string, seed int64) error {
	rows, err := benchJSONRows(seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding bench rows: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	for _, r := range rows {
		fmt.Printf("  %-28s %14.0f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	return nil
}
