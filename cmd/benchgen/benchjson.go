package main

// -bench-json mode: times the hot-path primitives and the headline
// experiments in-process and writes machine-readable rows, so CI and the
// repo can track pipeline latency without parsing `go test -bench` text.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
	"voiceguard/internal/experiment"
	"voiceguard/internal/features"
	"voiceguard/internal/gmm"
	"voiceguard/internal/speech"
)

// benchRow is one benchmark observation, mirroring the fields of
// `go test -bench -benchmem` output that matter for latency tracking.
type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// measure runs fn iters times and reports mean wall time and heap
// allocation count per run. One-shot experiment rows pass iters=1; the
// micro rows average over enough iterations to stabilize the mean.
func measure(name string, iters int, fn func() error) (benchRow, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return benchRow{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return benchRow{
		Name:        name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: (m1.Mallocs - m0.Mallocs) / uint64(iters),
	}, nil
}

// benchSignal synthesizes a deterministic speech-like test utterance.
func benchSignal(seconds float64) *audio.Signal {
	rng := rand.New(rand.NewSource(3))
	n := int(seconds * 16000)
	samples := make([]float64, n)
	for i := range samples {
		t := float64(i) / 16000
		samples[i] = 0.5*math.Sin(2*math.Pi*190*t) +
			0.25*math.Sin(2*math.Pi*380*t) +
			0.1*rng.NormFloat64()
	}
	return &audio.Signal{Rate: 16000, Samples: samples}
}

// benchJSONRows runs every benchmark and returns the rows in a fixed order:
// hot-path micros first, then the experiment-level latencies.
func benchJSONRows(seed int64) ([]benchRow, error) {
	sig := benchSignal(2)

	// The gmm rows score the production-shaped workload: a 32-component
	// UBM trained on real MFCC frames from the repo's own speech
	// synthesis — the model family the serving path actually runs. The
	// well-separated synthetic blobs used through PR 7 let the exact
	// path's exp underflow early-out, making it artificially cheap and
	// understating the fast path's speedup.
	utts, err := speech.NewRoster(4, 77).Generate(speech.CorpusConfig{
		Sessions: 2, UtterancesPerSession: 2, Digits: 5,
	})
	if err != nil {
		return nil, fmt.Errorf("generating bench corpus: %w", err)
	}
	var pool, enroll [][]float64
	enrollName := utts[0].Speaker
	for _, u := range utts {
		fr, err := features.Extract(u.Audio, features.DefaultMFCCConfig())
		if err != nil {
			return nil, fmt.Errorf("extracting bench features: %w", err)
		}
		pool = append(pool, fr...)
		if u.Speaker == enrollName {
			enroll = append(enroll, fr...)
		}
	}
	if len(pool) < 300 {
		return nil, fmt.Errorf("bench corpus pooled only %d MFCC frames, want ≥ 300", len(pool))
	}
	model, err := gmm.TrainUBM(pool, gmm.TrainConfig{Components: 32, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("training bench UBM: %w", err)
	}
	scoreFrames := pool[:300]
	compiled, err := gmm.Compile(model)
	if err != nil {
		return nil, fmt.Errorf("compiling bench UBM: %w", err)
	}
	speaker, err := gmm.MAPAdapt(model, enroll, 16)
	if err != nil {
		return nil, fmt.Errorf("adapting bench speaker model: %w", err)
	}
	speakerCompiled, err := gmm.Compile(speaker)
	if err != nil {
		return nil, fmt.Errorf("compiling bench speaker model: %w", err)
	}

	var rows []benchRow
	for _, spec := range []struct {
		name  string
		iters int
		fn    func() error
	}{
		{"micro/dsp.FFT1024", 200, func() error {
			buf := make([]complex128, 1024)
			for i := range buf {
				buf[i] = complex(sig.Samples[i], 0)
			}
			dsp.FFT(buf)
			return nil
		}},
		{"micro/dsp.STFT", 50, func() error {
			_, err := dsp.STFT(sig.Samples, dsp.STFTConfig{
				FrameSize: 400, HopSize: 160, FFTSize: 512, SampleRate: 16000,
			})
			return err
		}},
		{"micro/features.Extract", 20, func() error {
			_, err := features.Extract(sig, features.DefaultMFCCConfig())
			return err
		}},
		{"micro/gmm.MeanLogLikelihood", 50, func() error {
			model.MeanLogLikelihood(scoreFrames)
			return nil
		}},
		{"micro/gmm.ScoringModelCompile", 200, func() error {
			_, err := gmm.Compile(model)
			return err
		}},
		{"micro/gmm.TopCShortlist", 50, func() error {
			// Same 300 frames as micro/gmm.MeanLogLikelihood — the two
			// rows are the exact-vs-fast speedup comparison.
			_, err := compiled.TopC(scoreFrames, gmm.DefaultShortlistC)
			return err
		}},
		{"experiment/table1", 1, func() error {
			_, err := experiment.RunTableI(experiment.TableIConfig{Seed: seed + 3, UBMComponents: 32})
			return err
		}},
		{"experiment/fig6", 1, func() error {
			_, err := experiment.RunFig6(seed)
			return err
		}},
		{"experiment/timing", 1, func() error {
			_, err := experiment.RunTiming(experiment.TimingConfig{Users: 4, TrialsPerUser: 3, Seed: seed})
			return err
		}},
	} {
		row, err := measure(spec.name, spec.iters, spec.fn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	batched, err := measureBatchedVerify(compiled, speakerCompiled, pool)
	if err != nil {
		return nil, err
	}
	rows = append(rows, batched)

	e2e, err := streamLatencyRows(seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, e2e...)
	return rows, nil
}

// streamLatencyRows runs the dual-transport sweep once and reports the
// per-class time-to-first-decision medians: the HTTP full-session attempt
// against the streaming connect-to-verdict time. The stream rows are the
// early-exit payoff the protocol exists for — CI gates them against the
// previous PR's baseline like any other latency row.
func streamLatencyRows(seed int64) ([]benchRow, error) {
	sweep, err := experiment.RunStreamEarlyExit(seed)
	if err != nil {
		return nil, fmt.Errorf("stream latency sweep: %w", err)
	}
	var rows []benchRow
	for _, r := range sweep {
		if !r.VerdictsAgree {
			return nil, fmt.Errorf("stream latency sweep: %s verdicts diverged across transports", r.Class)
		}
		rows = append(rows,
			benchRow{Name: "e2e/http.Decision." + r.Class, NsPerOp: float64(r.HTTPMedian.Nanoseconds())},
			benchRow{Name: "e2e/stream.TimeToDecision." + r.Class, NsPerOp: float64(r.StreamMedian.Nanoseconds())},
		)
	}
	return rows, nil
}

// measureBatchedVerify times the cross-request batching layer end to
// end: concurrent workers push utterance-sized frame blocks through one
// Batcher (sharing UBM passes) and finish each verify against the
// compiled speaker model. The row is normalized per verify, so it reads
// as batched-verify latency and its inverse is verifies/sec/core.
func measureBatchedVerify(ubm, speaker *gmm.ScoringModel, frames [][]float64) (benchRow, error) {
	const (
		workers           = 8
		verifiesPerWorker = 16
		uttFrames         = 50
	)
	row, err := measure("batch/asv.BatchedVerify", 1, func() error {
		b, err := gmm.NewBatcher(ubm, gmm.BatchConfig{TopC: gmm.DefaultShortlistC})
		if err != nil {
			return err
		}
		defer b.Close()
		errCh := make(chan error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < verifiesPerWorker; i++ {
					off := ((w*verifiesPerWorker + i) * uttFrames) % (len(frames) - uttFrames)
					utt := frames[off : off+uttFrames]
					sl, err := b.ScoreUBM(utt)
					if err != nil {
						errCh <- err
						return
					}
					if _, err := speaker.MeanLogLikelihoodShortlist(utt, sl); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	})
	if err != nil {
		return benchRow{}, err
	}
	total := float64(workers * verifiesPerWorker)
	row.NsPerOp /= total
	row.AllocsPerOp = uint64(float64(row.AllocsPerOp) / total)
	return row, nil
}

// writeBenchJSON runs the suite, writes the rows to path and returns
// them for an optional baseline comparison.
func writeBenchJSON(path string, seed int64) ([]benchRow, error) {
	rows, err := benchJSONRows(seed)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("encoding bench rows: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, fmt.Errorf("writing %s: %w", path, err)
	}
	for _, r := range rows {
		fmt.Printf("  %-30s %14.0f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	return rows, nil
}
