// Command benchgen regenerates the paper's tables and figures as text.
//
// Usage:
//
//	benchgen -exp all
//	benchgen -exp fig12a
//	benchgen -exp table1 -seed 7
//	benchgen -bench-json BENCH_pr3.json
//
// Experiments: table1, fig6, fig8, fig10, fig12a, fig12b, fig13, fig14a,
// fig14b, fig15, table4, tube, unconventional, adaptive, dualmic, baseline,
// envs, drift, stream, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"voiceguard/internal/experiment"
	"voiceguard/internal/magnetics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see package doc)")
	seed := flag.Int64("seed", 1, "base random seed")
	benchJSON := flag.String("bench-json", "", "write hot-path benchmark rows as JSON to this path and exit")
	benchBaseline := flag.String("bench-baseline", "", "with -bench-json: fail if the fresh rows regress against this baseline JSON (strict allocs on micro/ rows)")
	driftJSON := flag.String("drift-json", "", "run the attack-matrix drift wave and write its per-series PSI/KS report as JSON to this path, then exit")
	flag.Parse()

	if *driftJSON != "" {
		if err := writeDriftJSON(*driftJSON, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON != "" {
		rows, err := writeBenchJSON(*benchJSON, *seed)
		if err == nil && *benchBaseline != "" {
			err = compareBaseline(rows, *benchBaseline)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}
	if *benchBaseline != "" {
		fmt.Fprintln(os.Stderr, "benchgen: -bench-baseline requires -bench-json")
		os.Exit(1)
	}
	if err := run(*exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64) error {
	runners := map[string]func(int64) error{
		"table1": runTable1,
		"fig6":   runFig6,
		"fig8":   runFig8,
		"fig10":  runFig10,
		"fig12a": func(s int64) error { return runSweep("Fig. 12(a) — no shielding", s, magnetics.EnvQuiet, false) },
		"fig13":  runFig13,
		"fig12b": func(s int64) error { return runSweep("Fig. 12(b) — Mu-metal shielding", s, magnetics.EnvQuiet, true) },
		"fig14a": func(s int64) error {
			return runSweep("Fig. 14(a) — near a computer", s, magnetics.EnvNearComputer, false)
		},
		"fig14b":         func(s int64) error { return runSweep("Fig. 14(b) — in a car", s, magnetics.EnvCar, false) },
		"fig15":          runFig15,
		"table4":         runTable4,
		"tube":           runTube,
		"unconventional": runUnconventional,
		"adaptive":       runAdaptive,
		"dualmic":        runDualMic,
		"baseline":       runBaseline,
		"envs":           runEnvs,
		"drift":          runDrift,
		"stream":         runStream,
	}
	if exp == "all" {
		order := []string{
			"table1", "fig6", "fig8", "fig10", "fig12a", "fig12b",
			"fig13", "fig14a", "fig14b", "fig15", "table4", "tube",
			"unconventional", "adaptive", "dualmic", "baseline", "envs",
			"drift", "stream",
		}
		for _, name := range order {
			if err := runners[name](seed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r(seed)
}

func runTable1(seed int64) error {
	fmt.Println("== Table I — speaker-identity verification FAR ==")
	rows, err := experiment.RunTableI(experiment.TableIConfig{Seed: seed + 3, UBMComponents: 32})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runFig6(seed int64) error {
	fmt.Println("== Fig. 6 — pilot spectrogram ridge while moving ==")
	pts, err := experiment.RunFig6(seed)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("  t=%5.2f s  peak=%6.0f Hz  mag=%7.1f\n", p.TimeSec, p.PeakHz, p.Magnitude)
	}
	return nil
}

func runFig8(seed int64) error {
	fmt.Println("== Fig. 8 — PCA of mouth vs earphone sound fields ==")
	pts, err := experiment.RunFig8(seed, 40)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("  %-9s %8.3f %8.3f\n", p.Class, p.PC1, p.PC2)
	}
	return nil
}

func runFig10(int64) error {
	fmt.Println("== Fig. 10 — polar magnetic field of the Logitech LS21 ==")
	pts := experiment.RunFig10(0)
	for _, p := range pts {
		fmt.Printf("  %3.0f°  %6.1f µT\n", p.AngleDeg, p.FieldUT)
	}
	fmt.Printf("  peak %.1f µT (paper window 30–210 µT)\n", experiment.MaxField(pts))
	return nil
}

func runSweep(title string, seed int64, env magnetics.EnvironmentKind, shielded bool) error {
	fmt.Printf("== %s ==\n", title)
	rows, err := experiment.RunDistanceSweep(experiment.DistanceSweepConfig{
		Seed:        seed,
		Environment: env,
		Shielded:    shielded,
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runFig13(int64) error {
	fmt.Println("== Fig. 13 — bare vs shielded field magnitude ==")
	for _, p := range experiment.RunFig13() {
		fmt.Printf("  %4.0f cm: bare %8.1f µT   shielded %6.1f µT\n", p.DistanceCM, p.BareUT, p.ShieldedUT)
	}
	return nil
}

func runFig15(seed int64) error {
	fmt.Println("== Fig. 15 — authentication time comparison ==")
	rows, err := experiment.RunTiming(experiment.TimingConfig{Users: 4, TrialsPerUser: 3, Seed: seed})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runTable4(seed int64) error {
	fmt.Println("== Table IV battery — 25 loudspeakers at 5 cm ==")
	rows, err := experiment.RunSpeakerBattery(seed)
	if err != nil {
		return err
	}
	detected := 0
	for _, r := range rows {
		if r.Detected {
			detected++
		}
		fmt.Println(" ", r)
	}
	fmt.Printf("  => %d/%d detected\n", detected, len(rows))
	return nil
}

func runTube(seed int64) error {
	fmt.Println("== §VII — sound-tube attacks ==")
	rows, err := experiment.RunSoundTube(seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runUnconventional(seed int64) error {
	fmt.Println("== §VII — unconventional loudspeakers ==")
	rows, err := experiment.RunUnconventional(seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runAdaptive(seed int64) error {
	fmt.Println("== §VII — adaptive thresholding under EMF ==")
	rows, err := experiment.RunAdaptiveThresholding(seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runDualMic(seed int64) error {
	fmt.Println("== §VII — dual-microphone extension (short sweep + SLD) ==")
	rows, err := experiment.RunDualMic(seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runBaseline(seed int64) error {
	fmt.Println("== acoustic-only baseline vs physical stages ==")
	rows, err := experiment.RunBaselineComparison(seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}

func runEnvs(seed int64) error {
	fmt.Println("== ambient environment statistics ==")
	rows, err := experiment.SummarizeEnvironments(seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  %-14s mean %5.1f µT  swing %5.1f µT\n", r.Kind, r.MeanUT, r.SwingUT)
	}
	return nil
}
