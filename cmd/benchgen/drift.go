package main

import (
	"encoding/json"
	"fmt"
	"os"

	"voiceguard/internal/experiment"
)

// runDrift prints the attack-matrix drift wave: per-series PSI/KS for a
// genuine control wave and a mixed replay+imitation wave, each against a
// pinned genuine baseline.
func runDrift(seed int64) error {
	res, err := experiment.RunDriftWave(seed)
	if err != nil {
		return err
	}
	fmt.Printf("Evidence drift — attack matrix as a traffic wave (alert PSI > %.2f)\n", res.AlertPSI)
	for _, row := range res.Series {
		fmt.Println(" ", row)
	}
	fmt.Printf("  genuine wave alerts: %v\n", res.GenuineAlertStages)
	fmt.Printf("  attack wave alerts:  %v\n", res.AttackAlertStages)
	return nil
}

// driftReportDoc is the drift-report.json schema CI archives.
type driftReportDoc struct {
	Seed               int64                        `json:"seed"`
	AlertPSI           float64                      `json:"alert_psi"`
	Baseline           int                          `json:"baseline_sessions"`
	GenuineWave        int                          `json:"genuine_sessions"`
	AttackWave         int                          `json:"attack_sessions"`
	Series             []experiment.DriftWaveSeries `json:"series"`
	GenuineAlertStages []string                     `json:"genuine_alert_stages"`
	AttackAlertStages  []string                     `json:"attack_alert_stages"`
}

// writeDriftJSON runs the drift wave, writes the report, and fails when
// the separation the observability layer promises does not hold: the
// genuine control wave must alert on no stage, the attack wave on at
// least two.
func writeDriftJSON(path string, seed int64) error {
	res, err := experiment.RunDriftWave(seed)
	if err != nil {
		return err
	}
	doc := driftReportDoc{
		Seed:               seed,
		AlertPSI:           res.AlertPSI,
		Baseline:           res.Baseline,
		GenuineWave:        res.GenuineWave,
		AttackWave:         res.AttackWave,
		Series:             res.Series,
		GenuineAlertStages: res.GenuineAlertStages,
		AttackAlertStages:  res.AttackAlertStages,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d series)\n", path, len(doc.Series))
	if len(res.GenuineAlertStages) != 0 {
		return fmt.Errorf("drift wave: genuine control wave alerted on %v", res.GenuineAlertStages)
	}
	if len(res.AttackAlertStages) < 2 {
		return fmt.Errorf("drift wave: attack wave alerted on %d stage(s) %v, want >= 2",
			len(res.AttackAlertStages), res.AttackAlertStages)
	}
	return nil
}
