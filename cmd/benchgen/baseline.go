package main

// -bench-baseline mode: after writing fresh -bench-json rows, compare
// them against a committed baseline file and fail on hot-path
// regressions. Allocation counts on the micro rows are deterministic
// (averaged over many iterations with no concurrency), so they gate
// strictly; wall times gate loosely, since CI machines vary.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// nsSlack is the multiplicative headroom on ns/op before a row counts
// as regressed. Wide on purpose: the gate exists to catch order-of-
// magnitude slowdowns (a dropped fast path, an accidental O(n²)), not
// scheduler jitter between CI hosts.
const nsSlack = 2.5

// allocSlack is the fractional headroom on allocs/op for rows that are
// not deterministic micro benchmarks (experiment and concurrent rows
// allocate through goroutines and one-shot setup, so exact counts
// wobble).
const allocSlack = 0.10

// nsExempt lists rows whose ns/op is not compared against the baseline
// because the row's workload changed shape between PRs; the allocation
// gate still applies, since the scored code path itself is unchanged.
// PR 8 moved the micro/gmm rows from well-separated synthetic blobs to
// the production-shaped MFCC mixture (the blobs let the exact path's
// exp underflow early-out, understating its real cost), so the
// BENCH_pr6.json wall time for this row no longer describes the same
// work; BENCH_pr8.json is its ns reference going forward.
var nsExempt = map[string]bool{
	"micro/gmm.MeanLogLikelihood": true,
}

// compareBaseline gates fresh rows against a baseline file. Rows absent
// from the baseline pass (new benchmarks are not regressions); rows
// absent from the fresh run are reported, so a renamed benchmark cannot
// silently drop out of the gate.
func compareBaseline(fresh []benchRow, basePath string) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base []benchRow
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decoding baseline %s: %w", basePath, err)
	}
	byName := map[string]benchRow{}
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var problems []string
	for _, b := range base {
		f, ok := byName[b.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but missing from this run", b.Name))
			continue
		}
		allowedAllocs := b.AllocsPerOp
		if !strings.HasPrefix(b.Name, "micro/") {
			allowedAllocs += uint64(float64(b.AllocsPerOp)*allocSlack) + 8
		}
		if f.AllocsPerOp > allowedAllocs {
			problems = append(problems, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d (allowed %d)",
				b.Name, f.AllocsPerOp, b.AllocsPerOp, allowedAllocs))
		}
		if b.NsPerOp > 0 && !nsExempt[b.Name] && f.NsPerOp > b.NsPerOp*nsSlack {
			problems = append(problems, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op ×%.1f",
				b.Name, f.NsPerOp, b.NsPerOp, nsSlack))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("benchmark regressions vs %s:\n  %s", basePath, strings.Join(problems, "\n  "))
	}
	fmt.Printf("baseline check passed against %s (%d rows compared)\n", basePath, len(base))
	return nil
}
