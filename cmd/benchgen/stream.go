package main

// -exp stream: the streaming early-exit latency sweep — the attack
// matrix served to one server over HTTP/JSON and the binary streaming
// protocol, comparing time to decision.

import (
	"fmt"

	"voiceguard/internal/experiment"
)

func runStream(seed int64) error {
	fmt.Println("== Streaming early exit — time to decision, HTTP vs stream ==")
	rows, err := experiment.RunStreamEarlyExit(seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	return nil
}
