package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFig10Fast(t *testing.T) {
	// fig10 is pure arithmetic — a cheap end-to-end check of the CLI
	// plumbing.
	if err := run("fig10", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunEnvs(t *testing.T) {
	if err := run("envs", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6(t *testing.T) {
	if err := run("fig6", 1); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureReportsPerIteration(t *testing.T) {
	calls := 0
	row, err := measure("x", 4, func() error { calls++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("fn ran %d times, want 4", calls)
	}
	if row.Name != "x" || row.NsPerOp <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
}

func TestWriteBenchJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Table I experiment")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeBenchJSON(path, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []benchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("output is not a benchRow array: %v", err)
	}
	if len(rows) < 5 {
		t.Fatalf("only %d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate row %q", r.Name)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"micro/features.Extract", "experiment/table1"} {
		if !seen[want] {
			t.Fatalf("missing row %q", want)
		}
	}
}
