package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFig10Fast(t *testing.T) {
	// fig10 is pure arithmetic — a cheap end-to-end check of the CLI
	// plumbing.
	if err := run("fig10", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunEnvs(t *testing.T) {
	if err := run("envs", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6(t *testing.T) {
	if err := run("fig6", 1); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureReportsPerIteration(t *testing.T) {
	calls := 0
	row, err := measure("x", 4, func() error { calls++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("fn ran %d times, want 4", calls)
	}
	if row.Name != "x" || row.NsPerOp <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
}

func TestWriteBenchJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Table I experiment")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := writeBenchJSON(path, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []benchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("output is not a benchRow array: %v", err)
	}
	if len(rows) < 5 {
		t.Fatalf("only %d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate row %q", r.Name)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{
		"micro/features.Extract", "experiment/table1",
		"micro/gmm.TopCShortlist", "micro/gmm.ScoringModelCompile",
		"batch/asv.BatchedVerify",
	} {
		if !seen[want] {
			t.Fatalf("missing row %q", want)
		}
	}
}

func TestCompareBaseline(t *testing.T) {
	base := []benchRow{
		{Name: "micro/x", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "experiment/y", NsPerOp: 1000, AllocsPerOp: 100},
	}
	writeBase := func(t *testing.T) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "base.json")
		data, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("pass within slack", func(t *testing.T) {
		fresh := []benchRow{
			{Name: "micro/x", NsPerOp: 180, AllocsPerOp: 2},
			{Name: "experiment/y", NsPerOp: 2000, AllocsPerOp: 105},
			{Name: "micro/new", NsPerOp: 5, AllocsPerOp: 0},
		}
		if err := compareBaseline(fresh, writeBase(t)); err != nil {
			t.Fatalf("unexpected regression: %v", err)
		}
	})
	t.Run("micro allocs gate strictly", func(t *testing.T) {
		fresh := []benchRow{
			{Name: "micro/x", NsPerOp: 100, AllocsPerOp: 3},
			{Name: "experiment/y", NsPerOp: 1000, AllocsPerOp: 100},
		}
		if err := compareBaseline(fresh, writeBase(t)); err == nil {
			t.Fatal("micro alloc regression accepted")
		}
	})
	t.Run("ns regression beyond slack fails", func(t *testing.T) {
		fresh := []benchRow{
			{Name: "micro/x", NsPerOp: 300, AllocsPerOp: 2},
			{Name: "experiment/y", NsPerOp: 1000, AllocsPerOp: 100},
		}
		if err := compareBaseline(fresh, writeBase(t)); err == nil {
			t.Fatal("ns regression accepted")
		}
	})
	t.Run("ns-exempt row skips the wall-time gate but not allocs", func(t *testing.T) {
		exemptBase := []benchRow{{Name: "micro/gmm.MeanLogLikelihood", NsPerOp: 100, AllocsPerOp: 3}}
		path := filepath.Join(t.TempDir(), "base.json")
		data, err := json.Marshal(exemptBase)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		slow := []benchRow{{Name: "micro/gmm.MeanLogLikelihood", NsPerOp: 100000, AllocsPerOp: 3}}
		if err := compareBaseline(slow, path); err != nil {
			t.Fatalf("exempt row's wall time was gated: %v", err)
		}
		leaky := []benchRow{{Name: "micro/gmm.MeanLogLikelihood", NsPerOp: 100, AllocsPerOp: 4}}
		if err := compareBaseline(leaky, path); err == nil {
			t.Fatal("exempt row's alloc regression accepted")
		}
	})
	t.Run("missing row fails", func(t *testing.T) {
		fresh := []benchRow{{Name: "micro/x", NsPerOp: 100, AllocsPerOp: 2}}
		if err := compareBaseline(fresh, writeBase(t)); err == nil {
			t.Fatal("dropped baseline row accepted")
		}
	})
}
