package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFig10Fast(t *testing.T) {
	// fig10 is pure arithmetic — a cheap end-to-end check of the CLI
	// plumbing.
	if err := run("fig10", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunEnvs(t *testing.T) {
	if err := run("envs", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6(t *testing.T) {
	if err := run("fig6", 1); err != nil {
		t.Fatal(err)
	}
}
