// Enrollment and human-impostor defense (Table I workflow): train the
// ASV back-end on a background population, enroll a five-user panel on
// digit passphrases, then attack each user with human imitators at three
// skill levels and with a machine voice-conversion attack. The example
// shows the division of labor the paper describes: the ASV stage stops
// human imitators, while the conversion attack — which passes ASV —
// must be (and is) stopped by the machine-attack stages.
//
//	go run ./examples/enrollment
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/speech"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(31))

	// 1. Background population → UBM.
	background, err := backgroundCorpus(31)
	if err != nil {
		return err
	}
	verifier, err := core.TrainSpeakerVerifier(background, core.SpeakerVerifierConfig{Seed: 31})
	if err != nil {
		return err
	}

	// 2. Enroll a five-user panel, each with their own passphrase.
	panel := speech.NewDistinctRoster(5, 32, 1.2).Profiles()
	passphrases := make(map[string]string)
	for _, user := range panel {
		pass := fmt.Sprintf("%06d", 100000+rng.Intn(900000))
		passphrases[user.Name] = pass
		synth, err := speech.NewSynthesizer(user, rng)
		if err != nil {
			return err
		}
		var session []*audio.Signal
		for k := 0; k < 5; k++ {
			utt, err := synth.SayDigits(pass)
			if err != nil {
				return err
			}
			session = append(session, utt)
		}
		if err := verifier.Enroll(user.Name, [][]*audio.Signal{session}); err != nil {
			return err
		}
		fmt.Printf("enrolled %s with passphrase %s\n", user.Name, pass)
	}

	// 3. Calibrate each user's threshold on fresh genuine attempts, then
	//    attack with imitators.
	fmt.Println("\nhuman imitation attacks (ASV stage):")
	skills := []speech.ImitationSkill{
		speech.ImitatorNaive, speech.ImitatorPracticed, speech.ImitatorProfessional,
	}
	var attacks, stopped int
	for i, user := range panel {
		pass := passphrases[user.Name]
		synth, err := speech.NewSynthesizer(user, rng)
		if err != nil {
			return err
		}
		minGenuine := 1e18
		for k := 0; k < 3; k++ {
			utt, err := synth.SayDigits(pass)
			if err != nil {
				return err
			}
			s, err := verifier.Score(user.Name, utt)
			if err != nil {
				return err
			}
			if s < minGenuine {
				minGenuine = s
			}
		}
		verifier.Threshold = minGenuine

		impostor := panel[(i+1)%len(panel)]
		for _, skill := range skills {
			mimic := speech.Imitate(impostor, user, skill, rng)
			msynth, err := speech.NewSynthesizer(mimic, rng)
			if err != nil {
				return err
			}
			utt, err := msynth.SayDigits(pass)
			if err != nil {
				return err
			}
			res := verifier.Verify(user.Name, utt)
			attacks++
			verdict := "!! ACCEPTED"
			if !res.Pass {
				verdict = "rejected"
				stopped++
			}
			fmt.Printf("  %s imitating %s (skill %.2f): %s (score margin %+.3f)\n",
				impostor.Name, user.Name, float64(skill), verdict, res.Score)
		}
	}
	fmt.Printf("=> %d/%d imitation attacks stopped by ASV\n", stopped, attacks)

	// 4. The attack ASV cannot stop: high-quality voice conversion. Show
	//    that it passes the ASV stage but dies in the machine-attack
	//    cascade.
	fmt.Println("\nvoice-conversion attack (machine stages):")
	target := panel[0]
	attacker := speech.RandomProfile("mallory", rng)
	converted, err := speech.Convert(attacker, target, speech.ConverterAdvanced, passphrases[target.Name], rng)
	if err != nil {
		return err
	}
	verifier.Threshold = 0 // illustrative: even a permissive ASV
	asv := verifier.Verify(target.Name, converted)
	fmt.Printf("  ASV alone on converted voice: pass=%v (score %+.3f) — spectral checks are not enough\n",
		asv.Pass, asv.Score)

	system, err := core.BuildSystem(core.SystemConfig{FieldSeed: 33})
	if err != nil {
		return err
	}
	system.AttachIdentity(verifier)
	session, err := attack.Morph(attacker, target, speech.ConverterAdvanced, device.Catalog()[4],
		attack.Scenario{ClaimedUser: target.Name, Seed: 34, Passphrase: passphrases[target.Name]})
	if err != nil {
		return err
	}
	decision, err := system.Verify(session)
	if err != nil {
		return err
	}
	fmt.Printf("  full pipeline on the same attack: %v\n", decision)
	return nil
}

func backgroundCorpus(seed int64) (map[string][][]*audio.Signal, error) {
	roster := speech.NewRoster(8, seed+100)
	utts, err := roster.Generate(speech.CorpusConfig{
		Sessions: 2, UtterancesPerSession: 2, Digits: 6,
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][][]*audio.Signal)
	for spk, us := range speech.BySpeaker(utts) {
		perSession := map[int][]*audio.Signal{}
		maxSess := 0
		for _, u := range us {
			perSession[u.Session] = append(perSession[u.Session], u.Audio)
			if u.Session > maxSess {
				maxSess = u.Session
			}
		}
		for s := 0; s <= maxSess; s++ {
			out[spk] = append(out[spk], perSession[s])
		}
	}
	return out, nil
}
