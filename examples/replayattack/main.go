// Replay-attack gallery: the full Table IV story. An attacker records the
// victim once, then tries every loudspeaker in the 25-unit catalog (plus
// the §VII electrostatic and piezo speakers) at the operating distance.
// The example prints which pipeline stage stops each unit.
//
//	go run ./examples/replayattack
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/speech"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system, err := core.BuildSystem(core.SystemConfig{FieldSeed: 11})
	if err != nil {
		return err
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(3)))
	recording, err := attack.Record(victim, "472913", 3)
	if err != nil {
		return err
	}

	units := device.Catalog()
	units = append(units, device.Electrostatic(), device.Piezoelectric())

	fmt.Println("replaying a stolen recording through every loudspeaker at 5 cm:")
	var caught int
	for i, spk := range units {
		session, err := attack.Replay(recording, spk, attack.Scenario{
			Distance: 0.05,
			Seed:     int64(100 + i),
		})
		if err != nil {
			return err
		}
		decision, err := system.Verify(session)
		if err != nil {
			return err
		}
		verdict := "!! ACCEPTED"
		if !decision.Accepted {
			verdict = fmt.Sprintf("rejected at %v", decision.FailedStage)
			caught++
		}
		fmt.Printf("  %-48s %-20s %s\n", spk.Maker+" "+spk.Model, spk.Class, verdict)
	}
	fmt.Printf("\n%d/%d attacks stopped\n", caught, len(units))
	return nil
}
