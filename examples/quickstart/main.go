// Quickstart: build the VoiceGuard pipeline, run one genuine session and
// one replay attack through it, and print the stage-by-stage verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/speech"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the anti-spoofing pipeline (stages 1-3). The sound-field
	//    SVM trains itself on synthetic mouth/machine sweeps.
	system, err := core.BuildSystem(core.SystemConfig{FieldSeed: 42})
	if err != nil {
		return err
	}

	// 2. A user with a voice.
	victim := speech.RandomProfile("alice", rand.New(rand.NewSource(7)))

	// 3. Genuine attempt: alice speaks her passphrase with the phone
	//    swept in front of her mouth at ~6 cm.
	genuine, err := attack.Genuine(victim, attack.Scenario{Seed: 1})
	if err != nil {
		return err
	}
	decision, err := system.Verify(genuine)
	if err != nil {
		return err
	}
	report("genuine attempt", decision)

	// 4. Replay attack: an attacker recorded alice in public and replays
	//    the recording through a PC loudspeaker at the same distance.
	recording, err := attack.Record(victim, "472913", 2)
	if err != nil {
		return err
	}
	replay, err := attack.Replay(recording, device.Catalog()[0], attack.Scenario{Seed: 2})
	if err != nil {
		return err
	}
	decision, err = system.Verify(replay)
	if err != nil {
		return err
	}
	report("replay attack (Logitech LS21)", decision)
	return nil
}

func report(title string, d core.Decision) {
	fmt.Printf("\n%s → %v\n", title, d)
	for _, st := range d.Stages {
		status := "PASS"
		if !st.Pass {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %-30s %s\n", status, st.Stage, st.Detail)
	}
}
