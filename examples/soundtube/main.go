// Sound-tube attack (§VII): the attacker knows the magnetometer defense
// and tries to defeat it by keeping the loudspeaker far away, piping the
// sound to the phone through plastic CAB tubes of various sizes. This
// example shows why the attack fails: the magnetometer indeed stays
// quiet, but the tube cannot replicate a human mouth's sound field (comb
// resonances + wrong aperture), so the sound-field SVM rejects it.
//
//	go run ./examples/soundtube
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/speech"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system, err := core.BuildSystem(core.SystemConfig{FieldSeed: 21})
	if err != nil {
		return err
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(5)))
	recording, err := attack.Record(victim, "472913", 5)
	if err != nil {
		return err
	}
	speaker := device.Catalog()[0] // Logitech LS21 drives the tube

	tubes := []*soundfield.Tube{
		{OpeningRadius: 0.008, Length: 0.15, LevelAt1m: 62},
		{OpeningRadius: 0.010, Length: 0.20, LevelAt1m: 62},
		{OpeningRadius: 0.012, Length: 0.25, LevelAt1m: 62},
		{OpeningRadius: 0.012, Length: 0.30, LevelAt1m: 62},
		{OpeningRadius: 0.015, Length: 0.35, LevelAt1m: 62},
		{OpeningRadius: 0.018, Length: 0.40, LevelAt1m: 62},
		{OpeningRadius: 0.020, Length: 0.45, LevelAt1m: 62},
	}
	fmt.Println("sound-tube attacks (speaker one tube-length away from the phone):")
	for i, tube := range tubes {
		session, err := attack.SoundTube(recording, speaker, tube, attack.Scenario{Seed: int64(i + 1)})
		if err != nil {
			return err
		}
		decision, err := system.Verify(session)
		if err != nil {
			return err
		}
		// Show that the magnetometer alone would have been fooled.
		mag := core.Measure(session.Gesture.Mag)
		verdict := "!! ACCEPTED"
		if !decision.Accepted {
			verdict = fmt.Sprintf("rejected at %v", decision.FailedStage)
		}
		fmt.Printf("  %-22s magnetic swing %4.1f µT (quiet)  →  %s\n",
			tube.Name(), mag.Swing, verdict)
	}
	return nil
}
