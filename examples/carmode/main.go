// Adaptive thresholding in high-EMF environments (§VII): using the
// defense on a car's front seat. With the lab-calibrated fixed
// thresholds, the cabin's electromagnetic interference floods the
// magnetometer stage with false alarms; after a two-second ambient
// calibration the detector re-centers its thresholds and both genuine
// users and attacks are judged correctly again.
//
//	go run ./examples/carmode
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/experiment"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/speech"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	victim := speech.RandomProfile("driver", rand.New(rand.NewSource(8)))
	recording, err := attack.Record(victim, "472913", 8)
	if err != nil {
		return err
	}
	spk := device.Catalog()[4] // Bose SoundLink Mini

	// Sessions in the car: 6 genuine, 6 replay attacks.
	var genuine, attacks []*core.SessionData
	for seed := int64(0); seed < 6; seed++ {
		g, err := attack.Genuine(victim, attack.Scenario{
			Environment: magnetics.EnvCar, Seed: 300 + seed,
		})
		if err != nil {
			return err
		}
		genuine = append(genuine, g)
		a, err := attack.Replay(recording, spk, attack.Scenario{
			Environment: magnetics.EnvCar, Seed: 400 + seed,
		})
		if err != nil {
			return err
		}
		attacks = append(attacks, a)
	}

	evaluate := func(label string, sys *core.System) error {
		var frr, far int
		for _, s := range genuine {
			d, err := sys.Verify(s)
			if err != nil {
				return err
			}
			if !d.Accepted {
				frr++
			}
		}
		for _, s := range attacks {
			d, err := sys.Verify(s)
			if err != nil {
				return err
			}
			if d.Accepted {
				far++
			}
		}
		fmt.Printf("%-28s genuine rejected %d/%d, attacks accepted %d/%d (Mt=%.1f µT, βt=%.0f µT/s)\n",
			label, frr, len(genuine), far, len(attacks), sys.Speaker.Mt, sys.Speaker.Bt)
		return nil
	}

	// Fixed lab thresholds.
	fixed, err := core.BuildSystem(core.SystemConfig{FieldSeed: 77})
	if err != nil {
		return err
	}
	if err := evaluate("fixed lab thresholds:", fixed); err != nil {
		return err
	}

	// Calibrated: hold the phone still for two seconds first.
	calibrated, err := core.BuildSystem(core.SystemConfig{FieldSeed: 77})
	if err != nil {
		return err
	}
	ambient, err := experiment.AmbientTrace(magnetics.EnvCar, 9)
	if err != nil {
		return err
	}
	calibrated.CalibrateEnvironment(ambient)
	return evaluate("after ambient calibration:", calibrated)
}
