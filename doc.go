// Package voiceguard is a from-scratch Go reproduction of "You Can Hear
// But You Cannot Steal: Defending against Voice Impersonation Attacks on
// Smartphones" (Chen et al., IEEE ICDCS 2017).
//
// The library lives under internal/: the core pipeline (internal/core)
// cascades sound-source distance verification, sound-field verification,
// magnetometer-based loudspeaker detection and GMM/ISV speaker
// verification, on top of physics simulation substrates for everything
// the paper's hardware testbed provided (speech synthesis, acoustic
// ranging, sound fields, magnetics, phone sensors). See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record;
// bench_test.go regenerates every table and figure.
package voiceguard
