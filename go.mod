module voiceguard

go 1.22
