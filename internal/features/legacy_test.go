package features

// legacyExtract is the seed (pre-plan) MFCC front-end kept in test code:
// per-call filterbank/window/DCT builds, a full complex FFT per frame,
// one row allocation per frame, serial loop. The planned Extract is
// checked against it within float tolerance and benchmarked against it.

import (
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
	"voiceguard/internal/stats"
)

func legacyExtract(s *audio.Signal, cfg MFCCConfig) ([][]float64, error) {
	if err := cfg.validate(s.Rate); err != nil {
		return nil, err
	}
	frameLen := int(cfg.FrameLength * s.Rate)
	frameShift := int(cfg.FrameShift * s.Rate)
	samples := s.Samples
	if cfg.PreEmphasis > 0 {
		samples = audio.PreEmphasis(samples, cfg.PreEmphasis)
	}
	frames := audio.Frame(samples, frameLen, frameShift)
	if len(frames) < 2 {
		return nil, ErrTooShort
	}
	fftSize := dsp.NextPow2(frameLen)
	high := cfg.HighFreq
	if stats.IsZero(high) {
		high = s.Rate / 2
	}
	bank := melFilterbank(cfg.NumFilters, fftSize, s.Rate, cfg.LowFreq, high)
	win, err := dsp.WindowHamming.Coefficients(frameLen)
	if err != nil {
		return nil, err
	}
	dct := dctMatrix(cfg.NumCoeffs, cfg.NumFilters)

	base := make([][]float64, len(frames))
	buf := make([]complex128, fftSize)
	logFB := make([]float64, cfg.NumFilters)
	for fi, frame := range frames {
		for i := 0; i < frameLen; i++ {
			buf[i] = complex(frame[i]*win[i], 0)
		}
		for i := frameLen; i < fftSize; i++ {
			buf[i] = 0
		}
		spec := dsp.FFT(buf)
		power := dsp.PowerSpectrum(spec[:fftSize/2+1])
		var energy float64
		for _, v := range frame {
			energy += v * v
		}
		logE := math.Log(energy + 1e-12)
		for m, filt := range bank {
			var acc float64
			for _, tap := range filt {
				acc += power[tap.bin] * tap.weight
			}
			logFB[m] = math.Log(acc + 1e-12)
		}
		row := make([]float64, cfg.NumCoeffs+1)
		for k := 0; k < cfg.NumCoeffs; k++ {
			var acc float64
			for m := 0; m < cfg.NumFilters; m++ {
				acc += dct[k][m] * logFB[m]
			}
			row[k] = acc
		}
		row[cfg.NumCoeffs] = logE
		base[fi] = row
	}
	out := base
	if cfg.Deltas {
		deltas := Deltas(base, 2)
		out = make([][]float64, len(base))
		for i := range base {
			row := make([]float64, 0, 2*len(base[i]))
			row = append(row, base[i]...)
			row = append(row, deltas[i]...)
			out[i] = row
		}
	}
	if cfg.CMVN {
		ApplyCMVN(out)
	}
	return out, nil
}

func benchUtterance(tb testing.TB, seconds float64) *audio.Signal {
	tb.Helper()
	rng := rand.New(rand.NewSource(17))
	n := int(seconds * 16000)
	samples := make([]float64, n)
	for i := range samples {
		// Speech-ish: a few harmonics plus noise, so the filterbank sees
		// non-degenerate energy.
		t := float64(i) / 16000
		samples[i] = 0.5*math.Sin(2*math.Pi*180*t) +
			0.3*math.Sin(2*math.Pi*360*t) +
			0.1*rng.NormFloat64()
	}
	return &audio.Signal{Rate: 16000, Samples: samples}
}

// TestExtractMatchesLegacy compares the planned front-end against the
// seed implementation across configurations (deltas/CMVN on and off).
func TestExtractMatchesLegacy(t *testing.T) {
	sig := benchUtterance(t, 1.2)
	for _, cfg := range []MFCCConfig{
		DefaultMFCCConfig(),
		{FrameLength: 0.025, FrameShift: 0.010, NumFilters: 24, NumCoeffs: 19,
			LowFreq: 60, PreEmphasis: 0.97},
		{FrameLength: 0.020, FrameShift: 0.010, NumFilters: 20, NumCoeffs: 12,
			LowFreq: 100, HighFreq: 6000, Deltas: true},
	} {
		want, err := legacyExtract(sig, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Extract(sig, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cfg %+v: %d rows, want %d", cfg, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("cfg %+v row %d: width %d, want %d", cfg, i, len(got[i]), len(want[i]))
			}
			for d := range want[i] {
				if math.Abs(got[i][d]-want[i][d]) > 1e-7*(1+math.Abs(want[i][d])) {
					t.Fatalf("cfg %+v row %d dim %d: planned %v vs legacy %v",
						cfg, i, d, got[i][d], want[i][d])
				}
			}
		}
	}
}

// TestExtractDeterministic pins the fan-out determinism contract: repeat
// runs must be bit-identical. (-cpu=1,4 in CI varies the worker count.)
func TestExtractDeterministic(t *testing.T) {
	sig := benchUtterance(t, 0.8)
	cfg := DefaultMFCCConfig()
	a, err := Extract(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] { //lint:allow floatcmp determinism contract: repeat runs must be bit-identical
				t.Fatalf("row %d dim %d: %v != %v", i, d, a[i][d], b[i][d])
			}
		}
	}
}

// BenchmarkExtractLegacy is the seed-path twin of BenchmarkExtract in
// mfcc_test.go (same signal and config), so the pair reads directly as
// before/after.
func BenchmarkExtractLegacy(b *testing.B) {
	s := toneSignal(300, 16000, 2)
	cfg := DefaultMFCCConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacyExtract(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
