package features

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/speech"
)

func toneSignal(freq, rate, dur float64) *audio.Signal {
	s := audio.NewSignal(dur, rate)
	for i := range s.Samples {
		s.Samples[i] = 0.5 * math.Sin(2*math.Pi*freq*float64(i)/rate)
	}
	return s
}

func TestMelScaleRoundTrip(t *testing.T) {
	for _, hz := range []float64{0, 100, 700, 1000, 4000, 8000} {
		back := InvMelScale(MelScale(hz))
		if math.Abs(back-hz) > 1e-6*(1+hz) {
			t.Errorf("mel round trip %v -> %v", hz, back)
		}
	}
	// Mel scale is monotone.
	prev := -1.0
	for hz := 0.0; hz < 8000; hz += 100 {
		m := MelScale(hz)
		if m <= prev {
			t.Fatalf("mel not monotone at %v Hz", hz)
		}
		prev = m
	}
	// 1000 Hz ≈ 1000 mel by definition.
	if m := MelScale(1000); math.Abs(m-999.99) > 1 {
		t.Errorf("MelScale(1000) = %v, want ≈1000", m)
	}
}

func TestExtractShape(t *testing.T) {
	s := toneSignal(300, 16000, 0.5)
	cfg := DefaultMFCCConfig()
	feats, err := Extract(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 0.5 s at 10 ms shift with 25 ms window → ~48 frames.
	if len(feats) < 40 || len(feats) > 50 {
		t.Errorf("frames = %d", len(feats))
	}
	wantDim := 2 * (cfg.NumCoeffs + 1)
	for _, row := range feats {
		if len(row) != wantDim {
			t.Fatalf("dim = %d, want %d", len(row), wantDim)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite feature value")
			}
		}
	}
}

func TestExtractNoDeltasNoCMVN(t *testing.T) {
	s := toneSignal(300, 16000, 0.3)
	cfg := DefaultMFCCConfig()
	cfg.Deltas = false
	cfg.CMVN = false
	feats, err := Extract(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats[0]) != cfg.NumCoeffs+1 {
		t.Errorf("dim = %d, want %d", len(feats[0]), cfg.NumCoeffs+1)
	}
}

func TestExtractCMVNNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := audio.NewSignal(1, 16000)
	for i := range s.Samples {
		s.Samples[i] = 0.3 * rng.NormFloat64()
	}
	feats, err := Extract(s, DefaultMFCCConfig())
	if err != nil {
		t.Fatal(err)
	}
	dim := len(feats[0])
	for d := 0; d < dim; d++ {
		var mean, varsum float64
		for _, row := range feats {
			mean += row[d]
		}
		mean /= float64(len(feats))
		for _, row := range feats {
			varsum += (row[d] - mean) * (row[d] - mean)
		}
		varsum /= float64(len(feats))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("dim %d mean = %v", d, mean)
		}
		if math.Abs(varsum-1) > 1e-6 {
			t.Errorf("dim %d var = %v", d, varsum)
		}
	}
}

func TestExtractErrors(t *testing.T) {
	short := audio.NewSignal(0.01, 16000)
	if _, err := Extract(short, DefaultMFCCConfig()); !errors.Is(err, ErrTooShort) {
		t.Errorf("short err = %v, want ErrTooShort", err)
	}
	s := toneSignal(300, 16000, 0.3)
	bad := []MFCCConfig{
		{FrameLength: 0, FrameShift: 0.01, NumFilters: 24, NumCoeffs: 19},
		{FrameLength: 0.025, FrameShift: 0, NumFilters: 24, NumCoeffs: 19},
		{FrameLength: 0.025, FrameShift: 0.01, NumFilters: 1, NumCoeffs: 0},
		{FrameLength: 0.025, FrameShift: 0.01, NumFilters: 24, NumCoeffs: 30},
		{FrameLength: 0.025, FrameShift: 0.01, NumFilters: 24, NumCoeffs: 19, LowFreq: 5000, HighFreq: 100},
		{FrameLength: 0.025, FrameShift: 0.01, NumFilters: 24, NumCoeffs: 19, HighFreq: 99999},
	}
	for i, cfg := range bad {
		if _, err := Extract(s, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDifferentSpeakersYieldDifferentFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := speech.RandomProfile("a", rng)
	b := speech.RandomProfile("b", rng)
	// Force a clear spectral difference for the smoke test.
	a.TractScale = 0.92
	b.TractScale = 1.15
	render := func(p speech.Profile) [][]float64 {
		synth, err := speech.NewSynthesizer(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := synth.SayDigits("123456")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultMFCCConfig()
		cfg.CMVN = false
		feats, err := Extract(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return feats
	}
	mean := func(f [][]float64) []float64 {
		m := make([]float64, len(f[0]))
		for _, row := range f {
			for d, v := range row {
				m[d] += v
			}
		}
		for d := range m {
			m[d] /= float64(len(f))
		}
		return m
	}
	ma, mb := mean(render(a)), mean(render(b))
	var dist float64
	for d := range ma {
		dist += (ma[d] - mb[d]) * (ma[d] - mb[d])
	}
	if math.Sqrt(dist) < 0.5 {
		t.Errorf("mean MFCC distance %v too small to separate speakers", math.Sqrt(dist))
	}
}

func TestDeltasOfConstantAreZero(t *testing.T) {
	feats := make([][]float64, 10)
	for i := range feats {
		feats[i] = []float64{3, -1, 7}
	}
	d := Deltas(feats, 2)
	for i, row := range d {
		for j, v := range row {
			if v != 0 {
				t.Errorf("delta[%d][%d] = %v, want 0", i, j, v)
			}
		}
	}
	if Deltas(nil, 2) != nil {
		t.Error("Deltas(nil) should be nil")
	}
}

func TestDeltasOfLinearRampAreConstant(t *testing.T) {
	feats := make([][]float64, 20)
	for i := range feats {
		feats[i] = []float64{2 * float64(i)}
	}
	d := Deltas(feats, 2)
	// Interior deltas of a slope-2 ramp are exactly 2.
	for i := 2; i < 18; i++ {
		if math.Abs(d[i][0]-2) > 1e-9 {
			t.Errorf("delta[%d] = %v, want 2", i, d[i][0])
		}
	}
}

func TestApplyCMVNEmpty(t *testing.T) {
	ApplyCMVN(nil) // must not panic
}

func BenchmarkExtract(b *testing.B) {
	s := toneSignal(300, 16000, 2)
	cfg := DefaultMFCCConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
