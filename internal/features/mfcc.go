// Package features extracts the spectral features the ASV back-end
// consumes: mel-frequency cepstral coefficients with log-energy, delta
// coefficients and cepstral mean/variance normalization — the standard
// front-end of the Spear toolchains the paper builds on.
package features

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
	"voiceguard/internal/parallel"
	"voiceguard/internal/stats"
	"voiceguard/internal/telemetry"
)

// MFCCConfig configures the MFCC front-end. The zero value is not valid;
// use DefaultMFCCConfig.
type MFCCConfig struct {
	// FrameLength is the analysis window in seconds.
	FrameLength float64
	// FrameShift is the hop in seconds.
	FrameShift float64
	// NumFilters is the mel filterbank size.
	NumFilters int
	// NumCoeffs is the number of cepstral coefficients kept (excluding C0;
	// log-energy is appended separately).
	NumCoeffs int
	// LowFreq and HighFreq bound the filterbank in Hz. HighFreq 0 means
	// Nyquist.
	LowFreq, HighFreq float64
	// PreEmphasis is the pre-emphasis coefficient (0 disables).
	PreEmphasis float64
	// Deltas appends first-order delta coefficients.
	Deltas bool
	// CMVN applies per-utterance cepstral mean/variance normalization.
	CMVN bool
}

// DefaultMFCCConfig returns the standard 19-coefficient + energy setup
// used by Spear's GMM/ISV toolchains.
func DefaultMFCCConfig() MFCCConfig {
	return MFCCConfig{
		FrameLength: 0.025,
		FrameShift:  0.010,
		NumFilters:  24,
		NumCoeffs:   19,
		LowFreq:     60,
		HighFreq:    0,
		PreEmphasis: 0.97,
		Deltas:      true,
		CMVN:        true,
	}
}

func (c *MFCCConfig) validate(rate float64) error {
	switch {
	case c.FrameLength <= 0 || c.FrameShift <= 0:
		return fmt.Errorf("features: frame length %v / shift %v must be positive", c.FrameLength, c.FrameShift)
	case c.NumFilters < 2:
		return fmt.Errorf("features: need at least 2 mel filters, have %d", c.NumFilters)
	case c.NumCoeffs < 1 || c.NumCoeffs >= c.NumFilters:
		return fmt.Errorf("features: NumCoeffs %d must be in [1, NumFilters)", c.NumCoeffs)
	case c.LowFreq < 0 || (!stats.IsZero(c.HighFreq) && c.HighFreq <= c.LowFreq):
		return fmt.Errorf("features: bad band [%v, %v]", c.LowFreq, c.HighFreq)
	case c.HighFreq > rate/2:
		return fmt.Errorf("features: HighFreq %v above Nyquist %v", c.HighFreq, rate/2)
	}
	return nil
}

// ErrTooShort is returned when the utterance has fewer than two frames.
var ErrTooShort = errors.New("features: utterance too short for analysis")

// MelScale converts Hz to mel.
func MelScale(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// InvMelScale converts mel to Hz.
func InvMelScale(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// Extract computes the MFCC matrix for the signal: one row per frame.
// Row layout: [c1..cN, logE] plus deltas of the same when cfg.Deltas.
//
// This is the planned hot path: the mel filterbank and DCT basis are
// cached per configuration, the analysis window comes from the dsp
// window cache, the spectrum runs through the cached real-input FFTPlan,
// rows share one backing allocation, and frames fan out across cores via
// internal/parallel. Rows are written by index, so output is
// bit-identical to the serial loop.
func Extract(s *audio.Signal, cfg MFCCConfig) ([][]float64, error) {
	return ExtractSpan(nil, s, cfg)
}

// ExtractSpan is Extract recording its work under span: the span (nil
// disables tracing at zero cost) gains the front-end geometry as
// attributes and one "mfcc-block" child per parallel worker block. The
// caller owns span's End; output is bit-identical to Extract.
func ExtractSpan(span *telemetry.Span, s *audio.Signal, cfg MFCCConfig) ([][]float64, error) {
	if err := cfg.validate(s.Rate); err != nil {
		return nil, err
	}
	frameLen := int(cfg.FrameLength * s.Rate)
	frameShift := int(cfg.FrameShift * s.Rate)
	samples := s.Samples
	if cfg.PreEmphasis > 0 {
		samples = audio.PreEmphasis(samples, cfg.PreEmphasis)
	}
	frames := audio.Frame(samples, frameLen, frameShift)
	if len(frames) < 2 {
		return nil, ErrTooShort
	}
	fftSize := dsp.NextPow2(frameLen)
	high := cfg.HighFreq
	if stats.IsZero(high) {
		high = s.Rate / 2
	}
	bank := cachedFilterbank(cfg.NumFilters, fftSize, s.Rate, cfg.LowFreq, high)
	win, err := analysisWindow(frameLen)
	if err != nil {
		return nil, err
	}
	dct := cachedDCT(cfg.NumCoeffs, cfg.NumFilters)

	rowW := cfg.NumCoeffs + 1
	base := sliceRows(make([]float64, len(frames)*rowW), rowW)
	plan := dsp.PlanFFT(fftSize)
	nBins := fftSize/2 + 1
	span.SetInt("frames", int64(len(frames)))
	span.SetInt("fft_size", int64(fftSize))
	span.SetInt("num_coeffs", int64(cfg.NumCoeffs))
	span.SetInt("num_filters", int64(cfg.NumFilters))
	var errMu sync.Mutex
	var frameErr error
	parallel.SpanRange(span, "mfcc-block", len(frames), func(lo, hi int) {
		// Per-block scratch: amortized across the block's frames, never
		// retained past this callback.
		xbuf := make([]float64, fftSize)
		power := make([]float64, nBins)
		logFB := make([]float64, cfg.NumFilters)
		for fi := lo; fi < hi; fi++ {
			frame := frames[fi]
			var energy float64
			for i := 0; i < frameLen; i++ {
				xbuf[i] = frame[i] * win[i]
				energy += frame[i] * frame[i]
			}
			if err := plan.RealPower(power, xbuf); err != nil {
				// Plan and buffer sizes are fixed above, so this is
				// unreachable; collected defensively.
				errMu.Lock()
				if frameErr == nil {
					frameErr = err
				}
				errMu.Unlock()
				return
			}
			for m, filt := range bank {
				var acc float64
				for _, tap := range filt {
					acc += power[tap.bin] * tap.weight
				}
				logFB[m] = math.Log(acc + 1e-12)
			}
			row := base[fi]
			for k := 0; k < cfg.NumCoeffs; k++ {
				var acc float64
				for m := 0; m < cfg.NumFilters; m++ {
					acc += dct[k][m] * logFB[m]
				}
				row[k] = acc
			}
			row[cfg.NumCoeffs] = math.Log(energy + 1e-12)
		}
	})
	if frameErr != nil {
		return nil, fmt.Errorf("features: frame spectrum: %w", frameErr)
	}
	out := base
	if cfg.Deltas {
		deltas := Deltas(base, 2)
		out = sliceRows(make([]float64, len(base)*2*rowW), 2*rowW)
		for i := range base {
			copy(out[i], base[i])
			copy(out[i][rowW:], deltas[i])
		}
	}
	if cfg.CMVN {
		ApplyCMVN(out)
	}
	return out, nil
}

// sliceRows carves a backing array into equal-width rows.
func sliceRows(backing []float64, width int) [][]float64 {
	rows := make([][]float64, len(backing)/width)
	for i := range rows {
		rows[i] = backing[i*width : (i+1)*width : (i+1)*width]
	}
	return rows
}

// analysisWindow returns the shared Hamming window table for frameLen.
func analysisWindow(n int) ([]float64, error) {
	win, err := dsp.WindowHamming.SharedCoefficients(n)
	if err != nil {
		return nil, fmt.Errorf("features: analysis window: %w", err)
	}
	return win, nil
}

// bankKey addresses one cached mel filterbank.
type bankKey struct {
	numFilters, fftSize int
	rate, low, high     float64 // unit: Hz
}

// bankCache maps filterbank geometry → the shared [][]filterTap. A
// process uses a handful of front-end configurations, so entries live
// for the life of the process. Stored banks are read-only.
var bankCache sync.Map // bankKey → [][]filterTap

// cachedFilterbank returns the shared triangular filterbank for the
// geometry, building it on first use.
func cachedFilterbank(numFilters, fftSize int, rate, low, high float64) [][]filterTap {
	key := bankKey{numFilters, fftSize, rate, low, high}
	if v, ok := bankCache.Load(key); ok {
		return v.([][]filterTap)
	}
	v, _ := bankCache.LoadOrStore(key, melFilterbank(numFilters, fftSize, rate, low, high))
	return v.([][]filterTap)
}

// dctKey addresses one cached DCT-II basis.
type dctKey struct {
	numCoeffs, numFilters int
}

// dctCache maps basis shape → the shared [][]float64 rows (read-only).
var dctCache sync.Map // dctKey → [][]float64

// cachedDCT returns the shared DCT-II basis for the shape, building it
// on first use.
func cachedDCT(numCoeffs, numFilters int) [][]float64 {
	key := dctKey{numCoeffs, numFilters}
	if v, ok := dctCache.Load(key); ok {
		return v.([][]float64)
	}
	v, _ := dctCache.LoadOrStore(key, dctMatrix(numCoeffs, numFilters))
	return v.([][]float64)
}

// filterTap is one (bin, weight) entry of a triangular mel filter.
type filterTap struct {
	bin    int
	weight float64
}

// melFilterbank builds numFilters triangular filters spanning [low, high]
// Hz over an fftSize-point spectrum.
func melFilterbank(numFilters, fftSize int, rate, low, high float64) [][]filterTap {
	mLow := MelScale(low)
	mHigh := MelScale(high)
	centers := make([]float64, numFilters+2)
	for i := range centers {
		mel := mLow + (mHigh-mLow)*float64(i)/float64(numFilters+1)
		centers[i] = InvMelScale(mel)
	}
	toBin := func(hz float64) float64 { return hz * float64(fftSize) / rate }
	bank := make([][]filterTap, numFilters)
	for m := 0; m < numFilters; m++ {
		lo, mid, hi := toBin(centers[m]), toBin(centers[m+1]), toBin(centers[m+2])
		var taps []filterTap
		for b := int(math.Ceil(lo)); b <= int(math.Floor(hi)) && b <= fftSize/2; b++ {
			fb := float64(b)
			var w float64
			switch {
			case fb < mid && mid > lo:
				w = (fb - lo) / (mid - lo)
			case fb >= mid && hi > mid:
				w = (hi - fb) / (hi - mid)
			}
			if w > 0 {
				taps = append(taps, filterTap{bin: b, weight: w})
			}
		}
		bank[m] = taps
	}
	return bank
}

// dctMatrix returns the DCT-II basis rows 1..numCoeffs (row 0, the DC
// term, is skipped as usual for MFCCs).
func dctMatrix(numCoeffs, numFilters int) [][]float64 {
	m := make([][]float64, numCoeffs)
	norm := math.Sqrt(2 / float64(numFilters))
	for k := 0; k < numCoeffs; k++ {
		row := make([]float64, numFilters)
		for n := 0; n < numFilters; n++ {
			row[n] = norm * math.Cos(math.Pi*float64(k+1)*(float64(n)+0.5)/float64(numFilters))
		}
		m[k] = row
	}
	return m
}

// Deltas computes first-order regression deltas with the given window
// half-width over a feature matrix.
func Deltas(feats [][]float64, width int) [][]float64 {
	n := len(feats)
	if n == 0 {
		return nil
	}
	dim := len(feats[0])
	var denom float64
	for w := 1; w <= width; w++ {
		denom += 2 * float64(w*w)
	}
	out := sliceRows(make([]float64, n*dim), dim)
	parallel.For(n, func(i int) {
		row := out[i]
		for d := 0; d < dim; d++ {
			var num float64
			for w := 1; w <= width; w++ {
				lo := i - w
				if lo < 0 {
					lo = 0
				}
				hi := i + w
				if hi >= n {
					hi = n - 1
				}
				num += float64(w) * (feats[hi][d] - feats[lo][d])
			}
			row[d] = num / denom
		}
	})
	return out
}

// ApplyCMVN normalizes each feature dimension to zero mean and unit
// variance in place.
func ApplyCMVN(feats [][]float64) {
	if len(feats) == 0 {
		return
	}
	dim := len(feats[0])
	mean := make([]float64, dim)
	for _, row := range feats {
		for d, v := range row {
			mean[d] += v
		}
	}
	n := float64(len(feats))
	for d := range mean {
		mean[d] /= n
	}
	variance := make([]float64, dim)
	for _, row := range feats {
		for d, v := range row {
			diff := v - mean[d]
			variance[d] += diff * diff
		}
	}
	for d := range variance {
		variance[d] /= n
		if variance[d] < 1e-12 {
			variance[d] = 1e-12
		}
	}
	for _, row := range feats {
		for d := range row {
			row[d] = (row[d] - mean[d]) / math.Sqrt(variance[d])
		}
	}
}
