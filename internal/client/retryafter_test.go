package client

// Fake-clock tests for the retry backoff: the server's Retry-After hint
// must stretch the wait beyond the policy's own schedule, observed
// through the sleep seam without any real sleeping.

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock records every requested wait and releases it immediately.
type fakeClock struct {
	mu    chan struct{}
	waits []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{mu: make(chan struct{}, 1)}
}

func (f *fakeClock) after(d time.Duration) <-chan time.Time {
	f.mu <- struct{}{}
	f.waits = append(f.waits, d)
	<-f.mu
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

func (f *fakeClock) recorded() []time.Duration {
	f.mu <- struct{}{}
	defer func() { <-f.mu }()
	return append([]time.Duration(nil), f.waits...)
}

// overloadedServer answers 429 with a Retry-After hint until the fault
// window passes, then hands out a decision-shaped 200.
func overloadedServer(t *testing.T, faults int32, retryAfterSec string) *httptest.Server {
	t.Helper()
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= faults {
			w.Header().Set("Retry-After", retryAfterSec)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			if _, err := w.Write([]byte(`{"error":"overloaded","trace_id":"x"}`)); err != nil {
				t.Error(err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"accepted":true,"trace_id":"x","stages":[]}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	ts := overloadedServer(t, 1, "3")
	clock := newFakeClock()
	c := New(ts.URL)
	c.Retry = &RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		sleep:       clock.after,
	}
	res, err := c.Verify(genuineSession(t, 41))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	waits := clock.recorded()
	if len(waits) != 1 {
		t.Fatalf("backoff fired %d times, want 1", len(waits))
	}
	// The policy alone would wait at most MaxDelay (50ms); the server
	// asked for 3 seconds, and the hint wins when longer.
	if waits[0] < 3*time.Second {
		t.Errorf("backoff = %v, want at least the server's Retry-After of 3s", waits[0])
	}
}

func TestRetryKeepsOwnScheduleWhenHintShorter(t *testing.T) {
	ts := overloadedServer(t, 1, "1")
	clock := newFakeClock()
	c := New(ts.URL)
	c.Retry = &RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   4 * time.Second,
		MaxDelay:    8 * time.Second,
		sleep:       clock.after,
	}
	if _, err := c.Verify(genuineSession(t, 42)); err != nil {
		t.Fatal(err)
	}
	waits := clock.recorded()
	if len(waits) != 1 {
		t.Fatalf("backoff fired %d times, want 1", len(waits))
	}
	// Jittered base delay lands in [2s, 4s) — never clipped down to the
	// server's shorter 1s hint.
	if waits[0] < 2*time.Second {
		t.Errorf("backoff = %v, want the policy's own schedule (>= 2s)", waits[0])
	}
}

// TestDecisionsNeverRetried pins that a decision — even a rejection — is
// final: the retry loop must not burn attempts resending it.
func TestDecisionsNeverRetried(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"accepted":false,"failed_stage":"loudspeaker-detection","trace_id":"x","stages":[]}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	clock := newFakeClock()
	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 5, sleep: clock.after}
	res, err := c.Verify(genuineSession(t, 43))
	if err != nil {
		t.Fatal(err)
	}
	if res.Response.Accepted {
		t.Fatal("rejection parsed as accept")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hit %d times for one decision, want 1", got)
	}
	if len(clock.recorded()) != 0 {
		t.Error("backoff fired for a decided request")
	}
}
