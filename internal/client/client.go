// Package client simulates the paper's mobile application (§V): it
// records a verification session (sensors + sweep + voice), packages it
// with the wire protocol, uploads it to the verification server and
// reports the decision with timing — the measurements behind the paper's
// Fig. 15 authentication-time comparison.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
)

// Client talks to one verification server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8443".
	BaseURL string
	// HTTP is the transport; nil uses a default with a sane timeout.
	HTTP *http.Client
}

// New returns a client for the given server.
func New(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// Result is the outcome of one authentication attempt.
type Result struct {
	// Response is the server's decision.
	Response *protocol.VerifyResponse
	// Elapsed is the end-to-end time: encode + upload + verify + reply.
	Elapsed time.Duration
	// PayloadBytes is the compressed upload size.
	PayloadBytes int
}

// Verify uploads a session and waits for the decision.
func (c *Client) Verify(session *core.SessionData) (*Result, error) {
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		return nil, fmt.Errorf("client: packaging session: %w", err)
	}
	start := time.Now()
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Post(c.BaseURL+"/verify", "application/gzip", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("client: uploading session: %w", err)
	}
	defer resp.Body.Close()
	var vr protocol.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &Result{
		Response:     &vr,
		Elapsed:      time.Since(start),
		PayloadBytes: len(payload),
	}, nil
}

// Enroll registers a user with the server's ASV stage from recorded
// enrollment sessions.
func (c *Client) Enroll(user string, sessions [][]*audio.Signal) error {
	req, err := protocol.EnrollFromAudio(user, sessions)
	if err != nil {
		return fmt.Errorf("client: packaging enrollment: %w", err)
	}
	payload, err := protocol.EncodeEnroll(req)
	if err != nil {
		return fmt.Errorf("client: encoding enrollment: %w", err)
	}
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Post(c.BaseURL+"/enroll", "application/gzip", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: uploading enrollment: %w", err)
	}
	defer resp.Body.Close()
	var er protocol.EnrollResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return fmt.Errorf("client: decoding enrollment response: %w", err)
	}
	if !er.OK {
		return fmt.Errorf("client: enrollment rejected: %s", er.Error)
	}
	return nil
}

// VerifyVoiceprint uploads a voice-only attempt to the baseline endpoint
// (the Fig. 15 WeChat-style comparison scheme).
func (c *Client) VerifyVoiceprint(user string, voice *audio.Signal) (*Result, error) {
	req, err := protocol.VoiceprintFromAudio(user, voice)
	if err != nil {
		return nil, fmt.Errorf("client: packaging voiceprint: %w", err)
	}
	start := time.Now()
	payload, err := protocol.EncodeVoiceprint(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding voiceprint: %w", err)
	}
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Post(c.BaseURL+"/voiceprint", "application/gzip", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("client: uploading voiceprint: %w", err)
	}
	defer resp.Body.Close()
	var vr protocol.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return nil, fmt.Errorf("client: decoding voiceprint response: %w", err)
	}
	return &Result{Response: &vr, Elapsed: time.Since(start), PayloadBytes: len(payload)}, nil
}
