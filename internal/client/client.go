// Package client simulates the paper's mobile application (§V): it
// records a verification session (sensors + sweep + voice), packages it
// with the wire protocol, uploads it to the verification server and
// reports the decision with timing — the measurements behind the paper's
// Fig. 15 authentication-time comparison.
//
// Every upload has a context-accepting variant (VerifyContext,
// VerifyVoiceprintContext, EnrollContext) so callers can bound an
// authentication attempt end to end; the context-free methods are
// compatibility wrappers that never time out client-side. A Client with
// a RetryPolicy transparently retries transport failures and the
// server's overload answers (429, 503) with jittered exponential
// backoff, reusing one trace ID across attempts so the server's flight
// recorder shows the retries as a single logical attempt.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/telemetry"
)

// requestIDHeader mirrors server.RequestIDHeader (not imported to keep
// the client free of server dependencies).
const requestIDHeader = "X-Request-ID"

// Client talks to one verification server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8443".
	BaseURL string
	// HTTP is the transport; nil uses a default with a sane timeout.
	HTTP *http.Client
	// Retry, when non-nil, retries transport errors and the server's
	// overload answers (429 Too Many Requests, 503 Service Unavailable)
	// with jittered exponential backoff. Nil preserves the seed behavior:
	// one attempt, every failure surfaced. Streaming attempts
	// (VerifyStream) are never retried regardless of this policy.
	Retry *RetryPolicy
	// StreamFrameDelay spaces successive VerifyStream frames to emulate
	// live capture (a phone streams evidence at sensor rate, not at
	// loopback rate). 0 streams as fast as the connection allows. The
	// server's verdict interrupts the pacing wait immediately.
	StreamFrameDelay time.Duration
}

// New returns a client for the given server.
func New(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// ServerError is a non-2xx reply from the verification server. When the
// server answered with its JSON error envelope, Message carries the
// envelope's error field and TraceID the ID the attempt ran under;
// otherwise (a proxy's HTML 502, a load balancer's plain-text 504)
// Message holds a truncated snippet of the raw body, so the caller sees
// what the wire actually said instead of a JSON decoding error.
type ServerError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error text or a body snippet.
	Message string
	// TraceID is the request ID the failed exchange ran under.
	TraceID string
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// Temporary reports whether the failure is worth retrying: the server
// shed load (429) or abandoned the attempt at its deadline (503). All
// other statuses describe this request, which a resend would not fix.
func (e *ServerError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// RetryPolicy configures automatic retry of verification uploads.
// Retries fire only on transport errors and ServerError.Temporary()
// replies; decisions (accept or reject), 4xx request errors and context
// cancellation are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included (values
	// below 1 mean 1 — no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles each
	// further retry. 0 uses 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 uses 2s.
	MaxDelay time.Duration
	// sleep stands in for time.After so tests can drive the retry loop
	// with a fake clock and assert the exact waits (including the
	// server's Retry-After hint) without real sleeping. Nil uses the real
	// clock.
	sleep func(time.Duration) <-chan time.Time
}

// after returns a channel that fires once d has elapsed, through the
// fake-clock seam when one is installed.
func (p *RetryPolicy) after(d time.Duration) <-chan time.Time {
	if p.sleep != nil {
		return p.sleep(d)
	}
	return time.After(d)
}

// DefaultRetryPolicy is a sane interactive-authentication policy: three
// tries over roughly a third of a second.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// backoff returns the jittered delay before retry number retry (1-based),
// honoring the server's Retry-After hint when it is longer.
func (p *RetryPolicy) backoff(retry int, last error) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	d := base << (retry - 1)
	if d > maxDelay || d <= 0 {
		d = maxDelay
	}
	// Full jitter in [d/2, d): desynchronizes a fleet of clients that were
	// all shed by the same overloaded server at the same instant.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var se *ServerError
	if errors.As(last, &se) && se.RetryAfter > d {
		d = se.RetryAfter
	}
	return d
}

// retryable reports whether err is worth another attempt: a transport
// failure (the request may never have reached the server) or a temporary
// server answer. Context cancellation is the caller's deadline, not a
// server fault — it always stops the loop.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	// Anything else from http.Client.Do is a transport error.
	var ue *url.Error
	return errors.As(err, &ue)
}

// Result is the outcome of one authentication attempt.
type Result struct {
	// Response is the server's decision.
	Response *protocol.VerifyResponse
	// TraceID is the request ID the attempt ran under: generated
	// client-side, sent as X-Request-ID (identically on every retry of
	// the same logical attempt), echoed by the server, stamped on the
	// decision and the server's log line.
	TraceID string
	// Elapsed is the end-to-end time: encode + upload + verify + reply,
	// including any retries.
	Elapsed time.Duration
	// ServerElapsed is the pipeline time the server reported, so callers
	// can split transport from processing (the paper's Fig. 15 only had
	// the end-to-end number).
	ServerElapsed time.Duration
	// PayloadBytes is the compressed upload size.
	PayloadBytes int
	// Attempts is how many uploads the attempt took (1 without retries).
	Attempts int
}

// httpClient returns the configured transport or the default.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// maxErrorBodyBytes bounds how much of a non-JSON error reply is kept as
// the error snippet.
const maxErrorBodyBytes = 256

// isJSONResponse reports whether the reply declares a JSON body.
func isJSONResponse(resp *http.Response) bool {
	mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	return err == nil && (mt == "application/json" || strings.HasSuffix(mt, "+json"))
}

// errorFromResponse converts a non-2xx reply into a *ServerError,
// consuming the body. The server's JSON envelope is decoded for its
// error field; anything else (a proxy's HTML error page) becomes a
// truncated snippet so the failure stays legible.
func errorFromResponse(resp *http.Response, traceID string) *ServerError {
	se := &ServerError{Status: resp.StatusCode, TraceID: traceID}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		se.RetryAfter = time.Duration(ra) * time.Second
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBodyBytes))
	if isJSONResponse(resp) {
		var envelope struct {
			Error   string `json:"error"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(body, &envelope); err == nil && envelope.Error != "" {
			se.Message = envelope.Error
			if envelope.TraceID != "" {
				se.TraceID = envelope.TraceID
			}
			return se
		}
	}
	snippet := strings.TrimSpace(string(body))
	if snippet == "" {
		snippet = "(empty body)"
	}
	se.Message = fmt.Sprintf("non-JSON reply: %q", snippet)
	return se
}

// postOnce uploads a gzip payload under the given trace ID and decodes
// the JSON reply into out. Non-2xx statuses return a *ServerError; the
// body is never parsed as a success document without checking the status
// first.
func (c *Client) postOnce(ctx context.Context, path, traceID string, payload []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/gzip")
	req.Header.Set(requestIDHeader, traceID)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: uploading to %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("client: %s failed: %w", path, errorFromResponse(resp, traceID))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// postRetry runs postOnce under the client's retry policy, reusing one
// trace ID across every attempt so the server sees the retries as a
// single logical attempt. It returns the trace ID, the attempt count and
// the last error.
func (c *Client) postRetry(ctx context.Context, path string, payload []byte, out any) (string, int, error) {
	traceID := telemetry.NewTraceID()
	attempts := 1
	if c.Retry != nil && c.Retry.MaxAttempts > 1 {
		attempts = c.Retry.MaxAttempts
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			select {
			case <-c.Retry.after(c.Retry.backoff(attempt-1, lastErr)):
			case <-ctx.Done():
				return traceID, attempt - 1, fmt.Errorf("client: retry abandoned: %w", ctx.Err())
			}
		}
		lastErr = c.postOnce(ctx, path, traceID, payload, out)
		if lastErr == nil {
			return traceID, attempt, nil
		}
		if !retryable(lastErr) {
			return traceID, attempt, lastErr
		}
	}
	return traceID, attempts, fmt.Errorf("client: giving up after %d attempts: %w", attempts, lastErr)
}

// Verify uploads a session and waits for the decision. It is the
// no-deadline compatibility form of VerifyContext.
func (c *Client) Verify(session *core.SessionData) (*Result, error) {
	//lint:allow ctxfirst seed-compatible entry point; deadline-aware callers use VerifyContext
	return c.VerifyContext(context.Background(), session)
}

// VerifyContext uploads a session under ctx and waits for the decision.
// The context bounds the whole attempt including retries.
func (c *Client) VerifyContext(ctx context.Context, session *core.SessionData) (*Result, error) {
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		return nil, fmt.Errorf("client: packaging session: %w", err)
	}
	start := time.Now()
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var vr protocol.VerifyResponse
	traceID, attempts, err := c.postRetry(ctx, "/verify", payload, &vr)
	if err != nil {
		return nil, err
	}
	return &Result{
		Response:      &vr,
		TraceID:       traceID,
		Elapsed:       time.Since(start),
		ServerElapsed: time.Duration(vr.ElapsedUS) * time.Microsecond,
		PayloadBytes:  len(payload),
		Attempts:      attempts,
	}, nil
}

// Enroll registers a user with the server's ASV stage from recorded
// enrollment sessions. It is the no-deadline compatibility form of
// EnrollContext.
func (c *Client) Enroll(user string, sessions [][]*audio.Signal) error {
	//lint:allow ctxfirst seed-compatible entry point; deadline-aware callers use EnrollContext
	return c.EnrollContext(context.Background(), user, sessions)
}

// EnrollContext registers a user under ctx.
func (c *Client) EnrollContext(ctx context.Context, user string, sessions [][]*audio.Signal) error {
	req, err := protocol.EnrollFromAudio(user, sessions)
	if err != nil {
		return fmt.Errorf("client: packaging enrollment: %w", err)
	}
	payload, err := protocol.EncodeEnroll(req)
	if err != nil {
		return fmt.Errorf("client: encoding enrollment: %w", err)
	}
	var er protocol.EnrollResponse
	if _, _, err := c.postRetry(ctx, "/enroll", payload, &er); err != nil {
		return err
	}
	if !er.OK {
		return fmt.Errorf("client: enrollment rejected: %s", er.Error)
	}
	return nil
}

// VerifyVoiceprint uploads a voice-only attempt to the baseline endpoint
// (the Fig. 15 WeChat-style comparison scheme). It is the no-deadline
// compatibility form of VerifyVoiceprintContext.
func (c *Client) VerifyVoiceprint(user string, voice *audio.Signal) (*Result, error) {
	//lint:allow ctxfirst seed-compatible entry point; deadline-aware callers use VerifyVoiceprintContext
	return c.VerifyVoiceprintContext(context.Background(), user, voice)
}

// VerifyVoiceprintContext uploads a voice-only attempt under ctx.
func (c *Client) VerifyVoiceprintContext(ctx context.Context, user string, voice *audio.Signal) (*Result, error) {
	req, err := protocol.VoiceprintFromAudio(user, voice)
	if err != nil {
		return nil, fmt.Errorf("client: packaging voiceprint: %w", err)
	}
	start := time.Now()
	payload, err := protocol.EncodeVoiceprint(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding voiceprint: %w", err)
	}
	var vr protocol.VerifyResponse
	traceID, attempts, err := c.postRetry(ctx, "/voiceprint", payload, &vr)
	if err != nil {
		return nil, err
	}
	return &Result{
		Response:      &vr,
		TraceID:       traceID,
		Elapsed:       time.Since(start),
		ServerElapsed: time.Duration(vr.ElapsedUS) * time.Microsecond,
		PayloadBytes:  len(payload),
		Attempts:      attempts,
	}, nil
}

// get issues a GET to a server debug endpoint and fails on non-200.
func (c *Client) get(path string) (*http.Response, error) {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return nil, fmt.Errorf("client: fetching %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("client: %s returned status %d", path, resp.StatusCode)
	}
	return resp, nil
}

// RecentDecisions fetches the server's retained decision summaries,
// newest first.
func (c *Client) RecentDecisions() ([]telemetry.TraceSummary, error) {
	resp, err := c.get("/debug/decisions")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []telemetry.TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding decision summaries: %w", err)
	}
	return out, nil
}

// Trace fetches one decision's full span tree by trace ID. The ID is
// path-escaped: request IDs are client-chosen strings, and one holding
// '/', '?', '#' or spaces must not reshape the URL.
func (c *Client) Trace(traceID string) (*telemetry.TraceRecord, error) {
	resp, err := c.get("/debug/trace/" + url.PathEscape(traceID))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rec := &telemetry.TraceRecord{}
	if err := json.NewDecoder(resp.Body).Decode(rec); err != nil {
		return nil, fmt.Errorf("client: decoding trace %s: %w", traceID, err)
	}
	return rec, nil
}

// EvidencePack downloads one decision's evidence pack — the
// self-contained digest-chained zip served by the server's opt-in
// /debug/evidence/{trace_id} endpoint — as raw bytes, ready for
// evidence.ReadBytes or a `voiceguard-trace pack verify` run.
func (c *Client) EvidencePack(ctx context.Context, traceID string) ([]byte, error) {
	path := "/debug/evidence/" + url.PathEscape(traceID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: fetching %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: %s returned status %d", path, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading evidence pack %s: %w", traceID, err)
	}
	return data, nil
}

// DriftReport fetches the server's /debug/drift document: per-series
// PSI/KS drift scores against the pinned baseline, SLO burn rates,
// process resource attribution, and the recent per-minute timeline.
// timeline bounds the timeline slots (< 0 uses the server default).
func (c *Client) DriftReport(ctx context.Context, timeline int) (*telemetry.DriftReport, error) {
	path := "/debug/drift"
	if timeline >= 0 {
		path += "?timeline=" + strconv.Itoa(timeline)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: fetching %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: %s returned status %d", path, resp.StatusCode)
	}
	rep := &telemetry.DriftReport{}
	if err := json.NewDecoder(resp.Body).Decode(rep); err != nil {
		return nil, fmt.Errorf("client: decoding drift report: %w", err)
	}
	return rep, nil
}

// PinDriftBaseline asks the server to snapshot the trailing window as
// its drift baseline (0 uses the server's live window).
func (c *Client) PinDriftBaseline(ctx context.Context, window time.Duration) error {
	path := "/debug/drift/pin"
	if window > 0 {
		path += "?window=" + url.QueryEscape(window.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: pinning drift baseline: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: %s returned status %d", path, resp.StatusCode)
	}
	return nil
}

// MetricsText fetches the raw Prometheus text exposition from /metrics
// (voiceguard-top parses a few families out of it).
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("client: fetching /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: /metrics returned status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: reading metrics: %w", err)
	}
	return string(data), nil
}

// Health fetches the /healthz readiness document as loosely-typed JSON
// (the shape is the server's healthResponse; voiceguard-top reads the
// ASV serving-state section from it).
func (c *Client) Health(ctx context.Context) (map[string]json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: fetching /healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: /healthz returned status %d", resp.StatusCode)
	}
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding health document: %w", err)
	}
	return out, nil
}

// DumpDecisionsJSONL streams the server's retained traces as JSONL into
// w — the offline input format of cmd/voiceguard-trace.
func (c *Client) DumpDecisionsJSONL(w io.Writer) error {
	resp, err := c.get("/debug/decisions.jsonl")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("client: streaming decision JSONL: %w", err)
	}
	return nil
}
