// Package client simulates the paper's mobile application (§V): it
// records a verification session (sensors + sweep + voice), packages it
// with the wire protocol, uploads it to the verification server and
// reports the decision with timing — the measurements behind the paper's
// Fig. 15 authentication-time comparison.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/telemetry"
)

// requestIDHeader mirrors server.RequestIDHeader (not imported to keep
// the client free of server dependencies).
const requestIDHeader = "X-Request-ID"

// Client talks to one verification server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8443".
	BaseURL string
	// HTTP is the transport; nil uses a default with a sane timeout.
	HTTP *http.Client
}

// New returns a client for the given server.
func New(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// Result is the outcome of one authentication attempt.
type Result struct {
	// Response is the server's decision.
	Response *protocol.VerifyResponse
	// TraceID is the request ID the attempt ran under: generated
	// client-side, sent as X-Request-ID, echoed by the server, stamped
	// on the decision and the server's log line.
	TraceID string
	// Elapsed is the end-to-end time: encode + upload + verify + reply.
	Elapsed time.Duration
	// ServerElapsed is the pipeline time the server reported, so callers
	// can split transport from processing (the paper's Fig. 15 only had
	// the end-to-end number).
	ServerElapsed time.Duration
	// PayloadBytes is the compressed upload size.
	PayloadBytes int
}

// post uploads a gzip payload under a fresh trace ID and returns the
// response plus the ID the exchange ran under (the server's echo wins
// when present, so a proxy-assigned ID is surfaced faithfully).
func (c *Client) post(path string, payload []byte) (*http.Response, string, error) {
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return nil, "", fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/gzip")
	traceID := telemetry.NewTraceID()
	req.Header.Set(requestIDHeader, traceID)
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("client: uploading to %s: %w", path, err)
	}
	if echoed := resp.Header.Get(requestIDHeader); echoed != "" {
		traceID = echoed
	}
	return resp, traceID, nil
}

// Verify uploads a session and waits for the decision.
func (c *Client) Verify(session *core.SessionData) (*Result, error) {
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		return nil, fmt.Errorf("client: packaging session: %w", err)
	}
	start := time.Now()
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	resp, traceID, err := c.post("/verify", payload)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var vr protocol.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &Result{
		Response:      &vr,
		TraceID:       traceID,
		Elapsed:       time.Since(start),
		ServerElapsed: time.Duration(vr.ElapsedUS) * time.Microsecond,
		PayloadBytes:  len(payload),
	}, nil
}

// Enroll registers a user with the server's ASV stage from recorded
// enrollment sessions.
func (c *Client) Enroll(user string, sessions [][]*audio.Signal) error {
	req, err := protocol.EnrollFromAudio(user, sessions)
	if err != nil {
		return fmt.Errorf("client: packaging enrollment: %w", err)
	}
	payload, err := protocol.EncodeEnroll(req)
	if err != nil {
		return fmt.Errorf("client: encoding enrollment: %w", err)
	}
	resp, _, err := c.post("/enroll", payload)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var er protocol.EnrollResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return fmt.Errorf("client: decoding enrollment response: %w", err)
	}
	if !er.OK {
		return fmt.Errorf("client: enrollment rejected: %s", er.Error)
	}
	return nil
}

// get issues a GET to a server debug endpoint and fails on non-200.
func (c *Client) get(path string) (*http.Response, error) {
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Get(c.BaseURL + path)
	if err != nil {
		return nil, fmt.Errorf("client: fetching %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("client: %s returned status %d", path, resp.StatusCode)
	}
	return resp, nil
}

// RecentDecisions fetches the server's retained decision summaries,
// newest first.
func (c *Client) RecentDecisions() ([]telemetry.TraceSummary, error) {
	resp, err := c.get("/debug/decisions")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []telemetry.TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding decision summaries: %w", err)
	}
	return out, nil
}

// Trace fetches one decision's full span tree by trace ID. The ID is
// path-escaped: request IDs are client-chosen strings, and one holding
// '/', '?', '#' or spaces must not reshape the URL.
func (c *Client) Trace(traceID string) (*telemetry.TraceRecord, error) {
	resp, err := c.get("/debug/trace/" + url.PathEscape(traceID))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rec := &telemetry.TraceRecord{}
	if err := json.NewDecoder(resp.Body).Decode(rec); err != nil {
		return nil, fmt.Errorf("client: decoding trace %s: %w", traceID, err)
	}
	return rec, nil
}

// DumpDecisionsJSONL streams the server's retained traces as JSONL into
// w — the offline input format of cmd/voiceguard-trace.
func (c *Client) DumpDecisionsJSONL(w io.Writer) error {
	resp, err := c.get("/debug/decisions.jsonl")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("client: streaming decision JSONL: %w", err)
	}
	return nil
}

// VerifyVoiceprint uploads a voice-only attempt to the baseline endpoint
// (the Fig. 15 WeChat-style comparison scheme).
func (c *Client) VerifyVoiceprint(user string, voice *audio.Signal) (*Result, error) {
	req, err := protocol.VoiceprintFromAudio(user, voice)
	if err != nil {
		return nil, fmt.Errorf("client: packaging voiceprint: %w", err)
	}
	start := time.Now()
	payload, err := protocol.EncodeVoiceprint(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding voiceprint: %w", err)
	}
	resp, traceID, err := c.post("/voiceprint", payload)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var vr protocol.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return nil, fmt.Errorf("client: decoding voiceprint response: %w", err)
	}
	return &Result{
		Response:      &vr,
		TraceID:       traceID,
		Elapsed:       time.Since(start),
		ServerElapsed: time.Duration(vr.ElapsedUS) * time.Microsecond,
		PayloadBytes:  len(payload),
	}, nil
}
