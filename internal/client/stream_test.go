package client

// Streaming-upload tests against a live server listener: genuine accept
// with full upload, early-exit reject cutting the upload short, overload
// surfaced as a *ServerError with the Retry-After hint, and cancellation
// honoring the caller's context.

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/server"
	"voiceguard/internal/speech"
)

// streamServer starts a server's streaming listener and returns its
// address.
func streamServer(t *testing.T, opts ...server.Option) string {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(sys, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServeStream("127.0.0.1:0", ready) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("stream listener never reported ready")
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return addr
}

func TestVerifyStreamGenuine(t *testing.T) {
	addr := streamServer(t)
	session := genuineSession(t, 31)
	c := New("")

	res, err := c.VerifyStream(context.Background(), addr, session)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Response.Accepted {
		t.Fatalf("genuine session rejected: %+v", res.Response)
	}
	if res.EarlyExit {
		t.Error("genuine session decided before the upload finished")
	}
	if res.FramesSent != res.FramesTotal {
		t.Errorf("sent %d of %d frames without an early exit", res.FramesSent, res.FramesTotal)
	}
	if res.TraceID == "" || res.Response.TraceID != res.TraceID {
		t.Errorf("trace IDs: result=%q response=%q", res.TraceID, res.Response.TraceID)
	}
	if res.BytesSent == 0 || res.TimeToDecision <= 0 || res.Elapsed < res.TimeToDecision {
		t.Errorf("timing/bytes not measured: %+v", res)
	}
}

func TestVerifyStreamEarlyExitCutsUploadShort(t *testing.T) {
	addr := streamServer(t)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(32)))
	rec, err := attack.Record(victim, "472913", 32)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := attack.Replay(rec, device.Catalog()[0], attack.Scenario{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	c := New("")
	// Pace the upload at live-capture speed: the verdict (decided from
	// the magnetometer prefix in a few milliseconds) must interrupt it.
	c.StreamFrameDelay = 2 * time.Millisecond

	res, err := c.VerifyStream(context.Background(), addr, replay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response.Accepted {
		t.Fatalf("replay attack accepted: %+v", res.Response)
	}
	if !res.EarlyExit {
		t.Fatal("replay attack not rejected before the upload finished")
	}
	if res.FramesSent >= res.FramesTotal {
		t.Errorf("early exit did not cut the upload short: sent %d of %d frames",
			res.FramesSent, res.FramesTotal)
	}
}

func TestVerifyStreamSurfacesOverload(t *testing.T) {
	// Zero inflight budget: every streaming session sheds immediately.
	addr := streamServer(t, server.WithMaxInflightVerifies(1), server.WithVerifyTimeout(time.Nanosecond))
	c := New("")
	// The nanosecond verify timeout turns the admitted session into a
	// deterministic 503 — also a *ServerError, also never a verdict.
	_, err := c.VerifyStream(context.Background(), addr, genuineSession(t, 33))
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("overloaded stream returned %v, want *ServerError", err)
	}
	if se.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", se.Status)
	}
	if !se.Temporary() {
		t.Error("refusal not marked temporary")
	}
}

func TestVerifyStreamHonorsContext(t *testing.T) {
	addr := streamServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New("")
	_, err := c.VerifyStream(ctx, addr, genuineSession(t, 34))
	if err == nil {
		t.Fatal("cancelled stream attempt succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in the chain", err)
	}
}
