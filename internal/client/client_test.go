package client

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/server"
	"voiceguard/internal/speech"
)

func testServerURL(t *testing.T) string {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestVerifyRoundTrip(t *testing.T) {
	url := testServerURL(t)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(1)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := New(url)
	res, err := c.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Response.Accepted {
		t.Errorf("genuine rejected: %+v", res.Response)
	}
	if res.PayloadBytes < 1000 {
		t.Errorf("payload = %d bytes", res.PayloadBytes)
	}
}

func TestVerifyVoiceprintRoundTrip(t *testing.T) {
	url := testServerURL(t)
	rng := rand.New(rand.NewSource(2))
	p := speech.RandomProfile("u", rng)
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	voice, err := synth.SayDigits("123456")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(url).VerifyVoiceprint("u", voice)
	if err != nil {
		t.Fatal(err)
	}
	// No ASV attached server-side: transport-path acceptance.
	if !res.Response.Accepted {
		t.Errorf("voiceprint baseline rejected: %+v", res.Response)
	}
}

func TestVerifyInvalidSession(t *testing.T) {
	url := testServerURL(t)
	c := New(url)
	if _, err := c.Verify(&core.SessionData{}); err == nil {
		t.Error("invalid session accepted client-side")
	}
}

func TestVerifyServerDown(t *testing.T) {
	c := New("http://127.0.0.1:1") // nothing listens here
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(3)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(session); err == nil {
		t.Error("expected transport error")
	}
}

func TestVoiceprintServerDown(t *testing.T) {
	c := New("http://127.0.0.1:1")
	rng := rand.New(rand.NewSource(9))
	p := speech.RandomProfile("u", rng)
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	voice, err := synth.SayDigits("22")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.VerifyVoiceprint("u", voice); err == nil {
		t.Error("expected transport error")
	}
	if err := c.Enroll("u", nil); err == nil {
		t.Error("expected enrollment transport error")
	}
}

// TestTracePathEscapesID: request IDs are client-chosen strings, so one
// holding '/', '?', '#' or spaces must reach the server as a single
// escaped path segment instead of reshaping the URL.
func TestTracePathEscapesID(t *testing.T) {
	const hostileID = "id with/slash?and#frag"
	var gotPath string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.EscapedPath()
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"trace_id":"x","spans":[]}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	if _, err := New(ts.URL).Trace(hostileID); err != nil {
		t.Fatal(err)
	}
	if want := "/debug/trace/" + url.PathEscape(hostileID); gotPath != want {
		t.Errorf("request path = %q, want %q", gotPath, want)
	}
}

func TestNilHTTPClientGetsDefault(t *testing.T) {
	url := testServerURL(t)
	c := &Client{BaseURL: url} // HTTP nil
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(4)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(session); err != nil {
		t.Fatalf("nil-HTTP verify: %v", err)
	}
	synth, err := speech.NewSynthesizer(victim, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	voice, err := synth.SayDigits("11")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.VerifyVoiceprint("victim", voice); err != nil {
		t.Fatalf("nil-HTTP voiceprint: %v", err)
	}
}
