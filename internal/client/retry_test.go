package client

// Fault-injection tests for the client's honest error surfacing and
// retry loop: a flaky transport that drops the first attempts, a proxy
// answering with an HTML error page, and the server's structured 429/503
// envelopes.

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/speech"
)

// genuineSession builds an uploadable genuine session for test seed.
func genuineSession(t *testing.T, seed int64) *core.SessionData {
	t.Helper()
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(seed)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return session
}

// flakyTransport fails the first failures requests with a transport
// error, then forwards to the real transport. It also records every
// trace ID it saw, so tests can prove retries reuse one ID.
type flakyTransport struct {
	failures int32
	seen     []string
	mu       chan struct{} // 1-token semaphore guarding seen
}

func newFlakyTransport(failures int32) *flakyTransport {
	ft := &flakyTransport{failures: failures, mu: make(chan struct{}, 1)}
	ft.mu <- struct{}{}
	return ft
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	<-f.mu
	f.seen = append(f.seen, req.Header.Get(requestIDHeader))
	f.mu <- struct{}{}
	if atomic.AddInt32(&f.failures, -1) >= 0 {
		return nil, errors.New("injected: connection reset by peer")
	}
	return http.DefaultTransport.RoundTrip(req)
}

func (f *flakyTransport) traceIDs() []string {
	<-f.mu
	defer func() { f.mu <- struct{}{} }()
	return append([]string(nil), f.seen...)
}

func fastRetry(attempts int) *RetryPolicy {
	return &RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestRetrySucceedsAfterTransportFaults drives a verify through a
// transport that drops the first two attempts: the third succeeds, the
// result reports three attempts, and every attempt carried the same
// trace ID.
func TestRetrySucceedsAfterTransportFaults(t *testing.T) {
	url := testServerURL(t)
	ft := newFlakyTransport(2)
	c := New(url)
	c.HTTP = &http.Client{Transport: ft, Timeout: 30 * time.Second}
	c.Retry = fastRetry(3)

	res, err := c.Verify(genuineSession(t, 31))
	if err != nil {
		t.Fatalf("verify with retry: %v", err)
	}
	if !res.Response.Accepted {
		t.Errorf("genuine rejected: %+v", res.Response)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	ids := ft.traceIDs()
	if len(ids) != 3 {
		t.Fatalf("transport saw %d requests, want 3", len(ids))
	}
	for i, id := range ids {
		if id == "" || id != ids[0] {
			t.Errorf("attempt %d trace ID %q; all attempts must reuse %q", i+1, id, ids[0])
		}
	}
	if res.TraceID != ids[0] {
		t.Errorf("Result.TraceID = %q, transport saw %q", res.TraceID, ids[0])
	}
}

// TestRetryGivesUpAfterMaxAttempts checks that a persistently dead
// transport exhausts the policy and the final error says how many tries
// were made.
func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	ft := newFlakyTransport(100)
	c := New("http://127.0.0.1:1")
	c.HTTP = &http.Client{Transport: ft, Timeout: time.Second}
	c.Retry = fastRetry(3)

	_, err := c.Verify(genuineSession(t, 32))
	if err == nil {
		t.Fatal("expected failure through dead transport")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("err = %v, want attempt count surfaced", err)
	}
	if got := len(ft.traceIDs()); got != 3 {
		t.Errorf("transport saw %d attempts, want 3", got)
	}
}

// TestNoRetryWithoutPolicy pins the seed behavior: a nil Retry means one
// attempt, full stop.
func TestNoRetryWithoutPolicy(t *testing.T) {
	ft := newFlakyTransport(1)
	c := New("http://127.0.0.1:1")
	c.HTTP = &http.Client{Transport: ft, Timeout: time.Second}

	if _, err := c.Verify(genuineSession(t, 33)); err == nil {
		t.Fatal("expected transport error")
	}
	if got := len(ft.traceIDs()); got != 1 {
		t.Errorf("transport saw %d attempts, want exactly 1", got)
	}
}

// TestNonJSONErrorSurfacedAsSnippet: a proxy's HTML 502 must surface as
// a readable ServerError with a body snippet, not as a JSON syntax error
// like "invalid character '<' looking for beginning of value".
func TestNonJSONErrorSurfacedAsSnippet(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusBadGateway)
		if _, err := w.Write([]byte("<html><body><h1>502 Bad Gateway</h1></body></html>")); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)

	_, err := New(ts.URL).Verify(genuineSession(t, 34))
	if err == nil {
		t.Fatal("expected error from 502")
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *ServerError", err, err)
	}
	if se.Status != http.StatusBadGateway {
		t.Errorf("Status = %d", se.Status)
	}
	if !strings.Contains(se.Message, "502 Bad Gateway") {
		t.Errorf("Message = %q, want body snippet surfaced", se.Message)
	}
	if strings.Contains(err.Error(), "invalid character") {
		t.Errorf("err = %v leaks a JSON decoding failure", err)
	}
}

// TestServerEnvelopeSurfaced: the server's own JSON error envelope must
// come through verbatim with its trace ID and Retry-After hint.
func TestServerEnvelopeSurfaced(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		if _, err := w.Write([]byte(`{"error":"overloaded: 16 verifications already in flight","trace_id":"srv-trace-9"}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)

	_, err := New(ts.URL).Verify(genuineSession(t, 35))
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
	if se.Status != http.StatusTooManyRequests || !se.Temporary() {
		t.Errorf("Status = %d, Temporary = %v", se.Status, se.Temporary())
	}
	if se.Message != "overloaded: 16 verifications already in flight" {
		t.Errorf("Message = %q", se.Message)
	}
	if se.TraceID != "srv-trace-9" {
		t.Errorf("TraceID = %q, want the server's envelope ID", se.TraceID)
	}
	if se.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v", se.RetryAfter)
	}
}

// TestRetryOn503ThenSuccess: the server sheds the first attempt with a
// structured 503; the retry succeeds. Decisions are never retried.
func TestRetryOn503ThenSuccess(t *testing.T) {
	url := testServerURL(t)
	var rejected atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rejected.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := w.Write([]byte(`{"error":"verification abandoned: deadline exceeded","trace_id":"x"}`)); err != nil {
				t.Error(err)
			}
			return
		}
		// Forward to the real server once the fault window passes.
		proxyReq, err := http.NewRequest(r.Method, url+r.URL.Path, r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		proxyReq.Header = r.Header
		resp, err := http.DefaultTransport.RoundTrip(proxyReq)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL)
	c.Retry = fastRetry(3)
	res, err := c.Verify(genuineSession(t, 36))
	if err != nil {
		t.Fatalf("verify through flaky proxy: %v", err)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one 503, one success)", res.Attempts)
	}
	if !res.Response.Accepted {
		t.Errorf("genuine rejected: %+v", res.Response)
	}
}

// TestNo422Retry: a 422 REJECT-shaped failure is about this request, not
// the server's health — it must not be retried.
func TestNo422Retry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		if _, err := w.Write([]byte(`{"error":"rebuilding session: bad sweep"}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL)
	c.Retry = fastRetry(5)
	_, err := c.Verify(genuineSession(t, 37))
	var se *ServerError
	if !errors.As(err, &se) || se.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422 ServerError", err)
	}
	if hits.Load() != 1 {
		t.Errorf("server hit %d times; 422 must not be retried", hits.Load())
	}
}

// TestVerifyContextCancellationStopsRetry: the caller's context beats the
// retry loop — cancellation mid-backoff returns promptly and is never
// itself retried.
func TestVerifyContextCancellationStopsRetry(t *testing.T) {
	ft := newFlakyTransport(100)
	c := New("http://127.0.0.1:1")
	c.HTTP = &http.Client{Transport: ft, Timeout: time.Second}
	c.Retry = &RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	session := genuineSession(t, 38)
	go func() {
		_, err := c.VerifyContext(ctx, session)
		done <- err
	}()
	// First attempt fails fast; the loop then parks in an hour-long
	// backoff, which cancellation must cut short.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the retry backoff")
	}
}
