package client

// Streaming uploads: instead of packaging the whole session into one
// gzip POST, VerifyStream frames it over a raw TCP connection to the
// server's streaming listener and listens for the verdict while still
// uploading. Against an impersonation attack the server answers from a
// prefix of the evidence, so the decision routinely arrives before the
// upload finishes — the latency the HTTP path can never recover, because
// its pipeline only starts after the last byte.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/stream"
	"voiceguard/internal/telemetry"
)

// StreamResult is the outcome of one streaming authentication attempt.
type StreamResult struct {
	// Response is the server's decision.
	Response *protocol.VerifyResponse
	// TraceID is the session's trace ID, minted client-side and carried
	// in the hello frame.
	TraceID string
	// Elapsed is the whole attempt: encode + connect + stream + decision.
	Elapsed time.Duration
	// TimeToDecision is connect-to-verdict — the streaming analogue of
	// the HTTP path's upload + pipeline time.
	TimeToDecision time.Duration
	// EarlyExit reports that the verdict arrived before the upload
	// finished (the server decided from a prefix of the evidence).
	EarlyExit bool
	// FramesSent and FramesTotal count protocol frames actually written
	// versus the full session; they differ exactly when EarlyExit cut the
	// upload short.
	FramesSent, FramesTotal int
	// BytesSent is the wire bytes written, headers included.
	BytesSent int64
}

// streamReply carries the server's single reply frame to the uploader.
type streamReply struct {
	frame stream.Frame
	err   error
}

// VerifyStream uploads a session over the binary streaming protocol to
// addr (the server's -stream-addr listener, host:port) and returns the
// decision. The upload is cut short as soon as the server's verdict
// arrives. Streaming attempts are never retried automatically — the
// caller sees every failure; a *ServerError carries the server's refusal
// (including Retry-After on overload) exactly as on the HTTP path.
func (c *Client) VerifyStream(ctx context.Context, addr string, session *core.SessionData) (*StreamResult, error) {
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		return nil, fmt.Errorf("client: packaging session: %w", err)
	}
	start := time.Now()
	traceID := telemetry.NewTraceID()
	frames, err := protocol.StreamFrames(traceID, req)
	if err != nil {
		return nil, fmt.Errorf("client: framing session: %w", err)
	}

	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing stream listener %s: %w", addr, err)
	}
	defer conn.Close()
	// Closing the connection on cancellation unblocks any in-flight read
	// or write; the watcher stops when the attempt returns.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	connected := time.Now()
	if err := stream.WriteHandshake(conn, stream.Version); err != nil {
		return nil, ctxOr(ctx, fmt.Errorf("client: stream handshake: %w", err))
	}
	ver, err := stream.ReadHandshake(conn)
	if err != nil {
		return nil, ctxOr(ctx, fmt.Errorf("client: stream handshake reply: %w", err))
	}
	if ver == 0 {
		return nil, fmt.Errorf("client: server refused protocol version %d", stream.Version)
	}

	// The verdict can arrive at any point of the upload, so a reader
	// waits for it concurrently while frames go out.
	replyCh := make(chan streamReply, 1)
	go func() {
		f, err := stream.ReadFrame(conn, 0)
		replyCh <- streamReply{frame: f, err: err}
	}()

	res := &StreamResult{TraceID: traceID, FramesTotal: len(frames)}
	var reply *streamReply
	for i, f := range frames {
		if c.StreamFrameDelay > 0 && i > 0 {
			select {
			case r := <-replyCh:
				reply = &r
			case <-time.After(c.StreamFrameDelay):
			}
		} else {
			select {
			case r := <-replyCh:
				reply = &r
			default:
			}
		}
		if reply != nil {
			break
		}
		if err := stream.WriteFrame(conn, f); err != nil {
			// A send racing the server's reply fails when the server has
			// already answered and torn down its read side; the reply,
			// not the broken send, is the outcome.
			r := <-replyCh
			reply = &r
			if reply.err != nil {
				return nil, ctxOr(ctx, fmt.Errorf("client: streaming session: %w", err))
			}
			break
		}
		res.FramesSent++
		res.BytesSent += f.WireSize()
	}
	if reply == nil {
		r := <-replyCh
		reply = &r
	}
	if reply.err != nil {
		if errors.Is(reply.err, io.EOF) || errors.Is(reply.err, io.ErrUnexpectedEOF) {
			return nil, ctxOr(ctx, fmt.Errorf("client: server closed the stream without a verdict: %w", reply.err))
		}
		return nil, ctxOr(ctx, fmt.Errorf("client: reading stream reply: %w", reply.err))
	}
	res.TimeToDecision = time.Since(connected)
	res.Elapsed = time.Since(start)

	switch reply.frame.Type {
	case stream.TypeDecision:
		resp, early, err := protocol.DecisionFromStreamFrame(reply.frame)
		if err != nil {
			return nil, fmt.Errorf("client: parsing stream decision: %w", err)
		}
		res.Response = resp
		res.EarlyExit = early
		return res, nil
	case stream.TypeError:
		status, retryAfterSec, env, err := protocol.ErrorFromStreamFrame(reply.frame)
		if err != nil {
			return nil, fmt.Errorf("client: parsing stream error: %w", err)
		}
		se := &ServerError{Status: status, Message: env.Error, TraceID: traceID}
		if env.TraceID != "" {
			se.TraceID = env.TraceID
		}
		if retryAfterSec > 0 {
			se.RetryAfter = time.Duration(retryAfterSec) * time.Second
		}
		return nil, fmt.Errorf("client: stream verify failed: %w", se)
	default:
		return nil, fmt.Errorf("client: unexpected %v frame in reply", reply.frame.Type)
	}
}

// ctxOr prefers the context's own error when the failure was caused by
// cancellation closing the connection mid-exchange, so callers see their
// deadline instead of a confusing "use of closed connection".
func ctxOr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("client: stream attempt abandoned: %w", ctxErr)
	}
	return err
}
