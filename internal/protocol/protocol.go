// Package protocol defines the wire format between the mobile client and
// the verification server, mirroring the paper's prototype (§V): clients
// upload zipped (gzip), structured sensor-and-audio bundles; the server
// replies with the verification decision. JSON is used for the envelope
// and WAV for the audio payload, both gzip-compressed in transit.
package protocol

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/sensors"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/trajectory"
)

// MaxPayloadBytes bounds a decoded request to keep the server safe from
// decompression bombs.
const MaxPayloadBytes = 64 << 20

// VerifyRequest is one verification attempt as uploaded by the client.
type VerifyRequest struct {
	// ClaimedUser is the asserted identity.
	ClaimedUser string `json:"claimed_user"`
	// Gyro, Accel and Mag are the raw sensor traces.
	Gyro  []SampleJSON `json:"gyro"`
	Accel []SampleJSON `json:"accel"`
	Mag   []SampleJSON `json:"mag"`
	// SweepStart and SweepEnd bound the sweep segment, seconds.
	SweepStart float64 `json:"sweep_start"`
	SweepEnd   float64 `json:"sweep_end"`
	// PilotHz is the ranging pilot frequency used by the capture.
	PilotHz float64 `json:"pilot_hz"`
	// CaptureWAV is the base64 WAV of the ranging capture.
	CaptureWAV []byte `json:"capture_wav"`
	// Field is the sound-field sweep.
	Field []FieldJSON `json:"field"`
	// VoiceWAV is the base64 WAV of the spoken passphrase.
	VoiceWAV []byte `json:"voice_wav"`
}

// SampleJSON is one sensor sample on the wire.
type SampleJSON struct {
	T float64 `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// FieldJSON is one sound-field measurement on the wire.
type FieldJSON struct {
	AngleDeg float64 `json:"angle_deg"`
	FreqHz   float64 `json:"freq_hz"`
	LevelDB  float64 `json:"level_db"`
}

// VerifyResponse is the server's decision.
type VerifyResponse struct {
	// Accepted is the final verdict.
	Accepted bool `json:"accepted"`
	// FailedStage names the first failing stage ("" when accepted).
	FailedStage string `json:"failed_stage,omitempty"`
	// Stages carries per-stage diagnostics.
	Stages []StageJSON `json:"stages"`
	// TraceID correlates the response with the server's log line and the
	// X-Request-ID header of the request that produced it.
	TraceID string `json:"trace_id,omitempty"`
	// ElapsedUS is the total pipeline latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us,omitempty"`
	// Error is set when the request could not be processed.
	Error string `json:"error,omitempty"`
}

// StageJSON is one stage result on the wire.
type StageJSON struct {
	Stage  string  `json:"stage"`
	Pass   bool    `json:"pass"`
	Score  float64 `json:"score"`
	Detail string  `json:"detail"`
	// ElapsedUS is the stage's processing time in microseconds.
	ElapsedUS int64 `json:"elapsed_us,omitempty"`
}

// VoiceprintRequest is the voice-only baseline upload (the WeChat-style
// scheme the paper compares against in Fig. 15): just the claimed user
// and the passphrase audio.
type VoiceprintRequest struct {
	// ClaimedUser is the asserted identity.
	ClaimedUser string `json:"claimed_user"`
	// VoiceWAV is the base64 WAV of the spoken passphrase.
	VoiceWAV []byte `json:"voice_wav"`
}

// EncodeVoiceprint serializes and gzips a voiceprint request.
func EncodeVoiceprint(req *VoiceprintRequest) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(req); err != nil {
		return nil, fmt.Errorf("protocol: encoding voiceprint request: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("protocol: closing gzip stream: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeVoiceprint ungzips and parses a voiceprint request.
func DecodeVoiceprint(r io.Reader) (*VoiceprintRequest, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("protocol: opening gzip stream: %w", err)
	}
	defer zr.Close()
	data, err := io.ReadAll(io.LimitReader(zr, MaxPayloadBytes+1))
	if err != nil {
		return nil, fmt.Errorf("protocol: reading voiceprint request: %w", err)
	}
	if len(data) > MaxPayloadBytes {
		return nil, ErrTooLarge
	}
	var req VoiceprintRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("protocol: parsing voiceprint request: %w", err)
	}
	return &req, nil
}

// VoiceFromRequest decodes the audio payload of a voiceprint request.
func VoiceFromRequest(req *VoiceprintRequest) (*audio.Signal, error) {
	raw, err := decodeB64(req.VoiceWAV)
	if err != nil {
		return nil, fmt.Errorf("protocol: voiceprint payload: %w", err)
	}
	s, err := audio.ReadWAV(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("protocol: decoding voiceprint audio: %w", err)
	}
	return s, nil
}

// VoiceprintFromAudio packages audio into a voiceprint request.
func VoiceprintFromAudio(user string, voice *audio.Signal) (*VoiceprintRequest, error) {
	var buf bytes.Buffer
	if err := audio.WriteWAV(&buf, voice); err != nil {
		return nil, fmt.Errorf("protocol: encoding voiceprint audio: %w", err)
	}
	return &VoiceprintRequest{ClaimedUser: user, VoiceWAV: encodeB64(buf.Bytes())}, nil
}

// EnrollRequest registers a new user with the ASV stage: one or more
// recording sessions, each with one or more passphrase utterances.
type EnrollRequest struct {
	// User is the identity to enroll.
	User string `json:"user"`
	// Sessions holds base64 WAV utterances grouped by recording session.
	Sessions [][][]byte `json:"sessions"`
}

// EnrollResponse reports the enrollment outcome.
type EnrollResponse struct {
	// OK is true when the user was enrolled.
	OK bool `json:"ok"`
	// Error carries the failure reason.
	Error string `json:"error,omitempty"`
	// TraceID correlates the response with the server's log line and the
	// X-Request-ID header of the request that produced it.
	TraceID string `json:"trace_id,omitempty"`
}

// EnrollFromAudio packages utterances into an enrollment request.
func EnrollFromAudio(user string, sessions [][]*audio.Signal) (*EnrollRequest, error) {
	req := &EnrollRequest{User: user}
	for _, sess := range sessions {
		var encoded [][]byte
		for _, utt := range sess {
			var buf bytes.Buffer
			if err := audio.WriteWAV(&buf, utt); err != nil {
				return nil, fmt.Errorf("protocol: encoding enrollment audio: %w", err)
			}
			encoded = append(encoded, encodeB64(buf.Bytes()))
		}
		req.Sessions = append(req.Sessions, encoded)
	}
	return req, nil
}

// SessionsFromEnroll decodes the audio payloads of an enrollment request.
func SessionsFromEnroll(req *EnrollRequest) ([][]*audio.Signal, error) {
	var out [][]*audio.Signal
	for i, sess := range req.Sessions {
		var decoded []*audio.Signal
		for j, raw := range sess {
			wav, err := decodeB64(raw)
			if err != nil {
				return nil, fmt.Errorf("protocol: enrollment payload [%d][%d]: %w", i, j, err)
			}
			s, err := audio.ReadWAV(bytes.NewReader(wav))
			if err != nil {
				return nil, fmt.Errorf("protocol: decoding enrollment audio [%d][%d]: %w", i, j, err)
			}
			decoded = append(decoded, s)
		}
		out = append(out, decoded)
	}
	return out, nil
}

// EncodeEnroll serializes and gzips an enrollment request.
func EncodeEnroll(req *EnrollRequest) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(req); err != nil {
		return nil, fmt.Errorf("protocol: encoding enrollment request: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("protocol: closing gzip stream: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEnroll ungzips and parses an enrollment request.
func DecodeEnroll(r io.Reader) (*EnrollRequest, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("protocol: opening gzip stream: %w", err)
	}
	defer zr.Close()
	data, err := io.ReadAll(io.LimitReader(zr, MaxPayloadBytes+1))
	if err != nil {
		return nil, fmt.Errorf("protocol: reading enrollment request: %w", err)
	}
	if len(data) > MaxPayloadBytes {
		return nil, ErrTooLarge
	}
	var req EnrollRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("protocol: parsing enrollment request: %w", err)
	}
	return &req, nil
}

// EncodeRequest serializes and gzips a request.
func EncodeRequest(req *VerifyRequest) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(req); err != nil {
		return nil, fmt.Errorf("protocol: encoding request: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("protocol: closing gzip stream: %w", err)
	}
	return buf.Bytes(), nil
}

// ErrTooLarge is returned when a payload exceeds MaxPayloadBytes.
var ErrTooLarge = errors.New("protocol: payload too large")

// DecodeRequest ungzips and parses a request.
func DecodeRequest(r io.Reader) (*VerifyRequest, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("protocol: opening gzip stream: %w", err)
	}
	defer zr.Close()
	limited := io.LimitReader(zr, MaxPayloadBytes+1)
	data, err := io.ReadAll(limited)
	if err != nil {
		return nil, fmt.Errorf("protocol: reading request: %w", err)
	}
	if len(data) > MaxPayloadBytes {
		return nil, ErrTooLarge
	}
	var req VerifyRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("protocol: parsing request: %w", err)
	}
	return &req, nil
}

// tracesToWire converts a sensor trace.
func tracesToWire(tr *sensors.Trace) []SampleJSON {
	if tr == nil {
		return nil
	}
	out := make([]SampleJSON, len(tr.Samples))
	for i, s := range tr.Samples {
		out[i] = SampleJSON{T: s.T, X: s.V.X, Y: s.V.Y, Z: s.V.Z}
	}
	return out
}

// wireToTrace converts back to a sensor trace.
func wireToTrace(name string, ss []SampleJSON) *sensors.Trace {
	tr := &sensors.Trace{Name: name, Samples: make([]sensors.Sample, len(ss))}
	for i, s := range ss {
		tr.Samples[i] = sensors.Sample{T: s.T}
		tr.Samples[i].V.X = s.X
		tr.Samples[i].V.Y = s.Y
		tr.Samples[i].V.Z = s.Z
	}
	return tr
}

// FromSession converts a core session into a wire request.
func FromSession(s *core.SessionData, pilotHz float64) (*VerifyRequest, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var captureBuf, voiceBuf bytes.Buffer
	if s.Gesture.Capture != nil {
		if err := audio.WriteWAV(&captureBuf, s.Gesture.Capture); err != nil {
			return nil, fmt.Errorf("protocol: encoding capture: %w", err)
		}
	}
	if err := audio.WriteWAV(&voiceBuf, s.Voice); err != nil {
		return nil, fmt.Errorf("protocol: encoding voice: %w", err)
	}
	req := &VerifyRequest{
		ClaimedUser: s.ClaimedUser,
		Gyro:        tracesToWire(s.Gesture.Gyro),
		Accel:       tracesToWire(s.Gesture.Accel),
		Mag:         tracesToWire(s.Gesture.Mag),
		SweepStart:  s.Gesture.SweepStart,
		SweepEnd:    s.Gesture.SweepEnd,
		PilotHz:     pilotHz,
		CaptureWAV:  encodeB64(captureBuf.Bytes()),
		VoiceWAV:    encodeB64(voiceBuf.Bytes()),
	}
	for _, m := range s.Field {
		req.Field = append(req.Field, FieldJSON{AngleDeg: m.AngleDeg, FreqHz: m.FreqHz, LevelDB: m.LevelDB})
	}
	return req, nil
}

// ToSession reconstructs a core session server-side, re-running the
// heading fusion and displacement recovery exactly as the paper's backend
// pipeline does on uploaded data.
func ToSession(req *VerifyRequest) (*core.SessionData, error) {
	if req == nil {
		return nil, errors.New("protocol: nil request")
	}
	voiceWAV, err := decodeB64(req.VoiceWAV)
	if err != nil {
		return nil, fmt.Errorf("protocol: voice payload: %w", err)
	}
	voice, err := audio.ReadWAV(bytes.NewReader(voiceWAV))
	if err != nil {
		return nil, fmt.Errorf("protocol: decoding voice: %w", err)
	}
	captureWAV, err := decodeB64(req.CaptureWAV)
	if err != nil {
		return nil, fmt.Errorf("protocol: capture payload: %w", err)
	}
	capture, err := audio.ReadWAV(bytes.NewReader(captureWAV))
	if err != nil {
		return nil, fmt.Errorf("protocol: decoding capture: %w", err)
	}
	gesture, err := trajectory.FromUpload(
		wireToTrace("gyro", req.Gyro),
		wireToTrace("accel", req.Accel),
		wireToTrace("mag", req.Mag),
		capture, req.PilotHz, req.SweepStart, req.SweepEnd,
	)
	if err != nil {
		return nil, fmt.Errorf("protocol: rebuilding gesture: %w", err)
	}
	s := &core.SessionData{
		ClaimedUser: req.ClaimedUser,
		Gesture:     gesture,
		Voice:       voice,
	}
	for _, m := range req.Field {
		s.Field = append(s.Field, soundfield.Measurement{
			AngleDeg: m.AngleDeg, FreqHz: m.FreqHz, LevelDB: m.LevelDB,
		})
	}
	return s, nil
}

// DecisionToResponse converts a pipeline decision.
func DecisionToResponse(d core.Decision) *VerifyResponse {
	resp := &VerifyResponse{
		Accepted:  d.Accepted,
		TraceID:   d.TraceID,
		ElapsedUS: d.Elapsed.Microseconds(),
	}
	if !d.Accepted {
		resp.FailedStage = d.FailedStage.String()
	}
	for _, st := range d.Stages {
		resp.Stages = append(resp.Stages, StageJSON{
			Stage:     st.Stage.String(),
			Pass:      st.Pass,
			Score:     st.Score,
			Detail:    st.Detail,
			ElapsedUS: st.Elapsed.Microseconds(),
		})
	}
	return resp
}

func encodeB64(raw []byte) []byte {
	out := make([]byte, base64.StdEncoding.EncodedLen(len(raw)))
	base64.StdEncoding.Encode(out, raw)
	return out
}

func decodeB64(enc []byte) ([]byte, error) {
	out := make([]byte, base64.StdEncoding.DecodedLen(len(enc)))
	n, err := base64.StdEncoding.Decode(out, enc)
	if err != nil {
		return nil, err
	}
	return out[:n], nil
}
