package protocol

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"voiceguard/internal/core"
	"voiceguard/internal/evidence"
)

func TestSessionEnvelopeRoundTrip(t *testing.T) {
	req := sampleSession(t, 11)
	env, err := SessionEnvelopeFromRequest("t-1", req, evidence.RedactNone)
	if err != nil {
		t.Fatal(err)
	}
	if env.TraceID != "t-1" || env.Redaction != evidence.RedactNone {
		t.Fatalf("envelope header: %+v", env)
	}
	if !evidence.ValidDigest(env.SessionDigest) {
		t.Fatalf("malformed session digest %q", env.SessionDigest)
	}
	back, err := RequestFromEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	// The unwrapped request must reconstruct the exact session the
	// original produced — the property bit-identical replay rests on.
	origSession, err := ToSession(req)
	if err != nil {
		t.Fatal(err)
	}
	backSession, err := ToSession(back)
	if err != nil {
		t.Fatal(err)
	}
	if core.SessionDigest(origSession) != core.SessionDigest(backSession) {
		t.Fatal("envelope round trip changed the session digest")
	}
	if core.SessionDigest(backSession) != env.SessionDigest {
		t.Fatal("envelope session digest disagrees with the unwrapped session")
	}
}

func TestSessionEnvelopeRedaction(t *testing.T) {
	req := sampleSession(t, 12)
	env, err := SessionEnvelopeFromRequest("t-2", req, evidence.RedactDigests)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Audio) != 2 {
		t.Fatalf("audio digest channels = %d, want voice+capture", len(env.Audio))
	}
	for _, ad := range env.Audio {
		if ad.Channel != "voice" && ad.Channel != "capture" {
			t.Fatalf("unexpected channel %q", ad.Channel)
		}
		if !evidence.ValidDigest(ad.Digest) || len(ad.FrameDigests) == 0 {
			t.Fatalf("channel %s: missing digests: %+v", ad.Channel, ad)
		}
		if ad.FrameLen != AudioFrameLen {
			t.Fatalf("channel %s: frame len %d", ad.Channel, ad.FrameLen)
		}
	}

	// The embedded request must carry no audio...
	var redacted VerifyRequest
	if err := json.Unmarshal(env.Request, &redacted); err != nil {
		t.Fatal(err)
	}
	if len(redacted.VoiceWAV) != 0 || len(redacted.CaptureWAV) != 0 {
		t.Fatal("redacted envelope still carries raw audio")
	}
	if bytes.Contains(env.Request, req.VoiceWAV[:64]) {
		t.Fatal("redacted envelope contains raw voice bytes")
	}
	// ...and the non-audio channels must survive.
	if redacted.ClaimedUser != req.ClaimedUser || len(redacted.Mag) != len(req.Mag) {
		t.Fatal("redaction dropped non-audio channels")
	}
	// The session digest survives redaction: it was computed pre-strip.
	if !evidence.ValidDigest(env.SessionDigest) {
		t.Fatal("session digest lost in redaction")
	}

	if _, err := RequestFromEnvelope(env); !errors.Is(err, ErrRedacted) {
		t.Fatalf("replaying a redacted envelope: err = %v, want ErrRedacted", err)
	}
}

func TestSessionEnvelopeUnknownMode(t *testing.T) {
	req := sampleSession(t, 13)
	if _, err := SessionEnvelopeFromRequest("t-3", req, "shredded"); err == nil {
		t.Fatal("unknown redaction mode accepted")
	}
	if _, err := RequestFromEnvelope(evidence.SessionEnvelope{Redaction: "shredded"}); err == nil {
		t.Fatal("unknown redaction mode unwrapped")
	}
}
