package protocol

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/sensors"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/stream"
)

// This file bridges the binary streaming protocol (internal/stream) to
// the JSON wire types, so both transports assemble byte-identical
// core.SessionData: the client slices a VerifyRequest into frames with
// StreamFrames (decoding the WAV payloads locally — the samples it ships
// are exactly the float64s the HTTP server would decode), and the server
// feeds arriving frames into a core.StreamVerifier with ApplyStreamFrame.

// StreamFrames slices a verification request into the streaming
// protocol's frame sequence: hello, segment marks, interleaved sensor
// chunks (magnetometer leading — it carries the earliest decisive
// evidence), the sound-field sweep, the ranging capture, the passphrase
// voice, and a finish frame sealing everything under the session digest.
func StreamFrames(traceID string, req *VerifyRequest) ([]stream.Frame, error) {
	if req == nil {
		return nil, fmt.Errorf("protocol: nil request")
	}
	hello, err := stream.EncodeHello(stream.Hello{
		TraceID:     traceID,
		ClaimedUser: req.ClaimedUser,
		PilotHz:     req.PilotHz,
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding hello: %w", err)
	}
	frames := []stream.Frame{
		{Type: stream.TypeHello, Payload: hello},
		{Type: stream.TypeSegmentMarks, Payload: stream.EncodeSegmentMarks(stream.SegmentMarks{
			SweepStart: req.SweepStart, SweepEnd: req.SweepEnd,
		})},
	}
	frames = append(frames, interleaveSensors(req)...)
	frames = append(frames, fieldFrames(req.Field)...)

	for _, ch := range []struct {
		kind stream.AudioKind
		wav  []byte
		what string
	}{
		{stream.AudioCapture, req.CaptureWAV, "capture"},
		{stream.AudioVoice, req.VoiceWAV, "voice"},
	} {
		raw, err := decodeB64(ch.wav)
		if err != nil {
			return nil, fmt.Errorf("protocol: %s payload: %w", ch.what, err)
		}
		sig, err := audio.ReadWAV(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("protocol: decoding %s: %w", ch.what, err)
		}
		frames = append(frames, audioFrames(ch.kind, sig)...)
	}

	digest := stream.NewSessionDigest()
	for _, f := range frames {
		digest.Add(f)
	}
	frames = append(frames, stream.Frame{Type: stream.TypeFinish, Payload: stream.EncodeFinish(stream.Finish{
		Digest: digest.Sum(),
		Frames: digest.Frames(),
	})})
	return frames, nil
}

// interleaveSensors round-robins chunks of the three sensor channels,
// magnetometer first, so the earliest decisive evidence (§IV-B3's
// loudspeaker signature) is also the earliest on the wire.
func interleaveSensors(req *VerifyRequest) []stream.Frame {
	channels := [][]stream.Frame{
		sensorFrames(stream.SensorMag, req.Mag),
		sensorFrames(stream.SensorGyro, req.Gyro),
		sensorFrames(stream.SensorAccel, req.Accel),
	}
	var out []stream.Frame
	for i := 0; ; i++ {
		emitted := false
		for _, ch := range channels {
			if i < len(ch) {
				out = append(out, ch[i])
				emitted = true
			}
		}
		if !emitted {
			return out
		}
	}
}

// sensorFrames chunks one sensor channel. An empty channel still emits
// one empty closing chunk so the evaluator can admit stages waiting on
// it.
func sensorFrames(kind stream.SensorKind, ss []SampleJSON) []stream.Frame {
	var out []stream.Frame
	for off := 0; ; off += stream.DefSensorChunkSamples {
		end := off + stream.DefSensorChunkSamples
		if end > len(ss) {
			end = len(ss)
		}
		c := stream.SensorChunk{Kind: kind, Samples: make([]stream.Sample, 0, end-off)}
		for _, s := range ss[off:end] {
			c.Samples = append(c.Samples, stream.Sample{T: s.T, X: s.X, Y: s.Y, Z: s.Z})
		}
		f := stream.Frame{Type: stream.TypeSensorChunk, Payload: stream.EncodeSensorChunk(c)}
		if end == len(ss) {
			f.Flags = stream.FlagLast
			return append(out, f)
		}
		out = append(out, f)
	}
}

// fieldFrames chunks the sound-field sweep.
func fieldFrames(ms []FieldJSON) []stream.Frame {
	var out []stream.Frame
	for off := 0; ; off += stream.DefFieldChunkPoints {
		end := off + stream.DefFieldChunkPoints
		if end > len(ms) {
			end = len(ms)
		}
		c := stream.FieldChunk{Points: make([]stream.FieldPoint, 0, end-off)}
		for _, m := range ms[off:end] {
			c.Points = append(c.Points, stream.FieldPoint{AngleDeg: m.AngleDeg, FreqHz: m.FreqHz, LevelDB: m.LevelDB})
		}
		f := stream.Frame{Type: stream.TypeFieldChunk, Payload: stream.EncodeFieldChunk(c)}
		if end == len(ms) {
			f.Flags = stream.FlagLast
			return append(out, f)
		}
		out = append(out, f)
	}
}

// audioFrames chunks one audio channel. The samples are the WAV-decoded
// float64s, so the server reassembles exactly what the HTTP path's
// ReadWAV would produce — the bit-parity guarantee across transports.
func audioFrames(kind stream.AudioKind, sig *audio.Signal) []stream.Frame {
	var out []stream.Frame
	for off := 0; ; off += stream.DefAudioChunkSamples {
		end := off + stream.DefAudioChunkSamples
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		c := stream.AudioChunk{Kind: kind, Rate: sig.Rate, Samples: sig.Samples[off:end]}
		f := stream.Frame{Type: stream.TypeAudioChunk, Payload: stream.EncodeAudioChunk(c)}
		if end == len(sig.Samples) {
			f.Flags = stream.FlagLast
			return append(out, f)
		}
		out = append(out, f)
	}
}

// ApplyStreamFrame feeds one client data frame into the incremental
// evaluator. A non-nil decision is an early REJECT. Finish, decision and
// error frames are not data: the connection handler owns them (the
// finish digest check needs the handler's byte-level accumulator).
func ApplyStreamFrame(ctx context.Context, v *core.StreamVerifier, f stream.Frame) (*core.Decision, error) {
	last := f.Flags&stream.FlagLast != 0
	switch f.Type {
	case stream.TypeHello:
		h, err := stream.DecodeHello(f.Payload)
		if err != nil {
			return nil, err
		}
		return nil, v.OfferHello(ctx, h.ClaimedUser, h.PilotHz)
	case stream.TypeSegmentMarks:
		m, err := stream.DecodeSegmentMarks(f.Payload)
		if err != nil {
			return nil, err
		}
		return nil, v.SetMarks(ctx, m.SweepStart, m.SweepEnd)
	case stream.TypeSensorChunk:
		c, err := stream.DecodeSensorChunk(f.Payload)
		if err != nil {
			return nil, err
		}
		samples := make([]sensors.Sample, len(c.Samples))
		for i, s := range c.Samples {
			samples[i] = sensors.Sample{T: s.T}
			samples[i].V.X = s.X
			samples[i].V.Y = s.Y
			samples[i].V.Z = s.Z
		}
		switch c.Kind {
		case stream.SensorGyro:
			return v.OfferGyro(ctx, samples, last)
		case stream.SensorAccel:
			return v.OfferAccel(ctx, samples, last)
		case stream.SensorMag:
			return v.OfferMag(ctx, samples, last)
		default:
			return nil, fmt.Errorf("protocol: unroutable sensor kind %d", c.Kind)
		}
	case stream.TypeFieldChunk:
		c, err := stream.DecodeFieldChunk(f.Payload)
		if err != nil {
			return nil, err
		}
		points := make([]soundfield.Measurement, len(c.Points))
		for i, p := range c.Points {
			points[i] = soundfield.Measurement{AngleDeg: p.AngleDeg, FreqHz: p.FreqHz, LevelDB: p.LevelDB}
		}
		return v.OfferField(ctx, points, last)
	case stream.TypeAudioChunk:
		c, err := stream.DecodeAudioChunk(f.Payload)
		if err != nil {
			return nil, err
		}
		if c.Kind == stream.AudioCapture {
			return v.OfferCapture(ctx, c.Rate, c.Samples, last)
		}
		return v.OfferVoice(ctx, c.Rate, c.Samples, last)
	default:
		return nil, fmt.Errorf("protocol: %v frame is not session data", f.Type)
	}
}

// StreamDecision wraps a verification response in a decision frame;
// early marks a verdict emitted before the client's finish frame.
func StreamDecision(resp *VerifyResponse, early bool) (stream.Frame, error) {
	payload, err := json.Marshal(resp)
	if err != nil {
		return stream.Frame{}, fmt.Errorf("protocol: encoding stream decision: %w", err)
	}
	f := stream.Frame{Type: stream.TypeDecision, Payload: payload}
	if early {
		f.Flags = stream.FlagEarly
	}
	return f, nil
}

// DecisionFromStreamFrame parses a decision frame back into the JSON
// response shape, reporting whether the server decided early.
func DecisionFromStreamFrame(f stream.Frame) (resp *VerifyResponse, early bool, err error) {
	if f.Type != stream.TypeDecision {
		return nil, false, fmt.Errorf("protocol: expected decision frame, got %v", f.Type)
	}
	resp = &VerifyResponse{}
	if err := json.Unmarshal(f.Payload, resp); err != nil {
		return nil, false, fmt.Errorf("protocol: parsing stream decision: %w", err)
	}
	return resp, f.Flags&stream.FlagEarly != 0, nil
}

// StreamError wraps a refusal in an error frame carrying the
// HTTP-equivalent status, an optional Retry-After hint in seconds, and
// the same JSON envelope writeJSONError would send.
func StreamError(status, retryAfterSec int, resp *VerifyResponse) (stream.Frame, error) {
	envelope, err := json.Marshal(resp)
	if err != nil {
		return stream.Frame{}, fmt.Errorf("protocol: encoding stream error: %w", err)
	}
	return stream.Frame{Type: stream.TypeError, Payload: stream.EncodeError(stream.ErrorInfo{
		Status:        uint16(status),
		RetryAfterSec: uint16(retryAfterSec),
		Envelope:      envelope,
	})}, nil
}

// ErrorFromStreamFrame parses an error frame into its status, retry
// hint, and JSON envelope.
func ErrorFromStreamFrame(f stream.Frame) (status, retryAfterSec int, resp *VerifyResponse, err error) {
	if f.Type != stream.TypeError {
		return 0, 0, nil, fmt.Errorf("protocol: expected error frame, got %v", f.Type)
	}
	info, err := stream.DecodeError(f.Payload)
	if err != nil {
		return 0, 0, nil, err
	}
	resp = &VerifyResponse{}
	if len(info.Envelope) > 0 {
		if err := json.Unmarshal(info.Envelope, resp); err != nil {
			return 0, 0, nil, fmt.Errorf("protocol: parsing stream error envelope: %w", err)
		}
	}
	return int(info.Status), int(info.RetryAfterSec), resp, nil
}
