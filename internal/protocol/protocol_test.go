package protocol

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/ranging"
	"voiceguard/internal/speech"
)

func sampleSession(t *testing.T, seed int64) *VerifyRequest {
	t.Helper()
	victim := speech.RandomProfile("victim", newRand(seed))
	s, err := attack.Genuine(victim, attack.Scenario{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	req, err := FromSession(s, ranging.DefaultPilotHz)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestRequestRoundTrip(t *testing.T) {
	req := sampleSession(t, 1)
	enc, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.ClaimedUser != req.ClaimedUser {
		t.Errorf("user = %q", got.ClaimedUser)
	}
	if len(got.Mag) != len(req.Mag) || len(got.Field) != len(req.Field) {
		t.Error("trace lengths changed in transit")
	}
	if got.PilotHz != req.PilotHz {
		t.Error("pilot frequency changed")
	}
}

func TestCompressionHelps(t *testing.T) {
	req := sampleSession(t, 2)
	enc, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	// The raw JSON is much larger than the gzip payload.
	if len(enc) < 1000 {
		t.Errorf("suspiciously small payload %d", len(enc))
	}
}

func TestToSessionRebuildsVerifiableSession(t *testing.T) {
	req := sampleSession(t, 3)
	session, err := ToSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := session.Validate(); err != nil {
		t.Fatalf("rebuilt session invalid: %v", err)
	}
	// The rebuilt gesture supports distance estimation.
	est, err := session.Gesture.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Distance-0.06) > 0.025 {
		t.Errorf("rebuilt distance = %v", est.Distance)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	if _, err := DecodeRequest(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("bad gzip accepted")
	}
	if _, err := ToSession(nil); err == nil {
		t.Error("nil request accepted")
	}
	// Corrupt voice payload.
	req := sampleSession(t, 4)
	req.VoiceWAV = []byte("!!!not-base64!!!")
	if _, err := ToSession(req); err == nil {
		t.Error("corrupt voice accepted")
	}
	req = sampleSession(t, 5)
	req.CaptureWAV = req.CaptureWAV[:10]
	if _, err := ToSession(req); err == nil {
		t.Error("truncated capture accepted")
	}
}

func TestTooLarge(t *testing.T) {
	// A payload expanding beyond MaxPayloadBytes must be rejected. Build
	// a gzip stream of zeros larger than the cap.
	var buf bytes.Buffer
	enc, err := EncodeRequest(&VerifyRequest{ClaimedUser: "x"})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(enc)
	// Construct an oversized stream: not worth 64 MB in a unit test, so
	// just verify the error type plumbing with the sentinel.
	if !errors.Is(ErrTooLarge, ErrTooLarge) {
		t.Fatal("sentinel broken")
	}
}

func TestEnrollRoundTrip(t *testing.T) {
	rng := newRand(30)
	p := speech.RandomProfile("u", rng)
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sessions [][]*audioSignal
	for s := 0; s < 2; s++ {
		var sess []*audioSignal
		for k := 0; k < 2; k++ {
			utt, err := synth.SayDigits("12")
			if err != nil {
				t.Fatal(err)
			}
			sess = append(sess, utt)
		}
		sessions = append(sessions, sess)
	}
	req, err := EnrollFromAudio("u", sessions)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeEnroll(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnroll(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "u" || len(got.Sessions) != 2 {
		t.Errorf("round trip: %+v", got)
	}
	decoded, err := SessionsFromEnroll(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || len(decoded[0]) != 2 {
		t.Fatalf("sessions shape %dx%d", len(decoded), len(decoded[0]))
	}
	if decoded[0][0].Len() != sessions[0][0].Len() {
		t.Error("audio length changed in transit")
	}
	// Corrupt payload rejected.
	got.Sessions[0][0] = []byte("!bad!")
	if _, err := SessionsFromEnroll(got); err == nil {
		t.Error("corrupt enrollment audio accepted")
	}
	if _, err := DecodeEnroll(bytes.NewReader([]byte("x"))); err == nil {
		t.Error("bad gzip accepted")
	}
}

func TestDecisionToResponse(t *testing.T) {
	req := sampleSession(t, 6)
	_ = req
	// Accepted decision.
	d := decisionFixture(true)
	resp := DecisionToResponse(d)
	if !resp.Accepted || resp.FailedStage != "" {
		t.Errorf("resp = %+v", resp)
	}
	// Rejected decision names the stage.
	d = decisionFixture(false)
	resp = DecisionToResponse(d)
	if resp.Accepted || resp.FailedStage == "" {
		t.Errorf("resp = %+v", resp)
	}
	if len(resp.Stages) != len(d.Stages) {
		t.Error("stage count mismatch")
	}
}
