package protocol

import (
	"context"
	"math"
	"testing"

	"voiceguard/internal/core"
	"voiceguard/internal/stream"
)

func TestStreamFramesShapeAndDigest(t *testing.T) {
	req := sampleSession(t, 7)
	frames, err := StreamFrames("trace-7", req)
	if err != nil {
		t.Fatal(err)
	}
	if frames[0].Type != stream.TypeHello {
		t.Fatalf("first frame = %v, want hello", frames[0].Type)
	}
	if frames[1].Type != stream.TypeSegmentMarks {
		t.Fatalf("second frame = %v, want segment_marks", frames[1].Type)
	}
	last := frames[len(frames)-1]
	if last.Type != stream.TypeFinish {
		t.Fatalf("last frame = %v, want finish", last.Type)
	}

	// The finish digest must reproduce over the data frames, and each of
	// the six channels must close exactly once.
	digest := stream.NewSessionDigest()
	closes := map[string]int{}
	for _, f := range frames[:len(frames)-1] {
		digest.Add(f)
		if f.Flags&stream.FlagLast == 0 {
			continue
		}
		switch f.Type {
		case stream.TypeSensorChunk:
			c, err := stream.DecodeSensorChunk(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			closes[c.Kind.String()]++
		case stream.TypeAudioChunk:
			c, err := stream.DecodeAudioChunk(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			closes[c.Kind.String()]++
		case stream.TypeFieldChunk:
			closes["field"]++
		}
	}
	for _, ch := range []string{"gyro", "accel", "mag", "field", "capture", "voice"} {
		if closes[ch] != 1 {
			t.Errorf("channel %s closed %d times, want 1", ch, closes[ch])
		}
	}
	fin, err := stream.DecodeFinish(last.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Digest != digest.Sum() {
		t.Fatal("finish digest does not reproduce over the data frames")
	}
	if fin.Frames != digest.Frames() {
		t.Fatalf("finish frame count %d, want %d", fin.Frames, digest.Frames())
	}

	// The magnetometer channel closes before the audio channels begin:
	// the interleave puts the decisive evidence first.
	magClosed, audioSeen := -1, -1
	for i, f := range frames {
		if f.Type == stream.TypeSensorChunk && f.Flags&stream.FlagLast != 0 {
			if c, err := stream.DecodeSensorChunk(f.Payload); err == nil && c.Kind == stream.SensorMag {
				magClosed = i
			}
		}
		if f.Type == stream.TypeAudioChunk && audioSeen < 0 {
			audioSeen = i
		}
	}
	if magClosed < 0 || audioSeen < 0 || magClosed > audioSeen {
		t.Errorf("mag closes at frame %d, audio starts at %d — mag must complete first", magClosed, audioSeen)
	}
}

// TestStreamFramesRebuildIdenticalSession pins the bit-parity guarantee:
// replaying the frames through a StreamVerifier-independent reassembly
// yields exactly the floats ToSession decodes from the JSON request.
func TestStreamFramesRebuildIdenticalSession(t *testing.T) {
	req := sampleSession(t, 8)
	want, err := ToSession(req)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := StreamFrames("trace-8", req)
	if err != nil {
		t.Fatal(err)
	}

	var voice, capture []float64
	var magT []float64
	for _, f := range frames {
		switch f.Type {
		case stream.TypeAudioChunk:
			c, err := stream.DecodeAudioChunk(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if c.Kind == stream.AudioVoice {
				voice = append(voice, c.Samples...)
			} else {
				capture = append(capture, c.Samples...)
			}
		case stream.TypeSensorChunk:
			c, err := stream.DecodeSensorChunk(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if c.Kind == stream.SensorMag {
				for _, s := range c.Samples {
					magT = append(magT, s.T)
				}
			}
		}
	}
	if len(voice) != len(want.Voice.Samples) {
		t.Fatalf("voice length %d, want %d", len(voice), len(want.Voice.Samples))
	}
	for i := range voice {
		if math.Float64bits(voice[i]) != math.Float64bits(want.Voice.Samples[i]) {
			t.Fatalf("voice sample %d not bit-identical to the HTTP decode", i)
		}
	}
	if len(capture) != len(want.Gesture.Capture.Samples) {
		t.Fatalf("capture length %d, want %d", len(capture), len(want.Gesture.Capture.Samples))
	}
	for i := range capture {
		if math.Float64bits(capture[i]) != math.Float64bits(want.Gesture.Capture.Samples[i]) {
			t.Fatalf("capture sample %d not bit-identical to the HTTP decode", i)
		}
	}
	if len(magT) != want.Gesture.Mag.Len() {
		t.Fatalf("mag length %d, want %d", len(magT), want.Gesture.Mag.Len())
	}
}

func TestApplyStreamFrameRoutesAndRefuses(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.NewStreamVerifier("apply-9")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := sampleSession(t, 9)
	frames, err := StreamFrames("apply-9", req)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[:len(frames)-1] {
		if _, err := ApplyStreamFrame(ctx, v, f); err != nil {
			t.Fatalf("applying %v frame: %v", f.Type, err)
		}
	}
	// Finish and server-direction frames are not data.
	for _, f := range []stream.Frame{
		frames[len(frames)-1],
		{Type: stream.TypeDecision},
		{Type: stream.TypeError},
	} {
		if _, err := ApplyStreamFrame(ctx, v, f); err == nil {
			t.Errorf("%v frame accepted as session data", f.Type)
		}
	}
	// Corrupt payloads surface decode errors.
	if _, err := ApplyStreamFrame(ctx, v, stream.Frame{Type: stream.TypeSensorChunk, Payload: []byte{9}}); err == nil {
		t.Error("corrupt sensor chunk accepted")
	}
}

func TestStreamDecisionAndErrorRoundTrip(t *testing.T) {
	resp := &VerifyResponse{Accepted: false, FailedStage: "loudspeaker-detection", TraceID: "d-1", ElapsedUS: 1234}
	f, err := StreamDecision(resp, true)
	if err != nil {
		t.Fatal(err)
	}
	got, early, err := DecisionFromStreamFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if !early || got.FailedStage != resp.FailedStage || got.TraceID != resp.TraceID {
		t.Fatalf("decision round trip: early=%v got=%+v", early, got)
	}
	if _, _, err := DecisionFromStreamFrame(stream.Frame{Type: stream.TypeError}); err == nil {
		t.Error("error frame parsed as decision")
	}

	ef, err := StreamError(429, 2, &VerifyResponse{Error: "overloaded", TraceID: "e-1"})
	if err != nil {
		t.Fatal(err)
	}
	status, retry, env, err := ErrorFromStreamFrame(ef)
	if err != nil {
		t.Fatal(err)
	}
	if status != 429 || retry != 2 || env.Error != "overloaded" || env.TraceID != "e-1" {
		t.Fatalf("error round trip: status=%d retry=%d env=%+v", status, retry, env)
	}
	if _, _, _, err := ErrorFromStreamFrame(f); err == nil {
		t.Error("decision frame parsed as error")
	}
}
