package protocol

// Evidence-pack session envelopes: a verification request wrapped with
// its redaction mode and content digests. Under evidence.RedactNone the
// envelope embeds the request verbatim; under evidence.RedactDigests the
// raw audio payloads are stripped and replaced by whole-signal and
// per-frame content digests, so a pack can prove exactly what audio the
// cascade heard without containing a reusable recording of the user's
// voice — the privacy mode for packs that leave the deployment.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/evidence"
)

// AudioFrameLen is the per-frame digest window used when redacting
// audio: 400 samples = one 25 ms MFCC analysis frame at 16 kHz, so frame
// digests line up with the feature front-end's view of the signal.
const AudioFrameLen = 400

// SessionEnvelopeFromRequest wraps a verification request for an
// evidence pack. The session digest is computed over the decoded session
// — the exact bytes the cascade consumed — so it survives redaction and
// a replayer can prove input identity without the raw audio.
func SessionEnvelopeFromRequest(traceID string, req *VerifyRequest, mode string) (evidence.SessionEnvelope, error) {
	env := evidence.SessionEnvelope{TraceID: traceID, Redaction: mode}
	if req == nil {
		return env, errors.New("protocol: nil request")
	}
	if session, err := ToSession(req); err == nil {
		env.SessionDigest = core.SessionDigest(session)
	}
	switch mode {
	case evidence.RedactNone:
		raw, err := json.Marshal(req)
		if err != nil {
			return env, fmt.Errorf("protocol: encoding session envelope: %w", err)
		}
		env.Request = raw
		return env, nil
	case evidence.RedactDigests:
		redacted := *req
		redacted.VoiceWAV = nil
		redacted.CaptureWAV = nil
		for _, ch := range []struct {
			name string
			wav  []byte
		}{{"voice", req.VoiceWAV}, {"capture", req.CaptureWAV}} {
			if len(ch.wav) == 0 {
				continue
			}
			raw, err := decodeB64(ch.wav)
			if err != nil {
				return env, fmt.Errorf("protocol: redacting %s payload: %w", ch.name, err)
			}
			sig, err := audio.ReadWAV(bytes.NewReader(raw))
			if err != nil {
				return env, fmt.Errorf("protocol: redacting %s audio: %w", ch.name, err)
			}
			env.Audio = append(env.Audio, core.AudioDigest(ch.name, sig, AudioFrameLen))
		}
		raw, err := json.Marshal(&redacted)
		if err != nil {
			return env, fmt.Errorf("protocol: encoding redacted envelope: %w", err)
		}
		env.Request = raw
		return env, nil
	default:
		return env, fmt.Errorf("protocol: unknown redaction mode %q", mode)
	}
}

// ErrRedacted is returned when replay needs the raw session but the pack
// only carries digests.
var ErrRedacted = errors.New("protocol: session audio redacted; pack cannot be replayed")

// RequestFromEnvelope unwraps a session envelope back into a replayable
// verification request. Redacted envelopes cannot be replayed — the
// audio is gone by design — and return ErrRedacted.
func RequestFromEnvelope(env evidence.SessionEnvelope) (*VerifyRequest, error) {
	switch env.Redaction {
	case evidence.RedactNone:
	case evidence.RedactDigests:
		return nil, fmt.Errorf("%w (trace %s)", ErrRedacted, env.TraceID)
	default:
		return nil, fmt.Errorf("protocol: unknown redaction mode %q (trace %s)", env.Redaction, env.TraceID)
	}
	var req VerifyRequest
	if err := json.Unmarshal(env.Request, &req); err != nil {
		return nil, fmt.Errorf("protocol: parsing session envelope (trace %s): %w", env.TraceID, err)
	}
	return &req, nil
}
