package protocol

import (
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
)

// audioSignal shortens the audio type in table-heavy tests.
type audioSignal = audio.Signal

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// decisionFixture builds a Decision for response-conversion tests.
func decisionFixture(accepted bool) core.Decision {
	d := core.Decision{Accepted: accepted}
	d.Stages = []core.StageResult{
		{Stage: core.StageDistance, Pass: true, Score: 0.01, Detail: "source at 5.8 cm"},
	}
	if !accepted {
		d.Stages = append(d.Stages, core.StageResult{
			Stage: core.StageLoudspeaker, Pass: false, Score: -3, Detail: "magnetic swing",
		})
		d.FailedStage = core.StageLoudspeaker
	}
	return d
}
