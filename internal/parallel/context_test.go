package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoContextBackgroundRunsEverything checks the uncancellable fast
// path: every task runs to completion and the call reports success, like
// plain Do.
func TestDoContextBackgroundRunsEverything(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var ran atomic.Int32
		tasks := make([]func(), 5)
		for i := range tasks {
			tasks[i] = func() { ran.Add(1) }
		}
		if err := DoContext(ctx, tasks...); err != nil {
			t.Fatalf("DoContext = %v", err)
		}
		if ran.Load() != 5 {
			t.Fatalf("ran %d of 5 tasks", ran.Load())
		}
	}
}

// TestDoContextPreCancelledRunsNothing checks that a context that is
// already dead admits no work at all.
func TestDoContextPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := DoContext(ctx, func() { ran.Add(1) }, func() { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoContext = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d tasks", ran.Load())
	}
}

// TestDoContextAbandonsHungTask checks the load-shedding contract: a task
// that outlives the context is abandoned — DoContext returns the context
// error promptly — while the task itself detaches and finishes in the
// background without tripping the race detector.
func TestDoContextAbandonsHungTask(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	finished := make(chan struct{})
	var fast atomic.Int32
	returned := make(chan error, 1)
	go func() {
		returned <- DoContext(ctx,
			func() { fast.Add(1) },
			func() {
				close(started)
				<-release
				close(finished)
			},
		)
	}()
	// Cancel only once the hung task is provably in flight, otherwise the
	// pre-cancellation entry check legitimately runs nothing at all.
	<-started
	cancel()
	select {
	case err := <-returned:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DoContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DoContext did not return after cancellation")
	}
	// The hung task is still alive; let it finish and observe completion
	// so the detached goroutine does not outlive the test.
	close(release)
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned task never completed")
	}
}

// TestDoContextCompletedBeatsCancellation checks that a batch whose tasks
// all finished reports success even when the context dies around the same
// time — completion is never misreported as a timeout.
func TestDoContextCompletedBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	if err := DoContext(ctx, func() { ran.Add(1) }); err != nil {
		t.Fatalf("DoContext = %v", err)
	}
	if ran.Load() != 1 {
		t.Fatal("task did not run")
	}
}

// TestDoContextEmpty checks the degenerate call.
func TestDoContextEmpty(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := DoContext(ctx); err != nil {
		t.Fatalf("DoContext() = %v", err)
	}
}

// BenchmarkDoContextBackground pins the uncancellable fast path against
// plain Do: an uncancellable context must add no goroutines, channels or
// allocations beyond Do itself, so the seed-compatible VerifyTraced path
// stays benchmark-neutral.
func BenchmarkDoContextBackground(b *testing.B) {
	ctx := context.Background()
	fns := []func(){func() {}, func() {}, func() {}, func() {}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DoContext(ctx, fns...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDo is the baseline for BenchmarkDoContextBackground.
func BenchmarkDo(b *testing.B) {
	fns := []func(){func() {}, func() {}, func() {}, func() {}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Do(fns...)
	}
}
