package parallel

// Traced fan-out: the same deterministic block partition as Range, with
// one child span recorded per worker block so a trace shows how the index
// space actually split across cores — PR 3's speculative parallelism made
// that invisible to timestamp-sorted flat traces. A nil parent span (the
// common untraced case) falls straight through to Range, so the hot path
// pays one pointer test.

import "voiceguard/internal/telemetry"

// SpanRange is Range with per-block child spans: each worker block opens
// a span named name under parent carrying the block's [lo, hi) bounds,
// runs fn, and ends the span when the block completes. Output placement
// and determinism guarantees are identical to Range.
func SpanRange(parent *telemetry.Span, name string, n int, fn func(lo, hi int)) {
	if parent == nil {
		Range(n, fn)
		return
	}
	Range(n, func(lo, hi int) {
		sp := parent.StartSpan(name)
		sp.SetInt("block_lo", int64(lo))
		sp.SetInt("block_hi", int64(hi))
		fn(lo, hi)
		sp.End()
	})
}
