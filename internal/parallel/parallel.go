// Package parallel is the execution layer for the numeric hot path: a
// GOMAXPROCS-sized fork-join helper used by the DSP, feature-extraction
// and GMM-scoring stages to fan independent per-frame work out across
// cores. The design rules, in order of importance:
//
//   - Determinism. Work is split into contiguous index blocks and every
//     result is written to its own output index, so the output is
//     bit-identical to a serial loop regardless of scheduling, worker
//     count or GOMAXPROCS. There are no atomics in the reduction path —
//     callers that need a scalar reduce the per-index results serially.
//   - Serial fallback. Small inputs (below a per-call threshold) and
//     single-CPU processes run the plain loop on the caller's goroutine:
//     no goroutines, no synchronization, identical results.
//   - No retained state. The package keeps no worker pool alive between
//     calls; a fork-join burst is cheap (one WaitGroup, W-1 goroutines)
//     and keeps the package trivially correct under concurrent use.
//
// DoContext is the deadline-aware sibling of Do for the serving path: it
// stops waiting when the request context dies so a hung pipeline stage
// cannot hold its connection forever. Cancellation only abandons the
// wait — tasks already running detach and finish in the background — so
// determinism of completed work is unchanged.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// minParallel is the default smallest n worth forking for. Below this the
// per-goroutine overhead (~1µs each) dominates any conceivable per-item
// win, so For and Range run serially.
const minParallel = 8

// Workers returns the number of workers a fan-out call will use: GOMAXPROCS,
// the same sizing the Go runtime uses for its own scheduling.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n), fanning the index space out over
// Workers() contiguous blocks. fn must be safe to call concurrently for
// distinct i and must write results only to per-i locations. Results are
// deterministic: the partition affects only scheduling, never output.
// n below the internal threshold (or a single-CPU process) runs serially
// on the calling goroutine.
func For(n int, fn func(i int)) {
	Range(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Range partitions [0, n) into at most Workers() contiguous [lo, hi)
// blocks and runs fn on each block concurrently. It is the batched form
// of For: callers that need per-worker scratch (a pooled FFT buffer, a
// responsibility vector) acquire it once per block instead of once per
// index. fn must treat the blocks as disjoint; Range returns when every
// block is done.
func Range(n int, fn func(lo, hi int)) {
	RangeMin(n, minParallel, fn)
}

// RangeMin is Range with a caller-chosen serial threshold: the fan-out
// engages only when n ≥ min. Range's default threshold is tuned for
// per-index work in the microsecond range; paths whose per-index cost is
// tens of nanoseconds (the compiled GMM scoring kernels) pass a larger
// min so a short utterance runs serially on the caller's goroutine while
// a batched scoring pass still spreads across cores. min below the
// package default is clamped up to it. Results are bit-identical to the
// serial loop either way.
func RangeMin(n, min int, fn func(lo, hi int)) {
	w := Workers()
	if n <= 0 {
		return
	}
	if min < minParallel {
		min = minParallel
	}
	if w < 2 || n < min {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	// Block b covers [b*n/w, (b+1)*n/w): the same even partition every
	// call, so scheduling is reproducible given n and GOMAXPROCS.
	for b := 1; b < w; b++ {
		lo, hi := b*n/w, (b+1)*n/w
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	fn(0, n/w)
	wg.Wait()
}

// Do runs the given functions concurrently and returns when all are done.
// It is the coarse-grained sibling of Range for a handful of expensive,
// heterogeneous tasks (pipeline stages) rather than a large uniform index
// space: no minimum-size threshold applies, the caller's goroutine runs
// the first task, and a single-CPU process runs everything serially in
// argument order. Each task must write only to its own result location.
func Do(fns ...func()) {
	if len(fns) < 2 || Workers() < 2 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	fns[0]()
	wg.Wait()
}

// DoContext runs the given functions concurrently like Do, but stops
// waiting when ctx is cancelled: it returns ctx.Err() as soon as the
// context dies, even if some functions are still running. Goroutines
// cannot be killed, so an unfinished function detaches and runs to
// completion in the background — after a non-nil return the caller must
// not read the result locations of tasks it cannot prove finished, and
// each fn should observe ctx itself to stop early. A context that cannot
// be cancelled (ctx.Done() == nil, e.g. context.Background()) delegates
// to Do — the zero-overhead fast path the untimed serving path and the
// benchmarks take. Unlike Do, a cancellable context launches every fn on
// its own goroutine (including the first) so the caller stays free to
// return at cancellation.
func DoContext(ctx context.Context, fns ...func()) error {
	if ctx == nil || ctx.Done() == nil {
		Do(fns...)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(fns) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// The tasks may have completed in the same instant the context
		// died; a finished batch is a success regardless of which channel
		// the select drew first.
		select {
		case <-done:
			return nil
		default:
			return ctx.Err()
		}
	}
}

// Map applies fn to every element of in and returns the results in input
// order. fn receives the element index and value; it must be safe to call
// concurrently for distinct indices. Output ordering is deterministic and
// identical to the serial loop.
func Map[T, U any](in []T, fn func(i int, v T) U) []U {
	if in == nil {
		return nil
	}
	out := make([]U, len(in))
	For(len(in), func(i int) {
		out[i] = fn(i, in[i])
	})
	return out
}
