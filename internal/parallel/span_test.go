package parallel

import (
	"sort"
	"sync/atomic"
	"testing"

	"voiceguard/internal/telemetry"
)

func TestSpanRangeNilParentCoversRange(t *testing.T) {
	const n = 1000
	var hits [n]atomic.Int32
	SpanRange(nil, "block", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestSpanRangeRecordsBlockPartition(t *testing.T) {
	const n = 1000
	tr := telemetry.NewTracer(telemetry.TracerConfig{})
	root := tr.StartTrace("req", "verify")
	var hits [n]atomic.Int32
	SpanRange(root, "stft-block", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	rec := tr.Finish(root, telemetry.Verdict{Accepted: true})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}

	// Every block span hangs off the parent and together the recorded
	// [lo, hi) bounds partition the index space exactly.
	type block struct{ lo, hi int64 }
	var blocks []block
	for _, sp := range rec.Spans[1:] {
		if sp.Name != "stft-block" {
			t.Fatalf("unexpected span %q", sp.Name)
		}
		if sp.ParentID != rec.Spans[0].SpanID {
			t.Fatalf("block span not a child of the parent: %+v", sp)
		}
		lo, ok := sp.Attr("block_lo")
		if !ok {
			t.Fatalf("block span missing block_lo: %+v", sp)
		}
		hi, ok := sp.Attr("block_hi")
		if !ok {
			t.Fatalf("block span missing block_hi: %+v", sp)
		}
		blocks = append(blocks, block{lo.Int, hi.Int})
	}
	if len(blocks) == 0 {
		t.Fatal("no block spans recorded")
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].lo < blocks[j].lo })
	next := int64(0)
	for _, b := range blocks {
		if b.lo != next || b.hi <= b.lo {
			t.Fatalf("blocks do not partition [0,%d): %+v", n, blocks)
		}
		next = b.hi
	}
	if next != n {
		t.Fatalf("blocks cover [0,%d), want [0,%d)", next, n)
	}
}
