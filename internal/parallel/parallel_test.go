package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks that every index is visited exactly
// once for sizes around the serial threshold and the worker count.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// TestRangeBlocksPartition checks that Range's blocks tile [0, n) exactly.
func TestRangeBlocksPartition(t *testing.T) {
	for _, n := range []int{1, 8, 17, 100, 1001} {
		covered := make([]int32, n)
		Range(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad block [%d, %d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

// TestRangeMinThreshold checks the caller-chosen serial threshold: below
// min the whole range arrives as one block on the calling goroutine, at
// or above it the blocks still tile [0, n) exactly, and a min below the
// package default is clamped up to it.
func TestRangeMinThreshold(t *testing.T) {
	// n < min: exactly one block, [0, n).
	var blocks [][2]int
	RangeMin(100, 256, func(lo, hi int) {
		blocks = append(blocks, [2]int{lo, hi})
	})
	if len(blocks) != 1 || blocks[0] != [2]int{0, 100} {
		t.Errorf("below-threshold blocks = %v, want one [0, 100)", blocks)
	}
	// min below the package default clamps up: n under minParallel stays
	// serial even with min = 1.
	blocks = blocks[:0]
	RangeMin(minParallel-1, 1, func(lo, hi int) {
		blocks = append(blocks, [2]int{lo, hi})
	})
	if len(blocks) != 1 || blocks[0] != [2]int{0, minParallel - 1} {
		t.Errorf("clamped-min blocks = %v, want one serial block", blocks)
	}
	// n ≥ min: blocks tile [0, n) exactly once regardless of scheduling.
	for _, n := range []int{256, 257, 1000} {
		covered := make([]int32, n)
		RangeMin(n, 256, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad block [%d, %d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

// TestMapMatchesSerial checks output ordering and bit-identical results
// against the plain loop.
func TestMapMatchesSerial(t *testing.T) {
	in := make([]float64, 513)
	for i := range in {
		in[i] = float64(i) * 0.25
	}
	sq := func(_ int, v float64) float64 { return v*v + 1 }
	got := Map(in, sq)
	for i, v := range in {
		if want := sq(i, v); got[i] != want { //lint:allow floatcmp bit-identity is the contract under test
			t.Fatalf("Map[%d] = %v, want %v", i, got[i], want)
		}
	}
	if Map[int, int](nil, func(int, int) int { return 0 }) != nil {
		t.Error("Map(nil) should be nil")
	}
}

// TestSmallInputStaysOnCallerGoroutine checks the serial fallback: below
// the threshold no new goroutines run the body.
func TestSmallInputStaysOnCallerGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	For(minParallel-1, func(i int) {
		if g := runtime.NumGoroutine(); g > before+1 {
			// Allow unrelated runtime goroutines a little slack; the
			// fork path would add Workers()-1 at once.
			t.Errorf("serial fallback spawned goroutines: %d > %d", g, before)
		}
	})
}

// TestDoRunsEveryTask checks that Do executes each task exactly once and
// writes land in per-task slots, for 0..5 tasks (spanning the serial and
// forked paths).
func TestDoRunsEveryTask(t *testing.T) {
	for n := 0; n <= 5; n++ {
		hits := make([]int32, n)
		tasks := make([]func(), n)
		for i := range tasks {
			tasks[i] = func() { atomic.AddInt32(&hits[i], 1) }
		}
		Do(tasks...)
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: task %d ran %d times", n, i, h)
			}
		}
	}
}

// TestDoWaitsForAllTasks checks the join: results written by every task are
// visible when Do returns.
func TestDoWaitsForAllTasks(t *testing.T) {
	var a, b, c int
	Do(
		func() { a = 1 },
		func() { b = 2 },
		func() { c = 3 },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("results not visible after Do: %d %d %d", a, b, c)
	}
}

// TestWorkersPositive pins the sizing contract.
func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
