// Package magnetics models the magnetic environment the paper's
// loudspeaker-detection component senses: the static dipole field of a
// loudspeaker's permanent magnet, the dynamic field of its driven voice
// coil, the geomagnetic background, ferromagnetic shielding (Mu-metal) and
// ambient electromagnetic interference from nearby electronics (computer,
// car). All field values are in microtesla (µT), positions in meters and
// time in seconds.
package magnetics

import (
	"math"
	"math/rand"

	"voiceguard/internal/geometry"
	"voiceguard/internal/stats"
)

// Mu0Over4Pi is µ0/4π expressed so that dipole fields computed with
// moments in A·m² and distances in meters come out in µT.
// (µ0/4π = 1e-7 T·m/A = 0.1 µT·m³/(A·m²)).
const Mu0Over4Pi = 0.1

// FieldSource produces a magnetic field vector at a point and time.
type FieldSource interface {
	// FieldAt returns the field contribution in µT at position p (meters)
	// and time t (seconds).
	FieldAt(p geometry.Vec3, t float64) geometry.Vec3
}

// Dipole is a static magnetic dipole — the model for a loudspeaker's
// permanent magnet.
type Dipole struct {
	// Position is the dipole location in meters.
	Position geometry.Vec3
	// Moment is the dipole moment in A·m². Typical small-speaker magnets
	// are 0.02–1 A·m²; the magnitude is calibrated so near-cone fields
	// fall in the 30–210 µT range the paper reports (Fig. 10).
	Moment geometry.Vec3
}

// FieldAt implements FieldSource using the point-dipole equation
// B = (µ0/4π)·(3(m·r̂)r̂ − m)/r³.
func (d Dipole) FieldAt(p geometry.Vec3, _ float64) geometry.Vec3 {
	r := p.Sub(d.Position)
	dist := r.Norm()
	if dist < 1e-6 {
		dist = 1e-6
	}
	rhat := r.Scale(1 / dist)
	mdot := d.Moment.Dot(rhat)
	num := rhat.Scale(3 * mdot).Sub(d.Moment)
	return num.Scale(Mu0Over4Pi / (dist * dist * dist))
}

// VoiceCoil is the dynamic dipole created by the loudspeaker's driven
// coil: its moment follows the audio drive signal.
type VoiceCoil struct {
	// Position is the coil location in meters.
	Position geometry.Vec3
	// Axis is the coil axis (unit vector).
	Axis geometry.Vec3
	// MomentGain converts the instantaneous drive amplitude (nominal
	// [-1, 1]) into a dipole moment in A·m². Typically 1–10% of the
	// permanent magnet's moment.
	MomentGain float64 // unit: A*m^2
	// Drive returns the instantaneous normalized drive amplitude at time
	// t; nil means silence.
	Drive func(t float64) float64
}

// FieldAt implements FieldSource.
// unit: t s
func (c VoiceCoil) FieldAt(p geometry.Vec3, t float64) geometry.Vec3 {
	if c.Drive == nil {
		return geometry.Vec3{}
	}
	m := c.Drive(t) * c.MomentGain
	d := Dipole{Position: c.Position, Moment: c.Axis.Normalize().Scale(m)}
	return d.FieldAt(p, t)
}

// Geomagnetic is the Earth's background field with optional slow indoor
// distortion (steel furniture, rebar) modeled as a spatial gradient.
type Geomagnetic struct {
	// Base is the undisturbed field vector in µT (≈25–65 µT magnitude).
	Base geometry.Vec3
	// GradientScale adds a position-dependent distortion of roughly this
	// many µT per meter, as observed indoors.
	GradientScale float64 // unit: µT/m
}

// DefaultGeomagnetic returns a typical mid-latitude field: ~48 µT with a
// downward dip.
func DefaultGeomagnetic() Geomagnetic {
	return Geomagnetic{
		Base:          geometry.Vec3{X: 20, Y: 5, Z: -43},
		GradientScale: 2,
	}
}

// FieldAt implements FieldSource.
func (g Geomagnetic) FieldAt(p geometry.Vec3, _ float64) geometry.Vec3 {
	if stats.IsZero(g.GradientScale) {
		return g.Base
	}
	// A smooth deterministic pseudo-random spatial distortion.
	dx := math.Sin(7*p.X+3*p.Y) * g.GradientScale * (p.Norm())
	dy := math.Sin(5*p.Y+2*p.Z) * g.GradientScale * (p.Norm())
	dz := math.Cos(4*p.Z+6*p.X) * g.GradientScale * (p.Norm())
	return g.Base.Add(geometry.Vec3{X: dx, Y: dy, Z: dz})
}

// Scene aggregates field sources; it is itself a FieldSource.
type Scene struct {
	sources []FieldSource
}

// NewScene builds a scene from sources.
func NewScene(sources ...FieldSource) *Scene {
	return &Scene{sources: append([]FieldSource(nil), sources...)}
}

// Add appends a source.
func (s *Scene) Add(src FieldSource) { s.sources = append(s.sources, src) }

// FieldAt sums all source contributions.
// unit: t s
func (s *Scene) FieldAt(p geometry.Vec3, t float64) geometry.Vec3 {
	var b geometry.Vec3
	for _, src := range s.sources {
		b = b.Add(src.FieldAt(p, t))
	}
	return b
}

// NumSources returns the number of registered sources.
func (s *Scene) NumSources() int { return len(s.sources) }

// OnAxisDipoleField returns the on-axis field magnitude in µT of a dipole
// with moment m (A·m²) at distance r meters: B = 2·(µ0/4π)·m/r³. Useful
// for calibrating catalog entries.
// unit: moment A*m^2, r m
func OnAxisDipoleField(moment, r float64) float64 {
	if r < 1e-6 {
		r = 1e-6
	}
	return 2 * Mu0Over4Pi * moment / (r * r * r)
}

// MomentForField inverts OnAxisDipoleField: the moment needed to produce
// field b (µT) on axis at distance r (m).
// unit: b uT, r m
func MomentForField(b, r float64) float64 {
	return b * r * r * r / (2 * Mu0Over4Pi)
}

// Interference is broadband magnetic noise from electronics: mains-hum
// harmonics plus filtered white noise, with amplitude falling off with
// distance from the emitting appliance.
type Interference struct {
	// Position is the appliance location.
	Position geometry.Vec3
	// AmplitudeAt1m is the RMS disturbance in µT at one meter.
	AmplitudeAt1m float64 // unit: µT
	// MainsHz is the mains frequency (50 or 60 Hz).
	MainsHz float64
	// Falloff is the distance exponent (2 for near-field appliances).
	Falloff float64 // unit: dimensionless
	// rng drives the stochastic component; seeded via NewInterference.
	rng *rand.Rand
	// phase offsets give each instance a distinct hum phase.
	phase [3]float64
}

// NewInterference constructs an interference source with a deterministic
// noise stream.
// unit: ampAt1m uT, falloff dimensionless
func NewInterference(pos geometry.Vec3, ampAt1m, mainsHz, falloff float64, seed int64) *Interference {
	rng := rand.New(rand.NewSource(seed))
	i := &Interference{
		Position:      pos,
		AmplitudeAt1m: ampAt1m,
		MainsHz:       mainsHz,
		Falloff:       falloff,
		rng:           rng,
	}
	for k := range i.phase {
		i.phase[k] = rng.Float64() * 2 * math.Pi
	}
	return i
}

// FieldAt implements FieldSource.
// unit: t s
func (i *Interference) FieldAt(p geometry.Vec3, t float64) geometry.Vec3 {
	d := p.Dist(i.Position)
	if d < 0.05 {
		d = 0.05
	}
	amp := i.AmplitudeAt1m / math.Pow(d, i.Falloff)
	w := 2 * math.Pi * i.MainsHz
	// Mains fundamental + 3rd harmonic + stochastic broadband term.
	hum := math.Sin(w*t+i.phase[0]) + 0.4*math.Sin(3*w*t+i.phase[1])
	broadband := 0.3 * i.rng.NormFloat64()
	v := amp * (hum + broadband)
	// Distribute across axes with fixed proportions derived from phase.
	return geometry.Vec3{
		X: v * math.Cos(i.phase[2]),
		Y: v * math.Sin(i.phase[2]),
		Z: v * 0.5,
	}
}
