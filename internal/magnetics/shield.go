package magnetics

import "voiceguard/internal/geometry"

// Shield models a ferromagnetic enclosure (e.g. Mu-metal) around a field
// source. Two physical effects matter for the paper's Fig. 12(b):
//
//  1. The enclosed source's external field is attenuated by the shielding
//     factor (Mu-metal achieves 10–100× for small enclosures).
//  2. The shield itself is soft-iron: the ambient (geomagnetic) field
//     magnetizes it, so the box carries an induced dipole detectable at
//     very close range — which is why the paper still gets perfect
//     detection at ≤6 cm against shielded speakers.
type Shield struct {
	// Enclosed is the shielded source.
	Enclosed FieldSource
	// Position is the shield/box location in meters.
	Position geometry.Vec3
	// Attenuation divides the enclosed source's field (≥1).
	Attenuation float64 // unit: dimensionless
	// InducedMoment is the soft-iron moment in A·m² induced per unit of
	// ambient field magnitude (µT). The induced dipole aligns with the
	// ambient field.
	InducedMoment float64 // unit: A*m^2/uT
	// Ambient supplies the magnetizing field; typically the geomagnetic
	// source. Nil disables the induced dipole.
	Ambient FieldSource
}

var _ FieldSource = (*Shield)(nil)

// MuMetalAttenuation is a typical small-enclosure Mu-metal shielding
// factor.
const MuMetalAttenuation = 25.0

// FieldAt implements FieldSource.
// unit: t s
func (s *Shield) FieldAt(p geometry.Vec3, t float64) geometry.Vec3 {
	att := s.Attenuation
	if att < 1 {
		att = 1
	}
	out := s.Enclosed.FieldAt(p, t).Scale(1 / att)
	if s.Ambient != nil && s.InducedMoment > 0 {
		ambient := s.Ambient.FieldAt(s.Position, t)
		induced := Dipole{
			Position: s.Position,
			Moment:   ambient.Normalize().Scale(s.InducedMoment * ambient.Norm()),
		}
		out = out.Add(induced.FieldAt(p, t))
	}
	return out
}
