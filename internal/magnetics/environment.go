package magnetics

import "voiceguard/internal/geometry"

// EnvironmentKind selects one of the paper's evaluation environments.
type EnvironmentKind int

// The environments evaluated in the paper (§VI).
const (
	// EnvQuiet is the baseline lab bench: geomagnetic field only, mild
	// indoor gradient (Fig. 12).
	EnvQuiet EnvironmentKind = iota + 1
	// EnvNearComputer puts an all-in-one computer 30 cm away (Fig. 14a);
	// its measured exposure was 500–2500 µW/m².
	EnvNearComputer
	// EnvCar is a car front seat with many EMF emitters (Fig. 14b).
	EnvCar
)

// String implements fmt.Stringer.
func (k EnvironmentKind) String() string {
	switch k {
	case EnvQuiet:
		return "quiet"
	case EnvNearComputer:
		return "near-computer"
	case EnvCar:
		return "car"
	default:
		return "unknown"
	}
}

// NewEnvironment builds the scene for an environment kind: the
// geomagnetic background plus the appropriate interference sources. The
// seed makes interference noise reproducible. The returned scene is the
// ambient field a session takes place in; attack scenarios add speaker
// sources on top.
func NewEnvironment(kind EnvironmentKind, seed int64) *Scene {
	geo := DefaultGeomagnetic()
	switch kind {
	case EnvNearComputer:
		// iMac 30 cm from the test location: strong mains hum and PSU
		// noise. Amplitude calibrated so the disturbance at the phone is
		// several µT, enough to trigger false alarms at the detector's
		// most sensitive settings (paper reports FRR spikes at ≥8 cm).
		computer := NewInterference(geometry.Vec3{X: 0.30, Y: 0, Z: 0.1}, 0.9, 60, 2, seed)
		return NewScene(geo, computer)
	case EnvCar:
		// Car cabin: multiple emitters around the front seat (dash
		// electronics, blower motor, harness) and a steel body shifting
		// the static field. The paper measures FRR ≈30–50% here.
		dash := NewInterference(geometry.Vec3{X: 0.4, Y: 0.2, Z: 0}, 2.4, 60, 1.6, seed)
		blower := NewInterference(geometry.Vec3{X: 0.3, Y: -0.4, Z: -0.2}, 1.8, 120, 1.6, seed+1)
		harness := NewInterference(geometry.Vec3{X: -0.2, Y: 0.3, Z: -0.3}, 1.2, 60, 1.6, seed+2)
		body := Geomagnetic{Base: geometry.Vec3{X: 8, Y: -6, Z: 5}, GradientScale: 6}
		return NewScene(geo, body, dash, blower, harness)
	default:
		return NewScene(geo)
	}
}
