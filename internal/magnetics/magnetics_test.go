package magnetics

import (
	"math"
	"testing"

	"voiceguard/internal/geometry"
)

func TestDipoleOnAxisField(t *testing.T) {
	// On the dipole axis, B = 2·(µ0/4π)·m/r³ pointing along the moment.
	d := Dipole{Moment: geometry.Vec3{Z: 0.05}}
	for _, r := range []float64{0.02, 0.04, 0.06, 0.10} {
		b := d.FieldAt(geometry.Vec3{Z: r}, 0)
		want := OnAxisDipoleField(0.05, r)
		if math.Abs(b.Z-want) > 1e-9*want {
			t.Errorf("r=%v: Bz = %v, want %v", r, b.Z, want)
		}
		if math.Abs(b.X) > 1e-12 || math.Abs(b.Y) > 1e-12 {
			t.Errorf("r=%v: off-axis components %v, %v", r, b.X, b.Y)
		}
	}
}

func TestDipoleEquatorialField(t *testing.T) {
	// On the equator, B = -(µ0/4π)·m/r³ (half the axial value, opposite
	// direction).
	d := Dipole{Moment: geometry.Vec3{Z: 0.05}}
	r := 0.05
	b := d.FieldAt(geometry.Vec3{X: r}, 0)
	wantZ := -Mu0Over4Pi * 0.05 / (r * r * r)
	if math.Abs(b.Z-wantZ) > 1e-9*math.Abs(wantZ) {
		t.Errorf("equatorial Bz = %v, want %v", b.Z, wantZ)
	}
}

func TestDipoleInverseCube(t *testing.T) {
	d := Dipole{Moment: geometry.Vec3{Z: 0.1}}
	b1 := d.FieldAt(geometry.Vec3{Z: 0.05}, 0).Norm()
	b2 := d.FieldAt(geometry.Vec3{Z: 0.10}, 0).Norm()
	if math.Abs(b1/b2-8) > 1e-6 {
		t.Errorf("doubling distance should cut field 8×, ratio = %v", b1/b2)
	}
}

func TestDipoleFieldInPaperRange(t *testing.T) {
	// The paper reports loudspeaker fields of 30–210 µT near the cone.
	// A 0.06 A·m² magnet at 3.5–5 cm should land in that range.
	d := Dipole{Moment: geometry.Vec3{Z: 0.06}}
	b := d.FieldAt(geometry.Vec3{Z: 0.04}, 0).Norm()
	if b < 30 || b > 210 {
		t.Errorf("near-cone field %v µT outside paper's 30–210 µT", b)
	}
}

func TestDipoleSingularityGuard(t *testing.T) {
	d := Dipole{Moment: geometry.Vec3{Z: 0.1}}
	b := d.FieldAt(geometry.Vec3{}, 0)
	if math.IsNaN(b.Norm()) || math.IsInf(b.Norm(), 0) {
		t.Error("field at dipole position must stay finite")
	}
}

func TestMomentForFieldRoundTrip(t *testing.T) {
	for _, b := range []float64{30, 100, 210} {
		m := MomentForField(b, 0.04)
		back := OnAxisDipoleField(m, 0.04)
		if math.Abs(back-b) > 1e-9*b {
			t.Errorf("round trip %v -> %v", b, back)
		}
	}
}

func TestVoiceCoilFollowsDrive(t *testing.T) {
	drive := func(t float64) float64 { return math.Sin(2 * math.Pi * 100 * t) }
	c := VoiceCoil{Axis: geometry.Vec3{Z: 1}, MomentGain: 0.01, Drive: drive}
	p := geometry.Vec3{Z: 0.05}
	b0 := c.FieldAt(p, 0)      // sin(0) = 0
	bq := c.FieldAt(p, 0.0025) // quarter period: sin = 1
	if b0.Norm() > 1e-12 {
		t.Errorf("zero drive gives field %v", b0.Norm())
	}
	want := OnAxisDipoleField(0.01, 0.05)
	if math.Abs(bq.Z-want) > 1e-9*want {
		t.Errorf("peak drive field = %v, want %v", bq.Z, want)
	}
	silent := VoiceCoil{Axis: geometry.Vec3{Z: 1}, MomentGain: 0.01}
	if silent.FieldAt(p, 1).Norm() != 0 {
		t.Error("nil drive should produce no field")
	}
}

func TestGeomagneticMagnitude(t *testing.T) {
	g := DefaultGeomagnetic()
	b := g.FieldAt(geometry.Vec3{}, 0)
	if n := b.Norm(); n < 25 || n > 65 {
		t.Errorf("geomagnetic magnitude %v outside Earth range", n)
	}
	// Gradient makes distant points differ.
	far := g.FieldAt(geometry.Vec3{X: 2, Y: 1}, 0)
	if far.Sub(b).Norm() < 0.5 {
		t.Error("indoor gradient too weak to matter")
	}
	// Zero gradient is uniform.
	u := Geomagnetic{Base: geometry.Vec3{X: 40}}
	if u.FieldAt(geometry.Vec3{X: 5}, 0) != u.Base {
		t.Error("zero-gradient field should be uniform")
	}
}

func TestSceneSumsSources(t *testing.T) {
	d1 := Dipole{Moment: geometry.Vec3{Z: 0.05}}
	d2 := Dipole{Position: geometry.Vec3{X: 1}, Moment: geometry.Vec3{Z: 0.05}}
	s := NewScene(d1, d2)
	if s.NumSources() != 2 {
		t.Errorf("sources = %d", s.NumSources())
	}
	p := geometry.Vec3{Z: 0.1}
	sum := d1.FieldAt(p, 0).Add(d2.FieldAt(p, 0))
	got := s.FieldAt(p, 0)
	if got.Sub(sum).Norm() > 1e-12 {
		t.Errorf("scene field %v, want %v", got, sum)
	}
	s.Add(Dipole{Moment: geometry.Vec3{X: 0.01}})
	if s.NumSources() != 3 {
		t.Error("Add failed")
	}
}

func TestShieldAttenuates(t *testing.T) {
	speaker := Dipole{Moment: geometry.Vec3{Z: 0.06}}
	shield := &Shield{
		Enclosed:    speaker,
		Attenuation: MuMetalAttenuation,
	}
	p := geometry.Vec3{Z: 0.06}
	bare := speaker.FieldAt(p, 0).Norm()
	shielded := shield.FieldAt(p, 0).Norm()
	if shielded >= bare/20 {
		t.Errorf("shielded field %v not well below bare %v", shielded, bare)
	}
}

func TestShieldInducedDipoleDetectableClose(t *testing.T) {
	geo := DefaultGeomagnetic()
	speaker := Dipole{Moment: geometry.Vec3{Z: 0.06}}
	shield := &Shield{
		Enclosed:      speaker,
		Attenuation:   MuMetalAttenuation,
		InducedMoment: 2e-4, // A·m² per µT of ambient field
		Ambient:       geo,
	}
	// Very close to the box, the induced soft-iron dipole perturbs the
	// ambient field noticeably (the paper's explanation for catching
	// shielded speakers at ≤6 cm).
	near := geometry.Vec3{Z: 0.04}
	perturb := shield.FieldAt(near, 0).Sub(speaker.FieldAt(near, 0).Scale(1 / MuMetalAttenuation)).Norm()
	if perturb < 3 {
		t.Errorf("induced perturbation at 4 cm = %v µT, want detectable (≥3)", perturb)
	}
	// Far away it fades.
	far := geometry.Vec3{Z: 0.20}
	perturbFar := shield.FieldAt(far, 0).Sub(speaker.FieldAt(far, 0).Scale(1 / MuMetalAttenuation)).Norm()
	if perturbFar > perturb/10 {
		t.Errorf("induced perturbation should fall off: near %v, far %v", perturb, perturbFar)
	}
	if att := (&Shield{Enclosed: speaker, Attenuation: 0}).FieldAt(near, 0); att.Sub(speaker.FieldAt(near, 0)).Norm() > 1e-12 {
		t.Error("attenuation <1 should clamp to 1")
	}
}

func TestInterferenceFallsOffWithDistance(t *testing.T) {
	i := NewInterference(geometry.Vec3{}, 1.0, 60, 2, 1)
	// RMS over a second of samples.
	rms := func(p geometry.Vec3) float64 {
		var s float64
		const n = 600
		for k := 0; k < n; k++ {
			v := i.FieldAt(p, float64(k)/600).Norm()
			s += v * v
		}
		return math.Sqrt(s / n)
	}
	near := rms(geometry.Vec3{X: 0.3})
	far := rms(geometry.Vec3{X: 1.2})
	if near <= far*4 {
		t.Errorf("interference should fall off: near %v, far %v", near, far)
	}
}

func TestEnvironmentKinds(t *testing.T) {
	for _, k := range []EnvironmentKind{EnvQuiet, EnvNearComputer, EnvCar} {
		scene := NewEnvironment(k, 7)
		b := scene.FieldAt(geometry.Vec3{}, 0.1)
		if n := b.Norm(); n < 10 || n > 300 {
			t.Errorf("%v: ambient field %v µT implausible", k, n)
		}
	}
	if EnvQuiet.String() != "quiet" || EnvNearComputer.String() != "near-computer" ||
		EnvCar.String() != "car" || EnvironmentKind(99).String() != "unknown" {
		t.Error("String() labels wrong")
	}
}

func TestEnvironmentVariability(t *testing.T) {
	// Variance of the ambient field over time should rank quiet < computer < car.
	variability := func(k EnvironmentKind) float64 {
		scene := NewEnvironment(k, 3)
		p := geometry.Vec3{X: 0.02, Y: 0.01, Z: 0}
		var prev geometry.Vec3
		var acc float64
		const n = 500
		for i := 0; i < n; i++ {
			b := scene.FieldAt(p, float64(i)/100)
			if i > 0 {
				acc += b.Sub(prev).Norm()
			}
			prev = b
		}
		return acc / float64(n-1)
	}
	q, c, car := variability(EnvQuiet), variability(EnvNearComputer), variability(EnvCar)
	if !(q < c && c < car) {
		t.Errorf("variability ordering wrong: quiet=%v computer=%v car=%v", q, c, car)
	}
}

func BenchmarkSceneFieldAt(b *testing.B) {
	scene := NewEnvironment(EnvCar, 1)
	scene.Add(Dipole{Position: geometry.Vec3{Z: 0.06}, Moment: geometry.Vec3{Z: 0.06}})
	p := geometry.Vec3{X: 0.01, Y: 0.02, Z: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scene.FieldAt(p, float64(i)/100)
	}
}
