package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestFARFRRBasics(t *testing.T) {
	s := &ScoreSet{
		Genuine:  []float64{1, 2, 3, 4},
		Impostor: []float64{-2, -1, 0, 1},
	}
	tests := []struct {
		th       float64
		far, frr float64
	}{
		{0.5, 0.25, 0}, // one impostor (1) accepted
		{1.0, 0.25, 0}, // genuine 1 accepted (>=), impostor 1 accepted
		{1.5, 0, 0.25}, // genuine 1 rejected
		{-3, 1, 0},     // everything accepted
		{100, 0, 1},    // everything rejected
	}
	for _, tt := range tests {
		if got := s.FAR(tt.th); math.Abs(got-tt.far) > 1e-12 {
			t.Errorf("FAR(%v) = %v, want %v", tt.th, got, tt.far)
		}
		if got := s.FRR(tt.th); math.Abs(got-tt.frr) > 1e-12 {
			t.Errorf("FRR(%v) = %v, want %v", tt.th, got, tt.frr)
		}
	}
}

func TestFARFRREmptySides(t *testing.T) {
	s := &ScoreSet{}
	if s.FAR(0) != 0 || s.FRR(0) != 0 {
		t.Error("empty set rates should be 0")
	}
	if s.DETCurve() != nil {
		t.Error("empty DET should be nil")
	}
	eer, _ := s.EER()
	if eer != 0 {
		t.Errorf("empty EER = %v", eer)
	}
}

func TestAdd(t *testing.T) {
	var s ScoreSet
	s.Add(1, true)
	s.Add(-1, false)
	if len(s.Genuine) != 1 || len(s.Impostor) != 1 {
		t.Error("Add misrouted")
	}
}

func TestEERPerfectSeparation(t *testing.T) {
	s := &ScoreSet{
		Genuine:  []float64{5, 6, 7},
		Impostor: []float64{1, 2, 3},
	}
	eer, th := s.EER()
	if eer != 0 {
		t.Errorf("EER = %v, want 0", eer)
	}
	if s.FAR(th) != 0 || s.FRR(th) != 0 {
		t.Errorf("threshold %v gives FAR=%v FRR=%v", th, s.FAR(th), s.FRR(th))
	}
}

func TestEEROverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := &ScoreSet{}
	for i := 0; i < 2000; i++ {
		s.Add(1+rng.NormFloat64(), true)
		s.Add(-1+rng.NormFloat64(), false)
	}
	eer, _ := s.EER()
	// Two unit Gaussians 2 apart: EER = Φ(-1) ≈ 15.9%.
	if math.Abs(eer-0.159) > 0.025 {
		t.Errorf("EER = %v, want ≈0.159", eer)
	}
}

func TestEERFullOverlapNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := &ScoreSet{}
	for i := 0; i < 3000; i++ {
		s.Add(rng.NormFloat64(), true)
		s.Add(rng.NormFloat64(), false)
	}
	eer, _ := s.EER()
	if math.Abs(eer-0.5) > 0.03 {
		t.Errorf("EER = %v, want ≈0.5", eer)
	}
}

func TestDETCurveMonotone(t *testing.T) {
	f := func(g, i []float64) bool {
		if len(g) == 0 || len(i) == 0 || len(g) > 200 || len(i) > 200 {
			return true
		}
		for _, v := range append(append([]float64{}, g...), i...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := &ScoreSet{Genuine: g, Impostor: i}
		pts := s.DETCurve()
		for k := 1; k < len(pts); k++ {
			if pts[k].Threshold <= pts[k-1].Threshold {
				return false
			}
			if pts[k].FAR > pts[k-1].FAR+1e-12 { // FAR non-increasing
				return false
			}
			if pts[k].FRR < pts[k-1].FRR-1e-12 { // FRR non-decreasing
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestThresholdForFAR(t *testing.T) {
	s := &ScoreSet{
		Genuine:  []float64{4, 5, 6, 7},
		Impostor: []float64{0, 1, 2, 3},
	}
	th := s.ThresholdForFAR(0)
	if s.FAR(th) != 0 {
		t.Errorf("FAR at threshold = %v", s.FAR(th))
	}
	// Threshold should still accept all genuine.
	if s.FRR(th) != 0 {
		t.Errorf("FRR at threshold = %v", s.FRR(th))
	}
	th25 := s.ThresholdForFAR(0.25)
	if s.FAR(th25) > 0.25 {
		t.Errorf("FAR(%v) = %v > 0.25", th25, s.FAR(th25))
	}
	if (&ScoreSet{}).ThresholdForFAR(0) != 0 {
		t.Error("empty set threshold should be 0")
	}
}

func TestConfusion(t *testing.T) {
	s := &ScoreSet{
		Genuine:  []float64{1, 3},
		Impostor: []float64{0, 2},
	}
	c := s.Confusion(1.5)
	if c.CorrectAccept != 1 || c.FalseReject != 1 || c.FalseAccept != 1 || c.CorrectReject != 1 {
		t.Errorf("confusion = %+v", c)
	}
	if math.Abs(c.Accuracy()-0.5) > 1e-12 {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
	if !strings.Contains(c.String(), "CA=1") {
		t.Errorf("String() = %q", c.String())
	}
	if (Confusion{}).Accuracy() != 0 {
		t.Error("empty confusion accuracy")
	}
}

func TestMeanStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(x)
	if err != nil || m != 5 {
		t.Errorf("mean = %v, err %v", m, err)
	}
	sd, err := StdDev(x)
	if err != nil || sd != 2 {
		t.Errorf("stddev = %v, err %v", sd, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v", err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("StdDev(nil) err = %v", err)
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{5, 1, 4, 2, 3}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {-1, 1}, {101, 5},
	}
	for _, tc := range cases {
		got, err := Percentile(x, tc.p)
		if err != nil || got != tc.want {
			t.Errorf("Percentile(%v) = %v (err %v), want %v", tc.p, got, err, tc.want)
		}
	}
	// Input is not mutated.
	if !sort.Float64sAreSorted(x) {
		// fine: check original order retained
		if x[0] != 5 || x[4] != 3 {
			t.Error("Percentile mutated input")
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
}

func TestAUC(t *testing.T) {
	perfect := &ScoreSet{Genuine: []float64{5, 6}, Impostor: []float64{1, 2}}
	if got := perfect.AUC(); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	inverted := &ScoreSet{Genuine: []float64{1, 2}, Impostor: []float64{5, 6}}
	if got := inverted.AUC(); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	ties := &ScoreSet{Genuine: []float64{1, 1}, Impostor: []float64{1, 1}}
	if got := ties.AUC(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("all-ties AUC = %v", got)
	}
	if got := (&ScoreSet{}).AUC(); got != 0.5 {
		t.Errorf("empty AUC = %v", got)
	}
	// Overlapping Gaussians: AUC = Φ(√2) ≈ 0.921 for unit Gaussians 2
	// apart.
	rng := rand.New(rand.NewSource(9))
	s := &ScoreSet{}
	for i := 0; i < 3000; i++ {
		s.Add(1+rng.NormFloat64(), true)
		s.Add(-1+rng.NormFloat64(), false)
	}
	if got := s.AUC(); math.Abs(got-0.921) > 0.01 {
		t.Errorf("gaussian AUC = %v, want ≈0.921", got)
	}
}

func TestMinDCF(t *testing.T) {
	perfect := &ScoreSet{Genuine: []float64{5, 6}, Impostor: []float64{1, 2}}
	c, th := perfect.MinDCF(DefaultDCF())
	if c != 0 {
		t.Errorf("perfect minDCF = %v", c)
	}
	if perfect.FAR(th) != 0 || perfect.FRR(th) != 0 {
		t.Errorf("threshold %v not separating", th)
	}
	// Fully overlapping scores: minDCF should be ≤ 1 (a trivial system
	// achieves exactly 1 after normalization).
	rng := rand.New(rand.NewSource(10))
	s := &ScoreSet{}
	for i := 0; i < 500; i++ {
		s.Add(rng.NormFloat64(), true)
		s.Add(rng.NormFloat64(), false)
	}
	c, _ = s.MinDCF(DefaultDCF())
	if c <= 0 || c > 1.01 {
		t.Errorf("overlap minDCF = %v, want (0, 1]", c)
	}
	if c, _ := (&ScoreSet{}).MinDCF(DefaultDCF()); c != 0 {
		t.Errorf("empty minDCF = %v", c)
	}
}

func TestEERThresholdProperty(t *testing.T) {
	// At the EER threshold, |FAR-FRR| should be the global minimum over
	// DET points.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &ScoreSet{}
		for i := 0; i < 100; i++ {
			s.Add(0.8+rng.NormFloat64(), true)
			s.Add(-0.8+rng.NormFloat64(), false)
		}
		_, th := s.EER()
		gap := math.Abs(s.FAR(th) - s.FRR(th))
		for _, p := range s.DETCurve() {
			if math.Abs(p.FAR-p.FRR) < gap-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
