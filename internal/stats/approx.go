package stats

import "math"

// Epsilon is the default absolute tolerance for floating-point equality
// across the pipeline. Sensor values, scores and thresholds live many
// orders of magnitude above it, and accumulated rounding error from the
// DSP chains stays far below it.
const Epsilon = 1e-9

// zeroTolerance is the cutoff below which a float is treated as unset or
// exactly zero. It sits well under any meaningful configuration value
// (the smallest physical quantities in the system are ~1e-6, µT-scale)
// and well above accumulated rounding noise.
const zeroTolerance = 1e-12

// ApproxEqual reports whether a and b are equal within the absolute
// tolerance eps. NaN compares unequal to everything, matching ==.
func ApproxEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// ApproxEqualRel reports whether a and b are equal within eps scaled by
// the larger magnitude (falling back to absolute eps near zero), the
// right comparison when operands span orders of magnitude.
func ApproxEqualRel(a, b, eps float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= eps*scale
}

// IsZero reports whether x is zero for configuration and guard purposes:
// exactly zero, or so small (|x| < 1e-12) that it cannot be a meaningful
// value. Use it for "was this field left unset" defaults and
// divide-by-zero guards instead of a raw == 0.
func IsZero(x float64) bool {
	return math.Abs(x) < zeroTolerance
}
