// Package stats provides the evaluation machinery of the paper: false
// acceptance rate (FAR), false rejection rate (FRR), equal error rate
// (EER), DET curves, and threshold calibration — plus basic descriptive
// statistics used across the experiment harness.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ScoreSet collects verification scores for genuine trials and impostor
// (attack) trials. Higher score must mean "more likely genuine".
type ScoreSet struct {
	Genuine  []float64
	Impostor []float64
}

// Add appends a score.
func (s *ScoreSet) Add(score float64, genuine bool) {
	if genuine {
		s.Genuine = append(s.Genuine, score)
	} else {
		s.Impostor = append(s.Impostor, score)
	}
}

// FAR returns the false acceptance rate at the given threshold: the
// fraction of impostor scores ≥ threshold.
func (s *ScoreSet) FAR(threshold float64) float64 {
	if len(s.Impostor) == 0 {
		return 0
	}
	var n int
	for _, v := range s.Impostor {
		if v >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.Impostor))
}

// FRR returns the false rejection rate at the given threshold: the
// fraction of genuine scores < threshold.
func (s *ScoreSet) FRR(threshold float64) float64 {
	if len(s.Genuine) == 0 {
		return 0
	}
	var n int
	for _, v := range s.Genuine {
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.Genuine))
}

// DETPoint is one operating point of the detection error trade-off curve.
type DETPoint struct {
	Threshold float64
	FAR, FRR  float64
}

// DETCurve sweeps the threshold over every distinct score and returns the
// operating points in increasing threshold order.
func (s *ScoreSet) DETCurve() []DETPoint {
	all := make([]float64, 0, len(s.Genuine)+len(s.Impostor))
	all = append(all, s.Genuine...)
	all = append(all, s.Impostor...)
	if len(all) == 0 {
		return nil
	}
	sort.Float64s(all)
	// Dedup.
	uniq := all[:1]
	for _, v := range all[1:] {
		//lint:allow floatcmp threshold sweep needs exact dedup of sorted scores; merging near ties would drop operating points
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	pts := make([]DETPoint, 0, len(uniq)+1)
	for _, th := range uniq {
		pts = append(pts, DETPoint{Threshold: th, FAR: s.FAR(th), FRR: s.FRR(th)})
	}
	// One point past the top so FAR can reach 0. Nextafter keeps the
	// threshold strictly increasing even at float64 extremes.
	last := math.Nextafter(uniq[len(uniq)-1], math.Inf(1))
	pts = append(pts, DETPoint{Threshold: last, FAR: s.FAR(last), FRR: s.FRR(last)})
	return pts
}

// EER returns the equal error rate and the threshold achieving it. It
// scans the DET curve for the point where FAR and FRR cross, interpolating
// between the bracketing operating points.
func (s *ScoreSet) EER() (eer, threshold float64) {
	pts := s.DETCurve()
	if len(pts) == 0 {
		return 0, 0
	}
	// FAR decreases with threshold, FRR increases. Find the crossing.
	best := pts[0]
	bestGap := math.Abs(pts[0].FAR - pts[0].FRR)
	for _, p := range pts[1:] {
		if gap := math.Abs(p.FAR - p.FRR); gap < bestGap {
			bestGap = gap
			best = p
		}
	}
	return (best.FAR + best.FRR) / 2, best.Threshold
}

// ThresholdForFAR returns the smallest threshold whose FAR does not exceed
// the target.
func (s *ScoreSet) ThresholdForFAR(target float64) float64 {
	pts := s.DETCurve()
	for _, p := range pts {
		if p.FAR <= target {
			return p.Threshold
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Threshold
}

// Confusion counts verification outcomes at a threshold, following the
// paper's Table III terminology.
type Confusion struct {
	CorrectAccept int // genuine accepted
	FalseReject   int // genuine rejected
	FalseAccept   int // impostor accepted
	CorrectReject int // impostor rejected
}

// Confusion evaluates the score set at a threshold.
func (s *ScoreSet) Confusion(threshold float64) Confusion {
	var c Confusion
	for _, v := range s.Genuine {
		if v >= threshold {
			c.CorrectAccept++
		} else {
			c.FalseReject++
		}
	}
	for _, v := range s.Impostor {
		if v >= threshold {
			c.FalseAccept++
		} else {
			c.CorrectReject++
		}
	}
	return c
}

// Accuracy returns overall decision accuracy.
func (c Confusion) Accuracy() float64 {
	total := c.CorrectAccept + c.FalseReject + c.FalseAccept + c.CorrectReject
	if total == 0 {
		return 0
	}
	return float64(c.CorrectAccept+c.CorrectReject) / float64(total)
}

// String implements fmt.Stringer.
func (c Confusion) String() string {
	return fmt.Sprintf("CA=%d FR=%d FA=%d CR=%d (acc %.1f%%)",
		c.CorrectAccept, c.FalseReject, c.FalseAccept, c.CorrectReject, 100*c.Accuracy())
}

// AUC returns the area under the ROC curve: the probability that a random
// genuine score exceeds a random impostor score (ties count half). 1 is
// perfect separation, 0.5 is chance.
func (s *ScoreSet) AUC() float64 {
	if len(s.Genuine) == 0 || len(s.Impostor) == 0 {
		return 0.5
	}
	// O(n log n) via sorted impostors and binary search.
	imp := append([]float64(nil), s.Impostor...)
	sort.Float64s(imp)
	var sum float64
	for _, g := range s.Genuine {
		below := sort.SearchFloat64s(imp, g)                                  // impostors < g
		upTo := sort.Search(len(imp), func(i int) bool { return imp[i] > g }) // impostors <= g
		ties := upTo - below
		sum += float64(below) + float64(ties)/2
	}
	return sum / float64(len(s.Genuine)*len(s.Impostor))
}

// DCFParams parameterizes the NIST detection cost function.
type DCFParams struct {
	// CMiss and CFA are the costs of a miss (false rejection) and a
	// false acceptance.
	CMiss, CFA float64
	// PTarget is the prior probability of a genuine trial.
	PTarget float64
}

// DefaultDCF returns the classic NIST SRE operating point
// (CMiss=10, CFA=1, PTarget=0.01).
func DefaultDCF() DCFParams {
	return DCFParams{CMiss: 10, CFA: 1, PTarget: 0.01}
}

// MinDCF returns the minimum normalized detection cost over all
// thresholds, and the threshold achieving it. The cost is normalized by
// the best trivial system (accept-all or reject-all).
func (s *ScoreSet) MinDCF(p DCFParams) (cost, threshold float64) {
	pts := s.DETCurve()
	if len(pts) == 0 {
		return 0, 0
	}
	norm := math.Min(p.CMiss*p.PTarget, p.CFA*(1-p.PTarget))
	if norm <= 0 {
		return 0, pts[0].Threshold
	}
	best := math.Inf(1)
	var bestTh float64
	for _, pt := range pts {
		c := (p.CMiss*pt.FRR*p.PTarget + p.CFA*pt.FAR*(1-p.PTarget)) / norm
		if c < best {
			best = c
			bestTh = pt.Threshold
		}
	}
	return best, bestTh
}

// ErrEmpty is returned by descriptive statistics on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean.
func Mean(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x)), nil
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) (float64, error) {
	m, err := Mean(x)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(x))), nil
}

// Percentile returns the p-th percentile (0–100) using nearest-rank on a
// copy of x.
func Percentile(x []float64, p float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank], nil
}
