package experiment

// Streaming early-exit latency sweep: the same attack matrix served to
// one server over both transports, measuring how much sooner the binary
// streaming path reaches a verdict than the HTTP full-session path. The
// HTTP number is the whole attempt (encode + upload + pipeline + reply);
// the stream number is connect-to-verdict. Attacks that trip an early
// exit skip both the rest of the upload and the rest of the cascade, so
// the gap is widest exactly where it matters — under attack.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/protocol"
	"voiceguard/internal/server"
	"voiceguard/internal/speech"
)

// StreamLatencyRow compares the two transports over one session class.
type StreamLatencyRow struct {
	// Class is genuine, replay, or imitation.
	Class string `json:"class"`
	// Sessions is how many sessions of the class were served per path.
	Sessions int `json:"sessions"`
	// Accepted counts accepts (identical across paths by construction —
	// VerdictsAgree reports the check).
	Accepted int `json:"accepted"`
	// HTTPMedian is the median end-to-end HTTP attempt.
	HTTPMedian time.Duration `json:"http_median_ns"`
	// StreamMedian is the median stream connect-to-verdict time.
	StreamMedian time.Duration `json:"stream_median_ns"`
	// EarlyExits counts stream sessions decided before their upload
	// finished.
	EarlyExits int `json:"early_exits"`
	// VerdictsAgree is true when every session's verdict matched across
	// transports.
	VerdictsAgree bool `json:"verdicts_agree"`
	// ScoreBitsIdentical is true when every per-stage score was
	// bit-for-bit identical across transports.
	ScoreBitsIdentical bool `json:"score_bits_identical"`
}

// String implements fmt.Stringer.
func (r StreamLatencyRow) String() string {
	return fmt.Sprintf("%-10s n=%d http median %8.1fms | stream median %8.1fms | early exits %d/%d | agree=%v bits=%v",
		r.Class, r.Sessions,
		float64(r.HTTPMedian.Microseconds())/1000,
		float64(r.StreamMedian.Microseconds())/1000,
		r.EarlyExits, r.Sessions, r.VerdictsAgree, r.ScoreBitsIdentical)
}

// streamSweepSessions is the per-class session count.
const streamSweepSessions = 5

// RunStreamEarlyExit serves the attack matrix to one four-stage server
// over HTTP/JSON and over the binary streaming protocol, and reports the
// per-class latency medians, early-exit counts, and the cross-transport
// verdict/score parity.
func RunStreamEarlyExit(seed int64) ([]StreamLatencyRow, error) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiment: stream system: %w", err)
	}
	verifier, victim, err := driftVerifier(seed)
	if err != nil {
		return nil, err
	}
	// driftVerifier calibrates on channel-processed held-out audio, but
	// the wave's sessions carry clean synthesized voice; re-pin the
	// zero-FRR operating point on held-out voices rendered the way this
	// sweep renders them, so genuine decides accept and imitation reject.
	var cal []*audio.Signal
	for i := 0; i < 4; i++ {
		held, err := attack.Genuine(victim, attack.Scenario{Seed: seed + 5000 + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("experiment: stream calibration session %d: %w", i, err)
		}
		cal = append(cal, held.Voice)
	}
	if err := verifier.CalibrateThreshold(victim.Name, cal, 0.4); err != nil {
		return nil, fmt.Errorf("experiment: stream calibration: %w", err)
	}
	sys.AttachIdentity(verifier)

	srv, err := server.New(sys, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment: stream server: %w", err)
	}
	httpReady := make(chan string, 1)
	streamReady := make(chan string, 1)
	go func() { _ = srv.ListenAndServe("127.0.0.1:0", httpReady) }()
	go func() { _ = srv.ListenAndServeStream("127.0.0.1:0", streamReady) }()
	httpAddr, streamAddr := <-httpReady, <-streamReady
	defer func() {
		//lint:allow ctxfirst the sweep owns its throwaway server; shutdown has no caller context
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	c := client.New("http://" + httpAddr)

	rec, err := attack.Record(victim, DefaultPassphrase, seed+7)
	if err != nil {
		return nil, fmt.Errorf("experiment: stream recording: %w", err)
	}
	speakers := device.Catalog()
	imposters := speech.NewDistinctRoster(3, seed+9, 1.2).Profiles()

	classes := []struct {
		name string
		at   func(i int) (*core.SessionData, error)
	}{
		{"genuine", func(i int) (*core.SessionData, error) {
			return attack.Genuine(victim, attack.Scenario{Seed: seed + int64(i)})
		}},
		{"replay", func(i int) (*core.SessionData, error) {
			sc := attack.Scenario{Seed: seed + 2000 + int64(i), Distance: 0.05}
			return attack.Replay(rec, speakers[i%len(speakers)], sc)
		}},
		{"imitation", func(i int) (*core.SessionData, error) {
			sc := attack.Scenario{Seed: seed + 3000 + int64(i), Distance: 0.05}
			return attack.Imitation(imposters[i%len(imposters)], victim, speech.ImitatorPracticed, sc)
		}},
	}

	//lint:allow ctxfirst seed-driven sweep entry point, mirrors the other Run* experiments
	ctx := context.Background()
	var rows []StreamLatencyRow
	for _, cl := range classes {
		row := StreamLatencyRow{Class: cl.name, Sessions: streamSweepSessions,
			VerdictsAgree: true, ScoreBitsIdentical: true}
		var httpLat, streamLat []time.Duration
		for i := 0; i < streamSweepSessions; i++ {
			session, err := cl.at(i)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s session %d: %w", cl.name, i, err)
			}
			httpRes, err := c.VerifyContext(ctx, session)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s http verify %d: %w", cl.name, i, err)
			}
			streamRes, err := c.VerifyStream(ctx, streamAddr, session)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s stream verify %d: %w", cl.name, i, err)
			}
			httpLat = append(httpLat, httpRes.Elapsed)
			streamLat = append(streamLat, streamRes.TimeToDecision)
			h, s := httpRes.Response, streamRes.Response
			if h.Accepted {
				row.Accepted++
			}
			if h.Accepted != s.Accepted {
				row.VerdictsAgree = false
			}
			if !stageScoresBitIdentical(h.Stages, s.Stages) {
				row.ScoreBitsIdentical = false
			}
			if streamRes.EarlyExit {
				row.EarlyExits++
			}
		}
		row.HTTPMedian = medianDuration(httpLat)
		row.StreamMedian = medianDuration(streamLat)
		rows = append(rows, row)
	}
	return rows, nil
}

// stageScoresBitIdentical compares two stage lists field by field, with
// exact float64 bit equality on the scores.
func stageScoresBitIdentical(a, b []protocol.StageJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Stage != b[i].Stage || a[i].Pass != b[i].Pass ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			a[i].Detail != b[i].Detail {
			return false
		}
	}
	return true
}

// medianDuration returns the middle element (lower middle for even n).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}
