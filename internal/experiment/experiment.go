// Package experiment reproduces the paper's evaluation (§VI): each
// exported Run* function regenerates the data behind one table or figure,
// returning printable rows. The bench harness (bench_test.go) and the
// cmd/benchgen tool are thin wrappers over this package.
package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/sensors"
	"voiceguard/internal/speech"
	"voiceguard/internal/stats"
)

// machineSystem builds the anti-spoofing subsystem under test for the
// distance/environment sweeps: sound-field verification + loudspeaker
// detection. The distance gate is deliberately excluded — these sweeps
// *measure* performance as a function of the true source distance, which
// is how the paper derived Dt = 6 cm in the first place.
func machineSystem(seed int64) (*core.System, error) {
	return core.BuildSystem(core.SystemConfig{
		FieldSeed:       seed,
		DisableDistance: true,
	})
}

// sessionScore reduces a decision to a single continuous statistic for
// EER computation: the minimum stage score (all stages must clear zero
// for acceptance, so shifting a global threshold on this score sweeps the
// operating point of the whole cascade).
func sessionScore(d core.Decision) float64 {
	score := math.Inf(1)
	for _, st := range d.Stages {
		if st.Score < score {
			score = st.Score
		}
	}
	if math.IsInf(score, 1) {
		return 0
	}
	return score
}

// runTrial scores one session against a system, returning the continuous
// score and the binary accept verdict at the paper's operating point.
func runTrial(sys *core.System, s *core.SessionData) (float64, bool, error) {
	d, err := sys.Verify(s)
	if err != nil {
		return 0, false, err
	}
	return sessionScore(d), d.Accepted, nil
}

// Rates summarizes one experimental cell.
type Rates struct {
	// FAR, FRR and EER are percentages in [0, 100].
	FAR, FRR, EER float64
}

// String implements fmt.Stringer.
func (r Rates) String() string {
	return fmt.Sprintf("FAR %.1f%%  FRR %.1f%%  EER %.1f%%", r.FAR, r.FRR, r.EER)
}

// ratesFrom computes the cell summary: FAR/FRR from the binary verdicts
// at the operating point, EER from the continuous score sweep.
func ratesFrom(scores *stats.ScoreSet, genuineAccepts, genuineTotal, attackAccepts, attackTotal int) Rates {
	var r Rates
	if attackTotal > 0 {
		r.FAR = 100 * float64(attackAccepts) / float64(attackTotal)
	}
	if genuineTotal > 0 {
		r.FRR = 100 * float64(genuineTotal-genuineAccepts) / float64(genuineTotal)
	}
	eer, _ := scores.EER()
	r.EER = 100 * eer
	return r
}

// victimRoster returns the paper's five-speaker test panel.
func victimRoster(seed int64) []speech.Profile {
	roster := speech.NewRoster(5, seed)
	return roster.Profiles()
}

// recordingsFor captures one replayable recording per victim.
func recordingsFor(victims []speech.Profile, passphrase string, seed int64) (map[string]*recording, error) {
	out := make(map[string]*recording, len(victims))
	for i, v := range victims {
		rec, err := attack.Record(v, passphrase, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("experiment: recording %s: %w", v.Name, err)
		}
		out[v.Name] = &recording{victim: v, audio: rec}
	}
	return out, nil
}

type recording struct {
	victim speech.Profile
	audio  *audio.Signal
}

// DefaultPassphrase is the digit phrase used across experiments.
const DefaultPassphrase = "472913"

// EnvironmentLabel formats the environment for result tables.
func EnvironmentLabel(kind magnetics.EnvironmentKind, shielded bool) string {
	if shielded {
		return kind.String() + "+mu-metal"
	}
	return kind.String()
}

// newScoreSet returns an empty score set (helper keeping battery.go free
// of a direct stats import).
func newScoreSet() *stats.ScoreSet { return &stats.ScoreSet{} }

// AmbientTrace records two seconds of the ambient magnetic environment
// with the phone held still — the calibration input of the §VII adaptive
// thresholding procedure.
func AmbientTrace(kind magnetics.EnvironmentKind, seed int64) (*sensors.Trace, error) {
	scene := magnetics.NewEnvironment(kind, seed)
	rng := rand.New(rand.NewSource(seed))
	magSensor := sensors.New(sensors.AK8975(), rng)
	tr, err := magSensor.Record(2, func(t float64) geometry.Vec3 {
		return scene.FieldAt(geometry.Vec3{X: 0.02, Y: 0.01}, t)
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: recording ambient trace: %w", err)
	}
	return tr, nil
}

// SpeakerSubset picks every stride-th loudspeaker from the catalog to
// bound experiment runtime while keeping class diversity.
func SpeakerSubset(stride int) []device.Loudspeaker {
	if stride < 1 {
		stride = 1
	}
	cat := device.Catalog()
	var out []device.Loudspeaker
	for i := 0; i < len(cat); i += stride {
		out = append(out, cat[i])
	}
	return out
}
