package experiment

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/speech"
	"voiceguard/internal/stats"
)

// TableIConfig parameterizes the Table I reproduction: the FAR of the
// Spear-style ASV back-ends against human-based impersonation.
type TableIConfig struct {
	// Seed drives all randomness.
	Seed int64
	// UBMComponents is the mixture size (default 32).
	UBMComponents int
}

// TableIRow is one cell of Table I.
type TableIRow struct {
	// Backend names the scoring model ("UBM" or "ISV" in the paper).
	Backend core.Backend
	// Test identifies the protocol: 1 = five-speaker passphrase panel
	// with imitators; 2 = cross-corpus (train on corpus A, test on
	// corpus B with the same utterance).
	Test int
	// FARPercent is the false acceptance rate at the zero-FRR threshold,
	// mirroring the paper's procedure of tuning for perfect genuine
	// acceptance on the small panel.
	FARPercent float64
	// EERPercent is the equal error rate of the score distributions.
	EERPercent float64
	// Genuine and Impostor count the trials.
	Genuine, Impostor int
}

// String implements fmt.Stringer.
func (r TableIRow) String() string {
	return fmt.Sprintf("%-7v test %d: FAR %.1f%%  EER %.1f%%  (%d genuine, %d impostor)",
		r.Backend, r.Test, r.FARPercent, r.EERPercent, r.Genuine, r.Impostor)
}

// RunTableI evaluates GMM-UBM and ISV on both of the paper's tests.
func RunTableI(cfg TableIConfig) ([]TableIRow, error) {
	if cfg.UBMComponents == 0 {
		cfg.UBMComponents = 32
	}
	var rows []TableIRow
	for _, backend := range []core.Backend{core.BackendGMMUBM, core.BackendISV} {
		for _, test := range []int{1, 2} {
			row, err := runTableICell(backend, test, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: table I %v test %d: %w", backend, test, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runTableICell(backend core.Backend, test int, cfg TableIConfig) (TableIRow, error) {
	seed := cfg.Seed + int64(backend)*1000 + int64(test)*100
	rng := rand.New(rand.NewSource(seed))

	// Background population for the UBM / ISV training (disjoint from
	// the test panel).
	bgRoster := speech.NewRoster(8, seed+1)
	bg, err := corpusSessions(bgRoster, 2, 2, seed+2)
	if err != nil {
		return TableIRow{}, err
	}
	verifier, err := core.TrainSpeakerVerifier(bg, core.SpeakerVerifierConfig{
		Backend:    backend,
		Components: cfg.UBMComponents,
		ISVRank:    6,
		Seed:       seed,
	})
	if err != nil {
		return TableIRow{}, err
	}

	panel := speech.NewDistinctRoster(5, seed+3, 1.2).Profiles()
	// Scores are collected per victim: each enrolled model has its own
	// score scale, so thresholds are calibrated per user (as a deployed
	// text-dependent system would) and the pooled metrics use per-victim
	// centered scores.
	perVictim := make([]*stats.ScoreSet, len(panel))
	for i := range perVictim {
		perVictim[i] = &stats.ScoreSet{}
	}

	// phoneChannel is the fixed capture channel of the test handset:
	// test 1's recordings all come from the same phone, so enrollment
	// and test share it.
	phoneChannel := speech.Channel{Gain: 0.8, NoiseRMS: 0.004, LowCut: 100, HighCut: 7000}

	switch test {
	case 1:
		// Test 1: each speaker speaks a unique six-digit passphrase;
		// other speakers then collect and imitate it.
		for i, victim := range panel {
			pass := fmt.Sprintf("%06d", 100000+rng.Intn(900000))
			enroll, err := renderSessionsVia(victim, pass, 2, 3, phoneChannel, rng)
			if err != nil {
				return TableIRow{}, err
			}
			if err := verifier.Enroll(victim.Name, enroll); err != nil {
				return TableIRow{}, err
			}
			// Genuine trials (paper: five per speaker).
			for k := 0; k < 5; k++ {
				utt, err := renderOne(victim, pass, rng)
				if err != nil {
					return TableIRow{}, err
				}
				s, err := verifier.Score(victim.Name, phoneChannel.Apply(utt, rng))
				if err != nil {
					return TableIRow{}, err
				}
				perVictim[i].Add(s, true)
			}
			// Imitation trials: every other panelist mimics the victim.
			for j, imp := range panel {
				if j == i {
					continue
				}
				mimic := speech.Imitate(imp, victim, speech.ImitatorPracticed, rng)
				utt, err := renderOne(mimic, pass, rng)
				if err != nil {
					return TableIRow{}, err
				}
				s, err := verifier.Score(victim.Name, phoneChannel.Apply(utt, rng))
				if err != nil {
					return TableIRow{}, err
				}
				perVictim[i].Add(s, false)
			}
		}
	case 2:
		// Test 2: train/enroll on corpus A conditions, test on corpus B
		// (different channel conditions, same utterance) — the paper's
		// Voxforge→CMU-Arctic analogue. Impostors speak the same phrase.
		pass := DefaultPassphrase
		chB := speech.Channel{Gain: 0.5, NoiseRMS: 0.012, LowCut: 150, HighCut: 5200}
		for i, victim := range panel {
			enroll, err := renderSessions(victim, pass, 2, 3, rng)
			if err != nil {
				return TableIRow{}, err
			}
			if err := verifier.Enroll(victim.Name, enroll); err != nil {
				return TableIRow{}, err
			}
			for k := 0; k < 5; k++ {
				utt, err := renderOne(victim, pass, rng)
				if err != nil {
					return TableIRow{}, err
				}
				s, err := verifier.Score(victim.Name, chB.Apply(utt, rng))
				if err != nil {
					return TableIRow{}, err
				}
				perVictim[i].Add(s, true)
			}
			for j, imp := range panel {
				if j == i {
					continue
				}
				utt, err := renderOne(imp, pass, rng)
				if err != nil {
					return TableIRow{}, err
				}
				s, err := verifier.Score(victim.Name, chB.Apply(utt, rng))
				if err != nil {
					return TableIRow{}, err
				}
				perVictim[i].Add(s, false)
			}
		}
	default:
		return TableIRow{}, fmt.Errorf("experiment: unknown test %d", test)
	}

	// Per-victim zero-FRR thresholds; pool FAR across victims. EER uses
	// per-victim mean-centered scores so differing model scales do not
	// smear the distributions.
	var falseAccepts, impostors, genuine int
	pooled := &stats.ScoreSet{}
	for _, set := range perVictim {
		th := minFloat(set.Genuine)
		for _, s := range set.Impostor {
			impostors++
			if s >= th {
				falseAccepts++
			}
		}
		genuine += len(set.Genuine)
		gm, err := stats.Mean(set.Genuine)
		if err != nil {
			return TableIRow{}, err
		}
		for _, s := range set.Genuine {
			pooled.Add(s-gm, true)
		}
		for _, s := range set.Impostor {
			pooled.Add(s-gm, false)
		}
	}
	eer, _ := pooled.EER()
	return TableIRow{
		Backend:    backend,
		Test:       test,
		FARPercent: 100 * float64(falseAccepts) / float64(impostors),
		EERPercent: 100 * eer,
		Genuine:    genuine,
		Impostor:   impostors,
	}, nil
}

func minFloat(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// corpusSessions renders a roster corpus grouped speaker → session →
// utterances, the shape core.TrainSpeakerVerifier consumes.
func corpusSessions(roster *speech.Roster, sessions, uttsPer int, seed int64) (map[string][][]*audio.Signal, error) {
	utts, err := roster.Generate(speech.CorpusConfig{
		Sessions:             sessions,
		UtterancesPerSession: uttsPer,
		Digits:               6,
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][][]*audio.Signal)
	for _, grouped := range [][]speech.Utterance{utts} {
		bySpk := speech.BySpeaker(grouped)
		for spk, us := range bySpk {
			perSession := map[int][]*audio.Signal{}
			maxSess := 0
			for _, u := range us {
				perSession[u.Session] = append(perSession[u.Session], u.Audio)
				if u.Session > maxSess {
					maxSess = u.Session
				}
			}
			for s := 0; s <= maxSess; s++ {
				out[spk] = append(out[spk], perSession[s])
			}
		}
	}
	return out, nil
}

// renderSessions renders enrollment sessions for a speaker with a fresh
// random channel per session.
func renderSessions(p speech.Profile, pass string, sessions, uttsPer int, rng *rand.Rand) ([][]*audio.Signal, error) {
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		return nil, err
	}
	out := make([][]*audio.Signal, sessions)
	for s := range out {
		ch := speech.RandomChannel(rng)
		for k := 0; k < uttsPer; k++ {
			utt, err := synth.SayDigits(pass)
			if err != nil {
				return nil, err
			}
			out[s] = append(out[s], ch.Apply(utt, rng))
		}
	}
	return out, nil
}

// renderSessionsVia renders enrollment sessions through one fixed channel
// (same-device recording).
func renderSessionsVia(p speech.Profile, pass string, sessions, uttsPer int, ch speech.Channel, rng *rand.Rand) ([][]*audio.Signal, error) {
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		return nil, err
	}
	out := make([][]*audio.Signal, sessions)
	for s := range out {
		for k := 0; k < uttsPer; k++ {
			utt, err := synth.SayDigits(pass)
			if err != nil {
				return nil, err
			}
			out[s] = append(out[s], ch.Apply(utt, rng))
		}
	}
	return out, nil
}

// renderOne renders a single test utterance.
func renderOne(p speech.Profile, pass string, rng *rand.Rand) (*audio.Signal, error) {
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		return nil, err
	}
	return synth.SayDigits(pass)
}
