package experiment

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

// DriftWaveSeries summarizes one evidence series across the two live
// waves: how far the genuine control wave and the attack wave each moved
// from the pinned genuine baseline.
type DriftWaveSeries struct {
	Stage  string `json:"stage"`
	Metric string `json:"metric"`
	// PSI/KS are dimensionless divergence statistics vs the baseline.
	GenuinePSI float64 `json:"genuine_psi"` // unit: dimensionless
	GenuineKS  float64 `json:"genuine_ks"`  // unit: dimensionless
	AttackPSI  float64 `json:"attack_psi"`  // unit: dimensionless
	AttackKS   float64 `json:"attack_ks"`   // unit: dimensionless
}

// String implements fmt.Stringer.
func (r DriftWaveSeries) String() string {
	return fmt.Sprintf("%-12s %-14s genuine PSI %.3f KS %.3f | attack PSI %.3f KS %.3f",
		r.Stage, r.Metric, r.GenuinePSI, r.GenuineKS, r.AttackPSI, r.AttackKS)
}

// DriftWaveResult is the outcome of RunDriftWave.
type DriftWaveResult struct {
	// AlertPSI is the alerting threshold the waves are judged against.
	AlertPSI float64 // unit: dimensionless
	Series   []DriftWaveSeries
	// GenuineAlertStages / AttackAlertStages are the distinct stages with
	// at least one series whose PSI exceeded AlertPSI during that wave.
	GenuineAlertStages []string
	AttackAlertStages  []string
	// Baseline/GenuineWave/AttackWave count the verifies in each phase.
	Baseline    int
	GenuineWave int
	AttackWave  int
}

// driftWaveSessions is the per-phase session count. At the simulated
// arrival spacing each phase spans ~4 minutes of window time, inside the
// 5-minute live window the drift scores read.
const driftWaveSessions = 40

// driftArrivalSpacing is the simulated inter-verify arrival gap.
const driftArrivalSpacing = 6 * time.Second

// RunDriftWave replays the attack matrix as a time-ordered traffic story
// against the rolling evidence windows: a genuine baseline is served and
// pinned, a second genuine wave measures the false-alarm floor, then a
// mixed replay+imitation wave measures how hard the per-stage evidence
// distributions move. It reproduces, end to end, the monitoring claim of
// the observability layer — population-level drift exposes an attack
// campaign even though every individual verify already returned.
func RunDriftWave(seed int64) (*DriftWaveResult, error) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiment: drift system: %w", err)
	}
	verifier, victim, err := driftVerifier(seed)
	if err != nil {
		return nil, err
	}
	sys.AttachIdentity(verifier)

	// Deterministic simulated clock: every verify arrives a fixed gap
	// after the previous one, so window placement — and therefore the
	// drift scores — are exactly reproducible.
	var clockNS atomic.Int64
	clockNS.Store(time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC).UnixNano())
	windows := telemetry.NewWindowSet(telemetry.WindowConfig{
		Now: func() time.Time { return time.Unix(0, clockNS.Load()) },
	}, core.EvidenceSeriesDefs())
	observer := core.NewEvidenceObserver(windows)

	serve := func(session *core.SessionData) error {
		d, err := sys.Verify(session)
		if err != nil {
			return err
		}
		observer.ObserveDecision(&d)
		outcome := telemetry.OutcomeRejected
		if d.Accepted {
			outcome = telemetry.OutcomeAccepted
		}
		windows.ObserveVerify(outcome, d.Elapsed)
		clockNS.Add(int64(driftArrivalSpacing))
		return nil
	}
	genuineAt := func(i int) (*core.SessionData, error) {
		return attack.Genuine(victim, attack.Scenario{Seed: seed + int64(i)})
	}

	// Phase 1 — baseline: genuine traffic only, then pin it.
	for i := 0; i < driftWaveSessions; i++ {
		s, err := genuineAt(i)
		if err != nil {
			return nil, fmt.Errorf("experiment: drift baseline session %d: %w", i, err)
		}
		if err := serve(s); err != nil {
			return nil, fmt.Errorf("experiment: drift baseline verify %d: %w", i, err)
		}
	}
	windows.PinBaseline(windows.LiveWindow())

	// Phase 2 — genuine control wave, after the live window drains of
	// baseline traffic. Same victim, fresh seeds: its drift vs the
	// baseline is the false-alarm floor.
	clockNS.Add(int64(windows.LiveWindow() + time.Minute))
	for i := 0; i < driftWaveSessions; i++ {
		s, err := genuineAt(1000 + i)
		if err != nil {
			return nil, fmt.Errorf("experiment: drift control session %d: %w", i, err)
		}
		if err := serve(s); err != nil {
			return nil, fmt.Errorf("experiment: drift control verify %d: %w", i, err)
		}
	}
	genuineDrift := windows.Drift()

	// Phase 3 — attack wave: alternating close-range loudspeaker replays
	// (caught by the sound-field check, shifting its margin evidence) and
	// practiced human imitations (caught by ASV, shifting the LLR
	// evidence). The cascade truncates each decision at its first failing
	// stage, so each attack type contaminates exactly the evidence its
	// own detection path produces.
	rec, err := attack.Record(victim, DefaultPassphrase, seed+7)
	if err != nil {
		return nil, fmt.Errorf("experiment: drift recording: %w", err)
	}
	speakers := device.Catalog()
	imposters := speech.NewDistinctRoster(3, seed+9, 1.2).Profiles()
	clockNS.Add(int64(windows.LiveWindow() + time.Minute))
	for i := 0; i < driftWaveSessions; i++ {
		var s *core.SessionData
		sc := attack.Scenario{Seed: seed + 2000 + int64(i), Distance: 0.05}
		if i%2 == 0 {
			s, err = attack.Replay(rec, speakers[(i/2)%len(speakers)], sc)
		} else {
			s, err = attack.Imitation(imposters[i%len(imposters)], victim, speech.ImitatorPracticed, sc)
		}
		if err != nil {
			return nil, fmt.Errorf("experiment: drift attack session %d: %w", i, err)
		}
		if err := serve(s); err != nil {
			return nil, fmt.Errorf("experiment: drift attack verify %d: %w", i, err)
		}
	}
	attackDrift := windows.Drift()

	res := &DriftWaveResult{
		AlertPSI:    telemetry.PSIActionAbove,
		Baseline:    driftWaveSessions,
		GenuineWave: driftWaveSessions,
		AttackWave:  driftWaveSessions,
	}
	genuineStages := map[string]bool{}
	attackStages := map[string]bool{}
	for i := range genuineDrift {
		g, a := genuineDrift[i], attackDrift[i]
		res.Series = append(res.Series, DriftWaveSeries{
			Stage:      g.Stage,
			Metric:     g.Metric,
			GenuinePSI: g.PSI,
			GenuineKS:  g.KS,
			AttackPSI:  a.PSI,
			AttackKS:   a.KS,
		})
		if g.PSI > res.AlertPSI && !genuineStages[g.Stage] {
			genuineStages[g.Stage] = true
			res.GenuineAlertStages = append(res.GenuineAlertStages, g.Stage)
		}
		if a.PSI > res.AlertPSI && !attackStages[a.Stage] {
			attackStages[a.Stage] = true
			res.AttackAlertStages = append(res.AttackAlertStages, a.Stage)
		}
	}
	return res, nil
}

// driftVerifier trains a compact GMM-UBM back-end and enrolls the wave's
// victim, calibrated at the paper's zero-FRR operating point so genuine
// waves decide accept and imitation waves decide reject.
func driftVerifier(seed int64) (*core.SpeakerVerifier, speech.Profile, error) {
	rng := rand.New(rand.NewSource(seed + 41))
	bg, err := corpusSessions(speech.NewRoster(6, seed+1), 2, 2, seed+2)
	if err != nil {
		return nil, speech.Profile{}, fmt.Errorf("experiment: drift background: %w", err)
	}
	verifier, err := core.TrainSpeakerVerifier(bg, core.SpeakerVerifierConfig{
		Backend:    core.BackendGMMUBM,
		Components: 16,
		Seed:       seed,
	})
	if err != nil {
		return nil, speech.Profile{}, fmt.Errorf("experiment: drift training: %w", err)
	}
	victim := speech.RandomProfile("victim", rng)
	enroll, err := renderSessions(victim, DefaultPassphrase, 2, 3, rng)
	if err != nil {
		return nil, speech.Profile{}, fmt.Errorf("experiment: drift enrollment: %w", err)
	}
	if err := verifier.Enroll(victim.Name, enroll); err != nil {
		return nil, speech.Profile{}, fmt.Errorf("experiment: drift enroll: %w", err)
	}
	held, err := renderSessions(victim, DefaultPassphrase, 1, 4, rng)
	if err != nil {
		return nil, speech.Profile{}, fmt.Errorf("experiment: drift calibration: %w", err)
	}
	if err := verifier.CalibrateThreshold(victim.Name, held[0], 0.05); err != nil {
		return nil, speech.Profile{}, fmt.Errorf("experiment: drift calibrate: %w", err)
	}
	return verifier, victim, nil
}
