package experiment

import (
	"fmt"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/stats"
)

// DistanceSweepConfig parameterizes the Fig. 12 / Fig. 14 experiments.
type DistanceSweepConfig struct {
	// DistancesCM are the true sound-source distances to test; the paper
	// uses 4–14 cm in 2 cm steps.
	DistancesCM []float64
	// Environment selects the ambient EMF scene.
	Environment magnetics.EnvironmentKind
	// Shielded wraps every attack loudspeaker in Mu-metal (Fig. 12b).
	Shielded bool
	// GenuinePerSpeaker is the number of genuine trials per victim
	// (5 victims).
	GenuinePerSpeaker int
	// SpeakerStride thins the 25-speaker catalog (1 = all 25).
	SpeakerStride int
	// Seed drives all randomness.
	Seed int64
}

func (c *DistanceSweepConfig) setDefaults() {
	if len(c.DistancesCM) == 0 {
		c.DistancesCM = []float64{4, 6, 8, 10, 12, 14}
	}
	if c.Environment == 0 {
		c.Environment = magnetics.EnvQuiet
	}
	if c.GenuinePerSpeaker == 0 {
		c.GenuinePerSpeaker = 3
	}
	if c.SpeakerStride == 0 {
		c.SpeakerStride = 1
	}
}

// DistanceRow is one row of the Fig. 12/14 bar charts.
type DistanceRow struct {
	// DistanceCM is the true source distance in centimeters.
	DistanceCM float64
	// Rates holds FAR/FRR/EER for this distance.
	Rates Rates
	// GenuineTrials and AttackTrials count the cell's population.
	GenuineTrials, AttackTrials int
}

// String implements fmt.Stringer.
func (r DistanceRow) String() string {
	return fmt.Sprintf("%2.0f cm: %v  (%d genuine, %d attack)",
		r.DistanceCM, r.Rates, r.GenuineTrials, r.AttackTrials)
}

// RunDistanceSweep evaluates the anti-spoofing subsystem across source
// distances, reproducing Fig. 12(a) (quiet), Fig. 12(b) (Shielded),
// Fig. 14(a) (EnvNearComputer) and Fig. 14(b) (EnvCar).
func RunDistanceSweep(cfg DistanceSweepConfig) ([]DistanceRow, error) {
	cfg.setDefaults()
	sys, err := machineSystem(cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Environment != magnetics.EnvQuiet {
		// §VII adaptive thresholding: calibrate against the ambient
		// environment before the sweep, as the deployed system would.
		amb, err := AmbientTrace(cfg.Environment, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sys.CalibrateEnvironment(amb)
	}
	victims := victimRoster(cfg.Seed)
	recs, err := recordingsFor(victims, DefaultPassphrase, cfg.Seed)
	if err != nil {
		return nil, err
	}
	speakers := SpeakerSubset(cfg.SpeakerStride)

	var rows []DistanceRow
	trialSeed := cfg.Seed
	for _, dcm := range cfg.DistancesCM {
		dist := dcm / 100
		scores := &stats.ScoreSet{}
		var genAccept, genTotal, attAccept, attTotal int

		for _, v := range victims {
			for k := 0; k < cfg.GenuinePerSpeaker; k++ {
				trialSeed++
				s, err := attack.Genuine(v, attack.Scenario{
					Environment: cfg.Environment,
					Distance:    dist,
					Passphrase:  DefaultPassphrase,
					Seed:        trialSeed,
				})
				if err != nil {
					return nil, fmt.Errorf("experiment: genuine trial: %w", err)
				}
				score, ok, err := runTrial(sys, s)
				if err != nil {
					return nil, err
				}
				scores.Add(score, true)
				genTotal++
				if ok {
					genAccept++
				}
			}
		}
		for i, spk := range speakers {
			rec := recs[victims[i%len(victims)].Name]
			trialSeed++
			sc := attack.Scenario{
				Environment: cfg.Environment,
				Distance:    dist,
				Passphrase:  DefaultPassphrase,
				Seed:        trialSeed,
			}
			var s *core.SessionData
			var err error
			if cfg.Shielded {
				s, err = attack.ShieldedReplay(rec.audio, spk, sc)
			} else {
				s, err = attack.Replay(rec.audio, spk, sc)
			}
			if err != nil {
				return nil, fmt.Errorf("experiment: replay trial via %s: %w", spk.Model, err)
			}
			score, ok, err := runTrial(sys, s)
			if err != nil {
				return nil, err
			}
			scores.Add(score, false)
			attTotal++
			if ok {
				attAccept++
			}
		}
		rows = append(rows, DistanceRow{
			DistanceCM:    dcm,
			Rates:         ratesFrom(scores, genAccept, genTotal, attAccept, attTotal),
			GenuineTrials: genTotal,
			AttackTrials:  attTotal,
		})
	}
	return rows, nil
}
