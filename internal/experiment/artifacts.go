package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/device"
	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/pca"
	"voiceguard/internal/ranging"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/trajectory"
)

// Fig6Point is one spectrogram ridge sample of the moving-phone pilot
// tone (the paper's Fig. 6).
type Fig6Point struct {
	// TimeSec is the frame time.
	TimeSec float64
	// PeakHz is the pilot peak frequency in that frame.
	PeakHz float64
	// Magnitude is the peak magnitude.
	Magnitude float64
}

// RunFig6 simulates the gesture's ranging capture and extracts the
// pilot-band spectrogram ridge over time.
func RunFig6(seed int64) ([]Fig6Point, error) {
	u := trajectory.StandardUseCase(0.06)
	rng := rand.New(rand.NewSource(seed))
	capture, err := ranging.Simulate(ranging.DefaultChannel(), u.Duration(), u.DistanceAt, rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6 capture: %w", err)
	}
	sp, err := ranging.SpectrogramOfCapture(capture)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6 spectrogram: %w", err)
	}
	var pts []Fig6Point
	for f := 0; f < sp.NumFrames(); f += 4 {
		bin, mag := sp.PeakBin(f, 16000, 24000)
		if bin < 0 {
			continue
		}
		pts = append(pts, Fig6Point{TimeSec: sp.FrameTime(f), PeakHz: sp.BinFreq(bin), Magnitude: mag})
	}
	return pts, nil
}

// Fig8Point is one PCA-projected sound-field feature point.
type Fig8Point struct {
	// Class is "mouth" or "earphone".
	Class string
	// PC1 and PC2 are the first two principal coordinates.
	PC1, PC2 float64
}

// RunFig8 reproduces Fig. 8: PCA of mouth vs earphone sound-field feature
// vectors.
func RunFig8(seed int64, perClass int) ([]Fig8Point, error) {
	if perClass <= 0 {
		perClass = 40
	}
	rng := rand.New(rand.NewSource(seed))
	collect := func(src soundfield.Source) ([][]float64, error) {
		var out [][]float64
		for i := 0; i < perClass; i++ {
			ms, err := soundfield.Sweep(src, soundfield.DefaultSweep(0.06), rng)
			if err != nil {
				return nil, err
			}
			out = append(out, soundfield.FeatureVector(ms))
		}
		return out, nil
	}
	mouth, err := collect(soundfield.Mouth())
	if err != nil {
		return nil, fmt.Errorf("experiment: fig8 mouth sweeps: %w", err)
	}
	ear, err := collect(soundfield.Earphone())
	if err != nil {
		return nil, fmt.Errorf("experiment: fig8 earphone sweeps: %w", err)
	}
	all := append(append([][]float64{}, mouth...), ear...)
	model, err := pca.Fit(all, 2)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig8 PCA: %w", err)
	}
	var pts []Fig8Point
	for _, p := range model.ProjectAll(mouth) {
		pts = append(pts, Fig8Point{Class: "mouth", PC1: p[0], PC2: p[1]})
	}
	for _, p := range model.ProjectAll(ear) {
		pts = append(pts, Fig8Point{Class: "earphone", PC1: p[0], PC2: p[1]})
	}
	return pts, nil
}

// Fig10Point is one angle sample of the loudspeaker polar field plot.
type Fig10Point struct {
	// AngleDeg is the measurement bearing around the speaker.
	AngleDeg float64
	// FieldUT is the field magnitude in µT.
	FieldUT float64
}

// RunFig10 sweeps a magnetometer around the Logitech LS21 (the paper's
// Fig. 10 subject) at the given radius and returns the polar profile.
func RunFig10(radiusM float64) []Fig10Point {
	if radiusM <= 0 {
		radiusM = 0.045
	}
	ls21 := device.Catalog()[0]
	sources := ls21.FieldSources(geometry.Vec3{}, nil)
	var pts []Fig10Point
	for deg := 0; deg < 360; deg += 10 {
		rad := float64(deg) * math.Pi / 180
		p := geometry.Vec3{X: radiusM * math.Cos(rad), Y: radiusM * math.Sin(rad)}
		var b geometry.Vec3
		for _, src := range sources {
			b = b.Add(src.FieldAt(p, 0))
		}
		pts = append(pts, Fig10Point{AngleDeg: float64(deg), FieldUT: b.Norm()})
	}
	return pts
}

// MaxField returns the maximum field magnitude of a polar profile, used
// to check the 30–210 µT calibration claim.
func MaxField(pts []Fig10Point) float64 {
	var m float64
	for _, p := range pts {
		if p.FieldUT > m {
			m = p.FieldUT
		}
	}
	return m
}

// Fig13Point is one distance sample of the shielded-vs-bare field
// comparison (the quantitative analog of the paper's Fig. 13 field-
// distribution illustration).
type Fig13Point struct {
	// DistanceCM is the measurement distance from the speaker.
	DistanceCM float64
	// BareUT and ShieldedUT are the emitted field magnitudes in µT.
	BareUT, ShieldedUT float64
}

// RunFig13 measures a representative speaker's field versus distance,
// bare and inside a Mu-metal box (including the box's induced soft-iron
// dipole, which keeps the shielded unit detectable up close).
func RunFig13() []Fig13Point {
	spk := device.Catalog()[0]
	bare := magnetics.Dipole{Moment: geometry.Vec3{X: spk.MagnetMoment}}
	geo := magnetics.DefaultGeomagnetic()
	shielded := &magnetics.Shield{
		Enclosed:      bare,
		Attenuation:   magnetics.MuMetalAttenuation,
		InducedMoment: 2e-4,
		Ambient:       geo,
	}
	var pts []Fig13Point
	for _, dcm := range []float64{2, 3, 4, 5, 6, 8, 10, 12, 14} {
		p := geometry.Vec3{X: dcm / 100}
		pts = append(pts, Fig13Point{
			DistanceCM: dcm,
			BareUT:     bare.FieldAt(p, 0).Norm(),
			ShieldedUT: shielded.FieldAt(p, 0).Norm(),
		})
	}
	return pts
}

// EnvironmentSummary describes an EMF environment's ambient statistics,
// used by the Fig. 14 discussion.
type EnvironmentSummary struct {
	// Kind is the environment.
	Kind magnetics.EnvironmentKind
	// MeanUT and SwingUT summarize two seconds of ambient magnitude.
	MeanUT, SwingUT float64
}

// SummarizeEnvironments reports ambient statistics for all environments.
func SummarizeEnvironments(seed int64) ([]EnvironmentSummary, error) {
	var out []EnvironmentSummary
	for _, kind := range []magnetics.EnvironmentKind{
		magnetics.EnvQuiet, magnetics.EnvNearComputer, magnetics.EnvCar,
	} {
		tr, err := AmbientTrace(kind, seed)
		if err != nil {
			return nil, err
		}
		mags := tr.Magnitudes()
		var mean, lo, hi float64
		lo, hi = mags[0], mags[0]
		for _, v := range mags {
			mean += v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		out = append(out, EnvironmentSummary{
			Kind:    kind,
			MeanUT:  mean / float64(len(mags)),
			SwingUT: hi - lo,
		})
	}
	return out, nil
}
