package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/gmm"
	"voiceguard/internal/speech"
)

// fastTrial is one (enrolled user, probe) cell of the attack matrix.
type fastTrial struct {
	user    string
	utt     *audio.Signal
	genuine bool
	exact   float64
}

// buildFastPathMatrix trains the production ASV configuration (GMM-UBM,
// 32 components, CMVN off) on a background roster, enrolls a victim
// panel, and renders a genuine + imitation trial matrix with exact
// scores attached.
func buildFastPathMatrix(t *testing.T) (*core.SpeakerVerifier, []fastTrial) {
	t.Helper()
	const seed = 1700
	rng := rand.New(rand.NewSource(seed))
	bg, err := corpusSessions(speech.NewRoster(4, seed+1), 2, 2, seed+2)
	if err != nil {
		t.Fatalf("background corpus: %v", err)
	}
	verifier, err := core.TrainSpeakerVerifier(bg, core.SpeakerVerifierConfig{Seed: seed})
	if err != nil {
		t.Fatalf("training verifier: %v", err)
	}
	panel := speech.NewDistinctRoster(3, seed+3, 1.2).Profiles()
	phoneChannel := speech.Channel{Gain: 0.8, NoiseRMS: 0.004, LowCut: 100, HighCut: 7000}

	var trials []fastTrial
	for i, victim := range panel {
		pass := fmt.Sprintf("%06d", 100000+rng.Intn(900000))
		enroll, err := renderSessionsVia(victim, pass, 2, 2, phoneChannel, rng)
		if err != nil {
			t.Fatalf("enrollment render: %v", err)
		}
		if err := verifier.Enroll(victim.Name, enroll); err != nil {
			t.Fatalf("enroll %s: %v", victim.Name, err)
		}
		for k := 0; k < 2; k++ {
			utt, err := renderOne(victim, pass, rng)
			if err != nil {
				t.Fatalf("genuine render: %v", err)
			}
			trials = append(trials, fastTrial{
				user: victim.Name, utt: phoneChannel.Apply(utt, rng), genuine: true,
			})
		}
		for j, imp := range panel {
			if j == i {
				continue
			}
			mimic := speech.Imitate(imp, victim, speech.ImitatorPracticed, rng)
			utt, err := renderOne(mimic, pass, rng)
			if err != nil {
				t.Fatalf("imitation render: %v", err)
			}
			trials = append(trials, fastTrial{
				user: victim.Name, utt: phoneChannel.Apply(utt, rng),
			})
		}
	}
	for i := range trials {
		s, err := verifier.Score(trials[i].user, trials[i].utt)
		if err != nil {
			t.Fatalf("exact score: %v", err)
		}
		trials[i].exact = s
	}
	return verifier, trials
}

// marginThresholds picks one decision threshold per enrolled user at the
// midpoint of the widest gap between adjacent exact scores, so verdict
// comparisons have the largest margin the score distribution allows.
func marginThresholds(trials []fastTrial) map[string]float64 {
	byUser := map[string][]float64{}
	for _, tr := range trials {
		byUser[tr.user] = append(byUser[tr.user], tr.exact)
	}
	th := make(map[string]float64, len(byUser))
	for user, scores := range byUser {
		sort.Float64s(scores)
		bestGap, bestAt := -1.0, 0
		for i := 1; i < len(scores); i++ {
			if g := scores[i] - scores[i-1]; g > bestGap {
				bestGap, bestAt = g, i
			}
		}
		th[user] = (scores[bestAt-1] + scores[bestAt]) / 2
	}
	return th
}

// TestFastPathMatrixSweep sweeps the shortlist width over the attack
// matrix and asserts the fast path's contract: the worst |ΔLLR| shrinks
// monotonically as C grows, meets gmm.ShortlistEpsilon at the default
// width, bottoms out at float32-quantization noise for the full mixture,
// and verdicts at well-margined thresholds match the exact path from the
// default width up.
func TestFastPathMatrixSweep(t *testing.T) {
	verifier, trials := buildFastPathMatrix(t)
	defer verifier.DisableFastPath()
	thresholds := marginThresholds(trials)

	widths := []int{1, 2, 4, gmm.DefaultShortlistC, 32}
	maxErr := make([]float64, len(widths))
	for wi, c := range widths {
		if err := verifier.EnableFastPath(core.FastPathConfig{TopC: c}); err != nil {
			t.Fatalf("enabling fast path at C=%d: %v", c, err)
		}
		for _, tr := range trials {
			s, err := verifier.Score(tr.user, tr.utt)
			if err != nil {
				t.Fatalf("fast score at C=%d: %v", c, err)
			}
			if d := math.Abs(s - tr.exact); d > maxErr[wi] {
				maxErr[wi] = d
			}
			if c >= gmm.DefaultShortlistC {
				th := thresholds[tr.user]
				if (s >= th) != (tr.exact >= th) {
					t.Errorf("C=%d verdict flip for %s: fast %.4f vs exact %.4f at threshold %.4f",
						c, tr.user, s, tr.exact, th)
				}
			}
		}
		t.Logf("C=%d worst |ΔLLR| %.3g", c, maxErr[wi])
	}

	for wi := 1; wi < len(widths); wi++ {
		if maxErr[wi] > maxErr[wi-1]+1e-9 {
			t.Errorf("truncation error grew from C=%d (%.3g) to C=%d (%.3g)",
				widths[wi-1], maxErr[wi-1], widths[wi], maxErr[wi])
		}
	}
	di := len(widths) - 2
	if maxErr[di] > gmm.ShortlistEpsilon {
		t.Errorf("default width C=%d error %.3g exceeds epsilon %v",
			gmm.DefaultShortlistC, maxErr[di], gmm.ShortlistEpsilon)
	}
	if full := maxErr[len(widths)-1]; full > 1e-4 {
		t.Errorf("full-width error %.3g above float32 quantization noise", full)
	}
}
