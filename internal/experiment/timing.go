package experiment

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/server"
	"voiceguard/internal/speech"
)

// randFor returns a deterministic source for a sub-experiment.
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TimingRow is one bar of the Fig. 15 authentication-time comparison.
type TimingRow struct {
	// Scheme names the authentication method.
	Scheme string
	// MeanPerTrial is the average end-to-end time per attempt, including
	// failed attempts, as in the paper.
	MeanPerTrial time.Duration
	// Trials is the population size.
	Trials int
	// SuccessRate is the fraction of accepted attempts.
	SuccessRate float64
}

// String implements fmt.Stringer.
func (r TimingRow) String() string {
	return fmt.Sprintf("%-22s %8.0f ms/trial  (%d trials, %.0f%% success)",
		r.Scheme, float64(r.MeanPerTrial)/float64(time.Millisecond), r.Trials, 100*r.SuccessRate)
}

// TimingConfig parameterizes the Fig. 15 measurement.
type TimingConfig struct {
	// Users is the number of volunteers (paper: 20).
	Users int
	// TrialsPerUser is attempts per volunteer (paper: 10).
	TrialsPerUser int
	// Seed drives randomness.
	Seed int64
}

func (c *TimingConfig) setDefaults() {
	if c.Users == 0 {
		c.Users = 5
	}
	if c.TrialsPerUser == 0 {
		c.TrialsPerUser = 4
	}
}

// RunTiming measures end-to-end authentication time for three schemes on
// a local loopback server (as the paper does, to exclude WAN latency):
// the full VoiceGuard pipeline, a voiceprint-only baseline (WeChat-style:
// just the voice upload and ASV-free acceptance of the transport path),
// and a password baseline (a tiny credential POST).
func RunTiming(cfg TimingConfig) ([]TimingRow, error) {
	cfg.setDefaults()
	sys, err := machineSystem(cfg.Seed)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(sys, nil)
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	roster := speech.NewRoster(cfg.Users, cfg.Seed)
	var rows []TimingRow

	// Scheme 1: VoiceGuard — record the gesture (wall-clock dominated by
	// the gesture itself on a real phone; here we count processing +
	// transport and add the fixed gesture duration).
	var total time.Duration
	var accepted, trials int
	const gestureDuration = 2500 * time.Millisecond // approach + sweep
	for u := 0; u < cfg.Users; u++ {
		for k := 0; k < cfg.TrialsPerUser; k++ {
			session, err := attack.Genuine(roster.Profile(u), attack.Scenario{
				Seed: cfg.Seed + int64(u*100+k),
			})
			if err != nil {
				return nil, err
			}
			res, err := c.Verify(session)
			if err != nil {
				return nil, err
			}
			total += res.Elapsed + gestureDuration
			trials++
			if res.Response.Accepted {
				accepted++
			}
		}
	}
	rows = append(rows, TimingRow{
		Scheme:       "voiceguard (ours)",
		MeanPerTrial: total / time.Duration(trials),
		Trials:       trials,
		SuccessRate:  float64(accepted) / float64(trials),
	})

	// Scheme 2: voiceprint-only baseline — speak the passphrase and
	// upload just the audio; no gesture, no sensing.
	total, accepted, trials = 0, 0, 0
	const speakDuration = 2000 * time.Millisecond
	for u := 0; u < cfg.Users; u++ {
		synth, err := speech.NewSynthesizer(roster.Profile(u), randFor(cfg.Seed+int64(u)))
		if err != nil {
			return nil, err
		}
		for k := 0; k < cfg.TrialsPerUser; k++ {
			voice, err := synth.SayDigits(DefaultPassphrase)
			if err != nil {
				return nil, err
			}
			res, err := c.VerifyVoiceprint(roster.Profile(u).Name, voice)
			if err != nil {
				return nil, err
			}
			total += res.Elapsed + speakDuration
			trials++
			if res.Response.Accepted {
				accepted++
			}
		}
	}
	rows = append(rows, TimingRow{
		Scheme:       "voiceprint baseline",
		MeanPerTrial: total / time.Duration(trials),
		Trials:       trials,
		SuccessRate:  float64(accepted) / float64(trials),
	})

	// Scheme 3: password baseline — typing (fixed human time) plus one
	// tiny request.
	total, trials = 0, 0
	const typeDuration = 3000 * time.Millisecond // paper: credential entry dominates
	for u := 0; u < cfg.Users; u++ {
		for k := 0; k < cfg.TrialsPerUser; k++ {
			start := time.Now()
			if _, err := c.HTTP.Get(ts.URL + "/healthz"); err != nil {
				return nil, err
			}
			total += time.Since(start) + typeDuration
			trials++
		}
	}
	rows = append(rows, TimingRow{
		Scheme:       "password baseline",
		MeanPerTrial: total / time.Duration(trials),
		Trials:       trials,
		SuccessRate:  1,
	})
	return rows, nil
}
