package experiment

import "testing"

// TestStreamEarlyExitSeparatesClasses pins the §XI story: verdicts agree
// across transports on every class, genuine sessions accept with
// bit-identical scores and no early exit, and attack classes decide
// early — with the replay's stream median far below its HTTP median.
func TestStreamEarlyExitSeparatesClasses(t *testing.T) {
	rows, err := RunStreamEarlyExit(1)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[string]StreamLatencyRow{}
	for _, r := range rows {
		if !r.VerdictsAgree {
			t.Errorf("%s: verdicts diverged across transports", r.Class)
		}
		byClass[r.Class] = r
	}
	g := byClass["genuine"]
	if g.Accepted != g.Sessions {
		t.Errorf("genuine accepted %d/%d, want all", g.Accepted, g.Sessions)
	}
	if g.EarlyExits != 0 {
		t.Errorf("genuine early exits = %d, want 0 (accept requires the finish frame)", g.EarlyExits)
	}
	if !g.ScoreBitsIdentical {
		t.Error("genuine stage scores not bit-identical across transports")
	}
	for _, class := range []string{"replay", "imitation"} {
		r := byClass[class]
		if r.Accepted != 0 {
			t.Errorf("%s accepted %d/%d, want 0", class, r.Accepted, r.Sessions)
		}
		if r.EarlyExits == 0 {
			t.Errorf("%s early exits = 0, want > 0", class)
		}
	}
	// The replay's magnetic tell arrives with the first sensor chunks, so
	// its stream verdict lands an order of magnitude sooner; assert only a
	// 2x gap to stay robust on loaded CI hosts.
	r := byClass["replay"]
	if r.StreamMedian*2 >= r.HTTPMedian {
		t.Errorf("replay stream median %v not measurably below HTTP median %v", r.StreamMedian, r.HTTPMedian)
	}
}
