package experiment

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/baseline"
	"voiceguard/internal/speech"
	"voiceguard/internal/stats"
)

// BaselineRow compares one defense against the replay attack battery.
type BaselineRow struct {
	// Defense names the approach.
	Defense string
	// EERPercent is the equal error rate over the trial set.
	EERPercent float64
	// FARPercent is the FAR at the zero-FRR operating point.
	FARPercent float64
	// Trials is the per-class population.
	Trials int
}

// String implements fmt.Stringer.
func (r BaselineRow) String() string {
	return fmt.Sprintf("%-32s EER %5.1f%%  FAR@zeroFRR %5.1f%%  (%d trials/class)",
		r.Defense, r.EERPercent, r.FARPercent, r.Trials)
}

// RunBaselineComparison contrasts the §II acoustic-only replay detector
// with VoiceGuard's physical stages on the same replay scenario at the
// operating distance — the quantitative version of the paper's argument
// that spectral countermeasures are not enough.
func RunBaselineComparison(seed int64) ([]BaselineRow, error) {
	const trials = 25

	// --- Acoustic-only baseline: train on one population, test on a
	// disjoint one (same speakers would be too easy).
	rng := rand.New(rand.NewSource(seed))
	mkPair := func() (*audio.Signal, *audio.Signal, error) {
		p := speech.RandomProfile("spk", rng)
		synth, err := speech.NewSynthesizer(p, rng)
		if err != nil {
			return nil, nil, err
		}
		utt, err := synth.SayDigits(DefaultPassphrase)
		if err != nil {
			return nil, nil, err
		}
		ch := speech.Channel{Gain: 0.8, NoiseRMS: 0.003, LowCut: 90, HighCut: 7200}
		live := ch.Apply(utt, rng)
		replayed := attack.PlaybackColoration(ch.Apply(utt, rng), rng)
		return live, replayed, nil
	}
	var liveTrain, repTrain []*audio.Signal
	for i := 0; i < 30; i++ {
		l, r, err := mkPair()
		if err != nil {
			return nil, err
		}
		liveTrain = append(liveTrain, l)
		repTrain = append(repTrain, r)
	}
	det, err := baseline.Train(liveTrain, repTrain, seed)
	if err != nil {
		return nil, err
	}
	acousticScores := &stats.ScoreSet{}
	for i := 0; i < trials; i++ {
		l, r, err := mkPair()
		if err != nil {
			return nil, err
		}
		ls, err := det.Score(l)
		if err != nil {
			return nil, err
		}
		rs, err := det.Score(r)
		if err != nil {
			return nil, err
		}
		acousticScores.Add(ls, true)
		acousticScores.Add(rs, false)
	}

	// --- VoiceGuard physical stages on full replay sessions.
	sys, err := machineSystem(seed)
	if err != nil {
		return nil, err
	}
	victims := victimRoster(seed)
	recs, err := recordingsFor(victims, DefaultPassphrase, seed)
	if err != nil {
		return nil, err
	}
	physScores := &stats.ScoreSet{}
	speakers := SpeakerSubset(1)
	trialSeed := seed + 1000
	for i := 0; i < trials; i++ {
		trialSeed++
		v := victims[i%len(victims)]
		g, err := attack.Genuine(v, attack.Scenario{Distance: 0.06, Seed: trialSeed})
		if err != nil {
			return nil, err
		}
		score, _, err := runTrial(sys, g)
		if err != nil {
			return nil, err
		}
		physScores.Add(score, true)

		trialSeed++
		spk := speakers[i%len(speakers)]
		a, err := attack.Replay(recs[v.Name].audio, spk, attack.Scenario{Distance: 0.06, Seed: trialSeed})
		if err != nil {
			return nil, err
		}
		score, _, err = runTrial(sys, a)
		if err != nil {
			return nil, err
		}
		physScores.Add(score, false)
	}

	rows := make([]BaselineRow, 0, 2)
	for _, c := range []struct {
		name   string
		scores *stats.ScoreSet
	}{
		{"acoustic-only (channel noise)", acousticScores},
		{"voiceguard physical stages", physScores},
	} {
		eer, _ := c.scores.EER()
		th := minFloat(c.scores.Genuine)
		rows = append(rows, BaselineRow{
			Defense:    c.name,
			EERPercent: 100 * eer,
			FARPercent: 100 * c.scores.FAR(th),
			Trials:     trials,
		})
	}
	return rows, nil
}
