package experiment

import (
	"fmt"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/soundfield"
)

// BatteryRow is one loudspeaker's detection outcome (Table IV battery).
type BatteryRow struct {
	// Speaker identifies the unit.
	Speaker device.Loudspeaker
	// Detected reports whether the pipeline rejected the replay.
	Detected bool
	// FailedStage is the cascade stage that caught it first.
	FailedStage core.Stage
	// MagneticHit reports whether the loudspeaker-detection stage alone
	// would also have caught it (the cascade may reject earlier).
	MagneticHit bool
	// Swing is the measured magnetic swing in µT.
	Swing float64
}

// String implements fmt.Stringer.
func (r BatteryRow) String() string {
	verdict := "MISSED"
	if r.Detected {
		verdict = fmt.Sprintf("detected at %v", r.FailedStage)
	}
	mag := "mag:no "
	if r.MagneticHit {
		mag = "mag:yes"
	}
	return fmt.Sprintf("%-45s %-20s swing %6.1f µT  %s  %s",
		r.Speaker.Maker+" "+r.Speaker.Model, r.Speaker.Class, r.Swing, mag, verdict)
}

// RunSpeakerBattery replays through every cataloged loudspeaker at the
// paper's operating distance and reports per-unit detection — the result
// behind Table IV's claim that all 25 units are caught.
func RunSpeakerBattery(seed int64) ([]BatteryRow, error) {
	sys, err := machineSystem(seed)
	if err != nil {
		return nil, err
	}
	victims := victimRoster(seed)
	recs, err := recordingsFor(victims, DefaultPassphrase, seed)
	if err != nil {
		return nil, err
	}
	var rows []BatteryRow
	for i, spk := range device.Catalog() {
		rec := recs[victims[i%len(victims)].Name]
		s, err := attack.Replay(rec.audio, spk, attack.Scenario{
			Distance: 0.05,
			Seed:     seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: battery replay via %s: %w", spk.Model, err)
		}
		d, err := sys.Verify(s)
		if err != nil {
			return nil, err
		}
		magResult := core.NewLoudspeakerDetector().Verify(s.Gesture.Mag)
		rows = append(rows, BatteryRow{
			Speaker:     spk,
			Detected:    !d.Accepted,
			FailedStage: d.FailedStage,
			MagneticHit: !magResult.Pass,
			Swing:       core.Measure(s.Gesture.Mag).Swing,
		})
	}
	return rows, nil
}

// TubeRow is one sound-tube attack outcome (§VII).
type TubeRow struct {
	// Tube is the attack hardware.
	Tube *soundfield.Tube
	// Rejected reports whether the attack failed.
	Rejected bool
	// FailedStage is the stage that caught it.
	FailedStage core.Stage
}

// String implements fmt.Stringer.
func (r TubeRow) String() string {
	verdict := "BROKE THROUGH"
	if r.Rejected {
		verdict = fmt.Sprintf("rejected at %v", r.FailedStage)
	}
	return fmt.Sprintf("%-20s %s", r.Tube.Name(), verdict)
}

// RunSoundTube evaluates the §VII sound-tube attacks across tube sizes.
func RunSoundTube(seed int64) ([]TubeRow, error) {
	sys, err := machineSystem(seed)
	if err != nil {
		return nil, err
	}
	victims := victimRoster(seed)
	recs, err := recordingsFor(victims[:1], DefaultPassphrase, seed)
	if err != nil {
		return nil, err
	}
	rec := recs[victims[0].Name]
	spk := device.Catalog()[0]
	tubes := []*soundfield.Tube{
		{OpeningRadius: 0.008, Length: 0.18, LevelAt1m: 62},
		{OpeningRadius: 0.010, Length: 0.22, LevelAt1m: 62},
		{OpeningRadius: 0.012, Length: 0.28, LevelAt1m: 62},
		{OpeningRadius: 0.015, Length: 0.33, LevelAt1m: 62},
		{OpeningRadius: 0.018, Length: 0.38, LevelAt1m: 62},
		{OpeningRadius: 0.020, Length: 0.42, LevelAt1m: 62},
	}
	var rows []TubeRow
	for i, tube := range tubes {
		s, err := attack.SoundTube(rec.audio, spk, tube, attack.Scenario{Seed: seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("experiment: tube attack %s: %w", tube.Name(), err)
		}
		d, err := sys.Verify(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TubeRow{Tube: tube, Rejected: !d.Accepted, FailedStage: d.FailedStage})
	}
	return rows, nil
}

// UnconventionalRow is one §VII unconventional-speaker outcome.
type UnconventionalRow struct {
	// Speaker is the unit under test.
	Speaker device.Loudspeaker
	// Rejected reports whether the replay failed.
	Rejected bool
	// FailedStage is the stage that caught it.
	FailedStage core.Stage
}

// String implements fmt.Stringer.
func (r UnconventionalRow) String() string {
	verdict := "BROKE THROUGH"
	if r.Rejected {
		verdict = fmt.Sprintf("rejected at %v", r.FailedStage)
	}
	return fmt.Sprintf("%-35s %s", r.Speaker.Maker+" "+r.Speaker.Model, verdict)
}

// RunUnconventional evaluates the electrostatic and piezoelectric
// speakers of §VII: the ESL has no magnet but a huge radiating panel
// (sound field catches it, and its grids still disturb the field up
// close); the piezo has no magnetic signature at all and must be caught
// by the sound-field stage.
func RunUnconventional(seed int64) ([]UnconventionalRow, error) {
	sys, err := machineSystem(seed)
	if err != nil {
		return nil, err
	}
	victims := victimRoster(seed)
	recs, err := recordingsFor(victims[:1], DefaultPassphrase, seed)
	if err != nil {
		return nil, err
	}
	rec := recs[victims[0].Name]
	var rows []UnconventionalRow
	for i, spk := range []device.Loudspeaker{device.Electrostatic(), device.Piezoelectric()} {
		s, err := attack.Replay(rec.audio, spk, attack.Scenario{Seed: seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("experiment: unconventional replay: %w", err)
		}
		d, err := sys.Verify(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, UnconventionalRow{Speaker: spk, Rejected: !d.Accepted, FailedStage: d.FailedStage})
	}
	return rows, nil
}

// AdaptiveRow compares fixed vs calibrated thresholds in one environment.
type AdaptiveRow struct {
	// Environment is the ambient scene.
	Environment magnetics.EnvironmentKind
	// Adaptive reports whether §VII calibration was applied.
	Adaptive bool
	// Rates holds the resulting FAR/FRR/EER at 6 cm.
	Rates Rates
}

// String implements fmt.Stringer.
func (r AdaptiveRow) String() string {
	mode := "fixed   "
	if r.Adaptive {
		mode = "adaptive"
	}
	return fmt.Sprintf("%-14s %s: %v", r.Environment, mode, r.Rates)
}

// RunAdaptiveThresholding contrasts the fixed-threshold detector with the
// §VII adaptive calibration in the high-EMF environments.
func RunAdaptiveThresholding(seed int64) ([]AdaptiveRow, error) {
	var rows []AdaptiveRow
	for _, env := range []magnetics.EnvironmentKind{magnetics.EnvNearComputer, magnetics.EnvCar} {
		for _, adaptive := range []bool{false, true} {
			sys, err := machineSystem(seed)
			if err != nil {
				return nil, err
			}
			if adaptive {
				amb, err := AmbientTrace(env, seed)
				if err != nil {
					return nil, err
				}
				sys.CalibrateEnvironment(amb)
			}
			rates, err := ratesAtDistance(sys, env, 0.06, seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AdaptiveRow{Environment: env, Adaptive: adaptive, Rates: rates})
		}
	}
	return rows, nil
}

// RunAblation evaluates a custom stage configuration at one distance in
// the quiet environment — the harness behind the DESIGN.md §5 ablation
// benches.
func RunAblation(cfg core.SystemConfig, dist float64, seed int64) (Rates, error) {
	if cfg.FieldSeed == 0 {
		cfg.FieldSeed = seed
	}
	sys, err := core.BuildSystem(cfg)
	if err != nil {
		return Rates{}, err
	}
	return ratesAtDistance(sys, magnetics.EnvQuiet, dist, seed)
}

// ratesAtDistance evaluates a system at a single distance in one
// environment.
func ratesAtDistance(sys *core.System, env magnetics.EnvironmentKind, dist float64, seed int64) (Rates, error) {
	victims := victimRoster(seed)
	recs, err := recordingsFor(victims, DefaultPassphrase, seed)
	if err != nil {
		return Rates{}, err
	}
	scores := newScoreSet()
	var genAccept, genTotal, attAccept, attTotal int
	trialSeed := seed
	for _, v := range victims {
		for k := 0; k < 3; k++ {
			trialSeed++
			s, err := attack.Genuine(v, attack.Scenario{
				Environment: env, Distance: dist, Seed: trialSeed,
			})
			if err != nil {
				return Rates{}, err
			}
			score, ok, err := runTrial(sys, s)
			if err != nil {
				return Rates{}, err
			}
			scores.Add(score, true)
			genTotal++
			if ok {
				genAccept++
			}
		}
	}
	for i, spk := range SpeakerSubset(2) {
		trialSeed++
		rec := recs[victims[i%len(victims)].Name]
		s, err := attack.Replay(rec.audio, spk, attack.Scenario{
			Environment: env, Distance: dist, Seed: trialSeed,
		})
		if err != nil {
			return Rates{}, err
		}
		score, ok, err := runTrial(sys, s)
		if err != nil {
			return Rates{}, err
		}
		scores.Add(score, false)
		attTotal++
		if ok {
			attAccept++
		}
	}
	return ratesFrom(scores, genAccept, genTotal, attAccept, attTotal), nil
}
