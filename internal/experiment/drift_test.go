package experiment

import "testing"

// TestDriftWaveSeparatesAttackTraffic is the observability layer's
// population-level acceptance check: a second wave of genuine traffic
// must stay under the PSI action threshold on every evidence series,
// while the mixed replay+imitation wave must push at least two distinct
// stages past it.
func TestDriftWaveSeparatesAttackTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an ASV back-end and serves 120 verifies")
	}
	res, err := RunDriftWave(1700)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Series {
		t.Log(row)
	}
	if len(res.GenuineAlertStages) != 0 {
		t.Errorf("genuine control wave alerted on %v (PSI > %.2f); want none",
			res.GenuineAlertStages, res.AlertPSI)
	}
	if len(res.AttackAlertStages) < 2 {
		t.Errorf("attack wave alerted on %d stage(s) %v; want >= 2",
			len(res.AttackAlertStages), res.AttackAlertStages)
	}
	// The attack story is stage-specific: close replays are stopped by
	// the sound-field check, imitations by ASV, so those two stages must
	// be among the alerting set.
	want := map[string]bool{"soundfield": false, "identity": false}
	for _, st := range res.AttackAlertStages {
		if _, ok := want[st]; ok {
			want[st] = true
		}
	}
	for st, hit := range want {
		if !hit {
			t.Errorf("stage %s did not alert during the attack wave", st)
		}
	}
}
