package experiment

import (
	"testing"

	"voiceguard/internal/core"
	"voiceguard/internal/magnetics"
)

// The experiment tests check the *shape* of each reproduced result
// against the paper, per DESIGN.md §4: perfect rates at ≤6 cm, FAR growth
// with distance, FRR inflation under EMF, full battery detection.

func TestDistanceSweepQuietShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunDistanceSweep(DistanceSweepConfig{
		DistancesCM:       []float64{4, 6, 12},
		GenuinePerSpeaker: 2,
		SpeakerStride:     2,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper Fig. 12(a): all-zero at ≤6 cm.
	for _, r := range rows[:2] {
		if r.Rates.FAR != 0 || r.Rates.FRR != 0 || r.Rates.EER != 0 {
			t.Errorf("%v cm: %v, want all zero", r.DistanceCM, r.Rates)
		}
	}
	// FAR grows at long range.
	if rows[2].Rates.FAR <= rows[0].Rates.FAR {
		t.Errorf("FAR should grow with distance: %v", rows[2].Rates)
	}
	for _, r := range rows {
		if r.GenuineTrials == 0 || r.AttackTrials == 0 {
			t.Error("empty trial cell")
		}
	}
}

func TestDistanceSweepShieldedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunDistanceSweep(DistanceSweepConfig{
		DistancesCM:       []float64{6, 14},
		Shielded:          true,
		GenuinePerSpeaker: 2,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 12(b): still perfect at 6 cm.
	if rows[0].Rates.FAR != 0 || rows[0].Rates.FRR != 0 {
		t.Errorf("shielded 6 cm: %v, want zero", rows[0].Rates)
	}
	// Shielding raises far-range FAR vs the unshielded case. The
	// unshielded run uses the identical distance list so the per-trial
	// seeds (and hence all sound-field noise draws) line up; the only
	// difference is the magnetic attenuation.
	unshielded, err := RunDistanceSweep(DistanceSweepConfig{
		DistancesCM:       []float64{6, 14},
		GenuinePerSpeaker: 2,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Rates.FAR < unshielded[1].Rates.FAR {
		t.Errorf("shielded FAR %v below unshielded %v at 14 cm",
			rows[1].Rates.FAR, unshielded[1].Rates.FAR)
	}
}

func TestEnvironmentSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	// Paper Fig. 14: at 6 cm rates stay zero even under EMF (after the
	// §VII calibration the harness applies); quiet FRR ≤ car FRR at long
	// range.
	for _, env := range []magnetics.EnvironmentKind{magnetics.EnvNearComputer, magnetics.EnvCar} {
		rows, err := RunDistanceSweep(DistanceSweepConfig{
			DistancesCM:       []float64{6},
			Environment:       env,
			GenuinePerSpeaker: 2,
			SpeakerStride:     3,
			Seed:              3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].Rates.FAR != 0 {
			t.Errorf("%v 6 cm FAR = %v, want 0", env, rows[0].Rates.FAR)
		}
		if rows[0].Rates.FRR > 20 {
			t.Errorf("%v 6 cm FRR = %v, want small after calibration", env, rows[0].Rates.FRR)
		}
	}
}

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunTableI(TableIConfig{Seed: 4, UBMComponents: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 backends × 2 tests)", len(rows))
	}
	for _, r := range rows {
		// Paper Table I: FAR 0% on test 1 and ≤ a few percent on test 2.
		limit := 5.0
		if r.Test == 2 {
			limit = 12
		}
		if r.FARPercent > limit {
			t.Errorf("%v test %d: FAR %.1f%% above expected band %v%%",
				r.Backend, r.Test, r.FARPercent, limit)
		}
		if r.Genuine == 0 || r.Impostor == 0 {
			t.Error("empty trial populations")
		}
	}
}

func TestSpeakerBatteryAllDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunSpeakerBattery(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Fatalf("rows = %d, want 25", len(rows))
	}
	for _, r := range rows {
		if !r.Detected {
			t.Errorf("undetected: %v", r)
		}
	}
}

func TestSoundTubeAllRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunSoundTube(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no tube rows")
	}
	for _, r := range rows {
		if !r.Rejected {
			t.Errorf("tube broke through: %v", r)
		}
	}
}

func TestUnconventionalRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunUnconventional(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Rejected {
			t.Errorf("unconventional speaker broke through: %v", r)
		}
	}
}

func TestAdaptiveThresholdingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunAdaptiveThresholding(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// For each environment: adaptive FRR ≤ fixed FRR, FAR stays 0.
	for i := 0; i < len(rows); i += 2 {
		fixed, adaptive := rows[i], rows[i+1]
		if adaptive.Rates.FRR > fixed.Rates.FRR {
			t.Errorf("%v: adaptive FRR %v worse than fixed %v",
				adaptive.Environment, adaptive.Rates.FRR, fixed.Rates.FRR)
		}
		if adaptive.Rates.FAR > 0 {
			t.Errorf("%v: adaptive FAR %v, want 0", adaptive.Environment, adaptive.Rates.FAR)
		}
	}
}

func TestFig6RidgeNearPilot(t *testing.T) {
	pts, err := RunFig6(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.PeakHz < 18500 || p.PeakHz > 19500 {
			t.Errorf("ridge at %v Hz strays from pilot", p.PeakHz)
		}
	}
}

func TestFig8ClustersSeparate(t *testing.T) {
	pts, err := RunFig8(10, 25)
	if err != nil {
		t.Fatal(err)
	}
	var mx, my, ex, ey float64
	var nm, ne int
	for _, p := range pts {
		if p.Class == "mouth" {
			mx += p.PC1
			my += p.PC2
			nm++
		} else {
			ex += p.PC1
			ey += p.PC2
			ne++
		}
	}
	if nm != 25 || ne != 25 {
		t.Fatalf("class counts %d/%d", nm, ne)
	}
	mx, my = mx/float64(nm), my/float64(nm)
	ex, ey = ex/float64(ne), ey/float64(ne)
	dx, dy := mx-ex, my-ey
	if dx*dx+dy*dy < 1 {
		t.Errorf("PCA centroids too close: (%v,%v) vs (%v,%v)", mx, my, ex, ey)
	}
}

func TestFig10PolarInPaperRange(t *testing.T) {
	pts := RunFig10(0)
	if len(pts) != 36 {
		t.Fatalf("points = %d", len(pts))
	}
	m := MaxField(pts)
	if m < 30 || m > 210 {
		t.Errorf("peak field %v µT outside the paper's 30–210 µT window", m)
	}
	// The dipole pattern is front-back symmetric: field at 0° ≈ 180°.
	if d := pts[0].FieldUT / pts[18].FieldUT; d < 0.9 || d > 1.1 {
		t.Errorf("polar asymmetry: %v vs %v", pts[0].FieldUT, pts[18].FieldUT)
	}
}

func TestSummarizeEnvironments(t *testing.T) {
	rows, err := SummarizeEnvironments(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[0].SwingUT < rows[2].SwingUT) {
		t.Errorf("car swing %v not above quiet %v", rows[2].SwingUT, rows[0].SwingUT)
	}
}

func TestTimingOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunTiming(TimingConfig{Users: 2, TrialsPerUser: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper Fig. 15: ours is less than a second slower than voiceprint,
	// and all schemes are same order of magnitude.
	ours, voiceprint := rows[0], rows[1]
	delta := ours.MeanPerTrial - voiceprint.MeanPerTrial
	if delta < 0 {
		t.Logf("ours faster than voiceprint (%v) — fine", delta)
	}
	if delta > 1500*1000*1000 { // 1.5 s
		t.Errorf("ours is %v slower than voiceprint, paper says <1 s", delta)
	}
	if ours.SuccessRate < 0.8 {
		t.Errorf("ours success rate %v", ours.SuccessRate)
	}
}

func TestSessionScore(t *testing.T) {
	d := core.Decision{Stages: []core.StageResult{
		{Score: 0.5}, {Score: -0.2}, {Score: 3},
	}}
	if got := sessionScore(d); got != -0.2 {
		t.Errorf("score = %v", got)
	}
	if got := sessionScore(core.Decision{}); got != 0 {
		t.Errorf("empty score = %v", got)
	}
}

func TestSpeakerSubset(t *testing.T) {
	if n := len(SpeakerSubset(1)); n != 25 {
		t.Errorf("stride 1 = %d", n)
	}
	if n := len(SpeakerSubset(5)); n != 5 {
		t.Errorf("stride 5 = %d", n)
	}
	if n := len(SpeakerSubset(0)); n != 25 {
		t.Errorf("stride 0 = %d", n)
	}
}
