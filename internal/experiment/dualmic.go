package experiment

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/core"
	"voiceguard/internal/soundfield"
)

// DualMicRow compares the single-mic full sweep against the §VII
// dual-mic short sweep for one source type.
type DualMicRow struct {
	// SourceName identifies the tested sound source.
	SourceName string
	// IsMouth marks the genuine class.
	IsMouth bool
	// SingleAccept and DualAccept are acceptance rates in [0, 1] under
	// the two verifier variants.
	SingleAccept, DualAccept float64
	// Trials is the per-cell population.
	Trials int
}

// String implements fmt.Stringer.
func (r DualMicRow) String() string {
	class := "machine"
	if r.IsMouth {
		class = "mouth  "
	}
	return fmt.Sprintf("%-22s %s  single-mic accept %4.0f%%  dual-mic accept %4.0f%%  (%d trials)",
		r.SourceName, class, 100*r.SingleAccept, 100*r.DualAccept, r.Trials)
}

// RunDualMic evaluates the §VII dual-microphone extension: the shortened
// sweep plus SLD features against the full single-mic sweep, per source.
func RunDualMic(seed int64) ([]DualMicRow, error) {
	mouthS, machineS, err := core.DefaultSoundFieldTraining(seed)
	if err != nil {
		return nil, err
	}
	single, err := core.TrainSoundFieldVerifier(mouthS, machineS, seed)
	if err != nil {
		return nil, err
	}
	mouthD, machineD, err := core.DefaultDualMicTraining(seed)
	if err != nil {
		return nil, err
	}
	dual, err := core.TrainDualMicVerifier(mouthD, machineD, seed)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed + 7))
	const trials = 20
	sources := []struct {
		src     soundfield.Source
		isMouth bool
	}{
		{soundfield.Mouth(), true},
		{soundfield.Earphone(), false},
		{soundfield.ConeSpeaker("pc-cone", 0.04), false},
		{&soundfield.Tube{OpeningRadius: 0.015, Length: 0.33, LevelAt1m: 62}, false},
		{soundfield.Electrostatic(), false},
	}
	var rows []DualMicRow
	for _, s := range sources {
		var singleAccepts, dualAccepts int
		for k := 0; k < trials; k++ {
			ms, err := soundfield.Sweep(s.src, soundfield.DefaultSweep(0.06), rng)
			if err != nil {
				return nil, err
			}
			if single.Verify(ms).Pass {
				singleAccepts++
			}
			ds, err := soundfield.DualMicSweep(s.src, soundfield.DefaultDualMic(0.06), rng)
			if err != nil {
				return nil, err
			}
			if dual.Verify(ds).Pass {
				dualAccepts++
			}
		}
		rows = append(rows, DualMicRow{
			SourceName:   s.src.Name(),
			IsMouth:      s.isMouth,
			SingleAccept: float64(singleAccepts) / trials,
			DualAccept:   float64(dualAccepts) / trials,
			Trials:       trials,
		})
	}
	return rows, nil
}
