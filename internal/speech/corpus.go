package speech

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
)

// Utterance is one recorded phrase with its ground-truth metadata.
type Utterance struct {
	// Speaker is the name of the profile that produced the audio.
	Speaker string
	// Text is the digit string spoken.
	Text string
	// Session identifies the recording session (channel conditions vary
	// per session, which is what ISV compensates for).
	Session int
	// Audio is the rendered waveform after the session channel.
	Audio *audio.Signal
}

// Channel models per-session recording conditions: gain, additive noise
// and a gentle band-shaping filter. Distinct sessions of the same speaker
// differ by channel, mimicking different rooms/handsets.
type Channel struct {
	// Gain is the linear amplitude factor.
	Gain float64
	// NoiseRMS is the additive white-noise floor.
	NoiseRMS float64
	// LowCut and HighCut bound the passband in Hz (0 disables).
	LowCut, HighCut float64
}

// RandomChannel draws plausible session conditions.
func RandomChannel(rng *rand.Rand) Channel {
	return Channel{
		Gain:     0.6 + rng.Float64()*0.8,
		NoiseRMS: 0.002 + rng.Float64()*0.008,
		LowCut:   60 + rng.Float64()*120,
		HighCut:  5500 + rng.Float64()*1800,
	}
}

// Apply passes the signal through the channel, returning a new signal.
func (c Channel) Apply(s *audio.Signal, rng *rand.Rand) *audio.Signal {
	out := s.Clone()
	if c.LowCut > 0 {
		hp := dsp.NewHighPassBiquad(c.LowCut, out.Rate)
		hp.ProcessBlock(out.Samples)
	}
	if c.HighCut > 0 && c.HighCut < out.Rate/2 {
		lp := dsp.NewLowPassBiquad(c.HighCut, out.Rate)
		lp.ProcessBlock(out.Samples)
	}
	out.Scale(c.Gain)
	if c.NoiseRMS > 0 {
		for i := range out.Samples {
			out.Samples[i] += rng.NormFloat64() * c.NoiseRMS
		}
	}
	return out
}

// Roster is a set of speakers with their synthesizers.
type Roster struct {
	profiles []Profile
	rng      *rand.Rand
}

// NewRoster creates n speakers named speaker00..speakerNN drawn from the
// population distribution, seeded deterministically.
func NewRoster(n int, seed int64) *Roster {
	rng := rand.New(rand.NewSource(seed))
	r := &Roster{rng: rng}
	for i := 0; i < n; i++ {
		r.profiles = append(r.profiles, RandomProfile(fmt.Sprintf("speaker%02d", i), rng))
	}
	return r
}

// NewDistinctRoster creates n speakers like NewRoster but rejects draws
// whose voices land too close to an already-chosen speaker, mirroring a
// small human study panel where participants have audibly distinct
// voices. minDist is in ProfileDistance units; ~1.0 gives clearly
// different voices.
func NewDistinctRoster(n int, seed int64, minDist float64) *Roster {
	rng := rand.New(rand.NewSource(seed))
	r := &Roster{rng: rng}
	for i := 0; i < n; i++ {
		var p Profile
		for attempt := 0; ; attempt++ {
			p = RandomProfile(fmt.Sprintf("speaker%02d", i), rng)
			ok := true
			for _, q := range r.profiles {
				if ProfileDistance(p, q) < minDist {
					ok = false
					break
				}
			}
			// Give up after many tries rather than loop forever on an
			// over-constrained minDist.
			if ok || attempt > 200 {
				break
			}
		}
		r.profiles = append(r.profiles, p)
	}
	return r
}

// Profiles returns the roster's speaker profiles.
func (r *Roster) Profiles() []Profile {
	out := make([]Profile, len(r.profiles))
	copy(out, r.profiles)
	return out
}

// Len returns the number of speakers.
func (r *Roster) Len() int { return len(r.profiles) }

// Profile returns speaker i.
func (r *Roster) Profile(i int) Profile { return r.profiles[i] }

// RandomDigits returns an n-digit passphrase.
func (r *Roster) RandomDigits(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.rng.Intn(10))
	}
	return string(b)
}

// CorpusConfig controls corpus generation.
type CorpusConfig struct {
	// Sessions is the number of recording sessions per speaker.
	Sessions int
	// UtterancesPerSession is the number of phrases per session.
	UtterancesPerSession int
	// Digits is the passphrase length. If Text is set, Digits is ignored.
	Digits int
	// Text, when non-empty, fixes the phrase for every utterance
	// (text-dependent corpus, as in the paper's Test 1).
	Text string
}

// Generate renders a corpus for every speaker in the roster.
func (r *Roster) Generate(cfg CorpusConfig) ([]Utterance, error) {
	if cfg.Sessions <= 0 || cfg.UtterancesPerSession <= 0 {
		return nil, fmt.Errorf("speech: corpus needs positive sessions (%d) and utterances (%d)",
			cfg.Sessions, cfg.UtterancesPerSession)
	}
	if cfg.Text == "" && cfg.Digits <= 0 {
		return nil, fmt.Errorf("speech: corpus needs Text or positive Digits")
	}
	var out []Utterance
	for _, p := range r.profiles {
		synth, err := NewSynthesizer(p, r.rng)
		if err != nil {
			return nil, err
		}
		for sess := 0; sess < cfg.Sessions; sess++ {
			ch := RandomChannel(r.rng)
			for u := 0; u < cfg.UtterancesPerSession; u++ {
				text := cfg.Text
				if text == "" {
					text = r.RandomDigits(cfg.Digits)
				}
				raw, err := synth.SayDigits(text)
				if err != nil {
					return nil, fmt.Errorf("speech: rendering %q for %s: %w", text, p.Name, err)
				}
				out = append(out, Utterance{
					Speaker: p.Name,
					Text:    text,
					Session: sess,
					Audio:   ch.Apply(raw, r.rng),
				})
			}
		}
	}
	return out, nil
}

// BySpeaker groups utterances by speaker name.
func BySpeaker(utts []Utterance) map[string][]Utterance {
	out := make(map[string][]Utterance)
	for _, u := range utts {
		out[u.Speaker] = append(out[u.Speaker], u)
	}
	return out
}
