package speech

import (
	"math/rand"
	"testing"
)

func TestRosterDeterministic(t *testing.T) {
	a := NewRoster(3, 42)
	b := NewRoster(3, 42)
	for i := 0; i < 3; i++ {
		if a.Profile(i).F0Mean != b.Profile(i).F0Mean {
			t.Errorf("speaker %d differs across same-seed rosters", i)
		}
	}
	c := NewRoster(3, 43)
	same := true
	for i := 0; i < 3; i++ {
		if a.Profile(i).F0Mean != c.Profile(i).F0Mean {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical rosters")
	}
}

func TestRosterProfilesCopy(t *testing.T) {
	r := NewRoster(2, 1)
	ps := r.Profiles()
	ps[0].F0Mean = 999
	if r.Profile(0).F0Mean == 999 {
		t.Error("Profiles must return a copy")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRandomDigits(t *testing.T) {
	r := NewRoster(1, 7)
	d := r.RandomDigits(6)
	if len(d) != 6 {
		t.Fatalf("len = %d", len(d))
	}
	for _, c := range d {
		if c < '0' || c > '9' {
			t.Errorf("non-digit %c", c)
		}
	}
}

func TestGenerateCorpus(t *testing.T) {
	r := NewRoster(2, 9)
	utts, err := r.Generate(CorpusConfig{Sessions: 2, UtterancesPerSession: 2, Text: "123456"})
	if err != nil {
		t.Fatal(err)
	}
	if len(utts) != 2*2*2 {
		t.Fatalf("got %d utterances, want 8", len(utts))
	}
	for _, u := range utts {
		if u.Text != "123456" {
			t.Errorf("text = %q", u.Text)
		}
		if u.Audio.RMS() < 0.005 {
			t.Errorf("%s sess %d: near-silent audio (rms=%v)", u.Speaker, u.Session, u.Audio.RMS())
		}
	}
	grouped := BySpeaker(utts)
	if len(grouped) != 2 {
		t.Errorf("speakers = %d", len(grouped))
	}
	for name, g := range grouped {
		if len(g) != 4 {
			t.Errorf("%s has %d utterances", name, len(g))
		}
	}
}

func TestGenerateCorpusRandomText(t *testing.T) {
	r := NewRoster(1, 10)
	utts, err := r.Generate(CorpusConfig{Sessions: 1, UtterancesPerSession: 3, Digits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range utts {
		if len(u.Text) != 4 {
			t.Errorf("text %q, want 4 digits", u.Text)
		}
	}
}

func TestGenerateCorpusValidation(t *testing.T) {
	r := NewRoster(1, 11)
	cases := []CorpusConfig{
		{Sessions: 0, UtterancesPerSession: 1, Digits: 4},
		{Sessions: 1, UtterancesPerSession: 0, Digits: 4},
		{Sessions: 1, UtterancesPerSession: 1},
	}
	for i, cfg := range cases {
		if _, err := r.Generate(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestChannelApply(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	synth, err := NewSynthesizer(testProfile("c"), rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := synth.SayDigits("11")
	if err != nil {
		t.Fatal(err)
	}
	ch := Channel{Gain: 0.5, NoiseRMS: 0.001, LowCut: 100, HighCut: 6000}
	out := ch.Apply(s, rng)
	if out == s {
		t.Error("Apply must return a new signal")
	}
	if out.RMS() >= s.RMS() {
		t.Errorf("gain 0.5 should reduce RMS: %v >= %v", out.RMS(), s.RMS())
	}
	// Zero-filter channel only scales.
	ch2 := Channel{Gain: 2}
	out2 := ch2.Apply(s, rng)
	if out2.RMS() < 1.9*s.RMS() {
		t.Errorf("gain 2 RMS = %v vs %v", out2.RMS(), s.RMS())
	}
}

func TestRandomChannelPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		ch := RandomChannel(rng)
		if ch.Gain <= 0 || ch.NoiseRMS < 0 || ch.LowCut <= 0 || ch.HighCut <= ch.LowCut {
			t.Errorf("implausible channel %+v", ch)
		}
	}
}
