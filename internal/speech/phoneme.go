package speech

import "fmt"

// Phoneme is one steady-state articulation target. The synthesizer
// interpolates formant tracks linearly between consecutive phonemes.
type Phoneme struct {
	// Name is the ARPAbet-like label, for debugging.
	Name string
	// Dur is the nominal duration in seconds at Rate = 1.
	Dur float64
	// F holds the first four formant center frequencies in Hz for a
	// reference (TractScale = 1) speaker.
	F [4]float64
	// BW holds the corresponding formant bandwidths in Hz.
	BW [4]float64
	// Voiced selects glottal excitation; unvoiced phonemes use noise.
	Voiced bool
	// Frication is the noise excitation level in [0, 1].
	Frication float64
	// Amp is the overall segment amplitude in [0, 1].
	Amp float64
}

// The phoneme inventory covers what the digit vocabulary needs. Formant
// targets follow standard vowel/consonant tables (Peterson–Barney style).
var phonemes = map[string]Phoneme{
	// Vowels.
	"IY": {Name: "IY", Dur: 0.12, F: [4]float64{270, 2290, 3010, 3700}, BW: [4]float64{60, 90, 150, 200}, Voiced: true, Amp: 1.0},
	"IH": {Name: "IH", Dur: 0.09, F: [4]float64{390, 1990, 2550, 3600}, BW: [4]float64{60, 90, 150, 200}, Voiced: true, Amp: 1.0},
	"EH": {Name: "EH", Dur: 0.10, F: [4]float64{530, 1840, 2480, 3500}, BW: [4]float64{60, 90, 150, 200}, Voiced: true, Amp: 1.0},
	"AE": {Name: "AE", Dur: 0.12, F: [4]float64{660, 1720, 2410, 3500}, BW: [4]float64{70, 100, 160, 210}, Voiced: true, Amp: 1.0},
	"AH": {Name: "AH", Dur: 0.09, F: [4]float64{520, 1190, 2390, 3400}, BW: [4]float64{70, 100, 160, 210}, Voiced: true, Amp: 1.0},
	"AA": {Name: "AA", Dur: 0.12, F: [4]float64{730, 1090, 2440, 3400}, BW: [4]float64{80, 110, 170, 220}, Voiced: true, Amp: 1.0},
	"AO": {Name: "AO", Dur: 0.12, F: [4]float64{570, 840, 2410, 3300}, BW: [4]float64{80, 110, 170, 220}, Voiced: true, Amp: 1.0},
	"UW": {Name: "UW", Dur: 0.11, F: [4]float64{300, 870, 2240, 3200}, BW: [4]float64{60, 90, 150, 200}, Voiced: true, Amp: 1.0},
	"ER": {Name: "ER", Dur: 0.11, F: [4]float64{490, 1350, 1690, 3300}, BW: [4]float64{70, 100, 160, 210}, Voiced: true, Amp: 1.0},
	"AY": {Name: "AY", Dur: 0.15, F: [4]float64{660, 1200, 2550, 3400}, BW: [4]float64{80, 100, 160, 210}, Voiced: true, Amp: 1.0},
	"OW": {Name: "OW", Dur: 0.13, F: [4]float64{570, 900, 2400, 3300}, BW: [4]float64{70, 100, 160, 210}, Voiced: true, Amp: 1.0},
	// Sonorant consonants.
	"W": {Name: "W", Dur: 0.06, F: [4]float64{300, 610, 2200, 3200}, BW: [4]float64{70, 100, 160, 210}, Voiced: true, Amp: 0.7},
	"R": {Name: "R", Dur: 0.06, F: [4]float64{330, 1060, 1380, 3100}, BW: [4]float64{70, 100, 160, 210}, Voiced: true, Amp: 0.7},
	"N": {Name: "N", Dur: 0.06, F: [4]float64{280, 1700, 2600, 3300}, BW: [4]float64{90, 150, 200, 250}, Voiced: true, Amp: 0.5},
	"L": {Name: "L", Dur: 0.06, F: [4]float64{360, 1300, 2700, 3300}, BW: [4]float64{80, 120, 180, 230}, Voiced: true, Amp: 0.6},
	// Fricatives.
	"F":  {Name: "F", Dur: 0.08, F: [4]float64{1100, 2100, 3500, 4200}, BW: [4]float64{300, 350, 400, 450}, Frication: 0.35, Amp: 0.4},
	"V":  {Name: "V", Dur: 0.06, F: [4]float64{1000, 2000, 3400, 4100}, BW: [4]float64{250, 300, 350, 400}, Voiced: true, Frication: 0.2, Amp: 0.5},
	"S":  {Name: "S", Dur: 0.09, F: [4]float64{2500, 4000, 5200, 6000}, BW: [4]float64{400, 450, 500, 550}, Frication: 0.5, Amp: 0.45},
	"Z":  {Name: "Z", Dur: 0.07, F: [4]float64{2400, 3900, 5100, 5900}, BW: [4]float64{350, 400, 450, 500}, Voiced: true, Frication: 0.3, Amp: 0.5},
	"TH": {Name: "TH", Dur: 0.07, F: [4]float64{1400, 2300, 3600, 4300}, BW: [4]float64{350, 400, 450, 500}, Frication: 0.3, Amp: 0.35},
	"HH": {Name: "HH", Dur: 0.05, F: [4]float64{600, 1600, 2600, 3500}, BW: [4]float64{250, 300, 350, 400}, Frication: 0.25, Amp: 0.35},
	// Stops (release bursts approximated by short frication).
	"T": {Name: "T", Dur: 0.04, F: [4]float64{2200, 3300, 4500, 5300}, BW: [4]float64{400, 450, 500, 550}, Frication: 0.45, Amp: 0.35},
	"K": {Name: "K", Dur: 0.04, F: [4]float64{1700, 2500, 3800, 4700}, BW: [4]float64{350, 400, 450, 500}, Frication: 0.4, Amp: 0.35},
	// Silence/pause.
	"SIL": {Name: "SIL", Dur: 0.05, F: [4]float64{500, 1500, 2500, 3500}, BW: [4]float64{200, 250, 300, 350}, Amp: 0},
}

// digitPhonemes maps each decimal digit to its phoneme sequence.
var digitPhonemes = map[rune][]string{
	'0': {"Z", "IY", "R", "OW"},
	'1': {"W", "AH", "N"},
	'2': {"T", "UW"},
	'3': {"TH", "R", "IY"},
	'4': {"F", "AO", "R"},
	'5': {"F", "AY", "V"},
	'6': {"S", "IH", "K", "S"},
	'7': {"S", "EH", "V", "AH", "N"},
	'8': {"EH", "IH", "T"},
	'9': {"N", "AY", "N"},
}

// LookupPhoneme returns the inventory entry for the given label.
func LookupPhoneme(name string) (Phoneme, bool) {
	p, ok := phonemes[name]
	return p, ok
}

// PhonemeNames returns the labels of all inventory phonemes (unordered).
func PhonemeNames() []string {
	out := make([]string, 0, len(phonemes))
	for k := range phonemes {
		out = append(out, k)
	}
	return out
}

// DigitsToPhonemes expands a digit string ("472913") into a phoneme
// sequence with inter-digit pauses. It returns an error on any non-digit
// rune.
func DigitsToPhonemes(digits string) ([]Phoneme, error) {
	var out []Phoneme
	out = append(out, phonemes["SIL"])
	for _, r := range digits {
		names, ok := digitPhonemes[r]
		if !ok {
			return nil, fmt.Errorf("speech: %q is not a digit", r)
		}
		for _, n := range names {
			out = append(out, phonemes[n])
		}
		out = append(out, phonemes["SIL"])
	}
	return out, nil
}
