package speech

import (
	"math"
	"math/rand"
	"testing"
)

// paramDistance is a crude metric over the identity-bearing parameters.
func paramDistance(a, b Profile) float64 {
	d := math.Abs(a.F0Mean-b.F0Mean)/200 +
		math.Abs(a.TractScale-b.TractScale) +
		math.Abs(a.Tilt-b.Tilt)
	for i := range a.FormantBias {
		d += math.Abs(a.FormantBias[i]-b.FormantBias[i]) / 500
	}
	return d
}

func TestImitateMovesTowardTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	attacker := RandomProfile("attacker", rng)
	target := RandomProfile("victim", rng)
	before := paramDistance(attacker, target)
	for _, skill := range []ImitationSkill{ImitatorNaive, ImitatorPracticed, ImitatorProfessional} {
		p := Imitate(attacker, target, skill, rng)
		after := paramDistance(p, target)
		if after >= before {
			t.Errorf("skill %v: distance %v did not shrink from %v", skill, after, before)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("skill %v: invalid imitated profile: %v", skill, err)
		}
	}
}

func TestImitateRaisesVariability(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	attacker := RandomProfile("attacker", rng)
	target := RandomProfile("victim", rng)
	p := Imitate(attacker, target, ImitatorPracticed, rng)
	// Jitter grows by 1.8x of the interpolated value; it must exceed the
	// straight interpolation.
	interp := attacker.Interpolate(target, float64(ImitatorPracticed))
	if p.Jitter <= interp.Jitter {
		t.Errorf("imitation jitter %v not above interpolated %v", p.Jitter, interp.Jitter)
	}
}

func TestConvertApproachesTargetCloserThanImitation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	attacker := RandomProfile("attacker", rng)
	target := RandomProfile("victim", rng)
	imit := Imitate(attacker, target, ImitatorProfessional, rng)
	conv := attacker.Interpolate(target, float64(ConverterAdvanced))
	if paramDistance(conv, target) >= paramDistance(imit, target) {
		t.Error("conversion should land closer to the target than human imitation")
	}
}

func TestConvertProducesAudio(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	attacker := RandomProfile("attacker", rng)
	target := RandomProfile("victim", rng)
	s, err := Convert(attacker, target, ConverterAdvanced, "123456", rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.RMS() < 0.01 {
		t.Errorf("converted audio near-silent: %v", s.RMS())
	}
	if _, err := Convert(attacker, target, ConverterAdvanced, "12x", rng); err == nil {
		t.Error("expected error for bad digits")
	}
}

func TestSynthesizeProducesAudio(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	target := RandomProfile("victim", rng)
	s, err := Synthesize(target, "987654", rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.RMS() < 0.01 {
		t.Errorf("tts audio near-silent: %v", s.RMS())
	}
	if s.Rate != DefaultRate {
		t.Errorf("rate = %v", s.Rate)
	}
	if _, err := Synthesize(target, "abc", rng); err == nil {
		t.Error("expected error for bad digits")
	}
}

func TestClampProfileAlwaysValid(t *testing.T) {
	wild := Profile{
		Name: "wild", F0Mean: 9999, F0Range: -5, TractScale: 99,
		BandwidthScale: 0, Tilt: -3, Jitter: 4, Shimmer: 7,
		Breathiness: -1, Rate: 0,
	}
	p := clampProfile(wild)
	if err := p.Validate(); err != nil {
		t.Errorf("clamped profile still invalid: %v", err)
	}
}
