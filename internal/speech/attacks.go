package speech

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
)

// This file implements the three voice-manipulation techniques of the
// paper's adversary model (§III-A): human imitation, voice conversion
// (morphing) and text-to-speech synthesis. All three output a waveform
// that is subsequently either spoken live (imitation) or played through a
// loudspeaker (conversion/synthesis/replay) — that last step belongs to
// internal/attack, which wires these waveforms to loudspeaker models.

// ImitationSkill describes how closely a human imitator can match the
// victim's voice parameters (0 = not at all, 1 = perfect). The paper cites
// studies showing even professional imitators cannot repeatedly fool an
// ASV; professional skill here tops out around 0.6 of the parametric
// distance.
type ImitationSkill float64

// Typical skill levels.
const (
	ImitatorNaive        ImitationSkill = 0.25
	ImitatorPracticed    ImitationSkill = 0.45
	ImitatorProfessional ImitationSkill = 0.6
)

// Imitate returns the profile an attacker voice achieves when trying to
// mimic target with the given skill. Prosodic parameters (pitch, range,
// rate, brightness) follow the skill level, but the vocal-tract geometry
// (TractScale, FormantBias) is physiological and barely trainable — the
// phonetics literature the paper cites (Mariéthoz & Bengio; Amin et al.)
// finds imitators shift formants only slightly, which is why even
// professionals cannot reliably fool a spectral ASV. Imitation also
// raises parameter variability (the disguise-detection cue): jitter and
// shimmer increase because the imitated voice is less practiced.
func Imitate(attacker, target Profile, skill ImitationSkill, rng *rand.Rand) Profile {
	p := attacker.Interpolate(target, float64(skill))
	// Roll vocal-tract parameters back toward the attacker's anatomy.
	const tractPlasticity = 0.3
	ts := float64(skill) * tractPlasticity
	p.TractScale = attacker.TractScale + (target.TractScale-attacker.TractScale)*ts
	for i := range p.FormantBias {
		p.FormantBias[i] = attacker.FormantBias[i] +
			(target.FormantBias[i]-attacker.FormantBias[i])*ts
	}
	p.Name = fmt.Sprintf("%s-imitating-%s", attacker.Name, target.Name)
	p.Jitter *= 1.8
	if p.Jitter > 0.2 {
		p.Jitter = 0.2
	}
	p.Shimmer *= 1.6
	if p.Shimmer > 0.5 {
		p.Shimmer = 0.5
	}
	// Imperfect, wandering control of the copied parameters.
	p.F0Mean *= 1 + 0.03*rng.NormFloat64()
	p.TractScale *= 1 + 0.01*rng.NormFloat64()
	if err := p.Validate(); err != nil {
		// Clamp back into range rather than fail: a human voice always
		// produces *some* voice.
		p = clampProfile(p)
	}
	return p
}

// ConversionQuality describes a voice-conversion (morphing) system's
// fidelity: how much of the parametric distance to the target it covers.
// Modern converters get very close (the paper assumes "high-quality output
// with all details of the human vocal tract").
type ConversionQuality float64

// Typical converter qualities.
const (
	ConverterBasic    ConversionQuality = 0.85
	ConverterAdvanced ConversionQuality = 0.97
)

// Convert renders a morphed utterance: the attacker's speech converted
// toward the target speaker. The output closely matches the target's
// spectral identity (it is designed to *pass* ASV) but carries mild
// vocoder artifacts: frame-quantized F0 and a slight spectral smoothing.
func Convert(attacker, target Profile, q ConversionQuality, digits string, rng *rand.Rand) (*audio.Signal, error) {
	p := attacker.Interpolate(target, float64(q))
	p.Name = fmt.Sprintf("%s-converted-to-%s", attacker.Name, target.Name)
	// Vocoder artifact: conversion smooths source variability away.
	p.Jitter *= 0.5
	p.Shimmer *= 0.5
	p = clampProfile(p)
	synth, err := NewSynthesizer(p, rng)
	if err != nil {
		return nil, fmt.Errorf("speech: conversion synth: %w", err)
	}
	s, err := synth.SayDigits(digits)
	if err != nil {
		return nil, err
	}
	applyVocoderArtifacts(s, rng)
	return s, nil
}

// Synthesize renders a TTS utterance in the target's voice from text (the
// Type-3 attack: the attacker needs only text, not attacker speech). TTS
// prosody is flatter than natural speech.
func Synthesize(target Profile, digits string, rng *rand.Rand) (*audio.Signal, error) {
	p := target
	p.Name = target.Name + "-tts"
	p.F0Range *= 0.4 // flat synthetic prosody
	p.Jitter *= 0.3
	p.Shimmer *= 0.3
	p = clampProfile(p)
	synth, err := NewSynthesizer(p, rng)
	if err != nil {
		return nil, fmt.Errorf("speech: tts synth: %w", err)
	}
	s, err := synth.SayDigits(digits)
	if err != nil {
		return nil, err
	}
	applyVocoderArtifacts(s, rng)
	return s, nil
}

// applyVocoderArtifacts adds the subtle distortions a parametric vocoder
// leaves behind: a gentle high-frequency roll-off and low-level frame
// buzz. These are deliberately *too weak* for spectral countermeasures to
// rely on — the paper's premise is that such attacks pass ASV.
func applyVocoderArtifacts(s *audio.Signal, rng *rand.Rand) {
	lp := dsp.NewLowPassBiquad(6800, s.Rate)
	lp.ProcessBlock(s.Samples)
	frame := int(0.01 * s.Rate)
	if frame < 1 {
		frame = 1
	}
	for i := 0; i < len(s.Samples); i += frame {
		g := 1 + 0.01*rng.NormFloat64()
		end := i + frame
		if end > len(s.Samples) {
			end = len(s.Samples)
		}
		for j := i; j < end; j++ {
			s.Samples[j] *= g
		}
	}
}

// clampProfile forces every parameter into its valid range.
func clampProfile(p Profile) Profile {
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	p.F0Mean = clamp(p.F0Mean, 50, 500)
	p.F0Range = clamp(p.F0Range, 0, p.F0Mean)
	p.TractScale = clamp(p.TractScale, 0.6, 1.6)
	p.BandwidthScale = clamp(p.BandwidthScale, 0.3, 3)
	p.Tilt = clamp(p.Tilt, 0, 1)
	p.Jitter = clamp(p.Jitter, 0, 0.2)
	p.Shimmer = clamp(p.Shimmer, 0, 0.5)
	p.Breathiness = clamp(p.Breathiness, 0, 1)
	p.Rate = clamp(p.Rate, 0.31, 3)
	return p
}
