// Package speech implements a source–filter (Klatt-style) formant speech
// synthesizer and the speaker/corpus machinery built on it.
//
// The paper's evaluation uses live human speakers and the Voxforge and CMU
// Arctic corpora — neither is available to a pure-Go offline build, so this
// package is the substitution: speakers are parametric vocal profiles
// (fundamental frequency, vocal-tract length, formant biases, spectral
// tilt, jitter), utterances are digit passphrases rendered through a
// glottal source and cascade formant resonators, and corpora are sampled
// rosters of such speakers with per-session channel variation. The ASV
// back-end (internal/gmm over internal/features MFCCs) sees exactly the
// kind of spectral structure it would see from real speech, and attacker
// transforms (imitation, conversion, synthesis) manipulate the same
// parameters a real attacker would imitate.
package speech

import (
	"fmt"
	"math/rand"
)

// DefaultRate is the synthesis sample rate in Hz. 16 kHz covers the first
// four formants and is the standard rate for speaker-verification
// front-ends.
const DefaultRate = 16000.0

// Profile is a parametric description of one speaker's voice. Two
// profiles that differ in these parameters produce spectrally
// distinguishable speech; the parameters are what voice-conversion and
// imitation attacks try to copy.
type Profile struct {
	// Name identifies the speaker.
	Name string
	// F0Mean is the mean fundamental frequency in Hz (typically 85–180
	// for male, 165–255 for female voices).
	F0Mean float64
	// F0Range is the magnitude of pitch movement around F0Mean in Hz.
	F0Range float64
	// TractScale scales all formant frequencies; it models vocal-tract
	// length (shorter tract → higher formants → scale > 1).
	TractScale float64
	// FormantBias is added to each of the four formant targets in Hz
	// after scaling, modeling idiosyncratic articulation.
	FormantBias [4]float64
	// BandwidthScale scales formant bandwidths (voice "sharpness").
	BandwidthScale float64
	// Tilt is the spectral tilt control in [0, 1]: 0 is a bright voice, 1
	// heavily low-passed.
	Tilt float64
	// Jitter is the relative cycle-to-cycle F0 perturbation (e.g. 0.01).
	Jitter float64
	// Shimmer is the relative cycle-to-cycle amplitude perturbation.
	Shimmer float64
	// Breathiness is the aspiration noise level mixed into voiced frames.
	Breathiness float64
	// Rate scales phoneme durations (1 = nominal speaking rate).
	Rate float64
}

// Validate reports whether the profile's parameters are inside the ranges
// the synthesizer supports.
func (p *Profile) Validate() error {
	switch {
	case p.F0Mean < 50 || p.F0Mean > 500:
		return fmt.Errorf("speech: F0Mean %v outside [50, 500] Hz", p.F0Mean)
	case p.F0Range < 0 || p.F0Range > p.F0Mean:
		return fmt.Errorf("speech: F0Range %v outside [0, F0Mean]", p.F0Range)
	case p.TractScale < 0.6 || p.TractScale > 1.6:
		return fmt.Errorf("speech: TractScale %v outside [0.6, 1.6]", p.TractScale)
	case p.BandwidthScale < 0.3 || p.BandwidthScale > 3:
		return fmt.Errorf("speech: BandwidthScale %v outside [0.3, 3]", p.BandwidthScale)
	case p.Tilt < 0 || p.Tilt > 1:
		return fmt.Errorf("speech: Tilt %v outside [0, 1]", p.Tilt)
	case p.Jitter < 0 || p.Jitter > 0.2:
		return fmt.Errorf("speech: Jitter %v outside [0, 0.2]", p.Jitter)
	case p.Shimmer < 0 || p.Shimmer > 0.5:
		return fmt.Errorf("speech: Shimmer %v outside [0, 0.5]", p.Shimmer)
	case p.Breathiness < 0 || p.Breathiness > 1:
		return fmt.Errorf("speech: Breathiness %v outside [0, 1]", p.Breathiness)
	case p.Rate <= 0.3 || p.Rate > 3:
		return fmt.Errorf("speech: Rate %v outside (0.3, 3]", p.Rate)
	}
	return nil
}

// RandomProfile draws a plausible speaker profile from the population
// distribution. The rng determines the speaker identity; use a fixed seed
// for a reproducible roster.
func RandomProfile(name string, rng *rand.Rand) Profile {
	female := rng.Float64() < 0.5
	var f0 float64
	if female {
		f0 = 175 + rng.Float64()*70
	} else {
		f0 = 95 + rng.Float64()*60
	}
	tract := 0.92 + rng.Float64()*0.2
	if female {
		tract += 0.06
	}
	p := Profile{
		Name:           name,
		F0Mean:         f0,
		F0Range:        10 + rng.Float64()*25,
		TractScale:     tract,
		BandwidthScale: 0.8 + rng.Float64()*0.6,
		Tilt:           0.2 + rng.Float64()*0.5,
		Jitter:         0.005 + rng.Float64()*0.015,
		Shimmer:        0.02 + rng.Float64()*0.06,
		Breathiness:    0.02 + rng.Float64()*0.1,
		Rate:           0.85 + rng.Float64()*0.3,
	}
	for i := range p.FormantBias {
		p.FormantBias[i] = rng.NormFloat64() * 30 * float64(i+1) / 2
	}
	return p
}

// ProfileDistance is a perceptually-motivated distance between two
// voices: normalized differences of fundamental frequency, vocal-tract
// scale, formant idiosyncrasies and spectral tilt. A distance of ~1
// corresponds to clearly distinguishable voices.
func ProfileDistance(a, b Profile) float64 {
	d := abs(a.F0Mean-b.F0Mean)/60 +
		abs(a.TractScale-b.TractScale)/0.08 +
		abs(a.Tilt-b.Tilt)/0.5
	for i := range a.FormantBias {
		d += abs(a.FormantBias[i]-b.FormantBias[i]) / 400
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Interpolate returns a profile whose parameters are moved fraction t from
// p toward target (t=0 → p, t=1 → target). This is the parametric core of
// both the imitation attack (a human moving their voice partway toward the
// victim) and the conversion attack (software mapping most of the way).
func (p Profile) Interpolate(target Profile, t float64) Profile {
	lerp := func(a, b float64) float64 { return a + (b-a)*t }
	out := Profile{
		Name:           fmt.Sprintf("%s->%s@%.2f", p.Name, target.Name, t),
		F0Mean:         lerp(p.F0Mean, target.F0Mean),
		F0Range:        lerp(p.F0Range, target.F0Range),
		TractScale:     lerp(p.TractScale, target.TractScale),
		BandwidthScale: lerp(p.BandwidthScale, target.BandwidthScale),
		Tilt:           lerp(p.Tilt, target.Tilt),
		Jitter:         lerp(p.Jitter, target.Jitter),
		Shimmer:        lerp(p.Shimmer, target.Shimmer),
		Breathiness:    lerp(p.Breathiness, target.Breathiness),
		Rate:           lerp(p.Rate, target.Rate),
	}
	for i := range out.FormantBias {
		out.FormantBias[i] = lerp(p.FormantBias[i], target.FormantBias[i])
	}
	return out
}
