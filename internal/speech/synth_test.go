package speech

import (
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/dsp"
)

func testProfile(name string) Profile {
	return Profile{
		Name:           name,
		F0Mean:         120,
		F0Range:        15,
		TractScale:     1.0,
		BandwidthScale: 1.0,
		Tilt:           0.3,
		Jitter:         0.01,
		Shimmer:        0.03,
		Breathiness:    0.05,
		Rate:           1.0,
	}
}

func TestProfileValidate(t *testing.T) {
	good := testProfile("ok")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Profile)
	}{
		{"f0 low", func(p *Profile) { p.F0Mean = 10 }},
		{"f0 high", func(p *Profile) { p.F0Mean = 900 }},
		{"range", func(p *Profile) { p.F0Range = -1 }},
		{"tract", func(p *Profile) { p.TractScale = 0.1 }},
		{"bw", func(p *Profile) { p.BandwidthScale = 10 }},
		{"tilt", func(p *Profile) { p.Tilt = 2 }},
		{"jitter", func(p *Profile) { p.Jitter = 0.5 }},
		{"shimmer", func(p *Profile) { p.Shimmer = 0.9 }},
		{"breath", func(p *Profile) { p.Breathiness = 2 }},
		{"rate", func(p *Profile) { p.Rate = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			p := testProfile("bad")
			m.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestNewSynthesizerRejectsInvalid(t *testing.T) {
	p := testProfile("bad")
	p.F0Mean = 1
	if _, err := NewSynthesizer(p, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error")
	}
}

func TestSayDigitsProducesVoicedAudio(t *testing.T) {
	synth, err := NewSynthesizer(testProfile("s"), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := synth.SayDigits("472913")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate != DefaultRate {
		t.Errorf("rate = %v", s.Rate)
	}
	if s.Duration() < 1.0 || s.Duration() > 8.0 {
		t.Errorf("duration = %v s, want a speech-like length", s.Duration())
	}
	if s.RMS() < 0.01 {
		t.Errorf("RMS = %v, audio is near-silent", s.RMS())
	}
	if s.Peak() > 1.0 {
		t.Errorf("peak = %v, exceeds full scale", s.Peak())
	}
}

func TestSayDigitsRejectsNonDigits(t *testing.T) {
	synth, err := NewSynthesizer(testProfile("s"), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synth.SayDigits("12a4"); err == nil {
		t.Error("expected error for non-digit input")
	}
}

func TestRenderEmpty(t *testing.T) {
	synth, err := NewSynthesizer(testProfile("s"), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s := synth.Render(nil)
	if s.Len() != 0 || s.Rate != DefaultRate {
		t.Errorf("empty render: len=%d rate=%v", s.Len(), s.Rate)
	}
}

// dominantF0 estimates the fundamental via autocorrelation over voiced
// regions.
func dominantF0(x []float64, rate float64) float64 {
	// Use the middle chunk, likely voiced.
	n := len(x)
	seg := x[n/3 : n/3+int(rate*0.1)]
	minLag := int(rate / 400)
	maxLag := int(rate / 60)
	best, bestLag := -1.0, 0
	for lag := minLag; lag <= maxLag; lag++ {
		var c float64
		for i := 0; i+lag < len(seg); i++ {
			c += seg[i] * seg[i+lag]
		}
		if c > best {
			best = c
			bestLag = lag
		}
	}
	if bestLag == 0 {
		return 0
	}
	return rate / float64(bestLag)
}

func TestSynthesisF0MatchesProfile(t *testing.T) {
	for _, f0 := range []float64{100, 150, 220} {
		p := testProfile("f0test")
		p.F0Mean = f0
		p.F0Range = 5
		p.Jitter = 0.002
		synth, err := NewSynthesizer(p, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		// "99" is nearly all voiced (N AY N, N AY N).
		s, err := synth.SayDigits("99")
		if err != nil {
			t.Fatal(err)
		}
		got := dominantF0(s.Samples, s.Rate)
		// Allow 15% tolerance: declination plus intonation shift the mean.
		if math.Abs(got-f0)/f0 > 0.15 {
			t.Errorf("F0Mean %v: estimated %v", f0, got)
		}
	}
}

func TestTractScaleShiftsSpectrum(t *testing.T) {
	render := func(scale float64) []float64 {
		p := testProfile("spec")
		p.TractScale = scale
		synth, err := NewSynthesizer(p, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		s, err := synth.SayDigits("55")
		if err != nil {
			t.Fatal(err)
		}
		return s.Samples
	}
	centroid := func(x []float64) float64 {
		spec := dsp.Magnitudes(dsp.FFTReal(x[:4096]))
		var num, den float64
		for k := 1; k < len(spec)/2; k++ {
			f := dsp.BinFrequency(k, 4096, DefaultRate)
			num += f * spec[k]
			den += spec[k]
		}
		return num / den
	}
	small := centroid(render(0.9))
	large := centroid(render(1.15))
	if large <= small {
		t.Errorf("spectral centroid should rise with TractScale: %v vs %v", small, large)
	}
}

func TestRandomProfilesDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandomProfile("a", rng)
	b := RandomProfile("b", rng)
	if a.F0Mean == b.F0Mean && a.TractScale == b.TractScale {
		t.Error("random profiles identical")
	}
	for i := 0; i < 20; i++ {
		p := RandomProfile("x", rng)
		if err := p.Validate(); err != nil {
			t.Errorf("random profile %d invalid: %v", i, err)
		}
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandomProfile("a", rng)
	b := RandomProfile("b", rng)
	at0 := a.Interpolate(b, 0)
	if at0.F0Mean != a.F0Mean || at0.TractScale != a.TractScale {
		t.Error("t=0 should equal source")
	}
	at1 := a.Interpolate(b, 1)
	if at1.F0Mean != b.F0Mean || at1.TractScale != b.TractScale {
		t.Error("t=1 should equal target")
	}
	mid := a.Interpolate(b, 0.5)
	want := (a.F0Mean + b.F0Mean) / 2
	if math.Abs(mid.F0Mean-want) > 1e-9 {
		t.Errorf("midpoint F0 = %v, want %v", mid.F0Mean, want)
	}
}

func TestDigitsToPhonemes(t *testing.T) {
	seq, err := DigitsToPhonemes("05")
	if err != nil {
		t.Fatal(err)
	}
	// SIL + (Z IY R OW) + SIL + (F AY V) + SIL = 10
	if len(seq) != 10 {
		t.Errorf("len = %d, want 10", len(seq))
	}
	if seq[0].Name != "SIL" || seq[1].Name != "Z" || seq[6].Name != "F" {
		t.Errorf("sequence = %v", seq)
	}
	if _, err := DigitsToPhonemes("1x"); err == nil {
		t.Error("expected error")
	}
}

func TestAllDigitsHavePhonemes(t *testing.T) {
	for d := '0'; d <= '9'; d++ {
		seq, err := DigitsToPhonemes(string(d))
		if err != nil {
			t.Fatalf("digit %c: %v", d, err)
		}
		if len(seq) < 3 {
			t.Errorf("digit %c has too few phonemes", d)
		}
		for _, ph := range seq {
			if _, ok := LookupPhoneme(ph.Name); !ok {
				t.Errorf("digit %c refers to unknown phoneme %q", d, ph.Name)
			}
		}
	}
}

func TestPhonemeInventoryConsistency(t *testing.T) {
	for _, name := range PhonemeNames() {
		ph, ok := LookupPhoneme(name)
		if !ok {
			t.Fatalf("inventory lists %q but lookup fails", name)
		}
		if ph.Dur <= 0 {
			t.Errorf("%s: nonpositive duration", name)
		}
		for k := 0; k < 4; k++ {
			if ph.F[k] <= 0 || ph.BW[k] <= 0 {
				t.Errorf("%s: formant %d invalid (F=%v BW=%v)", name, k, ph.F[k], ph.BW[k])
			}
		}
		if ph.Amp < 0 || ph.Amp > 1 {
			t.Errorf("%s: amp %v", name, ph.Amp)
		}
		if ph.Frication < 0 || ph.Frication > 1 {
			t.Errorf("%s: frication %v", name, ph.Frication)
		}
	}
}

func TestRosenbergPulseShape(t *testing.T) {
	if rosenberg(0) != 0 {
		t.Error("pulse should start at 0")
	}
	peak := rosenberg(0.4)
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("peak = %v, want 1", peak)
	}
	if rosenberg(0.7) != 0 || rosenberg(0.99) != 0 {
		t.Error("closed phase should be 0")
	}
	// Monotone rise on the open phase.
	prev := -1.0
	for x := 0.0; x < 0.4; x += 0.01 {
		v := rosenberg(x)
		if v < prev {
			t.Fatalf("pulse not monotone at %v", x)
		}
		prev = v
	}
}

func BenchmarkSayDigits(b *testing.B) {
	synth, err := NewSynthesizer(testProfile("bench"), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.SayDigits("472913"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRateScalesDuration(t *testing.T) {
	render := func(rate float64) float64 {
		p := testProfile("rate")
		p.Rate = rate
		synth, err := NewSynthesizer(p, rand.New(rand.NewSource(40)))
		if err != nil {
			t.Fatal(err)
		}
		s, err := synth.SayDigits("123456")
		if err != nil {
			t.Fatal(err)
		}
		return s.Duration()
	}
	slow := render(0.7)
	fast := render(1.4)
	// Rate divides phoneme durations: doubling the rate halves duration.
	if ratio := slow / fast; math.Abs(ratio-2) > 0.1 {
		t.Errorf("duration ratio = %v, want ≈2", ratio)
	}
}

func TestBreathinessAddsNoise(t *testing.T) {
	render := func(breath float64) []float64 {
		p := testProfile("breath")
		p.Breathiness = breath
		synth, err := NewSynthesizer(p, rand.New(rand.NewSource(41)))
		if err != nil {
			t.Fatal(err)
		}
		s, err := synth.SayDigits("99")
		if err != nil {
			t.Fatal(err)
		}
		return s.Samples
	}
	// Aspiration noise raises the energy between the harmonics. Measure
	// spectral flatness (geometric/arithmetic mean ratio) of a voiced
	// mid-utterance segment: noise fills the inter-harmonic valleys and
	// raises flatness.
	hfFraction := func(x []float64) float64 {
		seg := x[len(x)/3 : len(x)/3+4096]
		spec := dsp.Magnitudes(dsp.FFTReal(seg))
		var logSum, sum float64
		n := 0
		for k := 1; k < 2048; k++ {
			f := dsp.BinFrequency(k, 4096, DefaultRate)
			if f < 300 || f > 3000 {
				continue
			}
			e := spec[k]*spec[k] + 1e-12
			logSum += math.Log(e)
			sum += e
			n++
		}
		return math.Exp(logSum/float64(n)) / (sum / float64(n))
	}
	clean := hfFraction(render(0.0))
	breathy := hfFraction(render(0.8))
	if breathy <= clean {
		t.Errorf("breathiness should add high-band noise: %v vs %v", breathy, clean)
	}
}
