package speech

import (
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
)

// Synthesizer renders phoneme sequences into audio for one speaker
// profile. It is a cascade formant synthesizer: a Rosenberg glottal pulse
// train (plus aspiration noise) excites four second-order resonators whose
// center frequencies track the phoneme targets.
type Synthesizer struct {
	profile Profile
	rate    float64
	rng     *rand.Rand
}

// NewSynthesizer validates the profile and constructs a synthesizer
// sampling at DefaultRate. The rng drives jitter/shimmer and noise; pass a
// deterministic source for reproducible renders.
func NewSynthesizer(p Profile, rng *rand.Rand) (*Synthesizer, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("speech: invalid profile %q: %w", p.Name, err)
	}
	return &Synthesizer{profile: p, rate: DefaultRate, rng: rng}, nil
}

// Profile returns the speaker profile being rendered.
func (s *Synthesizer) Profile() Profile { return s.profile }

// Rate returns the synthesis sample rate in Hz.
func (s *Synthesizer) Rate() float64 { return s.rate }

// SayDigits renders the given digit string as a single utterance.
func (s *Synthesizer) SayDigits(digits string) (*audio.Signal, error) {
	seq, err := DigitsToPhonemes(digits)
	if err != nil {
		return nil, err
	}
	return s.Render(seq), nil
}

// control holds the per-sample interpolated articulation state.
type control struct {
	f         [4]float64
	bw        [4]float64
	voiced    float64 // 0..1 voicing amount
	frication float64
	amp       float64
}

// Render synthesizes a phoneme sequence. Formants, amplitude and voicing
// are linearly interpolated over a transition window between segments.
func (s *Synthesizer) Render(seq []Phoneme) *audio.Signal {
	if len(seq) == 0 {
		return &audio.Signal{Rate: s.rate}
	}
	p := s.profile

	// Build the sample-level control track.
	type segment struct {
		ph    Phoneme
		start int // sample index
		end   int
	}
	var segs []segment
	pos := 0
	for _, ph := range seq {
		n := int(ph.Dur / p.Rate * s.rate)
		if n < 1 {
			n = 1
		}
		segs = append(segs, segment{ph: ph, start: pos, end: pos + n})
		pos += n
	}
	total := pos
	out := &audio.Signal{Samples: make([]float64, total), Rate: s.rate}

	// Transition window: 20 ms cross-fade between adjacent segments.
	trans := int(0.02 * s.rate)

	ctrlAt := func(i int) control {
		// Locate segment.
		si := 0
		for si < len(segs)-1 && i >= segs[si].end {
			si++
		}
		cur := segs[si]
		c := controlFor(cur.ph, p)
		// Blend into next segment near the boundary.
		if si+1 < len(segs) {
			into := cur.end - i
			if into < trans {
				t := 0.5 * (1 - float64(into)/float64(trans))
				next := controlFor(segs[si+1].ph, p)
				c = blend(c, next, t)
			}
		}
		if si > 0 {
			from := i - cur.start
			if from < trans {
				t := 0.5 * (1 - float64(from)/float64(trans))
				prev := controlFor(segs[si-1].ph, p)
				c = blend(c, prev, t)
			}
		}
		return c
	}

	// Glottal source state.
	var (
		phase   float64 // in [0, 1) within a glottal cycle
		cycleF0 = p.F0Mean
		cycleA  = 1.0
	)
	// Per-utterance F0 declination: pitch falls ~15% across the utterance,
	// plus a slow sinusoidal intonation within F0Range.
	f0At := func(i int) float64 {
		frac := float64(i) / float64(total)
		decl := 1 - 0.15*frac
		inton := math.Sin(2*math.Pi*1.5*float64(i)/s.rate) * p.F0Range / 2
		return p.F0Mean*decl + inton
	}

	// Resonators are recreated per block to track formant movement.
	const block = 64
	res := make([]*dsp.Biquad, 4)
	tiltLP := dsp.NewLowPassBiquad(4000-3000*p.Tilt, s.rate)

	excitation := make([]float64, block)
	for b0 := 0; b0 < total; b0 += block {
		b1 := b0 + block
		if b1 > total {
			b1 = total
		}
		c := ctrlAt((b0 + b1) / 2)
		// Rebuild resonators with the current formant targets, preserving
		// state continuity via fresh filters on the excitation block.
		for k := 0; k < 4; k++ {
			res[k] = dsp.NewResonator(c.f[k], c.bw[k], s.rate)
		}
		for i := b0; i < b1; i++ {
			// Advance the glottal cycle.
			f0 := f0At(i)
			if phase >= 1 {
				phase -= 1
				// New cycle: apply jitter and shimmer.
				cycleF0 = f0 * (1 + p.Jitter*s.rng.NormFloat64())
				cycleA = 1 + p.Shimmer*s.rng.NormFloat64()
				if cycleF0 < 40 {
					cycleF0 = 40
				}
			}
			g := rosenberg(phase) * cycleA
			phase += cycleF0 / s.rate

			noise := s.rng.NormFloat64() * 0.4
			exc := c.voiced*g*(1-0.5*c.frication) +
				c.frication*noise +
				c.voiced*p.Breathiness*noise*0.5
			excitation[i-b0] = exc * c.amp
		}
		// Vocal tract: cascade resonators then spectral tilt.
		blockSamples := excitation[:b1-b0]
		for k := 0; k < 4; k++ {
			res[k].ProcessBlock(blockSamples)
		}
		for i := range blockSamples {
			out.Samples[b0+i] = tiltLP.Process(blockSamples[i])
		}
	}
	out.Normalize(0.7)
	return out
}

// controlFor applies the speaker profile to a phoneme's reference targets.
func controlFor(ph Phoneme, p Profile) control {
	var c control
	for k := 0; k < 4; k++ {
		f := ph.F[k]*p.TractScale + p.FormantBias[k]
		// Keep formants inside the representable band.
		if f < 150 {
			f = 150
		}
		if f > DefaultRate/2*0.95 {
			f = DefaultRate / 2 * 0.95
		}
		c.f[k] = f
		c.bw[k] = ph.BW[k] * p.BandwidthScale
	}
	if ph.Voiced {
		c.voiced = 1
	}
	c.frication = ph.Frication
	c.amp = ph.Amp
	return c
}

func blend(a, b control, t float64) control {
	var c control
	for k := 0; k < 4; k++ {
		c.f[k] = a.f[k] + (b.f[k]-a.f[k])*t
		c.bw[k] = a.bw[k] + (b.bw[k]-a.bw[k])*t
	}
	c.voiced = a.voiced + (b.voiced-a.voiced)*t
	c.frication = a.frication + (b.frication-a.frication)*t
	c.amp = a.amp + (b.amp-a.amp)*t
	return c
}

// rosenberg evaluates the Rosenberg glottal pulse at phase t ∈ [0, 1):
// a rising-falling flow pulse occupying the first 60% of the cycle.
func rosenberg(t float64) float64 {
	const (
		tp = 0.4 // rise fraction
		tn = 0.2 // fall fraction
	)
	switch {
	case t < tp:
		x := t / tp
		return 0.5 * (1 - math.Cos(math.Pi*x))
	case t < tp+tn:
		x := (t - tp) / tn
		return math.Cos(math.Pi / 2 * x)
	default:
		return 0
	}
}
