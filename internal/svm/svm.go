// Package svm implements the linear support vector machine the paper's
// sound-field verification component trains to separate human-mouth sound
// fields from machine sources (§IV-B2). Training uses the Pegasos
// primal sub-gradient algorithm; features are standardized internally.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/stats"
)

// Model is a trained linear SVM with input standardization.
type Model struct {
	// Weights is the hyperplane normal in standardized feature space.
	Weights []float64
	// Bias is the hyperplane offset.
	Bias float64
	// Mean and Std are the per-feature standardization parameters
	// estimated from the training set.
	Mean, Std []float64
}

// TrainConfig configures Pegasos training.
type TrainConfig struct {
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 50).
	Epochs int
	// Seed seeds the example sampling order.
	Seed int64
}

func (c *TrainConfig) setDefaults() {
	if stats.IsZero(c.Lambda) {
		c.Lambda = 1e-3
	}
	if c.Epochs == 0 {
		c.Epochs = 50
	}
}

// ErrBadTrainingSet is returned for degenerate training input.
var ErrBadTrainingSet = errors.New("svm: bad training set")

// Train fits a linear SVM on examples x with labels y in {-1, +1}.
func Train(x [][]float64, y []int, cfg TrainConfig) (*Model, error) {
	cfg.setDefaults()
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d examples, %d labels", ErrBadTrainingSet, len(x), len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional features", ErrBadTrainingSet)
	}
	var pos, neg int
	for i, label := range y {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("%w: example %d has dim %d, want %d", ErrBadTrainingSet, i, len(x[i]), dim)
		}
		switch label {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("%w: label %d must be ±1", ErrBadTrainingSet, label)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("%w: need both classes (pos=%d neg=%d)", ErrBadTrainingSet, pos, neg)
	}

	m := &Model{
		Weights: make([]float64, dim),
		Mean:    make([]float64, dim),
		Std:     make([]float64, dim),
	}
	m.fitScaler(x)
	xs := make([][]float64, len(x))
	for i, row := range x {
		xs[i] = m.standardize(row)
	}

	// The bias is learned as the weight of a constant augmented feature,
	// so it is regularized like the rest of w; updating it with the raw
	// Pegasos step 1/(λt) is numerically explosive in early iterations.
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for range xs {
			t++
			i := rng.Intn(len(xs))
			eta := 1 / (cfg.Lambda * float64(t))
			margin := float64(y[i]) * (dot(m.Weights, xs[i]) + m.Bias)
			decay := 1 - eta*cfg.Lambda
			for d := range m.Weights {
				m.Weights[d] *= decay
			}
			m.Bias *= decay
			if margin < 1 {
				for d := range m.Weights {
					m.Weights[d] += eta * float64(y[i]) * xs[i][d]
				}
				m.Bias += eta * float64(y[i])
			}
		}
	}
	return m, nil
}

// Margin returns the signed distance proxy w·x+b for a raw (unstandardized)
// feature vector. Positive means class +1.
func (m *Model) Margin(x []float64) float64 {
	return dot(m.Weights, m.standardize(x)) + m.Bias
}

// Predict returns the predicted label in {-1, +1}.
func (m *Model) Predict(x []float64) int {
	if m.Margin(x) >= 0 {
		return 1
	}
	return -1
}

// Accuracy returns the fraction of correct predictions on a labeled set.
func (m *Model) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	var correct int
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func (m *Model) fitScaler(x [][]float64) {
	n := float64(len(x))
	for _, row := range x {
		for d, v := range row {
			m.Mean[d] += v
		}
	}
	for d := range m.Mean {
		m.Mean[d] /= n
	}
	for _, row := range x {
		for d, v := range row {
			diff := v - m.Mean[d]
			m.Std[d] += diff * diff
		}
	}
	for d := range m.Std {
		m.Std[d] = math.Sqrt(m.Std[d] / n)
		if m.Std[d] < 1e-9 {
			m.Std[d] = 1
		}
	}
}

func (m *Model) standardize(x []float64) []float64 {
	out := make([]float64, len(m.Mean))
	for d := range out {
		v := 0.0
		if d < len(x) {
			v = x[d]
		}
		out[d] = (v - m.Mean[d]) / m.Std[d]
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
