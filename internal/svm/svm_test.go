package svm

import (
	"errors"
	"math/rand"
	"testing"
)

func gaussianClass(center []float64, n int, sigma float64, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, len(center))
		for d, v := range center {
			row[d] = v + sigma*rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func makeDataset(rng *rand.Rand, sep float64) (x [][]float64, y []int) {
	pos := gaussianClass([]float64{sep, sep}, 100, 1, rng)
	neg := gaussianClass([]float64{-sep, -sep}, 100, 1, rng)
	for _, p := range pos {
		x = append(x, p)
		y = append(y, 1)
	}
	for _, p := range neg {
		x = append(x, p)
		y = append(y, -1)
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeDataset(rng, 3)
	m, err := Train(x, y, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.99 {
		t.Errorf("training accuracy = %v", acc)
	}
	// Held-out data.
	xt, yt := makeDataset(rand.New(rand.NewSource(2)), 3)
	if acc := m.Accuracy(xt, yt); acc < 0.97 {
		t.Errorf("test accuracy = %v", acc)
	}
}

func TestTrainOverlappingStillDecent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := makeDataset(rng, 1.2)
	m, err := Train(x, y, TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.85 {
		t.Errorf("accuracy on overlapping classes = %v", acc)
	}
}

func TestMarginSign(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := makeDataset(rng, 4)
	m, err := Train(x, y, TrainConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Margin([]float64{4, 4}) <= 0 {
		t.Error("positive-class point has non-positive margin")
	}
	if m.Margin([]float64{-4, -4}) >= 0 {
		t.Error("negative-class point has non-negative margin")
	}
	if m.Predict([]float64{4, 4}) != 1 || m.Predict([]float64{-4, -4}) != -1 {
		t.Error("predict disagrees with margin")
	}
}

func TestMarginGrowsWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := makeDataset(rng, 3)
	m, err := Train(x, y, TrainConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	near := m.Margin([]float64{0.5, 0.5})
	far := m.Margin([]float64{6, 6})
	if far <= near {
		t.Errorf("margin should grow away from boundary: near=%v far=%v", near, far)
	}
}

func TestTrainErrors(t *testing.T) {
	cases := []struct {
		name string
		x    [][]float64
		y    []int
	}{
		{"empty", nil, nil},
		{"mismatch", [][]float64{{1}}, []int{1, -1}},
		{"zero dim", [][]float64{{}}, []int{1}},
		{"bad label", [][]float64{{1}, {2}}, []int{1, 0}},
		{"one class", [][]float64{{1}, {2}}, []int{1, 1}},
		{"ragged", [][]float64{{1, 2}, {3}}, []int{1, -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Train(tc.x, tc.y, TrainConfig{}); !errors.Is(err, ErrBadTrainingSet) {
				t.Errorf("err = %v, want ErrBadTrainingSet", err)
			}
		})
	}
}

func TestStandardizationHandlesScaleImbalance(t *testing.T) {
	// One feature is on a huge scale; without standardization Pegasos
	// would struggle to converge in few epochs.
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		x = append(x, []float64{1e6 + 1e4*rng.NormFloat64(), 1 + 0.2*rng.NormFloat64()})
		y = append(y, 1)
		x = append(x, []float64{1e6 + 1e4*rng.NormFloat64(), -1 + 0.2*rng.NormFloat64()})
		y = append(y, -1)
	}
	m, err := Train(x, y, TrainConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.97 {
		t.Errorf("accuracy with scale imbalance = %v", acc)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := &Model{Weights: []float64{1}, Mean: []float64{0}, Std: []float64{1}}
	if m.Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestShortFeatureVectorPadded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := makeDataset(rng, 3)
	m, err := Train(x, y, TrainConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A short vector is treated as zero-padded rather than panicking.
	_ = m.Margin([]float64{1})
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeDataset(rng, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, TrainConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
