package svm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// modelDTO is the serialized form of a trained SVM.
type modelDTO struct {
	Version int       `json:"version"`
	Weights []float64 `json:"weights"`
	Bias    float64   `json:"bias"`
	Mean    []float64 `json:"mean"`
	Std     []float64 `json:"std"`
}

const persistVersion = 1

// Save writes the model to w as versioned JSON.
func (m *Model) Save(w io.Writer) error {
	dto := modelDTO{
		Version: persistVersion,
		Weights: m.Weights,
		Bias:    m.Bias,
		Mean:    m.Mean,
		Std:     m.Std,
	}
	if err := json.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("svm: saving model: %w", err)
	}
	return nil
}

// ErrBadModel is returned when a loaded model is internally inconsistent.
var ErrBadModel = errors.New("svm: bad serialized model")

// Load reads a model written by Save and validates its shape.
func Load(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("svm: loading model: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("svm: unsupported model version %d", dto.Version)
	}
	dim := len(dto.Weights)
	if dim == 0 || len(dto.Mean) != dim || len(dto.Std) != dim {
		return nil, fmt.Errorf("%w: inconsistent dimensions (%d weights, %d mean, %d std)",
			ErrBadModel, dim, len(dto.Mean), len(dto.Std))
	}
	for i, s := range dto.Std {
		if s <= 0 {
			return nil, fmt.Errorf("%w: non-positive std at %d", ErrBadModel, i)
		}
	}
	return &Model{Weights: dto.Weights, Bias: dto.Bias, Mean: dto.Mean, Std: dto.Std}, nil
}
