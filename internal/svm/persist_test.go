package svm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeDataset(rng, 3)
	m, err := Train(x, y, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range x[:20] {
		if a, b := m.Margin(p), loaded.Margin(p); a != b {
			t.Fatalf("margin mismatch: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":      "junk",
		"wrong version": `{"version":7,"weights":[1],"bias":0,"mean":[0],"std":[1]}`,
		"empty":         `{"version":1,"weights":[],"bias":0,"mean":[],"std":[]}`,
		"ragged":        `{"version":1,"weights":[1,2],"bias":0,"mean":[0],"std":[1]}`,
		"bad std":       `{"version":1,"weights":[1],"bias":0,"mean":[0],"std":[0]}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(payload)); err == nil {
				t.Error("corrupt model accepted")
			}
		})
	}
}
