package analysis

// Unit algebra for the unitflow analyzer and the machine-readable form of
// the "unit:" doc tag.
//
// A Unit is a dimension vector over the base dimensions the cascade's
// physics uses (m, s, A, T, rad, dB, plus the back-end "score"
// pseudo-dimension for LLR-style quantities; Hz is the derived s^-1, so
// sample-index-over-rate algebra infers seconds) together with a scale factor
// relative to the coherent base unit: cm is 0.01·m, µT is 1e-6·T. Two
// quantities are addable/comparable only when both the dimension vector
// and the scale agree — a cm/m mix-up has equal dimensions but unequal
// scale, and is exactly the silent bug class the analyzer exists to catch.
//
// The parsed tag grammar (one comment line, after the "unit:" marker):
//
//	EXPR   := TERM { ("*" | "·" | "/") TERM } | "dimensionless" | "1" | "any"
//	TERM   := BASE [ "^" INT ]
//	BASE   := [PREFIX] ("m"|"s"|"A"|"T"|"Hz"|"rad"|"dB") | "deg" | "score"
//	PREFIX := "n" | "u" | "µ" | "c" | "m" | "k" | "M" | "G"
//
// so "cm", "uT/s", "m/s^2", "A*m^2" and "dimensionless" all parse. "any"
// declares a quantity intentionally polymorphic (e.g. a generic vector
// component) and seeds no dimension. A tag line is either one bare EXPR
// (struct fields, consts, vars) or named pairs binding function
// parameters and results:
//
//	NAMED := NAME " " EXPR { "," NAME " " EXPR }
//
// where NAME is a parameter name, a named result, or the keyword "return"
// for a function's single unnamed result.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// baseDim indexes one base dimension of the unit algebra.
type baseDim int

const (
	dimMeter baseDim = iota
	dimSecond
	dimAmpere
	dimTesla
	dimRadian
	dimDecibel
	dimScore
	numDims
)

// dimNames renders each base dimension.
var dimNames = [numDims]string{"m", "s", "A", "T", "rad", "dB", "score"}

// dims is a dimension vector: one integer exponent per base dimension.
// The zero value is dimensionless.
type dims [numDims]int8

// Unit is a physical unit: a dimension vector and a scale relative to the
// coherent base unit of that vector (cm = {Scale: 0.01, Dims: m¹}).
type Unit struct {
	// Scale is the multiplier to the coherent base unit.
	Scale float64
	// Dims is the dimension vector.
	Dims dims
}

// Dimensionless is the unit of pure numbers and ratios.
var Dimensionless = Unit{Scale: 1}

// Mul returns the product unit u·v: dimensions add, scales multiply.
func (u Unit) Mul(v Unit) Unit {
	out := Unit{Scale: u.Scale * v.Scale}
	for i := range out.Dims {
		out.Dims[i] = u.Dims[i] + v.Dims[i]
	}
	return out
}

// Div returns the quotient unit u/v: dimensions subtract, scales divide.
func (u Unit) Div(v Unit) Unit {
	out := Unit{Scale: u.Scale / v.Scale}
	for i := range out.Dims {
		out.Dims[i] = u.Dims[i] - v.Dims[i]
	}
	return out
}

// Pow returns u raised to the integer power n.
func (u Unit) Pow(n int) Unit {
	out := Unit{Scale: math.Pow(u.Scale, float64(n))}
	for i := range out.Dims {
		out.Dims[i] = u.Dims[i] * int8(n)
	}
	return out
}

// Sqrt returns the square root of u. It succeeds only when every exponent
// is even (so sqrt(m²) = m, but sqrt(m) has no unit in the algebra).
func (u Unit) Sqrt() (Unit, bool) {
	out := Unit{Scale: math.Sqrt(u.Scale)}
	for i := range u.Dims {
		if u.Dims[i]%2 != 0 {
			return Unit{}, false
		}
		out.Dims[i] = u.Dims[i] / 2
	}
	return out, true
}

// IsDimensionless reports whether u carries no dimensions and unit scale.
func (u Unit) IsDimensionless() bool {
	return u.Dims == dims{} && scaleEq(u.Scale, 1)
}

// Equal reports whether u and v agree in both dimensions and scale — the
// condition for the two quantities to be addable or comparable.
func (u Unit) Equal(v Unit) bool {
	return u.Dims == v.Dims && scaleEq(u.Scale, v.Scale)
}

// SameDims reports whether u and v share a dimension vector (possibly at
// different scales, like cm and m).
func (u Unit) SameDims(v Unit) bool { return u.Dims == v.Dims }

// scaleEq compares scale factors with a relative tolerance, absorbing the
// rounding of scale products along different composition orders.
func scaleEq(a, b float64) bool {
	if a == b { //lint:allow floatcmp exact-equality fast path before the relative test
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-9*m
}

// namedUnits are the directly spellable units of the grammar.
var namedUnits = map[string]Unit{
	"m":     baseUnit(dimMeter),
	"s":     baseUnit(dimSecond),
	"A":     baseUnit(dimAmpere),
	"T":     baseUnit(dimTesla),
	"Hz":    hertz(),
	"rad":   baseUnit(dimRadian),
	"dB":    baseUnit(dimDecibel),
	"score": baseUnit(dimScore),
	"deg":   {Scale: math.Pi / 180, Dims: dimVec(dimRadian)},
}

// prefixable are the bases an SI prefix may attach to.
var prefixable = map[string]Unit{
	"m": baseUnit(dimMeter), "s": baseUnit(dimSecond), "A": baseUnit(dimAmpere),
	"T": baseUnit(dimTesla), "Hz": hertz(), "rad": baseUnit(dimRadian),
	"dB": baseUnit(dimDecibel),
}

// siPrefixes maps prefix runes to their scale.
var siPrefixes = map[rune]float64{
	'n': 1e-9, 'u': 1e-6, 'µ': 1e-6, 'c': 1e-2, 'm': 1e-3,
	'k': 1e3, 'M': 1e6, 'G': 1e9,
}

func baseUnit(d baseDim) Unit { return Unit{Scale: 1, Dims: dimVec(d)} }

// hertz is s^-1: representing Hz as derived lets idiomatic rate algebra
// (t := i / rateHz) infer seconds instead of a bogus distinct dimension.
func hertz() Unit {
	var v dims
	v[dimSecond] = -1
	return Unit{Scale: 1, Dims: v}
}

func dimVec(d baseDim) dims {
	var v dims
	v[d] = 1
	return v
}

// ParseUnit parses one unit expression of the grammar ("cm", "uT/s",
// "m/s^2", "A*m^2", "dimensionless"). The keyword "any" is not a unit;
// callers that accept it use ParseUnitTag.
func ParseUnit(s string) (Unit, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Unit{}, fmt.Errorf("analysis: empty unit expression")
	}
	if s == "dimensionless" || s == "1" {
		return Dimensionless, nil
	}
	out := Dimensionless
	rest := s
	div := false
	for len(rest) > 0 {
		i := strings.IndexAny(rest, "*/·")
		var tok string
		nextDiv := false
		if i < 0 {
			tok, rest = rest, ""
		} else {
			tok = rest[:i]
			op := rest[i:]
			nextDiv = op[0] == '/'
			_, w := opWidth(op)
			rest = rest[i+w:]
		}
		u, err := parseTerm(tok)
		if err != nil {
			return Unit{}, err
		}
		if div {
			out = out.Div(u)
		} else {
			out = out.Mul(u)
		}
		div = nextDiv
		if i >= 0 && rest == "" {
			return Unit{}, fmt.Errorf("analysis: unit expression %q ends in an operator", s)
		}
	}
	return out, nil
}

// opWidth returns the operator rune at the head of s and its byte width
// ('·' is multi-byte).
func opWidth(s string) (rune, int) {
	for _, r := range s {
		return r, len(string(r))
	}
	return 0, 0
}

// parseTerm parses one BASE["^" INT] term.
func parseTerm(tok string) (Unit, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return Unit{}, fmt.Errorf("analysis: empty unit term")
	}
	base, expStr, hasExp := strings.Cut(tok, "^")
	u, err := parseBase(base)
	if err != nil {
		return Unit{}, err
	}
	if !hasExp {
		return u, nil
	}
	n, err := strconv.Atoi(expStr)
	if err != nil {
		return Unit{}, fmt.Errorf("analysis: bad exponent in unit term %q", tok)
	}
	return u.Pow(n), nil
}

// parseBase resolves a named unit, trying an SI prefix when the bare name
// is unknown ("cm" = c + m, "kHz" = k + Hz, "uT" = u + T).
func parseBase(s string) (Unit, error) {
	if u, ok := namedUnits[s]; ok {
		return u, nil
	}
	for _, r := range s {
		scale, ok := siPrefixes[r]
		rest := s[len(string(r)):]
		if ok {
			if u, ok := prefixable[rest]; ok {
				u.Scale *= scale
				return u, nil
			}
		}
		break
	}
	return Unit{}, fmt.Errorf("analysis: unknown unit %q", s)
}

// String renders the unit, preferring a conventional name (cm, µT/s)
// over the raw scale-and-dimensions form.
func (u Unit) String() string {
	for _, n := range displayUnits {
		if u.Equal(n.unit) {
			return n.name
		}
	}
	var num, den []string
	for i := range u.Dims {
		switch e := u.Dims[i]; {
		case e == 1:
			num = append(num, dimNames[i])
		case e > 1:
			num = append(num, fmt.Sprintf("%s^%d", dimNames[i], e))
		case e == -1:
			den = append(den, dimNames[i])
		case e < -1:
			den = append(den, fmt.Sprintf("%s^%d", dimNames[i], -e))
		}
	}
	s := strings.Join(num, "*")
	if s == "" {
		s = "1"
	}
	if len(den) > 0 {
		s += "/" + strings.Join(den, "/")
	}
	if !scaleEq(u.Scale, 1) {
		s = fmt.Sprintf("%g·%s", u.Scale, s)
	}
	return s
}

// displayUnits is the preference order for rendering diagnostics.
var displayUnits = []struct {
	name string
	unit Unit
}{
	{"dimensionless", Dimensionless},
	{"m", mustUnit("m")}, {"cm", mustUnit("cm")}, {"mm", mustUnit("mm")}, {"km", mustUnit("km")},
	{"s", mustUnit("s")}, {"ms", mustUnit("ms")}, {"µs", mustUnit("us")},
	{"Hz", mustUnit("Hz")}, {"kHz", mustUnit("kHz")},
	{"T", mustUnit("T")}, {"µT", mustUnit("uT")}, {"mT", mustUnit("mT")},
	{"rad", mustUnit("rad")}, {"deg", mustUnit("deg")},
	{"dB", mustUnit("dB")}, {"score", mustUnit("score")}, {"A", mustUnit("A")},
	{"µT/s", mustUnit("uT/s")}, {"µT/m", mustUnit("uT/m")},
	{"m/s", mustUnit("m/s")}, {"m/s^2", mustUnit("m/s^2")},
	{"rad/s", mustUnit("rad/s")}, {"A*m^2", mustUnit("A*m^2")},
	{"cm/m", mustUnit("cm/m")},
}

func mustUnit(s string) Unit {
	u, err := ParseUnit(s)
	if err != nil {
		panic("analysis: bad display unit: " + err.Error()) //lint:allow nopanic init-time table of literals
	}
	return u
}

// DeclUnit is a declared unit annotation: either a concrete Unit or the
// explicit "any" wildcard.
type DeclUnit struct {
	// Any marks a deliberately polymorphic quantity.
	Any bool
	// Unit is the concrete unit when Any is false.
	Unit Unit
}

// UnitTag is one parsed "unit:" comment line: either a bare expression
// (fields, consts, vars) or named parameter/result bindings (func docs).
type UnitTag struct {
	// Bare is set for the bare-expression form.
	Bare *DeclUnit
	// Named holds the name→unit pairs of the named form, in source order.
	Named []NamedUnit
}

// NamedUnit binds one parameter or result name to a declared unit.
type NamedUnit struct {
	// Name is the parameter name, result name, or "return".
	Name string
	// Unit is the declared unit.
	Unit DeclUnit
}

// unitTagMarker is the comment marker beginning a machine-readable tag
// line.
const unitTagMarker = "unit:"

// CutUnitTag returns the body of a tag line ("cm", "t s") when the
// trimmed comment line starts with the marker.
func CutUnitTag(line string) (string, bool) {
	line = strings.TrimSpace(line)
	rest, ok := strings.CutPrefix(line, unitTagMarker)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// ParseUnitTag parses the body of one tag line.
func ParseUnitTag(body string) (UnitTag, error) {
	body = strings.TrimSpace(body)
	if body == "" {
		return UnitTag{}, fmt.Errorf("analysis: empty unit tag")
	}
	parts := strings.Split(body, ",")
	var tag UnitTag
	for _, part := range parts {
		fields := strings.Fields(part)
		switch len(fields) {
		case 0:
			return UnitTag{}, fmt.Errorf("analysis: empty clause in unit tag %q", body)
		case 1:
			if len(parts) > 1 {
				return UnitTag{}, fmt.Errorf("analysis: bare unit %q mixed with other clauses", fields[0])
			}
			du, err := parseDeclUnit(fields[0])
			if err != nil {
				return UnitTag{}, err
			}
			tag.Bare = &du
		case 2:
			if !isIdent(fields[0]) {
				return UnitTag{}, fmt.Errorf("analysis: bad name %q in unit tag", fields[0])
			}
			du, err := parseDeclUnit(fields[1])
			if err != nil {
				return UnitTag{}, err
			}
			tag.Named = append(tag.Named, NamedUnit{Name: fields[0], Unit: du})
		default:
			return UnitTag{}, fmt.Errorf("analysis: unit tag clause %q has %d fields, want \"EXPR\" or \"name EXPR\"", strings.TrimSpace(part), len(fields))
		}
	}
	return tag, nil
}

// parseDeclUnit parses one expression, admitting the "any" wildcard.
func parseDeclUnit(s string) (DeclUnit, error) {
	if s == "any" {
		return DeclUnit{Any: true}, nil
	}
	u, err := ParseUnit(s)
	if err != nil {
		return DeclUnit{}, err
	}
	return DeclUnit{Unit: u}, nil
}

// isIdent reports whether s is a plausible Go identifier.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// suffixUnits maps the unitsuffix name endings to unit expressions, so a
// parameter or field named cutoffHz or SwingMicroTesla seeds the dataflow
// without a tag.
var suffixUnits = map[string]string{
	"Meters": "m", "Hz": "Hz", "MicroTesla": "uT", "Seconds": "s",
	"Radians": "rad", "Degrees": "deg", "Deg": "deg", "DB": "dB",
	"MS2": "m/s^2", "Ratio": "dimensionless",
}

// UnitFromName infers a unit from a name's suffix ("MaxDistanceMeters" →
// m, "SwingMicroTeslaPerSecond" → µT/s). The "PerSecond" ending divides
// whatever the remaining suffix names by seconds.
func UnitFromName(name string) (Unit, bool) {
	if base, ok := strings.CutSuffix(name, "PerSecond"); ok {
		if u, ok := UnitFromName(base); ok {
			return u.Div(namedUnits["s"]), true
		}
		return Unit{}, false
	}
	for suffix, expr := range suffixUnits {
		if strings.HasSuffix(name, suffix) {
			u, err := ParseUnit(expr)
			if err != nil {
				return Unit{}, false
			}
			return u, true
		}
	}
	return Unit{}, false
}
