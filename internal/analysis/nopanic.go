package analysis

import (
	"go/ast"
	"go/types"
)

// NoPanicAnalyzer forbids panic calls in library packages: everything on
// the serving path must degrade to a returned error, not take down the
// process mid-request. Commands and examples (package main) may panic.
// A deliberate programmer-error invariant — "this cannot happen unless
// the code itself is wrong" — stays allowed when documented with
// //lint:allow nopanic <reason>.
var NoPanicAnalyzer = &Analyzer{
	Name: "nopanic",
	Doc:  "forbids panic in library packages; return errors on the serving path",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	inspectFiles(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		pass.Reportf(call.Pos(),
			"panic in library package %s; return an error, or document the invariant with //lint:allow nopanic",
			pass.Pkg.Name())
		return true
	})
	return nil
}
