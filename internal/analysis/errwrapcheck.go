package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrapCheckAnalyzer enforces the repo's error-construction convention
// in library packages:
//
//   - fmt.Errorf called with an error-typed argument must wrap it with %w
//     so callers can errors.Is/As through the chain;
//   - literal error strings (errors.New, fmt.Errorf) must carry the
//     package prefix, e.g. "core: ..." inside package core, so a verdict
//     or log line names the failing subsystem. A format string that opens
//     with a verb ("%w: ...") inherits its prefix from the interpolated
//     value — typically a package-prefixed sentinel error — and passes.
var ErrWrapCheckAnalyzer = &Analyzer{
	Name: "errwrapcheck",
	Doc:  "fmt.Errorf with an error argument must use %w; error strings need a package prefix",
	Run:  runErrWrapCheck,
}

func runErrWrapCheck(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	prefix := pass.Pkg.Name() + ": "
	inspectFiles(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		switch calleeName(pass.TypesInfo, call) {
		case "fmt.Errorf":
			format, literal := stringLiteral(call.Args[0])
			if literal && !strings.HasPrefix(format, prefix) && !startsWithVerb(format) {
				pass.Reportf(call.Args[0].Pos(), "error string %s must start with package prefix %q",
					strconv.Quote(abbreviate(format)), prefix)
			}
			if literal && countWrapVerbs(format) == 0 && hasErrorArg(pass.TypesInfo, call.Args[1:]) {
				pass.Reportf(call.Pos(), "fmt.Errorf with an error argument must wrap it with %%w")
			}
		case "errors.New":
			if msg, literal := stringLiteral(call.Args[0]); literal && !strings.HasPrefix(msg, prefix) {
				pass.Reportf(call.Args[0].Pos(), "error string %s must start with package prefix %q",
					strconv.Quote(abbreviate(msg)), prefix)
			}
		}
		return true
	})
	return nil
}

// calleeName returns the qualified name ("fmt.Errorf") of a call to a
// package-level function, or "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// stringLiteral unquotes e if it is a string literal.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// startsWithVerb reports whether the format string opens with an
// interpolation verb, delegating its prefix to the first argument.
func startsWithVerb(format string) bool {
	return len(format) >= 2 && format[0] == '%' && format[1] != '%'
}

// countWrapVerbs counts %w verbs in a format string, skipping %% escapes.
func countWrapVerbs(format string) int {
	var n int
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		if format[i+1] == 'w' {
			n++
		}
	}
	return n
}

// hasErrorArg reports whether any argument's type implements error.
func hasErrorArg(info *types.Info, args []ast.Expr) bool {
	for _, a := range args {
		t := info.TypeOf(a)
		if t != nil && types.Implements(t, errorType) {
			return true
		}
	}
	return false
}

// abbreviate trims long messages for diagnostics.
func abbreviate(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
