package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirstAnalyzer enforces the repo's context-propagation discipline,
// introduced when deadlines were threaded through the verification
// cascade. Two rules:
//
//  1. An exported function or method taking a context.Context must take
//     it as its first parameter — the stdlib convention that lets every
//     call site thread cancellation without reading the signature twice.
//
//  2. Library packages must not mint fresh root contexts with
//     context.Background() or context.TODO(): on the serving path a
//     fresh root silently detaches the work from the request's deadline,
//     which is exactly the bug class the cascade's load-shedding relies
//     on not having. Roots belong in package main (and in tests, which
//     the linter does not load). Deliberate compatibility wrappers
//     document themselves with //lint:allow ctxfirst.
var CtxFirstAnalyzer = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter of exported functions; no context.Background()/TODO() outside main",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Name.IsExported() {
				checkCtxPosition(pass, fd)
			}
			if fd.Body != nil && pass.Pkg.Name() != "main" {
				checkNoFreshRoots(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkCtxPosition flags an exported function whose context.Context
// parameter is not the first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 1; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			pass.Reportf(fd.Name.Pos(),
				"%s takes context.Context as parameter %d; context must come first",
				fd.Name.Name, i+1)
			return
		}
	}
}

// checkNoFreshRoots flags context.Background() and context.TODO() calls
// inside a library function body.
func checkNoFreshRoots(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() mints a fresh root in library code; thread the caller's context instead",
			sel.Sel.Name)
		return true
	})
}

// isContextType reports whether t is (an alias of) context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
