package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StageInstrumentAnalyzer checks that every type implementing the core
// stage-verify signature — a Verify or VerifySpan method returning
// core.StageResult — records the stage's processing time in
// StageResult.Elapsed. The
// per-stage latency breakdown behind the paper's §V response-time result
// (and the PR 1 telemetry histograms fed from it) silently reads zero for
// any stage added without instrumentation; this catches that at lint time.
//
// A method satisfies the check by assigning to an Elapsed field, building
// a composite literal with an Elapsed key, calling core.TimeStage
// (typically `defer TimeStage(&res)()` on a named result), or delegating
// to another Verify implementation.
var StageInstrumentAnalyzer = &Analyzer{
	Name: "stageinstrument",
	Doc:  "Verify methods returning core.StageResult must record StageResult.Elapsed",
	Run:  runStageInstrument,
}

func runStageInstrument(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Verify" && fd.Name.Name != "VerifySpan" {
				continue
			}
			if !returnsStageResult(pass.TypesInfo, fd) {
				continue
			}
			if recordsElapsed(fd.Body) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"%s method on %s returns core.StageResult but never records Elapsed; add `defer core.TimeStage(&res)()` or set the field",
				fd.Name.Name, receiverName(fd))
		}
	}
	return nil
}

// returnsStageResult reports whether the method's first result is the
// core package's StageResult type.
func returnsStageResult(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Type.Results.List[0].Type)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "StageResult" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "core" || strings.HasSuffix(path, "/core")
}

// recordsElapsed reports whether the body stamps an Elapsed field or
// defers to recognized instrumentation.
func recordsElapsed(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Elapsed" {
					found = true
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok && id.Name == "Elapsed" {
				found = true
			}
		case *ast.CallExpr:
			switch name := callName(n); name {
			case "TimeStage", "timeStage":
				found = true
			case "Verify", "VerifySpan":
				// Delegation: the inner Verify/VerifySpan is checked where
				// it is declared.
				found = true
			}
		}
		return !found
	})
	return found
}

// callName returns the bare name of the called function or method.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// receiverName renders the receiver type for diagnostics.
func receiverName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "receiver"
}
