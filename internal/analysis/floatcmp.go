package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags == and != between floating-point operands. The
// paper's thresholds (Dt, Mt, βt, probe frequencies) travel through the
// pipeline as float64s, and exact equality on values that went through
// arithmetic is a silent-misverdict bug, not a style issue. Compare with
// the internal/stats epsilon helpers (stats.ApproxEqual, stats.IsZero)
// instead, or suppress an intentional exact comparison (bit-pattern
// sentinel, config zero-value check) with //lint:allow floatcmp.
//
// The x != x / x == x NaN idiom and constant-folded comparisons are
// exempt.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point operands; use the stats epsilon helpers",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	inspectFiles(pass, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return true
		}
		// Both sides constant: folded at compile time, exact by
		// construction.
		if xt.Value != nil && yt.Value != nil {
			return true
		}
		// x != x is the portable NaN test; leave it alone.
		if isSelfComparison(pass.TypesInfo, be.X, be.Y) {
			return true
		}
		helper := "stats.ApproxEqual"
		if isZeroConstant(xt) || isZeroConstant(yt) {
			helper = "stats.IsZero"
		}
		pass.Reportf(be.OpPos, "floating-point %s comparison; use %s or an explicit epsilon", be.Op, helper)
		return true
	})
	return nil
}

// isZeroConstant reports whether tv is the constant 0.
func isZeroConstant(tv types.TypeAndValue) bool {
	return tv.Value != nil && tv.Value.String() == "0"
}

// isSelfComparison reports whether x and y are the same variable or the
// same field chain on the same variables (the NaN-test idiom).
func isSelfComparison(info *types.Info, x, y ast.Expr) bool {
	switch xe := x.(type) {
	case *ast.Ident:
		ye, ok := y.(*ast.Ident)
		return ok && info.Uses[xe] != nil && info.Uses[xe] == info.Uses[ye]
	case *ast.SelectorExpr:
		ye, ok := y.(*ast.SelectorExpr)
		return ok && xe.Sel.Name == ye.Sel.Name && isSelfComparison(info, xe.X, ye.X)
	case *ast.ParenExpr:
		ye, ok := y.(*ast.ParenExpr)
		return ok && isSelfComparison(info, xe.X, ye.X)
	}
	return false
}
