package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpanCloseAnalyzer checks that every telemetry span opened with
// Span.StartSpan or Tracer.StartTrace reaches an End. A span that is
// never ended freezes with a zero end time; the flight recorder then
// closes it at snapshot time, silently inflating its duration to the
// whole trace and corrupting the latency evidence the §VII calibration
// reads. The ownership convention is transfer-based, mirroring the code:
//
//   - calling End (directly or deferred) discharges the obligation;
//   - passing the span to any call hands the obligation onward (the
//     callee either ends it or is itself checked here);
//   - returning the span, or storing it beyond a plain variable binding,
//     transfers the obligation to the caller/holder.
//
// What the analyzer flags is the remaining case: a span bound to a local
// variable (or discarded outright) that no End, call argument, return or
// store ever touches — a span opened and forgotten.
var SpanCloseAnalyzer = &Analyzer{
	Name: "spanclose",
	Doc:  "spans from telemetry.StartSpan/StartTrace must be ended or handed onward",
	Run:  runSpanClose,
}

func runSpanClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanClose(pass, fd.Body)
		}
	}
	return nil
}

// spanStart is one tracked StartSpan/StartTrace binding.
type spanStart struct {
	obj       types.Object
	pos       ast.Node
	satisfied bool
}

// checkSpanClose analyzes one function body (closures included — their
// spans resolve to the same identifiers).
func checkSpanClose(pass *Pass, body *ast.BlockStmt) {
	var starts []*spanStart
	byObj := make(map[types.Object]*spanStart)

	// Pass 1: collect span-start bindings and flag discarded results.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf(call.Pos(),
					"span from %s is discarded; bind it and call End (or hand it to a call that does)",
					callName(call))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					// Stored into a field or index: the holder owns it now.
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"span from %s is discarded; bind it and call End (or hand it to a call that does)",
						callName(call))
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || byObj[obj] != nil {
					continue
				}
				st := &spanStart{obj: obj, pos: call}
				starts = append(starts, st)
				byObj[obj] = st
			}
		}
		return true
	})
	if len(starts) == 0 {
		return
	}

	// Pass 2: look for a discharging use of each tracked span variable.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if st := byObj[pass.TypesInfo.ObjectOf(id)]; st != nil {
						st.satisfied = true
					}
				}
			}
			for _, arg := range n.Args {
				markSpanUse(pass, byObj, arg)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markSpanUse(pass, byObj, res)
			}
		case *ast.AssignStmt:
			// Rebinding the span to another name or into a structure
			// transfers ownership; the alias or holder is accountable.
			for _, rhs := range n.Rhs {
				if _, ok := rhs.(*ast.CallExpr); ok {
					continue
				}
				markSpanUse(pass, byObj, rhs)
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				markSpanUse(pass, byObj, el)
			}
		}
		return true
	})

	for _, st := range starts {
		if !st.satisfied {
			pass.Reportf(st.pos.Pos(),
				"span %s is never ended; add `defer %s.End()` or hand the span to a call that ends it",
				st.obj.Name(), st.obj.Name())
		}
	}
}

// markSpanUse discharges a tracked span when expr is (or takes the
// address of) its identifier.
func markSpanUse(pass *Pass, byObj map[types.Object]*spanStart, expr ast.Expr) {
	if un, ok := expr.(*ast.UnaryExpr); ok {
		expr = un.X
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return
	}
	if st := byObj[pass.TypesInfo.ObjectOf(id)]; st != nil {
		st.satisfied = true
	}
}

// isSpanStart reports whether call invokes telemetry's Span.StartSpan or
// Tracer.StartTrace.
func isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "StartSpan" && name != "StartTrace" {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "telemetry" || strings.HasSuffix(path, "/telemetry")
}
