package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// allowPragma is the prefix of a suppression comment. The full form is
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// and it silences the named analyzers on the comment's own line (trailing
// form) and on the line directly below (standalone form).
const allowPragma = "lint:allow"

// Run executes every analyzer over every package, applies //lint:allow
// suppressions, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowedLines(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report: func(d Diagnostic) {
					if names, ok := allowed[lineKey{d.Position.Filename, d.Position.Line}]; ok {
						if names[d.Analyzer] || names["all"] {
							return
						}
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: running %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// lineKey addresses one source line for suppression lookup.
type lineKey struct {
	file string
	line int
}

// allowedLines indexes every //lint:allow pragma in the package: the
// analyzers named by a pragma are allowed on the pragma's line and the
// line below it.
func allowedLines(pkg *Package) map[lineKey]map[string]bool {
	out := make(map[lineKey]map[string]bool)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				names := parseAllowPragma(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := lineKey{pos.Filename, line}
					if out[key] == nil {
						out[key] = make(map[string]bool)
					}
					for _, n := range names {
						out[key][n] = true
					}
				}
			}
		}
	}
	return out
}

// parseAllowPragma extracts the analyzer names from a comment, or nil if
// the comment is not an allow pragma.
func parseAllowPragma(text string) []string {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, allowPragma) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, allowPragma))
	if rest == "" {
		return nil
	}
	namesField := strings.Fields(rest)[0]
	var names []string
	for _, n := range strings.Split(namesField, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// inspectFiles walks every file in the pass with fn.
func inspectFiles(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}
