// Package fixture exercises the floatcmp analyzer: raw equality between
// floats is flagged, the NaN idiom and constant folding are not.
package fixture

func compare(a, b float64, n int) bool {
	if a == b { // want `floating-point == comparison; use stats\.ApproxEqual`
		return true
	}
	if a != 0 { // want `floating-point != comparison; use stats\.IsZero`
		return false
	}
	if n == 0 { // integer comparison is fine
		return true
	}
	if a != a { // the NaN idiom is exempt
		return false
	}
	const eps = 1e-9
	if eps == 1e-9 { // both sides constant: folded, exempt
		return true
	}
	//lint:allow floatcmp exact bit-pattern sentinel is intended here
	return a == b
}
