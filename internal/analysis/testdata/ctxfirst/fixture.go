// Package fixture exercises the ctxfirst analyzer: exported functions
// must take context.Context first, and library code must not mint fresh
// roots with context.Background()/TODO().
package fixture

import "context"

// VerifyFirst is conventional: context first, everything else after.
func VerifyFirst(ctx context.Context, user string) error {
	return ctx.Err()
}

// VerifyBuried takes its context second.
func VerifyBuried(user string, ctx context.Context) error { // want `VerifyBuried takes context.Context as parameter 2; context must come first`
	return ctx.Err()
}

type handler struct{}

// Handle buries the context behind two other parameters.
func (handler) Handle(name string, n int, ctx context.Context) error { // want `Handle takes context.Context as parameter 3; context must come first`
	return ctx.Err()
}

// unexportedBuried is internal plumbing; position is not enforced, only
// fresh roots are.
func unexportedBuried(user string, ctx context.Context) error {
	return ctx.Err()
}

// NoContext takes no context at all and is fine.
func NoContext(user string) string { return user }

func freshRoot() context.Context {
	return context.Background() // want `context.Background\(\) mints a fresh root in library code; thread the caller's context instead`
}

func freshTODO() error {
	ctx := context.TODO() // want `context.TODO\(\) mints a fresh root in library code; thread the caller's context instead`
	return ctx.Err()
}

// CompatWrapper is the sanctioned escape hatch: a deliberate
// compatibility entry point documents itself with a pragma.
func CompatWrapper(user string) error {
	//lint:allow ctxfirst seed-compatible wrapper; callers with deadlines use VerifyFirst
	return VerifyFirst(context.Background(), user)
}
