// Package core exercises the unitflow analyzer: units seeded from tags,
// suffixes and a conversion constant must flow consistently through
// comparisons, assignments, calls and loops. Every flagged line compiles
// and would pass any value-level test — the bugs are purely dimensional.
package core

import "math"

// CmPerM converts meters to centimeters.
// unit: cm/m
const CmPerM = 100

// Thresholds carries the cascade's accept limits.
type Thresholds struct {
	// Dt is the distance accept threshold.
	// unit: cm
	Dt float64
	// Mt is the magnetic field-swing limit.
	// unit: uT
	Mt float64
	// Beta is the field change-rate limit.
	// unit: uT/s
	Beta float64
	// Theta is the LLR accept threshold.
	// unit: score
	Theta float64
}

// CheckDistance accepts when the measured distance is inside the
// threshold. The first comparison converts through CmPerM and is clean;
// the second compares raw meters against the cm threshold.
// unit: distance m
func CheckDistance(t Thresholds, distance float64) bool {
	distCm := distance * CmPerM
	if distCm > t.Dt {
		return false
	}
	return distance < t.Dt // want `comparison mixes m and cm \(same dimension, different scale\)`
}

// CheckField validates the magnetometer swing and rate against their
// limits.
// unit: swing uT, rate uT/s
func CheckField(t Thresholds, swing, rate float64) bool {
	return swing < t.Mt && rate < t.Beta
}

// Screen forwards to CheckField with the two field arguments swapped — a
// call that compiles, runs, and is dimensionally wrong.
// unit: swing uT, rate uT/s
func Screen(t Thresholds, swing, rate float64) bool {
	return CheckField(t, rate, swing) // want `argument 2 to CheckField: unit µT/s does not match declared µT` `argument 3 to CheckField: unit µT does not match declared µT/s`
}

// WorstRate scans a rate trace. worst starts as a bare scalar and only
// acquires µT/s through the loop's back edge, so the bad comparison
// against the µT limit is invisible on the first pass and needs the
// fixpoint to converge.
// unit: rates uT/s
func WorstRate(t Thresholds, rates []float64) bool {
	worst := 0.0
	for i := 0; i < len(rates); i++ {
		if worst > t.Mt { // want `comparison mixes µT/s and µT`
			return false
		}
		worst = rates[i]
	}
	return true
}

// Confused compares a distance against the LLR threshold: different base
// dimensions entirely.
// unit: distance m
func Confused(t Thresholds, distance float64) bool {
	return distance > t.Theta // want `comparison mixes m and score`
}

// Normalize stores raw meters into the cm threshold field.
// unit: d m
func Normalize(t *Thresholds, d float64) {
	t.Dt = d // want `store to field Dt: unit m does not match declared cm`
}

// Planar returns the planar distance; math.Hypot preserves the shared
// unit of its arguments, so this is clean.
// unit: x m, y m, return m
func Planar(x, y float64) float64 {
	return math.Hypot(x, y)
}
