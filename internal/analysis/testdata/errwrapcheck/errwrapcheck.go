// Package fixture exercises the errwrapcheck analyzer: error arguments
// must be wrapped with %w and literal error strings need the package
// prefix (or a leading verb that inherits it from a sentinel).
package fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("fixture: sentinel")

func lostChain(err error) error {
	return fmt.Errorf("fixture: decoding header: %v", err) // want `fmt\.Errorf with an error argument must wrap it with %w`
}

func barePrefix() error {
	return errors.New("missing prefix") // want `error string "missing prefix" must start with package prefix "fixture: "`
}

func wrapped(err error) error {
	if err != nil {
		return fmt.Errorf("fixture: decoding header: %w", err)
	}
	return fmt.Errorf("%w: header truncated", errSentinel)
}
