// Package geometry exercises the unitsuffix analyzer. The package is
// named after one of the unit-bearing packages so the analyzer is active;
// exported float fields and parameters must carry a unit suffix or a
// "unit:" tag.
package geometry

// Probe is a measurement point in front of the source.
type Probe struct {
	Standoff      float64 // want `exported float field Standoff needs a unit suffix`
	SpacingMeters float64
	Gain          float64 // unit: dimensionless
	Label         string
}

// Shift moves the probe away from the source.
func Shift(p Probe, d float64) Probe { // want `float parameter d of exported Shift needs a unit suffix`
	p.Standoff += d
	return p
}

// ShiftBy moves the probe away from the source by dMeters.
func ShiftBy(p Probe, dMeters float64) Probe {
	p.Standoff += dMeters
	return p
}

// Wait pauses the sweep between positions.
// unit: t in seconds.
func Wait(t float64) { _ = t }
