// Package geometry exercises the unitsuffix analyzer. The fixture
// type-checks under the analyzer's testdata escape path, so the
// annotation-completeness checks are active: exported float fields and
// parameters must carry a unit suffix or a parsed "unit:" tag, and every
// tag line tree-wide must parse under the grammar.
package geometry

// Probe is a measurement point in front of the source.
type Probe struct {
	Standoff      float64 // want `exported float field Standoff needs a unit suffix`
	SpacingMeters float64
	Gain          float64 // unit: dimensionless
	Label         string
	drift         float64 /* unit: m unless stated otherwise */ // want `malformed unit tag`
}

// Shift moves the probe away from the source.
func Shift(p Probe, d float64) Probe { // want `float parameter d of exported Shift needs a unit suffix`
	p.Standoff += d
	return p
}

// ShiftBy moves the probe away from the source by dMeters.
func ShiftBy(p Probe, dMeters float64) Probe {
	p.Standoff += dMeters
	return p
}

// Wait pauses the sweep between positions.
// unit: t s
func Wait(t float64) { _ = t }

// Cool lets the coil settle. The tag below names a parameter that does
// not exist, so the declared unit silently binds nothing.
// unit: dur s
func Cool(t float64) { _ = t } // want `unit tag names "dur", which is not a parameter or result of Cool` `float parameter t of exported Cool needs a unit suffix`
