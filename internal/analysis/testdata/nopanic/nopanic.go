// Package fixture exercises the nopanic analyzer: bare panics in library
// code are flagged unless documented with a //lint:allow pragma.
package fixture

import "fmt"

func mustPositive(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // want `panic in library package`
	}
}

func invariant(n int) {
	if n < 0 {
		//lint:allow nopanic a negative n here means the caller itself is broken
		panic("fixture: impossible count")
	}
}
