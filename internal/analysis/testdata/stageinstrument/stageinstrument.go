// Package fixture exercises the stageinstrument analyzer: a Verify
// method returning core.StageResult must stamp Elapsed.
package fixture

import "voiceguard/internal/core"

// Uninstrumented forgets to record the stage's processing time.
type Uninstrumented struct{}

func (Uninstrumented) Verify(ok bool) core.StageResult { // want `Verify method on Uninstrumented returns core\.StageResult but never records Elapsed`
	return core.StageResult{Pass: ok}
}

// Instrumented stamps Elapsed through the deferred core.TimeStage stamp.
type Instrumented struct{}

func (Instrumented) Verify(ok bool) (res core.StageResult) {
	defer core.TimeStage(&res)()
	res.Pass = ok
	return res
}
