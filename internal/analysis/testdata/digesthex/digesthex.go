// Package digesthex is the fixture for the digesthex analyzer: hash sums
// must be rendered through evidence.Digest, never as ad-hoc hex.
package digesthex

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
)

func rawSprintf(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum) // want `raw hex of a hash sum`
}

func rawEncodeToString(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]) // want `raw hex of a hash sum`
}

func rawStreamingSum(data []byte) string {
	h := sha256.New()
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)) // want `raw hex of a hash sum`
}

func rawDirect(data []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(data)) // want `raw hex of a hash sum`
}

func rawWidthVerb(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("digest=%064x", sum) // want `raw hex of a hash sum`
}

// okAllowed documents an intentional raw rendering with the pragma.
func okAllowed(data []byte) string {
	sum := sha256.Sum256(data)
	//lint:allow digesthex test fixture exercising suppression
	return hex.EncodeToString(sum[:])
}

// okNonCrypto hex-encodes an FNV checksum: not a content digest, exactly
// the telemetry span-ID pattern the analyzer must leave alone.
func okNonCrypto(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// okNonHexFormat formats a sum without a hex verb.
func okNonHexFormat(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%d bytes", len(sum))
}

// okPlainHex hex-encodes non-digest bytes.
func okPlainHex(data []byte) string {
	return hex.EncodeToString(data)
}
