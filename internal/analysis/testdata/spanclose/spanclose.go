// Package spanclose is the fixture for the spanclose analyzer: every
// span from telemetry.StartSpan/StartTrace must reach an End or be
// handed to code that ends it.
package spanclose

import "voiceguard/internal/telemetry"

func leakNoEnd(parent *telemetry.Span) {
	sp := parent.StartSpan("stft") // want `span sp is never ended`
	sp.SetInt("frames", 128)
}

func leakDiscard(parent *telemetry.Span) {
	parent.StartSpan("mfcc") // want `span from StartSpan is discarded`
}

func leakBlank(parent *telemetry.Span) {
	_ = parent.StartSpan("gmm") // want `span from StartSpan is discarded`
}

func leakTrace(tr *telemetry.Tracer) {
	root := tr.StartTrace("", "verify") // want `span root is never ended`
	root.SetBool("pass", false)
}

// okDefer is the canonical pattern: bind and defer End.
func okDefer(parent *telemetry.Span) {
	sp := parent.StartSpan("score")
	defer sp.End()
	sp.SetFloat("llr", 1.5, "nat/frame")
}

// okExplicitEnd ends the span on the straight-line path.
func okExplicitEnd(parent *telemetry.Span) {
	sp := parent.StartSpan("measure")
	sp.SetFloat("field_ut", 42, "µT")
	sp.End()
}

// okHandOff passes the span to a helper; ownership (and the End
// obligation) transfers with it.
func okHandOff(parent *telemetry.Span) {
	sp := parent.StartSpan("stage:distance")
	endStage(sp, true)
}

func endStage(sp *telemetry.Span, pass bool) {
	sp.SetBool("pass", pass)
	sp.End()
}

// okReturn transfers the obligation to the caller.
func okReturn(parent *telemetry.Span) *telemetry.Span {
	sp := parent.StartSpan("worker")
	sp.SetInt("block_lo", 0)
	return sp
}

// okFinish hands the root to Tracer.Finish, which ends it.
func okFinish(tr *telemetry.Tracer) {
	root := tr.StartTrace("", "verify")
	tr.Finish(root, telemetry.Verdict{Accepted: true})
}

// okStartSpan starts spans through an unrelated type; only telemetry's
// methods are in scope.
type fakeSession struct{}

func (fakeSession) StartSpan(name string) int { return len(name) }

func okUnrelated(s fakeSession) {
	s.StartSpan("not-a-telemetry-span")
}

// okAllowed documents an intentionally unterminated span; the pragma
// suppresses the finding.
func okAllowed(parent *telemetry.Span) {
	sp := parent.StartSpan("sentinel") //lint:allow spanclose sentinel span closed by recorder snapshot
	sp.SetBool("pinned", true)
}
