// Package poolescape is the fixture for the poolescape analyzer: pooled
// buffers must live strictly between their Get and their Put.
package poolescape

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 64); return &b }}

var global []byte

func leakReturn() []byte {
	buf := *pool.Get().(*[]byte)
	return buf // want `sync.Pool-obtained buffer returned from the acquiring function`
}

func leakReturnResliced() []byte {
	bptr := pool.Get().(*[]byte)
	return (*bptr)[:16] // want `returned from the acquiring function`
}

func leakReturnDirect() *[]byte {
	return pool.Get().(*[]byte) // want `returned from the acquiring function`
}

func leakStoreGlobal() {
	buf := *pool.Get().(*[]byte)
	global = buf // want `stored in package variable global`
}

type holder struct{ buf []byte }

func leakStoreField(h *holder) {
	h.buf = *pool.Get().(*[]byte) // want `stored outside the acquiring function`
}

func leakFromClosure() func() []byte {
	buf := *pool.Get().(*[]byte)
	return func() []byte {
		return buf // want `returned from the acquiring function`
	}
}

// okCopyOut hands back a private copy; the pooled buffer itself stays in
// the acquire/release window.
func okCopyOut() []byte {
	bptr := pool.Get().(*[]byte)
	out := make([]byte, len(*bptr))
	copy(out, *bptr)
	pool.Put(bptr)
	return out
}

// okLocalUse consumes the buffer without leaking it.
func okLocalUse() int {
	bptr := pool.Get().(*[]byte)
	n := len(*bptr)
	pool.Put(bptr)
	return n
}

// okReassigned loses the taint when the variable is rebound to fresh
// memory.
func okReassigned() []byte {
	buf := *pool.Get().(*[]byte)
	n := len(buf)
	buf = make([]byte, n)
	return buf
}

// okManagedAccessor hands pooled buffers out on purpose as one half of an
// acquire/release pair; the pragma documents the contract.
func okManagedAccessor() *[]byte {
	return pool.Get().(*[]byte) //lint:allow poolescape managed acquire/release accessor pair
}
