// Package analysis is voiceguard-lint: a small, dependency-free
// static-analysis framework in the spirit of golang.org/x/tools/go/analysis,
// plus the domain-aware analyzers built on it. The pipeline's correctness
// hinges on numeric and physical-unit discipline — the paper's thresholds
// (Dt = 6 cm, the Mt/βt magnetometer limits, the >16 kHz ranging tone) flow
// through DSP, circle-fitting and sensor-fusion code as float64s, where a
// raw == on a float or a cm/m mix-up silently breaks a verdict rather than
// failing a test. The analyzers encode those invariants:
//
//   - floatcmp: flags == / != on floating-point operands (use the
//     stats epsilon helpers instead);
//   - nopanic: forbids panic in library packages on the serving path;
//   - errwrapcheck: fmt.Errorf with an error argument must wrap with %w,
//     and error strings must carry their package prefix ("core: ...");
//   - stageinstrument: types implementing the core stage-verify signature
//     must record StageResult.Elapsed (core.TimeStage);
//   - unitsuffix: exported float fields/params representing physical
//     quantities must carry a unit suffix (Meters, Hz, MicroTesla,
//     Seconds, ...) or a machine-readable "unit:" doc tag, and every
//     unit tag tree-wide must parse under the grammar of units.go;
//   - poolescape: sync.Pool-obtained buffers must not escape the
//     acquiring function via return or store — a leaked scratch buffer
//     is handed to another goroutine by a later Get, a data race no test
//     reliably catches;
//   - spanclose: telemetry spans from StartSpan/StartTrace must reach an
//     End or be handed onward — a forgotten span corrupts the duration
//     evidence the flight recorder retains for threshold calibration;
//   - ctxfirst: exported functions taking a context.Context must take it
//     first, and library packages must not mint fresh roots with
//     context.Background()/TODO() — a fresh root on the serving path
//     detaches the cascade from the request deadline that load shedding
//     depends on;
//   - digesthex: cryptographic hash sums must not be rendered as raw hex
//     outside internal/evidence — canonical content digests carry the
//     "sha256:" prefix evidence.Digest produces, and a bare hex digest
//     breaks evidence-pack comparison under algorithm migration;
//   - unitflow: flow-sensitive dimensional analysis — units declared by
//     name suffixes, unit tags and annotated conversion constants are
//     propagated through each function's control-flow graph (cfg.go,
//     dataflow.go) and every comparison, addition, assignment, call
//     argument and return whose inferred dimension conflicts with the
//     declared one is reported (a cm threshold compared against meters,
//     a µT swing passed where a µT/s rate is declared).
//
// A finding is suppressed by a pragma comment on the same line or on the
// line directly above:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The framework is stdlib-only: packages are loaded with `go list -export`
// and type-checked against compiler export data, the same machinery
// golang.org/x/tools/go/packages drives underneath.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects a single type-checked package
// through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //lint:allow pragmas.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier facts.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Position locates the finding in the source tree.
	Position token.Position
	// Message describes the finding.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// All returns the full voiceguard-lint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmpAnalyzer,
		NoPanicAnalyzer,
		ErrWrapCheckAnalyzer,
		StageInstrumentAnalyzer,
		UnitSuffixAnalyzer,
		PoolEscapeAnalyzer,
		SpanCloseAnalyzer,
		CtxFirstAnalyzer,
		DigestHexAnalyzer,
		UnitFlowAnalyzer,
	}
}

// errorType is the universe error interface, shared by analyzers that need
// to test assignability to error.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isFloat reports whether t's underlying type is a floating-point basic
// type (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
