package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"
)

// parseBody wraps a statement list in a function and returns its body.
func parseBody(t *testing.T, stmts string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + stmts + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parsing snippet: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// checkInvariants verifies edge symmetry and that the exit is reachable
// from the entry whenever any reachable block can terminate.
func checkInvariants(t *testing.T, g *CFG) {
	t.Helper()
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from Preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from Succs", p.Index, b.Index)
			}
		}
	}
	rpo := g.RPO()
	if len(rpo) == 0 || rpo[0] != g.Blocks[0] {
		t.Fatalf("RPO must start at the entry block")
	}
}

// hasCycle reports whether the reachable graph contains a cycle.
func hasCycle(g *CFG) bool {
	const (
		white = iota
		gray
		black
	)
	color := make([]int, len(g.Blocks))
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		color[b.Index] = gray
		for _, s := range b.Succs {
			if color[s.Index] == gray {
				return true
			}
			if color[s.Index] == white && dfs(s) {
				return true
			}
		}
		color[b.Index] = black
		return false
	}
	return dfs(g.Blocks[0])
}

// reachesExit reports whether the exit block is reachable from the entry.
func reachesExit(g *CFG) bool {
	for _, b := range g.RPO() {
		if b == g.Exit {
			return true
		}
	}
	return false
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// cyclic marks shapes that must contain a back edge.
		cyclic bool
		// exitReachable is false only for shapes that cannot terminate.
		exitReachable bool
	}{
		{"straightline", "x := 1\n_ = x", false, true},
		{"if", "x := 1\nif x > 0 {\n x = 2\n}\n_ = x", false, true},
		{"ifelse", "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x", false, true},
		{"ifinit", "if x := 1; x > 0 {\n _ = x\n}", false, true},
		{"nestedif", "x := 1\nif x > 0 {\n if x > 1 {\n  x = 2\n }\n}\n_ = x", false, true},
		{"for3clause", "s := 0\nfor i := 0; i < 4; i++ {\n s += i\n}\n_ = s", true, true},
		{"forcondonly", "x := 8\nfor x > 0 {\n x--\n}", true, true},
		{"forever", "x := 0\nfor {\n x++\n}", true, false},
		{"foreverbreak", "x := 0\nfor {\n x++\n if x > 3 {\n  break\n }\n}\n_ = x", true, true},
		{"continue", "s := 0\nfor i := 0; i < 9; i++ {\n if i%2 == 0 {\n  continue\n }\n s += i\n}\n_ = s", true, true},
		{"range", "xs := []int{1, 2}\ns := 0\nfor _, x := range xs {\n s += x\n}\n_ = s", true, true},
		{"switch", "x := 1\nswitch x {\ncase 1:\n x = 2\ncase 2:\n x = 3\n}\n_ = x", false, true},
		{"switchdefault", "x := 1\nswitch x {\ncase 1:\n x = 2\ndefault:\n x = 4\n}\n_ = x", false, true},
		{"fallthrough", "x := 1\nswitch x {\ncase 1:\n x = 2\n fallthrough\ncase 2:\n x = 3\n}\n_ = x", false, true},
		{"typeswitch", "var v any = 1\nswitch v.(type) {\ncase int:\ncase string:\n}\n_ = v", false, true},
		{"earlyreturn", "x := 1\nif x > 0 {\n return\n}\n_ = x", false, true},
		{"labeledbreak", "outer:\nfor i := 0; i < 3; i++ {\n for j := 0; j < 3; j++ {\n  if i == j {\n   break outer\n  }\n }\n}", true, true},
		{"labeledcontinue", "outer:\nfor i := 0; i < 3; i++ {\n for j := 0; j < 3; j++ {\n  if i == j {\n   continue outer\n  }\n }\n}", true, true},
		{"select", "c := make(chan int, 1)\nselect {\ncase v := <-c:\n _ = v\ndefault:\n}", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewCFG(parseBody(t, tc.src))
			checkInvariants(t, g)
			if got := hasCycle(g); got != tc.cyclic {
				t.Errorf("hasCycle = %v, want %v", got, tc.cyclic)
			}
			if got := reachesExit(g); got != tc.exitReachable {
				t.Errorf("reachesExit = %v, want %v", got, tc.exitReachable)
			}
		})
	}
}

// TestCFGConditionPlacement verifies control conditions are lifted into
// block node lists exactly once, so a transfer function sees them.
func TestCFGConditionPlacement(t *testing.T) {
	g := NewCFG(parseBody(t, "x := 1\nif x > 1 {\n x = 2\n}\nfor x < 9 {\n x++\n}"))
	conds := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if be, ok := n.(*ast.BinaryExpr); ok && be.Op.String() != "" {
				conds++
			}
		}
	}
	if conds != 2 {
		t.Fatalf("expected the if and for conditions as 2 bare expressions in blocks, found %d", conds)
	}
}

// defset is the "definitely assigned variables" domain for the toy
// dataflow problem below: join is set intersection, so a name survives
// only when every path assigns it.
type defset map[string]bool

type definiteAssign struct{}

func (definiteAssign) Entry() defset { return defset{} }

func (definiteAssign) Copy(s defset) defset {
	out := make(defset, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (definiteAssign) Transfer(s defset, n ast.Node) defset {
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				s[id.Name] = true
			}
		}
	}
	return s
}

func (definiteAssign) Join(a, b defset) defset {
	for k := range a {
		if !b[k] {
			delete(a, k)
		}
	}
	return a
}

func (definiteAssign) Equal(a, b defset) bool { return reflect.DeepEqual(a, b) }

func names(s defset) []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestForwardDefiniteAssignment(t *testing.T) {
	body := parseBody(t, `
x := 1
if x > 0 {
	y := 2
	_ = y
} else {
	z := 3
	_ = z
}
for i := 0; i < 3; i++ {
	b := 5
	_ = b
}
w := 4
_ = w`)
	g := NewCFG(body)
	in := Forward[defset](g, definiteAssign{})
	exit, ok := in[g.Exit]
	if !ok {
		t.Fatalf("no state reached the exit block")
	}
	// x and w are assigned on every path; y and z only on one branch
	// each; b only when the loop body runs; i is assigned by the loop
	// init, which always executes.
	want := []string{"i", "w", "x"}
	if got := names(exit); !reflect.DeepEqual(got, want) {
		t.Fatalf("definitely assigned at exit = %v, want %v", got, want)
	}
	// Inside the loop body everything from the init plus the branch
	// merge is assigned, but not the body's own b on entry.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "b" {
					if s := in[b]; s["b"] {
						t.Fatalf("b must not be definitely assigned on loop-body entry, got %v", names(s))
					}
				}
			}
		}
	}
}
