package analysis

import (
	"reflect"
	"testing"
)

func TestFloatCmpFixture(t *testing.T)     { checkFixture(t, FloatCmpAnalyzer, "floatcmp") }
func TestNoPanicFixture(t *testing.T)      { checkFixture(t, NoPanicAnalyzer, "nopanic") }
func TestErrWrapCheckFixture(t *testing.T) { checkFixture(t, ErrWrapCheckAnalyzer, "errwrapcheck") }
func TestStageInstrumentFixture(t *testing.T) {
	checkFixture(t, StageInstrumentAnalyzer, "stageinstrument")
}
func TestUnitSuffixFixture(t *testing.T) { checkFixture(t, UnitSuffixAnalyzer, "unitsuffix") }
func TestPoolEscapeFixture(t *testing.T) { checkFixture(t, PoolEscapeAnalyzer, "poolescape") }
func TestSpanCloseFixture(t *testing.T)  { checkFixture(t, SpanCloseAnalyzer, "spanclose") }
func TestCtxFirstFixture(t *testing.T)   { checkFixture(t, CtxFirstAnalyzer, "ctxfirst") }
func TestDigestHexFixture(t *testing.T)  { checkFixture(t, DigestHexAnalyzer, "digesthex") }
func TestUnitFlowFixture(t *testing.T)   { checkFixture(t, UnitFlowAnalyzer, "unitflow") }

// TestLoadAndRunRepoPackage drives the production loader end to end over
// a real repo package and checks the tree it guards stays clean — the
// same invariant the CI lint job enforces for the whole module.
func TestLoadAndRunRepoPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/stats")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "stats" {
		t.Fatalf("Load returned %d packages, want internal/stats alone", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("internal/stats not lint-clean: %s", d)
	}
}

func TestParseAllowPragma(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
	}{
		{"//lint:allow nopanic documented invariant", []string{"nopanic"}},
		{"// lint:allow floatcmp,unitsuffix reason text", []string{"floatcmp", "unitsuffix"}},
		{"//lint:allow all generated code", []string{"all"}},
		{"//lint:allow", nil},            // missing analyzer list
		{"// regular comment", nil},      // not a pragma
		{"//lint:ignore nopanic x", nil}, // staticcheck spelling, not ours
	}
	for _, c := range cases {
		if got := parseAllowPragma(c.comment); !reflect.DeepEqual(got, c.names) {
			t.Errorf("parseAllowPragma(%q) = %v, want %v", c.comment, got, c.names)
		}
	}
}
