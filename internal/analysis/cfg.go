package analysis

// Intra-procedural control-flow graphs for the dataflow analyzers. The
// builder lowers a function body to basic blocks connected by execution
// edges: if/else, for (all three clauses), range, switch/type switch
// (including fallthrough), select, labeled break/continue and return are
// modeled. goto is not: its edge is dropped, leaving the target block's
// state to its other predecessors (the repo's style forbids goto anyway).
//
// Control conditions (if/for conditions, switch tags and case
// expressions) appear in block node lists as bare ast.Expr entries, so a
// transfer function sees every evaluated expression exactly once per
// block visit, in execution order.

import "go/ast"

// Block is one straight-line run of nodes with no internal control flow.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes holds statements and control-condition expressions in
	// execution order.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next.
	Succs []*Block
	// Preds are the blocks control may arrive from.
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the synthetic block all returns and the final fallthrough
	// edge converge on. It is also present in Blocks.
	Exit *Block
}

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	entry := b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

// RPO returns the blocks reachable from the entry in reverse postorder —
// the iteration order under which a forward fixpoint converges fastest.
func (g *CFG) RPO() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// branchTarget is one enclosing loop/switch/select a break or continue
// may target.
type branchTarget struct {
	label string
	block *Block
}

// cfgBuilder carries the under-construction graph.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block new nodes append to; nil after a terminator
	// (return, break, ...) until the next reachable block starts.
	cur *Block
	// breaks/continues are the enclosing targets, innermost last.
	breaks    []branchTarget
	continues []branchTarget
	// label is a pending statement label, consumed by the next
	// for/range/switch/select.
	label string
	// fallthroughTo is the next case-clause block while walking a switch
	// clause body.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// append adds a node to the current block, starting a fresh unreachable
// block after a terminator so dead code still gets (bottom-state)
// analysis instead of a nil dereference.
func (b *cfgBuilder) append(n ast.Node) {
	if n == nil {
		return
	}
	b.ensure()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.ReturnStmt:
		b.append(s)
		b.ensure()
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		// Assignments, declarations, expression/inc-dec statements,
		// defer, go, send, empty.
		b.append(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.append(s.Init)
	b.append(s.Cond)
	b.ensure()
	cond := b.cur
	then := b.newBlock()
	after := b.newBlock()
	b.edge(cond, then)
	var alt *Block
	if s.Else != nil {
		alt = b.newBlock()
		b.edge(cond, alt)
	} else {
		b.edge(cond, after)
	}
	b.cur = then
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, after)
	}
	if s.Else != nil {
		b.cur = alt
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.label
	b.label = ""
	b.append(s.Init)
	b.ensure()
	head := b.newBlock()
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	backTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		backTo = post
	}
	b.pushLoop(label, after, backTo)
	b.cur = body
	b.stmts(s.Body.List)
	b.popLoop()
	if b.cur != nil {
		b.edge(b.cur, backTo)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.label
	b.label = ""
	b.ensure()
	head := b.newBlock()
	b.edge(b.cur, head)
	// The RangeStmt node itself stands for "evaluate X, bind Key/Value";
	// the transfer function interprets it.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.pushLoop(label, after, head)
	b.cur = body
	b.stmts(s.Body.List)
	b.popLoop()
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.label
	b.label = ""
	b.append(s.Init)
	b.append(s.Tag)
	b.ensure()
	head := b.cur
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		// Case expressions may all be evaluated while selecting.
		head.Nodes = append(head.Nodes, exprNodes(cc.List)...)
		clauses = append(clauses, cc)
	}
	b.caseClauses(label, head, clauses, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.label
	b.label = ""
	b.append(s.Init)
	b.append(s.Assign)
	b.ensure()
	head := b.cur
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	b.caseClauses(label, head, clauses, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })
}

// caseClauses wires one block per clause plus the after block, handling
// default presence and fallthrough.
func (b *cfgBuilder) caseClauses(label string, head *Block, clauses []*ast.CaseClause, body func(*ast.CaseClause) []ast.Stmt) {
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	outerFall := b.fallthroughTo
	for i, cc := range clauses {
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = blocks[i]
		b.stmts(body(cc))
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.fallthroughTo = outerFall
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.label
	b.label = ""
	b.ensure()
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		b.append(cc.Comm)
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// select{} blocks forever, and a select whose every clause terminates
	// never falls through: either way after simply keeps no edge from
	// here (a labeled break may still target it).
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if t := findTarget(b.breaks, s.Label); t != nil {
			b.ensure()
			b.edge(b.cur, t)
		}
		b.cur = nil
	case "continue":
		if t := findTarget(b.continues, s.Label); t != nil {
			b.ensure()
			b.edge(b.cur, t)
		}
		b.cur = nil
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.ensure()
			b.edge(b.cur, b.fallthroughTo)
		}
		b.cur = nil
	case "goto":
		// Unmodeled: drop the edge.
		b.cur = nil
	}
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue to its target block: the labeled
// enclosing construct, or the innermost one for the bare form.
func findTarget(stack []branchTarget, label *ast.Ident) *Block {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// exprNodes widens a []ast.Expr to []ast.Node.
func exprNodes(list []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(list))
	for i, e := range list {
		out[i] = e
	}
	return out
}
