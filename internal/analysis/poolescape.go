package analysis

import (
	"go/ast"
	"go/types"
)

// PoolEscapeAnalyzer flags sync.Pool-obtained buffers that escape the
// function that acquired them: returned to a caller, or stored into a
// struct field, map, slice element or package-level variable. The hot
// path's pooling contract (internal/dsp, internal/features) is that a
// pooled scratch buffer lives strictly between its Get and its Put — a
// buffer that leaks out lands in a caller's hands while a later Get hands
// the same memory to another goroutine, a data race no test reliably
// catches. Managed accessor pairs that hand pooled buffers out on purpose
// (dsp's acquire/release) document the contract with //lint:allow
// poolescape <reason>.
//
// Taint is tracked per function declaration, syntactically: a variable
// initialized from (*sync.Pool).Get — through any combination of type
// assertion, dereference, re-slice or plain copy — is pooled, and so is
// any variable later derived from it the same way.
var PoolEscapeAnalyzer = &Analyzer{
	Name: "poolescape",
	Doc:  "flags sync.Pool-obtained buffers escaping via return or store",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolEscapes(pass, fd.Body)
		}
	}
	return nil
}

// checkPoolEscapes walks one function body in source order, growing the
// set of pool-tainted variables and reporting escapes. Nested function
// literals share the taint set: returning a captured pooled buffer from a
// closure escapes the pooling scope just the same.
func checkPoolEscapes(pass *Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	derived := func(e ast.Expr) bool { return poolDerived(pass, tainted, e) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				switch lhs := s.Lhs[i].(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.Defs[lhs]
					if obj == nil {
						obj = pass.TypesInfo.Uses[lhs]
					}
					if obj == nil {
						continue
					}
					if !derived(rhs) {
						// Reassignment to a fresh value clears the taint.
						delete(tainted, obj)
						continue
					}
					if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
						pass.Reportf(s.Pos(), "sync.Pool-obtained buffer stored in package variable %s; it outlives the acquire/release window", lhs.Name)
						continue
					}
					tainted[obj] = true
				default:
					// Field, map or element store: the buffer now outlives
					// the function's pooling scope.
					if derived(rhs) {
						pass.Reportf(s.Pos(), "sync.Pool-obtained buffer stored outside the acquiring function; copy it or keep it local until release")
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if derived(res) {
					pass.Reportf(res.Pos(), "sync.Pool-obtained buffer returned from the acquiring function; copy it, or document a managed accessor with //lint:allow poolescape")
				}
			}
		}
		return true
	})
}

// poolDerived reports whether e is a (*sync.Pool).Get result or derives
// from a tainted variable through assertion, dereference, re-slice, paren
// or address-of.
func poolDerived(pass *Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		return obj != nil && tainted[obj]
	case *ast.ParenExpr:
		return poolDerived(pass, tainted, x.X)
	case *ast.TypeAssertExpr:
		return poolDerived(pass, tainted, x.X)
	case *ast.StarExpr:
		return poolDerived(pass, tainted, x.X)
	case *ast.UnaryExpr:
		return poolDerived(pass, tainted, x.X)
	case *ast.SliceExpr:
		return poolDerived(pass, tainted, x.X)
	case *ast.CallExpr:
		return isPoolGet(pass, x)
	}
	return false
}

// isPoolGet reports whether call is (*sync.Pool).Get, directly or through
// a field chain (p.scratch.Get()).
func isPoolGet(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
