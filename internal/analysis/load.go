package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Name is the package name.
	Name string
	// Fset maps positions for every file in the load.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records the type-checker's facts for Files.
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir with the go
// command, parses every matched non-test file, and type-checks each
// matched package against compiler export data for its dependencies. The
// go toolchain does the build-system work (`go list -deps -export`); no
// network access is required.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exportFor := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
	}
	// Vendored or otherwise remapped imports resolve through ImportMap.
	for _, p := range pkgs {
		for src, real := range p.ImportMap {
			if f, ok := exportFor[real]; ok && exportFor[src] == "" {
				exportFor[src] = f
			}
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		loaded, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, loaded)
	}
	return out, nil
}

// goList shells out to `go list -deps -export -json` and decodes the
// package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,ImportMap,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typeCheck parses and checks one matched package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, p *listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:      p.ImportPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo returns a types.Info with every fact map the analyzers
// consume allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
