package analysis

// unitflow: flow-sensitive dimensional analysis of the cascade's physical
// arithmetic. Every verdict the paper's cascade returns is a comparison
// of a measured quantity against a physical threshold (distance vs Dt,
// field swing vs Mt, change rate vs βt, LLR vs θ), and a silent cm/m or
// µT-vs-µT/s mix-up flips ACCEPT/REJECT without failing a test. The
// analyzer seeds units from three sources — unit-bearing name suffixes
// (MaxDistanceMeters, cutoffHz), machine-readable tags of the form
// "unit: cm" / "unit: t s" (see units.go for the grammar), and annotated
// conversion constants (a const tagged cm/m composes multiplicatively) —
// then propagates them through each function with the CFG + fixpoint
// machinery of cfg.go/dataflow.go and reports every comparison, addition,
// assignment, call argument, composite-literal field and return value
// whose inferred dimension conflicts with the declared one.
//
// The abstract domain per variable is bottom < scalar < unit < top:
// numeric literals and untagged constants are scalars (identity under
// multiplication, chameleons under comparison), tagged/suffixed
// quantities carry a Unit, and anything polymorphic or unknowable is
// top. Only conflicts between two *known* units are reported, so an
// unannotated value never produces noise.
//
// Exported annotations are also published as cross-package facts: when
// the whole tree is linted (the CI case, `go list` order puts
// dependencies first), a call into another package checks arguments
// against the callee's declared parameter units; outside that, parameter
// and field name suffixes recovered from export data still apply.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"sync"
)

// UnitFlowAnalyzer reports dimension conflicts in physical arithmetic.
var UnitFlowAnalyzer = &Analyzer{
	Name: "unitflow",
	Doc:  "flow-sensitive unit checking: comparisons, arithmetic, assignments and calls must agree dimensionally",
	Run:  runUnitFlow,
}

// uKind orders the per-value lattice.
type uKind int8

const (
	uBottom uKind = iota // unreached
	uScalar              // pure number: literal or untagged constant
	uUnit                // known physical unit
	uTop                 // unknown or deliberately polymorphic
)

// uval is one lattice value.
type uval struct {
	kind uKind
	unit Unit // valid when kind == uUnit
}

var (
	scalarVal = uval{kind: uScalar}
	topVal    = uval{kind: uTop}
)

func unitVal(u Unit) uval { return uval{kind: uUnit, unit: u} }

// fromDecl lifts a declared annotation into the lattice.
func fromDecl(d DeclUnit) uval {
	if d.Any {
		return topVal
	}
	return unitVal(d.Unit)
}

// joinVal is the lattice join.
func joinVal(a, b uval) uval {
	if a.kind == uBottom {
		return b
	}
	if b.kind == uBottom {
		return a
	}
	if a.kind == uTop || b.kind == uTop {
		return topVal
	}
	if a.kind == uScalar {
		return b
	}
	if b.kind == uScalar {
		return a
	}
	if a.unit.Equal(b.unit) {
		return a
	}
	return topVal
}

// uState maps in-scope variables (and, for slice variables, their element
// quantity) to lattice values.
type uState map[types.Object]uval

// sigUnits are the declared parameter/result units of one function.
type sigUnits struct {
	// params holds one entry per signature parameter (nil = undeclared);
	// for variadic functions the last entry covers every trailing
	// argument.
	params []*DeclUnit
	// results holds one entry per result.
	results []*DeclUnit
	// variadic mirrors types.Signature.Variadic.
	variadic bool
}

// unitIndex is the per-package annotation table built from source.
type unitIndex struct {
	pass *Pass
	// obj maps fields, consts, vars, params and named results to their
	// declared units.
	obj map[types.Object]DeclUnit
	// fn maps function objects to their signature units.
	fn map[*types.Func]*sigUnits
}

// factKey addresses an exported symbol across packages.
func fieldFactKey(pkgPath, typeName, field string) string {
	return pkgPath + "." + typeName + "." + field
}

func objFactKey(pkgPath, name string) string { return pkgPath + "." + name }

func funcFactKey(fn *types.Func) string {
	key := fn.Pkg().Path() + "."
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key += n.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

// unitFacts publishes exported annotations for cross-package lookup.
// `go list -deps` orders dependencies first, so a whole-tree lint run
// populates a package's facts before its importers are analyzed.
var unitFacts = struct {
	sync.Mutex
	obj map[string]DeclUnit
	fn  map[string]*sigUnits
}{obj: map[string]DeclUnit{}, fn: map[string]*sigUnits{}}

func runUnitFlow(pass *Pass) error {
	idx := collectUnitIndex(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					idx.analyzeFunc(d.Type, d.Body)
				}
			case *ast.GenDecl:
				// Package-level initializers are straight-line code.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					idx.checkValueSpec(vs)
				}
			}
		}
	}
	return nil
}

// analyzeFunc runs the CFG fixpoint over one function body and then a
// single reporting sweep from the converged entry states. Nested function
// literals are analyzed on their own CFGs (captured variables are top).
func (idx *unitIndex) analyzeFunc(ft *ast.FuncType, body *ast.BlockStmt) {
	g := NewCFG(body)
	flow := &unitFlow{idx: idx, fnType: ft}
	in := Forward[uState](g, flow)
	flow.reporting = true
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue
		}
		s = flow.Copy(s)
		for _, n := range b.Nodes {
			s = flow.Transfer(s, n)
		}
	}
	// Function literals: each gets its own analysis, entered with only
	// its own parameters known.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			idx.analyzeFunc(fl.Type, fl.Body)
			return false
		}
		return true
	})
}

// checkValueSpec evaluates package-level initializer expressions with
// reporting enabled (no CFG needed: they are single expressions).
func (idx *unitIndex) checkValueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	flow := &unitFlow{idx: idx, reporting: true}
	s := uState{}
	if len(vs.Names) == len(vs.Values) {
		for i, name := range vs.Names {
			v := flow.eval(s, vs.Values[i])
			if obj, ok := idx.pass.TypesInfo.Defs[name]; ok && obj != nil {
				flow.checkDeclared(s, obj, v, vs.Values[i].Pos(), "initializer of "+name.Name)
			}
		}
		return
	}
	for _, e := range vs.Values {
		flow.eval(s, e)
	}
}

// ---------------------------------------------------------------------------
// Annotation collection

// collectUnitIndex walks the package's declarations, resolving every
// declared unit (tag first, name suffix second) and publishing exported
// ones as facts.
func collectUnitIndex(pass *Pass) *unitIndex {
	idx := &unitIndex{
		pass: pass,
		obj:  map[types.Object]DeclUnit{},
		fn:   map[*types.Func]*sigUnits{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if st, ok := sp.Type.(*ast.StructType); ok {
							idx.collectStruct(sp.Name.Name, st)
						}
					case *ast.ValueSpec:
						idx.collectValues(d, sp)
					}
				}
			case *ast.FuncDecl:
				idx.collectFunc(d)
			}
		}
	}
	return idx
}

// bareTagOf extracts the single bare unit from a field/value comment
// group, ignoring parse errors (unitsuffix reports those).
func bareTagOf(groups ...*ast.CommentGroup) *DeclUnit {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			for _, line := range commentLines(c) {
				body, ok := CutUnitTag(line)
				if !ok {
					continue
				}
				tag, err := ParseUnitTag(body)
				if err != nil || tag.Bare == nil {
					continue
				}
				return tag.Bare
			}
		}
	}
	return nil
}

// commentLines splits one comment into logical lines with the comment
// markers removed.
func commentLines(c *ast.Comment) []string {
	text := c.Text
	if strings.HasPrefix(text, "//") {
		return []string{strings.TrimSpace(text[2:])}
	}
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(l), "*"))
	}
	return lines
}

// declFor resolves a name's declared unit: explicit tag, else suffix.
func declFor(name string, tag *DeclUnit) (DeclUnit, bool) {
	if tag != nil {
		return *tag, true
	}
	if u, ok := UnitFromName(name); ok {
		return DeclUnit{Unit: u}, true
	}
	return DeclUnit{}, false
}

func (idx *unitIndex) collectStruct(typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tag := bareTagOf(field.Doc, field.Comment)
		for _, name := range field.Names {
			obj := idx.pass.TypesInfo.Defs[name]
			if obj == nil || !unitCarrier(obj.Type()) {
				continue
			}
			du, ok := declFor(name.Name, tag)
			if !ok {
				continue
			}
			idx.obj[obj] = du
			if name.IsExported() && ast.IsExported(typeName) {
				publishObjFact(fieldFactKey(idx.pass.Pkg.Path(), typeName, name.Name), du)
			}
		}
	}
}

func (idx *unitIndex) collectValues(d *ast.GenDecl, vs *ast.ValueSpec) {
	tag := bareTagOf(vs.Doc, vs.Comment, d.Doc)
	for _, name := range vs.Names {
		obj := idx.pass.TypesInfo.Defs[name]
		if obj == nil || !annotatable(obj) {
			continue
		}
		du, ok := declFor(name.Name, tag)
		if !ok {
			continue
		}
		idx.obj[obj] = du
		if name.IsExported() {
			publishObjFact(objFactKey(idx.pass.Pkg.Path(), name.Name), du)
		}
	}
}

// annotatable reports whether obj can carry a unit annotation. Beyond
// float carriers this admits numeric constants of any type: conversion
// table entries like CmPerM = 100 are naturally spelled as untyped ints.
func annotatable(obj types.Object) bool {
	if unitCarrier(obj.Type()) {
		return true
	}
	if _, isConst := obj.(*types.Const); isConst {
		if b, ok := obj.Type().Underlying().(*types.Basic); ok {
			return b.Info()&types.IsNumeric != 0
		}
	}
	return false
}

// collectFunc resolves parameter and result units from the doc comment's
// named tags and from name suffixes.
func (idx *unitIndex) collectFunc(fd *ast.FuncDecl) {
	obj, ok := idx.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	named := namedTagsOf(fd.Doc)
	sig := obj.Type().(*types.Signature)
	su := &sigUnits{variadic: sig.Variadic()}
	any := false
	collect := func(fl *ast.FieldList, results bool) []*DeclUnit {
		var out []*DeclUnit
		if fl == nil {
			return out
		}
		for _, field := range fl.List {
			names := field.Names
			if len(names) == 0 {
				// Unnamed result: the "return" keyword addresses it.
				var du *DeclUnit
				if results {
					if d, ok := named["return"]; ok {
						du = &d
					}
				}
				out = append(out, du)
				continue
			}
			for _, name := range names {
				var du *DeclUnit
				if d, ok := named[name.Name]; ok {
					du = &d
				} else if d, ok := declFor(name.Name, nil); ok {
					du = &d
				}
				out = append(out, du)
				if du != nil {
					if pobj := idx.pass.TypesInfo.Defs[name]; pobj != nil {
						idx.obj[pobj] = *du
					}
				}
			}
		}
		for _, du := range out {
			if du != nil {
				any = true
			}
		}
		return out
	}
	su.params = collect(fd.Type.Params, false)
	su.results = collect(fd.Type.Results, true)
	if any {
		idx.fn[obj] = su
		if fd.Name.IsExported() {
			publishFnFact(funcFactKey(obj), su)
		}
	}
}

// namedTagsOf gathers the name→unit bindings of a function doc comment.
func namedTagsOf(doc *ast.CommentGroup) map[string]DeclUnit {
	out := map[string]DeclUnit{}
	if doc == nil {
		return out
	}
	for _, c := range doc.List {
		for _, line := range commentLines(c) {
			body, ok := CutUnitTag(line)
			if !ok {
				continue
			}
			tag, err := ParseUnitTag(body)
			if err != nil {
				continue
			}
			for _, n := range tag.Named {
				out[n.Name] = n.Unit
			}
		}
	}
	return out
}

func publishObjFact(key string, du DeclUnit) {
	unitFacts.Lock()
	unitFacts.obj[key] = du
	unitFacts.Unlock()
}

func publishFnFact(key string, su *sigUnits) {
	unitFacts.Lock()
	unitFacts.fn[key] = su
	unitFacts.Unlock()
}

// unitCarrier reports whether a type can carry a unit in the analysis:
// floats, and slices/arrays of them (the unit describes the elements).
func unitCarrier(t types.Type) bool {
	return carrierElem(t) != nil
}

// carrierElem returns the float element type a unit on t describes, or
// nil when t carries no unit.
func carrierElem(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsFloat != 0 {
			return t
		}
	case *types.Slice:
		return carrierElem(u.Elem())
	case *types.Array:
		return carrierElem(u.Elem())
	}
	return nil
}

// ---------------------------------------------------------------------------
// The dataflow problem

// unitFlow implements Problem[uState] plus the reporting sweep.
type unitFlow struct {
	idx       *unitIndex
	fnType    *ast.FuncType
	reporting bool
}

func (u *unitFlow) Entry() uState {
	s := uState{}
	if u.fnType == nil {
		return s
	}
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := u.idx.pass.TypesInfo.Defs[name]
				if obj == nil || !unitCarrier(obj.Type()) {
					continue
				}
				if du, ok := u.idx.obj[obj]; ok {
					s[obj] = fromDecl(du)
				} else {
					s[obj] = topVal
				}
			}
		}
	}
	seed(u.fnType.Params)
	seed(u.fnType.Results)
	return s
}

func (u *unitFlow) Copy(s uState) uState {
	out := make(uState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (u *unitFlow) Join(a, b uState) uState {
	for k, bv := range b {
		a[k] = joinVal(a[k], bv)
	}
	return a
}

func (u *unitFlow) Equal(a, b uState) bool { return reflect.DeepEqual(a, b) }

func (u *unitFlow) Transfer(s uState, n ast.Node) uState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		u.assignStmt(s, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					u.declare(s, vs)
				}
			}
		}
	case *ast.IncDecStmt:
		u.eval(s, n.X)
	case *ast.ExprStmt:
		u.eval(s, n.X)
	case *ast.ReturnStmt:
		u.returnStmt(s, n)
	case *ast.RangeStmt:
		u.rangeBind(s, n)
	case *ast.DeferStmt:
		u.eval(s, n.Call)
	case *ast.GoStmt:
		u.eval(s, n.Call)
	case *ast.SendStmt:
		u.eval(s, n.Chan)
		u.eval(s, n.Value)
	case ast.Expr:
		// Control conditions lifted into the block by the CFG builder.
		u.eval(s, n)
	}
	return s
}

// declare handles `var x T = expr` statements.
func (u *unitFlow) declare(s uState, vs *ast.ValueSpec) {
	vals := make([]uval, len(vs.Names))
	switch {
	case len(vs.Values) == len(vs.Names):
		for i, e := range vs.Values {
			vals[i] = u.eval(s, e)
		}
	case len(vs.Values) == 1 && len(vs.Names) > 1:
		u.eval(s, vs.Values[0])
		for i := range vals {
			vals[i] = topVal
		}
	default:
		for i := range vals {
			vals[i] = topVal
		}
	}
	for i, name := range vs.Names {
		obj := u.idx.pass.TypesInfo.Defs[name]
		if obj == nil || !unitCarrier(obj.Type()) {
			continue
		}
		u.bindLocal(s, obj, vals[i], name.Pos())
	}
}

// bindLocal stores a value into a local, checking it against the local's
// declared unit (a unit-suffixed name or tagged declaration) when known.
func (u *unitFlow) bindLocal(s uState, obj types.Object, v uval, pos token.Pos) {
	if du, ok := u.declaredOf(obj); ok {
		u.checkDeclared(s, obj, v, pos, "assignment to "+obj.Name())
		// A precise inferred unit is kept; otherwise — and after a
		// conflicting store, so one bad assignment does not cascade into
		// follow-on diagnostics — the declaration wins.
		if v.kind == uUnit && (du.Any || v.unit.Equal(du.Unit)) {
			s[obj] = v
		} else {
			s[obj] = fromDecl(du)
		}
		return
	}
	s[obj] = v
}

// declaredOf returns a local/package object's declared unit: an explicit
// index entry, else a unit-bearing name suffix.
func (u *unitFlow) declaredOf(obj types.Object) (DeclUnit, bool) {
	if du, ok := u.idx.obj[obj]; ok {
		return du, true
	}
	if _, isVar := obj.(*types.Var); isVar && unitCarrier(obj.Type()) {
		if un, ok := UnitFromName(obj.Name()); ok {
			return DeclUnit{Unit: un}, true
		}
	}
	return DeclUnit{}, false
}

// checkDeclared reports a store whose value conflicts with the target's
// declared unit.
func (u *unitFlow) checkDeclared(s uState, obj types.Object, v uval, pos token.Pos, what string) {
	du, ok := u.declaredOf(obj)
	if !ok || du.Any || v.kind != uUnit {
		return
	}
	if !v.unit.Equal(du.Unit) {
		u.reportConflict(pos, what, du.Unit, v.unit)
	}
}

func (u *unitFlow) reportConflict(pos token.Pos, what string, want, got Unit) {
	if !u.reporting {
		return
	}
	detail := ""
	if want.SameDims(got) {
		detail = " (same dimension, different scale)"
	}
	u.idx.pass.Reportf(pos, "%s: unit %s does not match declared %s%s", what, got, want, detail)
}

func (u *unitFlow) assignStmt(s uState, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound x op= y: evaluate as x = x op y so the binary check
		// applies.
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			lv := u.eval(s, n.Lhs[0])
			rv := u.eval(s, n.Rhs[0])
			nv := u.binary(lv, rv, compoundOp(n.Tok), n.Rhs[0].Pos())
			u.store(s, n.Lhs[0], nv)
		}
		return
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Tuple assignment from a call (or map/type-assert comma-ok).
		vals := u.evalTuple(s, n.Rhs[0], len(n.Lhs))
		for i, lhs := range n.Lhs {
			u.store(s, lhs, vals[i])
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		v := u.eval(s, n.Rhs[i])
		u.store(s, lhs, v)
	}
}

// compoundOp maps an assign-op token to its binary operator.
func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	}
	return token.REM
}

// store flows a value into an assignment target.
func (u *unitFlow) store(s uState, lhs ast.Expr, v uval) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := u.idx.pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = u.idx.pass.TypesInfo.Uses[lhs]
		}
		if obj == nil || !unitCarrier(obj.Type()) {
			return
		}
		if _, isLocal := u.localVar(obj); isLocal {
			u.bindLocal(s, obj, v, lhs.Pos())
			return
		}
		// Package-level target: check against its declaration only.
		u.checkDeclared(s, obj, v, lhs.Pos(), "assignment to "+lhs.Name)
	case *ast.SelectorExpr:
		if fobj := u.fieldObject(lhs); fobj != nil {
			if du, ok := u.fieldDecl(lhs, fobj); ok && !du.Any && v.kind == uUnit && !v.unit.Equal(du.Unit) {
				u.reportConflict(lhs.Sel.Pos(), "store to field "+lhs.Sel.Name, du.Unit, v.unit)
			}
		}
	case *ast.IndexExpr:
		// Element store: weak update on the base's element quantity.
		base := u.eval(s, lhs.X)
		if base.kind == uUnit && v.kind == uUnit && !v.unit.Equal(base.unit) {
			u.reportConflict(lhs.Pos(), "element store", base.unit, v.unit)
		}
		if id, ok := lhs.X.(*ast.Ident); ok {
			if obj := u.idx.pass.TypesInfo.Uses[id]; obj != nil && unitCarrier(obj.Type()) {
				if _, isLocal := u.localVar(obj); isLocal {
					s[obj] = joinVal(base, v)
				}
			}
		}
	case *ast.StarExpr:
		u.eval(s, lhs.X)
	}
}

// localVar reports whether obj is a function-scope variable (tracked in
// the state map) rather than a package-level one.
func (u *unitFlow) localVar(obj types.Object) (*types.Var, bool) {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, false
	}
	if v.Parent() == nil {
		// Struct fields and some signature-scoped vars have no parent
		// scope; fields are handled via selectors, params are tracked.
		return v, !v.IsField()
	}
	return v, v.Parent() != u.idx.pass.Pkg.Scope()
}

func (u *unitFlow) returnStmt(s uState, n *ast.ReturnStmt) {
	var decls []*DeclUnit
	if u.fnType != nil {
		decls = u.resultDecls()
	}
	for i, e := range n.Results {
		v := u.eval(s, e)
		if i < len(decls) && decls[i] != nil && !decls[i].Any && v.kind == uUnit && !v.unit.Equal(decls[i].Unit) {
			u.reportConflict(e.Pos(), fmt.Sprintf("return value %d", i+1), decls[i].Unit, v.unit)
		}
	}
}

// resultDecls resolves the enclosing function's declared result units.
func (u *unitFlow) resultDecls() []*DeclUnit {
	if u.fnType == nil || u.fnType.Results == nil {
		return nil
	}
	var out []*DeclUnit
	for _, field := range u.fnType.Results.List {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil}
		}
		for _, name := range names {
			var du *DeclUnit
			if name != nil {
				if obj := u.idx.pass.TypesInfo.Defs[name]; obj != nil {
					if d, ok := u.declaredOf(obj); ok {
						du = &d
					}
				}
			}
			out = append(out, du)
		}
	}
	// Unnamed results may still be declared through the function's own
	// doc tag ("unit: return m"): consult the signature table.
	if obj := u.enclosingFunc(); obj != nil {
		if su, ok := u.idx.fn[obj]; ok {
			for i := range out {
				if out[i] == nil && i < len(su.results) {
					out[i] = su.results[i]
				}
			}
		}
	}
	return out
}

// enclosingFunc finds the *types.Func whose declared type is fnType.
func (u *unitFlow) enclosingFunc() *types.Func {
	for _, f := range u.idx.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Type == u.fnType {
				if obj, ok := u.idx.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					return obj
				}
			}
		}
	}
	return nil
}

func (u *unitFlow) rangeBind(s uState, n *ast.RangeStmt) {
	xv := u.eval(s, n.X)
	bind := func(e ast.Expr, v uval) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := u.idx.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = u.idx.pass.TypesInfo.Uses[id]
		}
		if obj == nil || !unitCarrier(obj.Type()) {
			return
		}
		u.bindLocal(s, obj, v, id.Pos())
	}
	if n.Key != nil {
		bind(n.Key, scalarVal) // index or int key
	}
	if n.Value != nil {
		bind(n.Value, xv) // element of the ranged slice
	}
}

// ---------------------------------------------------------------------------
// Expression evaluation

func (u *unitFlow) eval(s uState, e ast.Expr) uval {
	if e == nil {
		return topVal
	}
	// Integer-typed expressions are counts and indices: scalars. The
	// subtree is still walked so nested calls get their argument checks.
	// Tagged constants are the exception — a conversion entry like
	// CmPerM = 100 carries its unit even spelled as an untyped int.
	if tv, ok := u.idx.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&(types.IsInteger|types.IsBoolean|types.IsString) != 0 {
			if v, ok := u.constUnit(e); ok {
				return v
			}
			u.evalInner(s, e)
			return scalarVal
		}
	}
	return u.evalInner(s, e)
}

func (u *unitFlow) evalInner(s uState, e ast.Expr) uval {
	switch e := e.(type) {
	case *ast.BasicLit:
		return scalarVal
	case *ast.Ident:
		return u.evalIdent(s, e)
	case *ast.ParenExpr:
		return u.eval(s, e.X)
	case *ast.UnaryExpr:
		return u.eval(s, e.X)
	case *ast.StarExpr:
		return u.eval(s, e.X)
	case *ast.BinaryExpr:
		lv := u.eval(s, e.X)
		rv := u.eval(s, e.Y)
		return u.binary(lv, rv, e.Op, e.OpPos)
	case *ast.SelectorExpr:
		return u.evalSelector(s, e)
	case *ast.CallExpr:
		return u.evalCall(s, e)
	case *ast.IndexExpr:
		u.eval(s, e.Index)
		return u.eval(s, e.X)
	case *ast.SliceExpr:
		return u.eval(s, e.X)
	case *ast.CompositeLit:
		return u.evalCompositeLit(s, e)
	case *ast.TypeAssertExpr:
		u.eval(s, e.X)
		return topVal
	case *ast.FuncLit:
		// Analyzed separately.
		return topVal
	}
	return topVal
}

// constUnit resolves a declared unit on a constant reference, however the
// constant is typed.
func (u *unitFlow) constUnit(e ast.Expr) (uval, bool) {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = u.idx.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = u.idx.pass.TypesInfo.Uses[e.Sel]
	}
	c, ok := obj.(*types.Const)
	if !ok {
		return uval{}, false
	}
	if du, ok := u.objDecl(c); ok {
		return fromDecl(du), true
	}
	if un, ok := UnitFromName(c.Name()); ok {
		return unitVal(un), true
	}
	return uval{}, false
}

func (u *unitFlow) evalIdent(s uState, id *ast.Ident) uval {
	obj := u.idx.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = u.idx.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return topVal
	}
	return u.evalObject(s, obj)
}

func (u *unitFlow) evalObject(s uState, obj types.Object) uval {
	switch obj := obj.(type) {
	case *types.Const:
		if du, ok := u.objDecl(obj); ok {
			return fromDecl(du)
		}
		if un, ok := UnitFromName(obj.Name()); ok && unitCarrier(obj.Type()) {
			return unitVal(un)
		}
		return scalarVal
	case *types.Var:
		if v, ok := s[obj]; ok && v.kind != uBottom {
			return v
		}
		if du, ok := u.objDecl(obj); ok {
			return fromDecl(du)
		}
		if un, ok := UnitFromName(obj.Name()); ok && unitCarrier(obj.Type()) {
			return unitVal(un)
		}
		return topVal
	}
	return topVal
}

// objDecl resolves a const/var object's declared unit from the local
// index or, for imports, the fact store.
func (u *unitFlow) objDecl(obj types.Object) (DeclUnit, bool) {
	if du, ok := u.idx.obj[obj]; ok {
		return du, true
	}
	if obj.Pkg() != nil && obj.Pkg() != u.idx.pass.Pkg {
		unitFacts.Lock()
		du, ok := unitFacts.obj[objFactKey(obj.Pkg().Path(), obj.Name())]
		unitFacts.Unlock()
		if ok {
			return du, true
		}
	}
	return DeclUnit{}, false
}

func (u *unitFlow) evalSelector(s uState, sel *ast.SelectorExpr) uval {
	// Package-qualified identifier (pkg.Const, pkg.Var)?
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := u.idx.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			if obj := u.idx.pass.TypesInfo.Uses[sel.Sel]; obj != nil {
				return u.evalObject(s, obj)
			}
			return topVal
		}
	}
	u.eval(s, sel.X)
	fobj := u.fieldObject(sel)
	if fobj == nil {
		return topVal
	}
	if du, ok := u.fieldDecl(sel, fobj); ok {
		return fromDecl(du)
	}
	if un, ok := UnitFromName(fobj.Name()); ok && unitCarrier(fobj.Type()) {
		return unitVal(un)
	}
	return topVal
}

// fieldObject resolves a selector to a struct field variable, or nil for
// methods and non-field selections.
func (u *unitFlow) fieldObject(sel *ast.SelectorExpr) *types.Var {
	if s, ok := u.idx.pass.TypesInfo.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() && unitCarrier(v.Type()) {
			return v
		}
		return nil
	}
	if v, ok := u.idx.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() && unitCarrier(v.Type()) {
		return v
	}
	return nil
}

// fieldDecl resolves a field's declared unit: same-package index, else
// cross-package facts keyed by the receiver's named type.
func (u *unitFlow) fieldDecl(sel *ast.SelectorExpr, fobj *types.Var) (DeclUnit, bool) {
	if du, ok := u.idx.obj[fobj]; ok {
		return du, true
	}
	if fobj.Pkg() == nil || fobj.Pkg() == u.idx.pass.Pkg {
		return DeclUnit{}, false
	}
	t := u.idx.pass.TypesInfo.TypeOf(sel.X)
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return DeclUnit{}, false
	}
	unitFacts.Lock()
	du, ok := unitFacts.obj[fieldFactKey(fobj.Pkg().Path(), named.Obj().Name(), fobj.Name())]
	unitFacts.Unlock()
	return du, ok
}

// binary applies the unit algebra to one binary operator, reporting
// mixed-unit additions and comparisons.
func (u *unitFlow) binary(lv, rv uval, op token.Token, pos token.Pos) uval {
	switch op {
	case token.ADD, token.SUB:
		return u.requireSame(lv, rv, opName(op), pos)
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		u.requireSame(lv, rv, "comparison", pos)
		return scalarVal
	case token.MUL:
		return composeVal(lv, rv, false)
	case token.QUO:
		return composeVal(lv, rv, true)
	}
	return topVal
}

// requireSame checks dimension agreement of an addition/comparison and
// returns the merged value.
func (u *unitFlow) requireSame(lv, rv uval, what string, pos token.Pos) uval {
	if lv.kind == uUnit && rv.kind == uUnit && !lv.unit.Equal(rv.unit) {
		if u.reporting {
			detail := ""
			if lv.unit.SameDims(rv.unit) {
				detail = " (same dimension, different scale)"
			}
			u.idx.pass.Reportf(pos, "%s mixes %s and %s%s", what, lv.unit, rv.unit, detail)
		}
		return topVal
	}
	return joinVal(lv, rv)
}

func opName(op token.Token) string {
	if op == token.ADD {
		return "addition"
	}
	return "subtraction"
}

// composeVal multiplies/divides two values: scalars are identities, tops
// are absorbing, units compose through the algebra.
func composeVal(lv, rv uval, div bool) uval {
	if lv.kind == uTop || rv.kind == uTop {
		return topVal
	}
	if lv.kind == uBottom || rv.kind == uBottom {
		return topVal
	}
	lu, ru := Dimensionless, Dimensionless
	if lv.kind == uUnit {
		lu = lv.unit
	}
	if rv.kind == uUnit {
		ru = rv.unit
	}
	if lv.kind == uScalar && rv.kind == uScalar {
		return scalarVal
	}
	if div {
		return unitVal(lu.Div(ru))
	}
	return unitVal(lu.Mul(ru))
}

// evalTuple evaluates a multi-value RHS (call, map index, type assert).
func (u *unitFlow) evalTuple(s uState, e ast.Expr, n int) []uval {
	out := make([]uval, n)
	for i := range out {
		out[i] = topVal
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		u.eval(s, e)
		return out
	}
	v, results := u.call(s, call)
	if len(results) == n {
		copy(out, results)
	} else if n == 1 {
		out[0] = v
	}
	return out
}

func (u *unitFlow) evalCall(s uState, call *ast.CallExpr) uval {
	v, _ := u.call(s, call)
	return v
}

// call evaluates a call (or conversion), checking arguments against the
// callee's declared parameter units, and returns the single-result value
// plus per-result values for tuple contexts.
func (u *unitFlow) call(s uState, call *ast.CallExpr) (uval, []uval) {
	// Type conversion: float64(x) keeps x's unit.
	if tv, ok := u.idx.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return u.eval(s, call.Args[0]), nil
		}
		return topVal, nil
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := u.idx.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return u.evalBuiltin(s, b.Name(), call), nil
		}
	}
	callee := u.calleeFunc(call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "math" {
		return u.evalMathCall(s, callee.Name(), call), nil
	}
	argv := make([]uval, len(call.Args))
	for i, a := range call.Args {
		argv[i] = u.eval(s, a)
	}
	u.eval(s, call.Fun)
	if callee == nil {
		return topVal, nil
	}
	su := u.signatureUnits(callee)
	if su == nil {
		return topVal, nil
	}
	u.checkArgs(call, callee, su, argv)
	results := make([]uval, len(su.results))
	for i, du := range su.results {
		if du == nil {
			results[i] = topVal
		} else {
			results[i] = fromDecl(*du)
		}
	}
	single := topVal
	if len(results) == 1 {
		single = results[0]
	}
	return single, results
}

// calleeFunc resolves the called function object, if statically known.
func (u *unitFlow) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := u.idx.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := u.idx.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// signatureUnits resolves a callee's declared parameter/result units:
// same-package index, cross-package facts, then export-data name
// suffixes.
func (u *unitFlow) signatureUnits(fn *types.Func) *sigUnits {
	if su, ok := u.idx.fn[fn]; ok {
		return su
	}
	if fn.Pkg() != nil && fn.Pkg() != u.idx.pass.Pkg {
		unitFacts.Lock()
		su, ok := unitFacts.fn[funcFactKey(fn)]
		unitFacts.Unlock()
		if ok {
			return su
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	su := &sigUnits{variadic: sig.Variadic()}
	found := false
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		var du *DeclUnit
		if unitCarrier(p.Type()) {
			if un, ok := UnitFromName(p.Name()); ok {
				du = &DeclUnit{Unit: un}
				found = true
			}
		}
		su.params = append(su.params, du)
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		var du *DeclUnit
		if unitCarrier(r.Type()) {
			if un, ok := UnitFromName(r.Name()); ok {
				du = &DeclUnit{Unit: un}
				found = true
			}
		}
		su.results = append(su.results, du)
	}
	if !found {
		return nil
	}
	return su
}

// checkArgs reports arguments whose units conflict with the callee's
// declared parameters.
func (u *unitFlow) checkArgs(call *ast.CallExpr, fn *types.Func, su *sigUnits, argv []uval) {
	if !u.reporting || len(su.params) == 0 {
		return
	}
	for i, av := range argv {
		pi := i
		if pi >= len(su.params) {
			if !su.variadic {
				break
			}
			pi = len(su.params) - 1
		}
		du := su.params[pi]
		if du == nil || du.Any || av.kind != uUnit {
			continue
		}
		if !av.unit.Equal(du.Unit) {
			detail := ""
			if av.unit.SameDims(du.Unit) {
				detail = " (same dimension, different scale)"
			}
			u.idx.pass.Reportf(call.Args[i].Pos(),
				"argument %d to %s: unit %s does not match declared %s%s",
				i+1, fn.Name(), av.unit, du.Unit, detail)
		}
	}
}

// evalBuiltin handles the relevant builtins.
func (u *unitFlow) evalBuiltin(s uState, name string, call *ast.CallExpr) uval {
	switch name {
	case "len", "cap":
		for _, a := range call.Args {
			u.eval(s, a)
		}
		return scalarVal
	case "append":
		// Elements joined onto the slice's element quantity.
		v := uval{}
		for _, a := range call.Args {
			v = joinVal(v, u.eval(s, a))
		}
		return v
	case "min", "max":
		v := uval{}
		for _, a := range call.Args {
			v = joinVal(v, u.eval(s, a))
		}
		return v
	}
	for _, a := range call.Args {
		u.eval(s, a)
	}
	return topVal
}

// mathPreserveUnary are math funcs returning their argument's unit.
var mathPreserveUnary = map[string]bool{
	"Abs": true, "Ceil": true, "Floor": true, "Round": true,
	"RoundToEven": true, "Trunc": true,
}

// mathPreserveBinary are math funcs whose arguments must agree
// dimensionally and which return that shared unit.
var mathPreserveBinary = map[string]bool{
	"Max": true, "Min": true, "Mod": true, "Copysign": true,
	"Hypot": true, "Dim": true, "Remainder": true,
}

// evalMathCall applies the unit semantics of the math package.
func (u *unitFlow) evalMathCall(s uState, name string, call *ast.CallExpr) uval {
	argv := make([]uval, len(call.Args))
	for i, a := range call.Args {
		argv[i] = u.eval(s, a)
	}
	switch {
	case mathPreserveUnary[name] && len(argv) == 1:
		return argv[0]
	case mathPreserveBinary[name] && len(argv) == 2:
		return u.requireSame(argv[0], argv[1], name+" arguments", call.Args[1].Pos())
	case name == "Sqrt" && len(argv) == 1:
		if argv[0].kind == uUnit {
			if r, ok := argv[0].unit.Sqrt(); ok {
				return unitVal(r)
			}
			return topVal
		}
		return argv[0]
	}
	// Transcendental and everything else: no unit claim.
	return topVal
}

func (u *unitFlow) evalCompositeLit(s uState, cl *ast.CompositeLit) uval {
	t := u.idx.pass.TypesInfo.TypeOf(cl)
	if t != nil {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
	}
	st, _ := structOf(t)
	if st == nil {
		// Slice/array literal of floats: the element quantities join.
		if t != nil && unitCarrier(t) {
			v := uval{}
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				v = joinVal(v, u.eval(s, el))
			}
			return v
		}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				u.eval(s, kv.Value)
			} else {
				u.eval(s, el)
			}
		}
		return topVal
	}
	// Struct literal: check values against declared field units.
	for i, el := range cl.Elts {
		var fv *types.Var
		value := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				fv = fieldByName(st, id.Name)
			}
		} else if i < st.NumFields() {
			fv = st.Field(i)
		}
		v := u.eval(s, value)
		if fv == nil || !unitCarrier(fv.Type()) || v.kind != uUnit {
			continue
		}
		if du, ok := u.structFieldDecl(t, fv); ok && !du.Any && !v.unit.Equal(du.Unit) {
			u.reportConflict(value.Pos(), "field "+fv.Name()+" in composite literal", du.Unit, v.unit)
		}
	}
	return topVal
}

// structFieldDecl resolves a composite-literal field's declared unit.
func (u *unitFlow) structFieldDecl(t types.Type, fv *types.Var) (DeclUnit, bool) {
	if du, ok := u.idx.obj[fv]; ok {
		return du, true
	}
	if fv.Pkg() != nil && fv.Pkg() != u.idx.pass.Pkg {
		if named, ok := t.(*types.Named); ok {
			unitFacts.Lock()
			du, ok := unitFacts.obj[fieldFactKey(fv.Pkg().Path(), named.Obj().Name(), fv.Name())]
			unitFacts.Unlock()
			if ok {
				return du, true
			}
		}
	}
	if un, ok := UnitFromName(fv.Name()); ok {
		return DeclUnit{Unit: un}, true
	}
	return DeclUnit{}, false
}

func structOf(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}
