package analysis

// A generic forward-transfer dataflow engine over the CFGs of cfg.go.
// An analyzer supplies the abstract domain (states S, join, equality) and
// a transfer function; Forward computes the least fixpoint by repeated
// reverse-postorder sweeps and returns each reachable block's entry
// state. Analyzers report findings in a separate pass over the converged
// states (re-applying the transfer once per block) so a diagnostic is
// emitted exactly once, not once per fixpoint iteration.

import "go/ast"

// Problem is a forward dataflow problem.
type Problem[S any] interface {
	// Entry is the state on entry to the function.
	Entry() S
	// Copy returns an independent copy of a state the engine may mutate.
	Copy(S) S
	// Transfer flows one CFG node through the state, returning the state
	// after the node. It may mutate and return its argument.
	Transfer(S, ast.Node) S
	// Join merges the states of two converging paths.
	Join(S, S) S
	// Equal reports whether two states coincide (fixpoint detection).
	Equal(S, S) bool
}

// maxFixpointSweeps bounds the full-CFG sweeps, a backstop against a
// non-monotone Transfer looping forever. Well-formed lattices of small
// height converge in a handful of sweeps.
const maxFixpointSweeps = 64

// Forward computes the forward dataflow fixpoint of p over g and returns
// the entry state of every reachable block. Unreachable blocks have no
// entry in the result map.
func Forward[S any](g *CFG, p Problem[S]) map[*Block]S {
	order := g.RPO()
	in := make(map[*Block]S, len(order))
	out := make(map[*Block]S, len(order))
	in[g.Blocks[0]] = p.Entry()
	for sweep := 0; sweep < maxFixpointSweeps; sweep++ {
		changed := false
		for _, b := range order {
			entry, seeded := in[b], false
			if b == g.Blocks[0] {
				seeded = true
			}
			for _, pred := range b.Preds {
				po, ok := out[pred]
				if !ok {
					continue
				}
				if !seeded {
					entry, seeded = p.Copy(po), true
				} else {
					entry = p.Join(entry, po)
				}
			}
			if !seeded {
				// No predecessor has produced a state yet.
				continue
			}
			in[b] = entry
			s := p.Copy(entry)
			for _, n := range b.Nodes {
				s = p.Transfer(s, n)
			}
			prev, ok := out[b]
			if !ok || !p.Equal(prev, s) {
				out[b] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in
}
