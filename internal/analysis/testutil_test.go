package analysis

// Fixture-driven analyzer testing in the spirit of
// golang.org/x/tools/go/analysis/analysistest: each analyzer has a
// package under testdata/<name>/ whose source carries `// want "regex"`
// comments on the lines where findings are expected. The harness
// type-checks the fixture against the repo's compiler export data, runs
// the analyzer through the same Run path as the CLI (so //lint:allow
// suppression is exercised too), and diffs findings against the wants.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

// fixtureExports maps import path → compiler export data for everything a
// fixture may import, built once per test binary with `go list`.
func fixtureExports() (map[string]string, error) {
	exportOnce.Do(func() {
		pkgs, err := goList("../..", []string{"fmt", "errors", "context", "crypto/sha256", "encoding/hex", "hash/fnv", "math", "voiceguard/internal/core", "voiceguard/internal/telemetry"})
		if err != nil {
			exportErr = err
			return
		}
		exportMap = make(map[string]string)
		for _, p := range pkgs {
			if p.Export != "" {
				exportMap[p.ImportPath] = p.Export
			}
		}
	})
	return exportMap, exportErr
}

// loadFixture parses and type-checks testdata/<name> as one package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	exports, err := fixtureExports()
	if err != nil {
		t.Fatalf("resolving fixture dependencies: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join("testdata", name, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files under testdata/%s (%v)", name, err)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", p, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check("voiceguard/internal/analysis/testdata/"+name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return &Package{
		Path:      "voiceguard/internal/analysis/testdata/" + name,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
}

// want is one expectation parsed from a `// want` comment.
type want struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// wantArg matches one Go-quoted string (backtick or double-quote form).
var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts the expectations from a fixture's comments.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArg.FindAllString(strings.TrimPrefix(body, "want "), -1)
				if len(args) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, arg := range args {
					pattern, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s: unquoting want %s: %v", pos, arg, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: compiling want %q: %v", pos, pattern, err)
					}
					wants = append(wants, &want{re: re, line: pos.Line})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over its fixture package and diffs the
// diagnostics against the want comments.
func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	wants := collectWants(t, pkg)
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var truePositives int
diags:
	for _, d := range diags {
		for _, w := range wants {
			if !w.matched && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.matched = true
				truePositives++
				continue diags
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("line %d: no diagnostic matching %q", w.line, w.re)
		}
	}
	if truePositives == 0 {
		t.Errorf("fixture %s demonstrates no true positive for %s", name, a.Name)
	}
}
