package analysis

import (
	"go/ast"
	"strings"
)

// unitPackagePaths are the import paths of packages whose exported API
// carries physical quantities: distances, frequencies, field strengths,
// durations, sample rates. These are where a cm/m or Hz/kHz mix-up flips
// a verdict. Keyed on the full import path — a bare package name like
// "core" would also match any third-party package that happens to share
// it.
var unitPackagePaths = map[string]bool{
	"voiceguard/internal/core":       true,
	"voiceguard/internal/geometry":   true,
	"voiceguard/internal/magnetics":  true,
	"voiceguard/internal/trajectory": true,
	"voiceguard/internal/soundfield": true,
	"voiceguard/internal/fusion":     true,
	"voiceguard/internal/sensors":    true,
	"voiceguard/internal/ranging":    true,
}

// isUnitPackage reports whether the package at path gets the annotation
// completeness checks. Analyzer test fixtures type-check under a
// testdata-rooted path and opt in regardless, so the fixtures can
// exercise the checks; `go list ./...` never yields testdata packages,
// so the CLI is unaffected.
func isUnitPackage(path string) bool {
	return unitPackagePaths[path] || strings.Contains(path, "internal/analysis/testdata/")
}

// UnitSuffixAnalyzer enforces unit discipline on the exported float API of
// the physical-quantity packages (core, geometry, magnetics, trajectory,
// soundfield, fusion, sensors, ranging): every exported float struct field
// and every float parameter of an exported function must either carry a
// unit suffix (Meters, Hz, MicroTesla, Seconds, ...) or declare its unit
// with a machine-readable "unit:" tag — bare form on fields
// ("unit: cm"), named form in function docs ("unit: t s, rate uT/s").
// Dimensionless quantities declare that too ("unit: dimensionless").
// Tree-wide (in every package), each "unit:" tag line must parse under the
// grammar of ParseUnitTag, and named tags must reference an actual
// parameter or result.
var UnitSuffixAnalyzer = &Analyzer{
	Name: "unitsuffix",
	Doc:  "exported float fields/params in physical-quantity packages need a unit suffix or parsed unit: tag",
	Run:  runUnitSuffix,
}

func runUnitSuffix(pass *Pass) error {
	for _, f := range pass.Files {
		validateTagSyntax(pass, f)
	}
	if !isUnitPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						checkStructFields(pass, st)
					}
				}
			case *ast.FuncDecl:
				checkFuncParams(pass, d)
			}
		}
	}
	return nil
}

// validateTagSyntax reports every comment line that claims to be a unit
// tag (starts with "unit:") but does not parse under the grammar. This
// runs in every package: a malformed tag is silently ignored by unitflow,
// which would otherwise un-check the quantity it meant to declare.
func validateTagSyntax(pass *Pass, f *ast.File) {
	for _, g := range f.Comments {
		for _, c := range g.List {
			for _, line := range commentLines(c) {
				body, ok := CutUnitTag(line)
				if !ok {
					continue
				}
				if _, err := ParseUnitTag(body); err != nil {
					pass.Reportf(c.Pos(), "malformed unit tag %q: %v", line, err)
				}
			}
		}
	}
}

// checkStructFields flags exported float fields without unit suffix or a
// bare unit tag.
func checkStructFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 || !isFloat(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		if bareTagOf(field.Doc, field.Comment) != nil {
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() || hasUnitSuffix(name.Name) {
				continue
			}
			pass.Reportf(name.Pos(),
				"exported float field %s needs a unit suffix (%s) or a %q doc tag",
				name.Name, exampleSuffixes(), unitTagMarker)
		}
	}
}

// checkFuncParams flags float parameters of exported functions/methods
// whose names carry no unit and whose doc declares none, and validates
// that every named tag in the doc references a real parameter or result.
func checkFuncParams(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	if fd.Recv != nil && !exportedReceiver(fd) {
		return
	}
	named := namedTagsOf(fd.Doc)
	checkNamedTagTargets(pass, fd, named)
	for _, field := range fd.Type.Params.List {
		if !isFloat(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" || hasUnitSuffix(name.Name) {
				continue
			}
			if _, ok := named[name.Name]; ok {
				continue
			}
			pass.Reportf(name.Pos(),
				"float parameter %s of exported %s needs a unit suffix (%s) or a %q line in the doc comment",
				name.Name, fd.Name.Name, exampleSuffixes(), unitTagMarker)
		}
	}
}

// checkNamedTagTargets reports doc-tag names that match no parameter or
// result of the function — typically a typo or a stale rename, which
// silently drops the declared unit.
func checkNamedTagTargets(pass *Pass, fd *ast.FuncDecl, named map[string]DeclUnit) {
	if len(named) == 0 {
		return
	}
	known := map[string]bool{"return": true}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				known[name.Name] = true
			}
		}
	}
	add(fd.Type.Params)
	add(fd.Type.Results)
	for name := range named {
		if !known[name] {
			pass.Reportf(fd.Name.Pos(),
				"unit tag names %q, which is not a parameter or result of %s",
				name, fd.Name.Name)
		}
	}
}

// exportedReceiver reports whether the method's receiver base type is
// exported.
func exportedReceiver(fd *ast.FuncDecl) bool {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// hasUnitSuffix reports whether name ends in (or equals, ignoring case) a
// recognized unit.
func hasUnitSuffix(name string) bool {
	for s := range suffixUnits {
		if strings.HasSuffix(name, s) || strings.EqualFold(name, s) {
			return true
		}
	}
	return strings.HasSuffix(name, "PerSecond")
}

// exampleSuffixes renders a few recognized suffixes for diagnostics.
func exampleSuffixes() string {
	return "Meters/Hz/MicroTesla/Seconds"
}
