package analysis

import (
	"go/ast"
	"strings"
)

// unitPackages are the packages whose exported API carries physical
// quantities: distances, frequencies, field strengths, durations. These
// are where a cm/m or Hz/kHz mix-up flips a verdict.
var unitPackages = map[string]bool{
	"core":       true,
	"geometry":   true,
	"magnetics":  true,
	"trajectory": true,
	"soundfield": true,
}

// unitSuffixes are the recognized physical-unit name endings. A name like
// MaxDistanceMeters, cutoffHz or SwingMicroTesla self-documents its unit.
var unitSuffixes = []string{
	"Meters", "Hz", "MicroTesla", "Seconds", "Radians", "Degrees", "Deg",
	"DB", "MS2", "PerSecond", "Ratio",
}

// unitTag is the doc-comment escape hatch: a field or function whose doc
// (or trailing comment) contains "unit:" has declared its units in prose.
const unitTag = "unit:"

// UnitSuffixAnalyzer enforces unit discipline on the exported float API of
// the physical-quantity packages (core, geometry, magnetics, trajectory,
// soundfield): every exported float struct field and every float parameter
// of an exported function must either carry a unit suffix (Meters, Hz,
// MicroTesla, Seconds, ...) or document its unit with a "unit:" tag in the
// field's comment / function's doc comment. Dimensionless quantities
// document that too ("unit: dimensionless").
var UnitSuffixAnalyzer = &Analyzer{
	Name: "unitsuffix",
	Doc:  "exported float fields/params in physical-quantity packages need a unit suffix or unit: tag",
	Run:  runUnitSuffix,
}

func runUnitSuffix(pass *Pass) error {
	if !unitPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						checkStructFields(pass, st)
					}
				}
			case *ast.FuncDecl:
				checkFuncParams(pass, d)
			}
		}
	}
	return nil
}

// checkStructFields flags exported float fields without unit suffix or
// unit: tag.
func checkStructFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 || !isFloat(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		if commentHasUnitTag(field.Doc) || commentHasUnitTag(field.Comment) {
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() || hasUnitSuffix(name.Name) {
				continue
			}
			pass.Reportf(name.Pos(),
				"exported float field %s needs a unit suffix (%s) or a %q doc tag",
				name.Name, exampleSuffixes(), unitTag)
		}
	}
}

// checkFuncParams flags float parameters of exported functions/methods
// whose names carry no unit and whose doc declares none.
func checkFuncParams(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	if fd.Recv != nil && !exportedReceiver(fd) {
		return
	}
	if commentHasUnitTag(fd.Doc) {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isFloat(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" || hasUnitSuffix(name.Name) {
				continue
			}
			pass.Reportf(name.Pos(),
				"float parameter %s of exported %s needs a unit suffix (%s) or a %q line in the doc comment",
				name.Name, fd.Name.Name, exampleSuffixes(), unitTag)
		}
	}
}

// exportedReceiver reports whether the method's receiver base type is
// exported.
func exportedReceiver(fd *ast.FuncDecl) bool {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// hasUnitSuffix reports whether name ends in (or equals, ignoring case) a
// recognized unit.
func hasUnitSuffix(name string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s) || strings.EqualFold(name, s) {
			return true
		}
	}
	return false
}

// commentHasUnitTag reports whether any comment line carries a unit: tag.
func commentHasUnitTag(g *ast.CommentGroup) bool {
	return g != nil && strings.Contains(g.Text(), unitTag)
}

// exampleSuffixes renders the head of the suffix list for diagnostics.
func exampleSuffixes() string {
	return strings.Join(unitSuffixes[:4], "/")
}
