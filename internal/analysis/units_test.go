package analysis

import (
	"math"
	"testing"
)

func unit(t *testing.T, expr string) Unit {
	t.Helper()
	u, err := ParseUnit(expr)
	if err != nil {
		t.Fatalf("ParseUnit(%q): %v", expr, err)
	}
	return u
}

func TestParseUnit(t *testing.T) {
	m := unit(t, "m")
	s := unit(t, "s")
	uT := unit(t, "uT")
	cases := []struct {
		expr string
		want Unit
	}{
		{"dimensionless", Dimensionless},
		{"1", Dimensionless},
		{"m", m},
		{"cm", Unit{Scale: 0.01, Dims: m.Dims}},
		{"mm", Unit{Scale: 1e-3, Dims: m.Dims}},
		{"km", Unit{Scale: 1e3, Dims: m.Dims}},
		{"us", Unit{Scale: 1e-6, Dims: s.Dims}},
		{"µT", uT},
		{"uT", Unit{Scale: 1e-6, Dims: unit(t, "T").Dims}},
		{"Hz", Dimensionless.Div(s)},
		{"kHz", Unit{Scale: 1e3, Dims: Dimensionless.Div(s).Dims}},
		{"deg", Unit{Scale: math.Pi / 180, Dims: unit(t, "rad").Dims}},
		{"uT/s", uT.Div(s)},
		{"m/s^2", m.Div(s.Pow(2))},
		{"A*m^2", unit(t, "A").Mul(m.Pow(2))},
		{"A·m^2", unit(t, "A").Mul(m.Pow(2))},
		{"cm/m", Unit{Scale: 0.01}},
		{"score", unit(t, "score")},
	}
	for _, tc := range cases {
		got, err := ParseUnit(tc.expr)
		if err != nil {
			t.Errorf("ParseUnit(%q): %v", tc.expr, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("ParseUnit(%q) = %v (scale %g), want %v (scale %g)",
				tc.expr, got, got.Scale, tc.want, tc.want.Scale)
		}
	}
}

func TestParseUnitErrors(t *testing.T) {
	for _, expr := range []string{"", "bogus", "m/", "/m", "m^x", "m^", "furlong", "xT", "m s"} {
		if _, err := ParseUnit(expr); err == nil {
			t.Errorf("ParseUnit(%q): expected error", expr)
		}
	}
}

func TestUnitAlgebra(t *testing.T) {
	m := unit(t, "m")
	cm := unit(t, "cm")
	if m.Equal(cm) {
		t.Fatalf("m must not equal cm")
	}
	if !m.SameDims(cm) {
		t.Fatalf("m and cm share dimensions")
	}
	if !m.Mul(unit(t, "cm/m")).Equal(cm) {
		t.Fatalf("m * cm/m must be cm")
	}
	if r, ok := m.Pow(2).Sqrt(); !ok || !r.Equal(m) {
		t.Fatalf("sqrt(m^2) must be m")
	}
	if _, ok := m.Sqrt(); ok {
		t.Fatalf("sqrt(m) has no unit in the algebra")
	}
	if !unit(t, "Hz").Mul(unit(t, "s")).Equal(Dimensionless) {
		t.Fatalf("Hz·s must be dimensionless")
	}
	if !Dimensionless.IsDimensionless() || cm.IsDimensionless() {
		t.Fatalf("IsDimensionless misclassifies")
	}
}

func TestUnitString(t *testing.T) {
	cases := []struct {
		expr, want string
	}{
		{"cm", "cm"},
		{"uT/s", "µT/s"},
		{"m/s^2", "m/s^2"},
		{"Hz", "Hz"},
		{"dimensionless", "dimensionless"},
		{"m^2", "m^2"},
		{"cm/m", "cm/m"},
	}
	for _, tc := range cases {
		if got := unit(t, tc.expr).String(); got != tc.want {
			t.Errorf("String(%q) = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestParseUnitTag(t *testing.T) {
	tag, err := ParseUnitTag("cm")
	if err != nil || tag.Bare == nil || tag.Bare.Any || !tag.Bare.Unit.Equal(unit(t, "cm")) {
		t.Fatalf("bare tag: %+v, %v", tag, err)
	}
	tag, err = ParseUnitTag("any")
	if err != nil || tag.Bare == nil || !tag.Bare.Any {
		t.Fatalf("any tag: %+v, %v", tag, err)
	}
	tag, err = ParseUnitTag("swing uT, rate uT/s, return dimensionless")
	if err != nil || len(tag.Named) != 3 {
		t.Fatalf("named tag: %+v, %v", tag, err)
	}
	if tag.Named[0].Name != "swing" || !tag.Named[0].Unit.Unit.Equal(unit(t, "uT")) {
		t.Fatalf("first clause: %+v", tag.Named[0])
	}
	if tag.Named[2].Name != "return" {
		t.Fatalf("return clause: %+v", tag.Named[2])
	}
	for _, body := range []string{"", "cm, rate uT", "bad-name s", "t in seconds."} {
		if _, err := ParseUnitTag(body); err == nil {
			t.Errorf("ParseUnitTag(%q): expected error", body)
		}
	}
}

func TestCutUnitTag(t *testing.T) {
	if body, ok := CutUnitTag("  unit: cm  "); !ok || body != "cm" {
		t.Fatalf("CutUnitTag line-start: %q, %v", body, ok)
	}
	if _, ok := CutUnitTag("the unit: cm is used"); ok {
		t.Fatalf("mid-line unit: must not be a tag")
	}
}

func TestUnitFromName(t *testing.T) {
	cases := []struct {
		name string
		expr string
	}{
		{"MaxDistanceMeters", "m"},
		{"cutoffHz", "Hz"},
		{"SwingMicroTesla", "uT"},
		{"SwingMicroTeslaPerSecond", "uT/s"},
		{"windowSeconds", "s"},
		{"HalfAngleDeg", "deg"},
		{"NoiseDB", "dB"},
		{"accelMS2", "m/s^2"},
		{"GainRatio", "dimensionless"},
	}
	for _, tc := range cases {
		got, ok := UnitFromName(tc.name)
		if !ok {
			t.Errorf("UnitFromName(%q): no unit", tc.name)
			continue
		}
		if want := unit(t, tc.expr); !got.Equal(want) {
			t.Errorf("UnitFromName(%q) = %v, want %v", tc.name, got, want)
		}
	}
	for _, name := range []string{"x", "count", "Label", "PerSecond"} {
		if _, ok := UnitFromName(name); ok {
			t.Errorf("UnitFromName(%q): unexpected unit", name)
		}
	}
}
