package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// DigestHexAnalyzer flags cryptographic hash sums rendered as raw hex —
// hex.EncodeToString on a sum, or an fmt verb like %x fed one — anywhere
// outside internal/evidence. The evidence-pack integrity contract is that
// every content digest in the tree is the canonical "sha256:"-prefixed
// form produced by evidence.Digest: a bare hex digest cannot be
// distinguished from a digest under a future algorithm migration, and
// ad-hoc formatting is how two members of the same pack end up
// incomparable. Non-cryptographic hex (span IDs from crypto/rand, FNV
// checksums) is not a content digest and is not flagged.
//
// Taint is tracked per function declaration, syntactically: a value from
// a crypto/* Sum function (sha256.Sum256, ...), or from the Sum method of
// a hasher constructed by a crypto/* New function, is a hash sum — through
// re-slice, paren, copy or address-of — and so is any variable later
// derived from one the same way.
var DigestHexAnalyzer = &Analyzer{
	Name: "digesthex",
	Doc:  "flags raw hex rendering of crypto hash sums outside internal/evidence",
	Run:  runDigestHex,
}

// digestHexExemptPkg is the one package allowed to hex-format hash sums:
// it owns the canonical digest encoding everything else must call.
const digestHexExemptPkg = "voiceguard/internal/evidence"

// hexVerbRE matches an fmt %x / %X verb with any flags or width.
var hexVerbRE = regexp.MustCompile(`%[-+ #0-9.*\[\]]*[xX]`)

func runDigestHex(pass *Pass) error {
	if pass.Pkg.Path() == digestHexExemptPkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDigestHex(pass, fd.Body)
		}
	}
	return nil
}

// checkDigestHex walks one function body in source order, growing the
// sets of sum-tainted and hasher-tainted variables and reporting hex
// sinks fed a sum.
func checkDigestHex(pass *Pass, body *ast.BlockStmt) {
	sums := make(map[types.Object]bool)
	hashers := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				lhs, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[lhs]
				if obj == nil {
					obj = pass.TypesInfo.Uses[lhs]
				}
				if obj == nil {
					continue
				}
				switch {
				case sumDerived(pass, sums, hashers, rhs):
					sums[obj] = true
				case hasherDerived(pass, hashers, rhs):
					hashers[obj] = true
				default:
					// Reassignment to a fresh value clears the taint.
					delete(sums, obj)
					delete(hashers, obj)
				}
			}
		case *ast.CallExpr:
			reportDigestHexSink(pass, sums, hashers, s)
		}
		return true
	})
}

// reportDigestHexSink flags a hex-rendering call fed a hash sum: any
// encoding/hex encoder, or an fmt formatting call whose format literal
// carries a %x verb.
func reportDigestHexSink(pass *Pass, sums, hashers map[types.Object]bool, call *ast.CallExpr) {
	pkg, name := calleePkgFunc(pass, call)
	tainted := func() bool {
		for _, arg := range call.Args {
			if sumDerived(pass, sums, hashers, arg) {
				return true
			}
		}
		return false
	}
	switch {
	case pkg == "encoding/hex" && strings.Contains(name, "Encode"):
		if tainted() {
			pass.Reportf(call.Pos(), "raw hex of a hash sum via hex.%s; use evidence.Digest for the canonical sha256:-prefixed form", name)
		}
	case pkg == "fmt" && fmtFormatsHex(call):
		if tainted() {
			pass.Reportf(call.Pos(), "raw hex of a hash sum via fmt.%s %%x; use evidence.Digest for the canonical sha256:-prefixed form", name)
		}
	}
}

// fmtFormatsHex reports whether an fmt call's first string literal
// argument (the format) contains a hex verb.
func fmtFormatsHex(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return false
		}
		return hexVerbRE.MatchString(format)
	}
	return false
}

// sumDerived reports whether e is a cryptographic hash sum: a crypto/*
// Sum function result, the Sum method of a tainted hasher, or a value
// derived from a tainted variable through paren, slice, dereference or
// address-of.
func sumDerived(pass *Pass, sums, hashers map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		return obj != nil && sums[obj]
	case *ast.ParenExpr:
		return sumDerived(pass, sums, hashers, x.X)
	case *ast.SliceExpr:
		return sumDerived(pass, sums, hashers, x.X)
	case *ast.StarExpr:
		return sumDerived(pass, sums, hashers, x.X)
	case *ast.UnaryExpr:
		return sumDerived(pass, sums, hashers, x.X)
	case *ast.CallExpr:
		if pkg, name := calleePkgFunc(pass, x); strings.HasPrefix(pkg, "crypto/") && strings.HasPrefix(name, "Sum") {
			return true
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sum" {
			return hasherDerived(pass, hashers, sel.X)
		}
	}
	return false
}

// hasherDerived reports whether e is a hasher built by a crypto/* New
// constructor, directly or through a tainted variable.
func hasherDerived(pass *Pass, hashers map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		return obj != nil && hashers[obj]
	case *ast.ParenExpr:
		return hasherDerived(pass, hashers, x.X)
	case *ast.CallExpr:
		pkg, name := calleePkgFunc(pass, x)
		return strings.HasPrefix(pkg, "crypto/") && strings.HasPrefix(name, "New")
	}
	return false
}

// calleePkgFunc resolves a call of the pkg.Func form to its package path
// and function name ("", "" for method calls and locals).
func calleePkgFunc(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
