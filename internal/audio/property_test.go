package audio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests on the audio substrate's invariants.

func TestWAVRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 2000 {
			return true
		}
		s := &Signal{Samples: make([]float64, len(raw)), Rate: 16000}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Constrain to the representable range.
			s.Samples[i] = math.Mod(v, 1)
		}
		var buf bytes.Buffer
		if err := WriteWAV(&buf, s); err != nil {
			return false
		}
		got, err := ReadWAV(&buf)
		if err != nil {
			return false
		}
		if got.Len() != s.Len() {
			return false
		}
		for i := range got.Samples {
			if math.Abs(got.Samples[i]-s.Samples[i]) > 1.0/32000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPreEmphasisInvertibleProperty(t *testing.T) {
	// y[n] = x[n] - a·x[n-1] is exactly invertible by x[n] = y[n] + a·x[n-1].
	f := func(raw []float64, alphaRaw float64) bool {
		if len(raw) == 0 || len(raw) > 500 || math.IsNaN(alphaRaw) || math.IsInf(alphaRaw, 0) {
			return true
		}
		alpha := math.Mod(math.Abs(alphaRaw), 0.99)
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			x[i] = math.Mod(v, 10)
		}
		y := PreEmphasis(x, alpha)
		// Invert.
		inv := make([]float64, len(y))
		var prev float64
		for i, v := range y {
			inv[i] = v + alpha*prev
			prev = inv[i]
		}
		for i := range x {
			if math.Abs(inv[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFrameCountProperty(t *testing.T) {
	// Frames never overlap past the end and tile the prefix exactly.
	f := func(nRaw, sizeRaw, hopRaw uint8) bool {
		n, size, hop := int(nRaw), int(sizeRaw)%64+1, int(hopRaw)%32+1
		x := make([]float64, n)
		frames := Frame(x, size, hop)
		if n < size {
			return frames == nil
		}
		want := 1 + (n-size)/hop
		if len(frames) != want {
			return false
		}
		for i, fr := range frames {
			if len(fr) != size {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMixIntoLengthProperty(t *testing.T) {
	f := func(baseLen, addLen uint8, offset int8) bool {
		base := &Signal{Samples: make([]float64, baseLen), Rate: 100}
		add := &Signal{Samples: make([]float64, addLen), Rate: 100}
		off := int(offset)
		if err := base.MixInto(add, off); err != nil {
			return false
		}
		clampedOff := off
		if clampedOff < 0 {
			clampedOff = 0
		}
		want := int(baseLen)
		if need := clampedOff + int(addLen); need > want {
			want = need
		}
		return base.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
