package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// WAV serialization for 16-bit mono PCM. The client/server protocol ships
// audio as WAV payloads, matching what a real capture app would upload.

// ErrBadWAV is returned for malformed WAV input.
var ErrBadWAV = errors.New("audio: malformed WAV data")

// WriteWAV encodes the signal as a 16-bit mono PCM WAV stream. Samples are
// clipped to [-1, 1].
func WriteWAV(w io.Writer, s *Signal) error {
	if s.Rate <= 0 {
		return fmt.Errorf("audio: invalid sample rate %v", s.Rate)
	}
	dataLen := len(s.Samples) * 2
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(36+dataLen))
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)
	binary.LittleEndian.PutUint16(hdr[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1) // mono
	rate := uint32(math.Round(s.Rate))
	binary.LittleEndian.PutUint32(hdr[24:28], rate)
	binary.LittleEndian.PutUint32(hdr[28:32], rate*2) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)      // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)     // bits per sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], uint32(dataLen))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}
	buf := make([]byte, 2*len(s.Samples))
	for i, v := range s.Samples {
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(int16(math.Round(v*32767))))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("audio: writing WAV samples: %w", err)
	}
	return nil
}

// ReadWAV decodes a 16-bit mono PCM WAV stream produced by WriteWAV (or any
// compatible encoder).
func ReadWAV(r io.Reader) (*Signal, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadWAV, err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return nil, fmt.Errorf("%w: missing RIFF/WAVE magic", ErrBadWAV)
	}
	var (
		rate     uint32
		bits     uint16
		channels uint16
		sawFmt   bool
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated chunk header: %v", ErrBadWAV, err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		switch id {
		case "fmt ":
			if size < 16 {
				return nil, fmt.Errorf("%w: fmt chunk too small", ErrBadWAV)
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, fmt.Errorf("%w: truncated fmt chunk: %v", ErrBadWAV, err)
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			channels = binary.LittleEndian.Uint16(body[2:4])
			rate = binary.LittleEndian.Uint32(body[4:8])
			bits = binary.LittleEndian.Uint16(body[14:16])
			if format != 1 {
				return nil, fmt.Errorf("%w: unsupported format %d (want PCM)", ErrBadWAV, format)
			}
			if channels != 1 {
				return nil, fmt.Errorf("%w: unsupported channel count %d (want mono)", ErrBadWAV, channels)
			}
			if bits != 16 {
				return nil, fmt.Errorf("%w: unsupported bit depth %d (want 16)", ErrBadWAV, bits)
			}
			sawFmt = true
		case "data":
			if !sawFmt {
				return nil, fmt.Errorf("%w: data chunk before fmt", ErrBadWAV)
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, fmt.Errorf("%w: truncated data chunk: %v", ErrBadWAV, err)
			}
			n := int(size) / 2
			s := &Signal{Samples: make([]float64, n), Rate: float64(rate)}
			for i := 0; i < n; i++ {
				v := int16(binary.LittleEndian.Uint16(body[2*i:]))
				s.Samples[i] = float64(v) / 32767
			}
			return s, nil
		default:
			// Skip unknown chunks (LIST, etc.).
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, fmt.Errorf("%w: truncated %q chunk: %v", ErrBadWAV, id, err)
			}
		}
	}
}
