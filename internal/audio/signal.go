// Package audio provides the time-domain signal representation shared by
// the speech synthesizer, the ranging pipeline and the feature extractors,
// plus the supporting operations a real capture stack would perform:
// framing, pre-emphasis, intensity measurement, voice-activity detection,
// resampling, mixing and WAV serialization.
package audio

import (
	"errors"
	"fmt"
	"math"

	"voiceguard/internal/stats"
)

// Signal is a mono PCM signal with an associated sample rate.
type Signal struct {
	// Samples holds the waveform in the nominal range [-1, 1].
	Samples []float64
	// Rate is the sample rate in Hz.
	Rate float64
}

// NewSignal allocates a silent signal of the given duration.
func NewSignal(duration, rate float64) *Signal {
	n := int(math.Round(duration * rate))
	if n < 0 {
		n = 0
	}
	return &Signal{Samples: make([]float64, n), Rate: rate}
}

// Duration returns the signal length in seconds.
func (s *Signal) Duration() float64 {
	if stats.IsZero(s.Rate) {
		return 0
	}
	return float64(len(s.Samples)) / s.Rate
}

// Len returns the number of samples.
func (s *Signal) Len() int { return len(s.Samples) }

// Clone returns a deep copy of the signal.
func (s *Signal) Clone() *Signal {
	out := &Signal{Samples: make([]float64, len(s.Samples)), Rate: s.Rate}
	copy(out.Samples, s.Samples)
	return out
}

// Slice returns a new Signal sharing no memory with s, covering samples
// [from, to). Bounds are clamped to the valid range.
func (s *Signal) Slice(from, to int) *Signal {
	if from < 0 {
		from = 0
	}
	if to > len(s.Samples) {
		to = len(s.Samples)
	}
	if from > to {
		from = to
	}
	out := &Signal{Samples: make([]float64, to-from), Rate: s.Rate}
	copy(out.Samples, s.Samples[from:to])
	return out
}

// Scale multiplies every sample by g in place and returns s.
func (s *Signal) Scale(g float64) *Signal {
	for i := range s.Samples {
		s.Samples[i] *= g
	}
	return s
}

// ErrRateMismatch is returned when combining signals with different rates.
var ErrRateMismatch = errors.New("audio: sample rate mismatch")

// MixInto adds other into s starting at the given sample offset, extending
// s if needed. It returns an error if the sample rates differ.
func (s *Signal) MixInto(other *Signal, offset int) error {
	if !stats.ApproxEqual(s.Rate, other.Rate, stats.Epsilon) {
		return fmt.Errorf("%w: %v vs %v", ErrRateMismatch, s.Rate, other.Rate)
	}
	if offset < 0 {
		offset = 0
	}
	need := offset + len(other.Samples)
	if need > len(s.Samples) {
		grown := make([]float64, need)
		copy(grown, s.Samples)
		s.Samples = grown
	}
	for i, v := range other.Samples {
		s.Samples[offset+i] += v
	}
	return nil
}

// Append concatenates other after s. It returns an error if the sample
// rates differ.
func (s *Signal) Append(other *Signal) error {
	if !stats.ApproxEqual(s.Rate, other.Rate, stats.Epsilon) {
		return fmt.Errorf("%w: %v vs %v", ErrRateMismatch, s.Rate, other.Rate)
	}
	s.Samples = append(s.Samples, other.Samples...)
	return nil
}

// RMS returns the root-mean-square amplitude of the signal.
func (s *Signal) RMS() float64 {
	return RMS(s.Samples)
}

// Peak returns the maximum absolute sample value.
func (s *Signal) Peak() float64 {
	var p float64
	for _, v := range s.Samples {
		if a := math.Abs(v); a > p {
			p = a
		}
	}
	return p
}

// Normalize scales the signal so its peak is the given level (commonly
// slightly below 1). Silent signals are left unchanged.
func (s *Signal) Normalize(level float64) *Signal {
	p := s.Peak()
	if stats.IsZero(p) {
		return s
	}
	return s.Scale(level / p)
}

// RMS returns the root-mean-square of a sample block.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var e float64
	for _, v := range x {
		e += v * v
	}
	return math.Sqrt(e / float64(len(x)))
}

// DBSPLReference is the digital full-scale calibration used to convert RMS
// amplitude into a nominal dB SPL figure: a full-scale sine (RMS 1/√2) maps
// to 94 dB, a common microphone calibration point.
const DBSPLReference = 94.0

// LevelDB converts an RMS amplitude into a nominal sound level in dB
// relative to the DBSPLReference calibration. Silence maps to -∞ guarded
// to -120 dB.
func LevelDB(rms float64) float64 {
	if rms <= 0 {
		return -120
	}
	db := DBSPLReference + 20*math.Log10(rms*math.Sqrt2)
	if db < -120 {
		db = -120
	}
	return db
}

// PreEmphasis applies the standard first-order high-pass y[n] = x[n] -
// alpha*x[n-1] (alpha typically 0.97) and returns a new slice. It whitens
// the spectral tilt of voiced speech before MFCC analysis.
func PreEmphasis(x []float64, alpha float64) []float64 {
	out := make([]float64, len(x))
	var prev float64
	for i, v := range x {
		out[i] = v - alpha*prev
		prev = v
	}
	return out
}

// Frame splits x into frames of the given size with the given hop,
// discarding the trailing partial frame. The returned slices alias x.
func Frame(x []float64, size, hop int) [][]float64 {
	if size <= 0 || hop <= 0 || len(x) < size {
		return nil
	}
	n := 1 + (len(x)-size)/hop
	frames := make([][]float64, n)
	for i := range frames {
		frames[i] = x[i*hop : i*hop+size]
	}
	return frames
}
