package audio

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func sine(freq, rate, dur, amp float64) *Signal {
	s := NewSignal(dur, rate)
	for i := range s.Samples {
		s.Samples[i] = amp * math.Sin(2*math.Pi*freq*float64(i)/rate)
	}
	return s
}

func TestNewSignal(t *testing.T) {
	s := NewSignal(0.5, 16000)
	if s.Len() != 8000 {
		t.Errorf("len = %d, want 8000", s.Len())
	}
	if math.Abs(s.Duration()-0.5) > 1e-9 {
		t.Errorf("duration = %v", s.Duration())
	}
	if NewSignal(-1, 16000).Len() != 0 {
		t.Error("negative duration should give empty signal")
	}
	if (&Signal{}).Duration() != 0 {
		t.Error("zero-rate duration should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := sine(440, 16000, 0.01, 1)
	c := s.Clone()
	c.Samples[0] = 42
	if s.Samples[0] == 42 {
		t.Error("Clone must not alias")
	}
}

func TestSliceBounds(t *testing.T) {
	s := &Signal{Samples: []float64{0, 1, 2, 3, 4}, Rate: 10}
	tests := []struct {
		from, to int
		want     []float64
	}{
		{1, 3, []float64{1, 2}},
		{-5, 2, []float64{0, 1}},
		{3, 99, []float64{3, 4}},
		{4, 2, nil},
	}
	for _, tt := range tests {
		got := s.Slice(tt.from, tt.to)
		if len(got.Samples) != len(tt.want) {
			t.Errorf("Slice(%d,%d) len = %d, want %d", tt.from, tt.to, len(got.Samples), len(tt.want))
			continue
		}
		for i := range tt.want {
			if got.Samples[i] != tt.want[i] {
				t.Errorf("Slice(%d,%d)[%d] = %v, want %v", tt.from, tt.to, i, got.Samples[i], tt.want[i])
			}
		}
	}
}

func TestMixInto(t *testing.T) {
	base := &Signal{Samples: []float64{1, 1, 1}, Rate: 100}
	add := &Signal{Samples: []float64{2, 2}, Rate: 100}
	if err := base.MixInto(add, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 3, 2}
	for i := range want {
		if base.Samples[i] != want[i] {
			t.Errorf("mixed[%d] = %v, want %v", i, base.Samples[i], want[i])
		}
	}
	other := &Signal{Rate: 200}
	if err := base.MixInto(other, 0); !errors.Is(err, ErrRateMismatch) {
		t.Errorf("err = %v, want ErrRateMismatch", err)
	}
	// Negative offsets clamp to 0.
	b2 := &Signal{Samples: []float64{0, 0}, Rate: 100}
	if err := b2.MixInto(&Signal{Samples: []float64{5}, Rate: 100}, -3); err != nil {
		t.Fatal(err)
	}
	if b2.Samples[0] != 5 {
		t.Errorf("negative offset mix = %v", b2.Samples)
	}
}

func TestAppend(t *testing.T) {
	a := &Signal{Samples: []float64{1}, Rate: 100}
	b := &Signal{Samples: []float64{2, 3}, Rate: 100}
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 || a.Samples[2] != 3 {
		t.Errorf("append = %v", a.Samples)
	}
	if err := a.Append(&Signal{Rate: 1}); !errors.Is(err, ErrRateMismatch) {
		t.Errorf("err = %v, want ErrRateMismatch", err)
	}
}

func TestRMSAndPeak(t *testing.T) {
	s := sine(100, 8000, 1, 1)
	if got := s.RMS(); math.Abs(got-1/math.Sqrt2) > 1e-3 {
		t.Errorf("sine RMS = %v, want %v", got, 1/math.Sqrt2)
	}
	if got := s.Peak(); math.Abs(got-1) > 1e-3 {
		t.Errorf("peak = %v, want 1", got)
	}
	if RMS(nil) != 0 {
		t.Error("RMS(nil) should be 0")
	}
}

func TestNormalize(t *testing.T) {
	s := sine(100, 8000, 0.1, 0.2)
	s.Normalize(0.9)
	if math.Abs(s.Peak()-0.9) > 1e-6 {
		t.Errorf("normalized peak = %v", s.Peak())
	}
	z := NewSignal(0.1, 8000)
	z.Normalize(0.9) // must not panic or change
	if z.Peak() != 0 {
		t.Error("silent normalize should stay silent")
	}
}

func TestLevelDB(t *testing.T) {
	// Full-scale sine: RMS = 1/√2 → 94 dB by calibration.
	if got := LevelDB(1 / math.Sqrt2); math.Abs(got-94) > 1e-9 {
		t.Errorf("full-scale = %v dB, want 94", got)
	}
	// Halving amplitude loses ~6.02 dB.
	d := LevelDB(1/math.Sqrt2) - LevelDB(0.5/math.Sqrt2)
	if math.Abs(d-6.0206) > 1e-3 {
		t.Errorf("6 dB step = %v", d)
	}
	if LevelDB(0) != -120 {
		t.Error("silence should clamp to -120")
	}
}

func TestPreEmphasis(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := PreEmphasis(x, 0.97)
	if y[0] != 1 {
		t.Errorf("y[0] = %v", y[0])
	}
	for i := 1; i < len(y); i++ {
		if math.Abs(y[i]-0.03) > 1e-12 {
			t.Errorf("y[%d] = %v, want 0.03", i, y[i])
		}
	}
}

func TestFrame(t *testing.T) {
	x := make([]float64, 10)
	for i := range x {
		x[i] = float64(i)
	}
	fr := Frame(x, 4, 3)
	if len(fr) != 3 {
		t.Fatalf("frames = %d, want 3", len(fr))
	}
	if fr[2][0] != 6 || fr[2][3] != 9 {
		t.Errorf("frame 2 = %v", fr[2])
	}
	if Frame(x, 0, 1) != nil || Frame(x, 4, 0) != nil || Frame(x[:2], 4, 1) != nil {
		t.Error("invalid framing should return nil")
	}
}

func TestScaleProperty(t *testing.T) {
	f := func(vals []float64, g float64) bool {
		if math.IsNaN(g) || math.IsInf(g, 0) || len(vals) > 1000 {
			return true
		}
		g = math.Mod(g, 100)
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			clean = append(clean, math.Mod(v, 100))
		}
		s := &Signal{Samples: clean, Rate: 100}
		before := s.RMS()
		s.Scale(g)
		after := s.RMS()
		return math.Abs(after-math.Abs(g)*before) <= 1e-6*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
