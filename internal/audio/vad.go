package audio

import (
	"math"

	"voiceguard/internal/stats"
)

// VADConfig configures the energy-based voice activity detector used to
// trim leading/trailing silence before feature extraction.
type VADConfig struct {
	// FrameSize is the analysis frame length in samples (default 400,
	// i.e. 25 ms at 16 kHz).
	FrameSize int
	// HopSize is the frame advance in samples (default FrameSize/2).
	HopSize int
	// ThresholdDB is how many dB above the noise floor a frame must be to
	// count as speech (default 12 dB).
	ThresholdDB float64
	// HangoverFrames keeps this many frames active after the last speech
	// frame, bridging short pauses (default 5).
	HangoverFrames int
	// MinRMS marks a frame active regardless of the relative threshold
	// when its RMS exceeds this absolute level, so recordings with no
	// silent portion (hence no measurable noise floor) are still detected
	// (default 0.02, about -34 dBFS).
	MinRMS float64
}

func (c *VADConfig) setDefaults() {
	if c.FrameSize <= 0 {
		c.FrameSize = 400
	}
	if c.HopSize <= 0 {
		c.HopSize = c.FrameSize / 2
	}
	if stats.IsZero(c.ThresholdDB) {
		c.ThresholdDB = 12
	}
	if c.HangoverFrames == 0 {
		c.HangoverFrames = 5
	}
	if stats.IsZero(c.MinRMS) {
		c.MinRMS = 0.02
	}
}

// DetectActivity returns a boolean mask with one entry per analysis frame,
// true where speech is present. The noise floor is estimated as the 10th
// percentile of frame energies.
func DetectActivity(x []float64, cfg VADConfig) []bool {
	cfg.setDefaults()
	frames := Frame(x, cfg.FrameSize, cfg.HopSize)
	if len(frames) == 0 {
		return nil
	}
	energies := make([]float64, len(frames))
	sorted := make([]float64, len(frames))
	for i, f := range frames {
		e := RMS(f)
		energies[i] = e
		sorted[i] = e
	}
	insertionSort(sorted)
	floor := sorted[len(sorted)/10]
	if floor <= 0 {
		floor = 1e-9
	}
	thresh := floor * math.Pow(10, cfg.ThresholdDB/20)

	mask := make([]bool, len(frames))
	hang := 0
	for i, e := range energies {
		if e >= thresh || e >= cfg.MinRMS {
			mask[i] = true
			hang = cfg.HangoverFrames
		} else if hang > 0 {
			mask[i] = true
			hang--
		}
	}
	return mask
}

// TrimSilence returns a copy of s with leading and trailing silence
// removed, using the energy VAD. A fully silent signal returns an empty
// signal with the same rate.
func TrimSilence(s *Signal, cfg VADConfig) *Signal {
	cfg.setDefaults()
	mask := DetectActivity(s.Samples, cfg)
	first, last := -1, -1
	for i, m := range mask {
		if m {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return &Signal{Rate: s.Rate}
	}
	from := first * cfg.HopSize
	to := last*cfg.HopSize + cfg.FrameSize
	return s.Slice(from, to)
}

// ActiveRatio returns the fraction of frames classified as speech.
func ActiveRatio(x []float64, cfg VADConfig) float64 {
	mask := DetectActivity(x, cfg)
	if len(mask) == 0 {
		return 0
	}
	var n int
	for _, m := range mask {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(mask))
}

// insertionSort sorts in place; frame counts are small enough that this
// avoids pulling in the sort package's interface machinery on a hot path.
func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// Resample converts s to the target rate using windowed-sinc interpolation
// (8-tap Lanczos-style kernel). It returns a new signal; s is unchanged.
func Resample(s *Signal, targetRate float64) *Signal {
	if stats.ApproxEqual(targetRate, s.Rate, stats.Epsilon) || len(s.Samples) == 0 {
		out := s.Clone()
		out.Rate = targetRate
		return out
	}
	ratio := s.Rate / targetRate
	n := int(float64(len(s.Samples)) / ratio)
	out := &Signal{Samples: make([]float64, n), Rate: targetRate}
	const a = 4 // kernel half-width
	for i := 0; i < n; i++ {
		center := float64(i) * ratio
		j0 := int(center) - a + 1
		var acc, wsum float64
		for j := j0; j <= j0+2*a-1; j++ {
			if j < 0 || j >= len(s.Samples) {
				continue
			}
			w := lanczos(center-float64(j), a)
			acc += s.Samples[j] * w
			wsum += w
		}
		if !stats.IsZero(wsum) {
			out.Samples[i] = acc / wsum
		}
	}
	return out
}

func lanczos(x float64, a int) float64 {
	if stats.IsZero(x) {
		return 1
	}
	fa := float64(a)
	if x <= -fa || x >= fa {
		return 0
	}
	px := math.Pi * x
	return fa * math.Sin(px) * math.Sin(px/fa) / (px * px)
}
