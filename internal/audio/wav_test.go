package audio

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestWAVRoundTrip(t *testing.T) {
	orig := sine(440, 16000, 0.05, 0.8)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, orig); err != nil {
		t.Fatalf("WriteWAV: %v", err)
	}
	if buf.Len() != 44+2*orig.Len() {
		t.Errorf("encoded size = %d, want %d", buf.Len(), 44+2*orig.Len())
	}
	got, err := ReadWAV(&buf)
	if err != nil {
		t.Fatalf("ReadWAV: %v", err)
	}
	if got.Rate != orig.Rate {
		t.Errorf("rate = %v, want %v", got.Rate, orig.Rate)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range got.Samples {
		if math.Abs(got.Samples[i]-orig.Samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v vs %v", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestWAVClipping(t *testing.T) {
	s := &Signal{Samples: []float64{2.5, -3, 0}, Rate: 8000}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Samples[0]-1) > 1e-3 || math.Abs(got.Samples[1]+1) > 1e-3 {
		t.Errorf("clipped samples = %v", got.Samples)
	}
}

func TestWAVInvalidRate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, &Signal{Rate: 0}); err == nil {
		t.Error("expected error for zero rate")
	}
}

func TestReadWAVMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     []byte("RIFF"),
		"bad magic": []byte("XXXX0000WAVE"),
		"no chunks": []byte("RIFF\x00\x00\x00\x00WAVE"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadWAV(bytes.NewReader(data)); !errors.Is(err, ErrBadWAV) {
				t.Errorf("err = %v, want ErrBadWAV", err)
			}
		})
	}
}

func TestReadWAVSkipsUnknownChunks(t *testing.T) {
	orig := sine(100, 8000, 0.01, 0.5)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Splice a LIST chunk between fmt and data.
	var spliced bytes.Buffer
	spliced.Write(raw[:36])
	spliced.WriteString("LIST")
	spliced.Write([]byte{4, 0, 0, 0})
	spliced.WriteString("INFO")
	spliced.Write(raw[36:])
	got, err := ReadWAV(&spliced)
	if err != nil {
		t.Fatalf("ReadWAV with LIST chunk: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Errorf("len = %d, want %d", got.Len(), orig.Len())
	}
}

func TestVADDetectsSpeechBurst(t *testing.T) {
	const rate = 16000.0
	s := NewSignal(1.5, rate)
	burst := sine(300, rate, 0.5, 0.5)
	// Low noise floor everywhere.
	for i := range s.Samples {
		s.Samples[i] = 0.001 * math.Sin(0.01*float64(i))
	}
	if err := s.MixInto(burst, 8000); err != nil {
		t.Fatal(err)
	}
	cfg := VADConfig{}
	mask := DetectActivity(s.Samples, cfg)
	if len(mask) == 0 {
		t.Fatal("no frames")
	}
	// Roughly the middle third should be active.
	third := len(mask) / 3
	var active int
	for _, m := range mask[third : 2*third] {
		if m {
			active++
		}
	}
	if active < third/2 {
		t.Errorf("middle activity = %d/%d", active, third)
	}
	var leading int
	for _, m := range mask[:third/2] {
		if m {
			leading++
		}
	}
	if leading > third/8 {
		t.Errorf("leading silence marked active: %d frames", leading)
	}
}

func TestTrimSilence(t *testing.T) {
	const rate = 16000.0
	s := NewSignal(1.0, rate)
	burst := sine(300, rate, 0.3, 0.5)
	if err := s.MixInto(burst, 5600); err != nil {
		t.Fatal(err)
	}
	trimmed := TrimSilence(s, VADConfig{})
	if trimmed.Len() >= s.Len() {
		t.Errorf("trim did not shrink: %d >= %d", trimmed.Len(), s.Len())
	}
	if trimmed.Len() < burst.Len()/2 {
		t.Errorf("trim too aggressive: %d < %d", trimmed.Len(), burst.Len()/2)
	}
	// Fully silent signal trims to empty.
	empty := TrimSilence(NewSignal(0.5, rate), VADConfig{})
	if empty.Len() != 0 {
		t.Errorf("silent trim len = %d", empty.Len())
	}
	if empty.Rate != rate {
		t.Errorf("silent trim rate = %v", empty.Rate)
	}
}

func TestActiveRatio(t *testing.T) {
	const rate = 16000.0
	loud := sine(300, rate, 1, 0.5)
	if r := ActiveRatio(loud.Samples, VADConfig{}); r < 0.9 {
		t.Errorf("constant tone active ratio = %v", r)
	}
	if r := ActiveRatio(nil, VADConfig{}); r != 0 {
		t.Errorf("empty active ratio = %v", r)
	}
}

func TestResample(t *testing.T) {
	orig := sine(440, 48000, 0.1, 0.8)
	down := Resample(orig, 16000)
	if math.Abs(down.Duration()-orig.Duration()) > 0.01 {
		t.Errorf("duration changed: %v vs %v", down.Duration(), orig.Duration())
	}
	if down.Rate != 16000 {
		t.Errorf("rate = %v", down.Rate)
	}
	// The 440 Hz tone should survive with similar RMS.
	if math.Abs(down.RMS()-orig.RMS()) > 0.05 {
		t.Errorf("rms = %v vs %v", down.RMS(), orig.RMS())
	}
	// Identity resample copies.
	same := Resample(orig, 48000)
	same.Samples[0] = 99
	if orig.Samples[0] == 99 {
		t.Error("identity resample must copy")
	}
	up := Resample(down, 48000)
	if math.Abs(up.Duration()-orig.Duration()) > 0.01 {
		t.Errorf("upsample duration = %v", up.Duration())
	}
}

func BenchmarkWAVRoundTrip(b *testing.B) {
	s := sine(440, 16000, 1, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteWAV(&buf, s); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadWAV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResample(b *testing.B) {
	s := sine(440, 48000, 1, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Resample(s, 16000)
	}
}
