package device

import (
	"math"
	"testing"

	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
)

func TestPhonesMatchTableII(t *testing.T) {
	phones := Phones()
	if len(phones) != 3 {
		t.Fatalf("phones = %d, want 3", len(phones))
	}
	want := map[string]string{
		"Nexus 5":      "Google (LG)",
		"Nexus 4":      "Google (LG)",
		"Galaxy Nexus": "Samsung",
	}
	for _, p := range phones {
		maker, ok := want[p.Model]
		if !ok {
			t.Errorf("unexpected model %q", p.Model)
			continue
		}
		if p.Maker != maker {
			t.Errorf("%s maker = %q, want %q", p.Model, p.Maker, maker)
		}
		if p.Magnetometer.Name != "AK8975" {
			t.Errorf("%s magnetometer = %q", p.Model, p.Magnetometer.Name)
		}
		if p.MaxPilotHz < 16000 {
			t.Errorf("%s pilot %v below the paper's 16 kHz floor", p.Model, p.MaxPilotHz)
		}
	}
}

func TestCatalogMatchesTableIV(t *testing.T) {
	cat := Catalog()
	if len(cat) != 25 {
		t.Fatalf("catalog = %d entries, want 25", len(cat))
	}
	classes := make(map[SpeakerClass]int)
	for _, l := range cat {
		classes[l.Class]++
		if !l.Conventional() {
			t.Errorf("%s %s: Table IV speakers are all conventional", l.Maker, l.Model)
		}
		if l.ConeRadius <= 0 {
			t.Errorf("%s %s: missing cone radius", l.Maker, l.Model)
		}
	}
	// The table spans PC, portable, outdoor, floor, laptop, all-in-one,
	// phone and earphone classes.
	for _, c := range []SpeakerClass{
		ClassPCSpeaker, ClassPortable, ClassOutdoor, ClassFloor,
		ClassLaptopInternal, ClassAllInOneInternal, ClassPhoneInternal, ClassEarphone,
	} {
		if classes[c] == 0 {
			t.Errorf("class %v missing from catalog", c)
		}
	}
	if classes[ClassEarphone] != 2 {
		t.Errorf("earphones = %d, want 2", classes[ClassEarphone])
	}
}

func TestCatalogFieldsInPaperRange(t *testing.T) {
	// Near the cone (~3–5 cm from the magnet), conventional speakers
	// other than earphones should emit fields in the paper's observed
	// 30–210 µT window (Fig. 10); earphones are far weaker — that is the
	// paper's motivation for the sound-field component.
	for _, l := range Catalog() {
		d := magnetics.Dipole{Moment: geometry.Vec3{X: l.MagnetMoment}}
		b := d.FieldAt(geometry.Vec3{X: 0.035}, 0).Norm()
		if l.Class == ClassEarphone {
			if b > 30 {
				t.Errorf("%s %s: earphone field %v µT too strong", l.Maker, l.Model, b)
			}
			continue
		}
		if b < 30 || b > 800 {
			t.Errorf("%s %s: near-cone field %.1f µT outside plausible window", l.Maker, l.Model, b)
		}
	}
}

func TestFieldSources(t *testing.T) {
	l := Catalog()[0]
	pos := geometry.Vec3{X: 0.1}
	drive := func(t float64) float64 { return math.Sin(t) }
	srcs := l.FieldSources(pos, drive)
	if len(srcs) != 2 {
		t.Fatalf("sources = %d, want magnet+coil", len(srcs))
	}
	// Without drive: magnet only.
	if n := len(l.FieldSources(pos, nil)); n != 1 {
		t.Errorf("silent sources = %d, want 1", n)
	}
	esl := Electrostatic()
	if esl.Conventional() {
		t.Error("electrostatic should not be conventional")
	}
	if n := len(esl.FieldSources(pos, drive)); n != 1 {
		t.Errorf("ESL sources = %d, want 1 (grids)", n)
	}
	piezo := Piezoelectric()
	if n := len(piezo.FieldSources(pos, drive)); n != 0 {
		t.Errorf("piezo sources = %d, want 0", n)
	}
}

func TestSpeakerSource(t *testing.T) {
	for _, l := range Catalog() {
		src := l.Source()
		if src == nil {
			t.Fatalf("%s %s: nil source", l.Maker, l.Model)
		}
		if l.Class == ClassEarphone && src.Name() != "earphone" {
			t.Errorf("%s %s: source = %q", l.Maker, l.Model, src.Name())
		}
	}
	if Electrostatic().Source().Name() != "electrostatic-panel" {
		t.Error("ESL source name")
	}
}

func TestSpeakerClassString(t *testing.T) {
	for c := ClassPCSpeaker; c <= ClassPiezoelectric; c++ {
		if c.String() == "unknown" {
			t.Errorf("class %d has no label", c)
		}
	}
	if SpeakerClass(0).String() != "unknown" {
		t.Error("zero class should be unknown")
	}
}
