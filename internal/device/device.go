// Package device catalogs the hardware of the paper's evaluation: the
// smartphone testbeds of Table II and the 25 loudspeakers of Table IV
// (plus the unconventional electrostatic/piezoelectric speakers discussed
// in §VII). Each loudspeaker entry carries the physical parameters its
// simulation needs: permanent-magnet dipole moment, voice-coil gain and
// effective cone radius.
package device

import (
	"fmt"

	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/sensors"
	"voiceguard/internal/soundfield"
)

// Phone is one smartphone testbed.
type Phone struct {
	// Maker and Model identify the device (Table II).
	Maker, Model string
	// Magnetometer is the onboard magnetometer spec.
	Magnetometer sensors.Spec
	// Accelerometer and Gyroscope are the onboard IMU specs.
	Accelerometer, Gyroscope sensors.Spec
	// MaxPilotHz is the highest usable inaudible pilot frequency found by
	// the calibration procedure the paper cites.
	MaxPilotHz float64
}

// Phones returns the paper's smartphone testbeds (Table II).
func Phones() []Phone {
	base := Phone{
		Magnetometer:  sensors.AK8975(),
		Accelerometer: sensors.PhoneAccelerometer(),
		Gyroscope:     sensors.PhoneGyroscope(),
	}
	nexus5 := base
	nexus5.Maker, nexus5.Model, nexus5.MaxPilotHz = "Google (LG)", "Nexus 5", 20000
	nexus4 := base
	nexus4.Maker, nexus4.Model, nexus4.MaxPilotHz = "Google (LG)", "Nexus 4", 19000
	galaxy := base
	galaxy.Maker, galaxy.Model, galaxy.MaxPilotHz = "Samsung", "Galaxy Nexus", 18500
	return []Phone{nexus5, nexus4, galaxy}
}

// SpeakerClass groups loudspeakers by form factor.
type SpeakerClass int

// Speaker classes evaluated by the paper.
const (
	ClassPCSpeaker SpeakerClass = iota + 1
	ClassPortable
	ClassOutdoor
	ClassFloor
	ClassLaptopInternal
	ClassAllInOneInternal
	ClassPhoneInternal
	ClassEarphone
	ClassElectrostatic
	ClassPiezoelectric
)

// String implements fmt.Stringer.
func (c SpeakerClass) String() string {
	switch c {
	case ClassPCSpeaker:
		return "pc-speaker"
	case ClassPortable:
		return "portable"
	case ClassOutdoor:
		return "outdoor"
	case ClassFloor:
		return "floor"
	case ClassLaptopInternal:
		return "laptop-internal"
	case ClassAllInOneInternal:
		return "all-in-one-internal"
	case ClassPhoneInternal:
		return "phone-internal"
	case ClassEarphone:
		return "earphone"
	case ClassElectrostatic:
		return "electrostatic"
	case ClassPiezoelectric:
		return "piezoelectric"
	default:
		return "unknown"
	}
}

// Loudspeaker is one catalog entry.
type Loudspeaker struct {
	// Maker and Model identify the unit (Table IV).
	Maker, Model string
	// Class is the form factor.
	Class SpeakerClass
	// MagnetMoment is the permanent-magnet dipole moment in A·m².
	// Conventional drivers have one; electrostatic panels do not.
	MagnetMoment float64
	// CoilMomentGain is the voice-coil dynamic moment per unit drive.
	CoilMomentGain float64
	// ConeRadius is the effective radiator radius in meters.
	ConeRadius float64
	// GridMoment is the induced/static moment of an electrostatic
	// panel's metal grids (detectable even without a magnet).
	GridMoment float64
}

// Conventional reports whether the unit uses a magnetic driver.
func (l Loudspeaker) Conventional() bool { return l.MagnetMoment > 0 }

// FieldSources returns the magnetic sources of the loudspeaker placed at
// the given position with the given drive function (normalized audio
// amplitude over time; nil for silence).
func (l Loudspeaker) FieldSources(pos geometry.Vec3, drive func(t float64) float64) []magnetics.FieldSource {
	var out []magnetics.FieldSource
	axis := geometry.Vec3{X: 1}
	if l.MagnetMoment > 0 {
		out = append(out, magnetics.Dipole{Position: pos, Moment: axis.Scale(l.MagnetMoment)})
	}
	if l.GridMoment > 0 {
		out = append(out, magnetics.Dipole{Position: pos, Moment: axis.Scale(l.GridMoment)})
	}
	if l.CoilMomentGain > 0 && drive != nil {
		out = append(out, magnetics.VoiceCoil{
			Position:   pos,
			Axis:       axis,
			MomentGain: l.CoilMomentGain,
			Drive:      drive,
		})
	}
	return out
}

// Source returns the loudspeaker's acoustic sound-field model.
func (l Loudspeaker) Source() soundfield.Source {
	name := fmt.Sprintf("%s %s", l.Maker, l.Model)
	switch l.Class {
	case ClassEarphone:
		return soundfield.Earphone()
	case ClassElectrostatic:
		return soundfield.Electrostatic()
	default:
		return soundfield.ConeSpeaker(name, l.ConeRadius)
	}
}

// Catalog returns the paper's 25 evaluated loudspeakers (Table IV).
// Magnet moments are calibrated per class so near-cone fields land in the
// 30–210 µT range the paper measures (Fig. 10 and §VI).
func Catalog() []Loudspeaker {
	mk := func(maker, model string, class SpeakerClass, moment, cone float64) Loudspeaker {
		return Loudspeaker{
			Maker: maker, Model: model, Class: class,
			MagnetMoment:   moment,
			CoilMomentGain: moment * 0.05,
			ConeRadius:     cone,
		}
	}
	return []Loudspeaker{
		mk("Logitech", "LS21 2.1 Stereo", ClassPCSpeaker, 0.085, 0.040),
		mk("Klipsch", "KHO-7 Indoor/Outdoor", ClassOutdoor, 0.140, 0.065),
		mk("Insignia", "NS-OS112 Indoor/Outdoor", ClassOutdoor, 0.120, 0.060),
		mk("Sony", "SRSX2/BLK Portable BT", ClassPortable, 0.060, 0.028),
		mk("Bose", "SoundLink Mini PINK", ClassPortable, 0.070, 0.026),
		mk("Bose", "151 SE Environmental", ClassOutdoor, 0.130, 0.057),
		mk("Yamaha", "NS-AW190BL Outdoor 5\"", ClassOutdoor, 0.110, 0.063),
		mk("Pioneer", "SP-FS52 Floor 5-1/4\"", ClassFloor, 0.160, 0.067),
		mk("HP", "D9J19AT 2.0 System", ClassPCSpeaker, 0.055, 0.030),
		mk("GPX", "HT12B 2.1 System", ClassPCSpeaker, 0.065, 0.035),
		mk("Coby", "CSMP67 2.1 Home Audio", ClassPCSpeaker, 0.070, 0.038),
		mk("Acoustic Audio", "AA2101 2.1", ClassPCSpeaker, 0.080, 0.042),
		mk("Apple", "Macbook Pro A1286 Internal", ClassLaptopInternal, 0.018, 0.014),
		mk("Apple", "Macbook Air A1466 Internal", ClassLaptopInternal, 0.014, 0.011),
		mk("Apple", "iMac MB952XX/A Internal", ClassAllInOneInternal, 0.035, 0.025),
		mk("HP", "6510b Internal GM949", ClassLaptopInternal, 0.015, 0.012),
		mk("Toshiba", "Satellite C55-B5101 Internal", ClassLaptopInternal, 0.016, 0.013),
		mk("Dell", "Inspiron I5558-2571BLK Internal", ClassLaptopInternal, 0.017, 0.013),
		mk("Apple", "iPhone 6 Plus A1524 Internal", ClassPhoneInternal, 0.009, 0.007),
		mk("Apple", "iPhone 5S A1533 Internal", ClassPhoneInternal, 0.008, 0.006),
		mk("Apple", "iPhone 4S A1387 Internal", ClassPhoneInternal, 0.008, 0.006),
		mk("LG", "Nexus 5 LG-D820 Internal", ClassPhoneInternal, 0.008, 0.006),
		mk("LG", "Nexus 4 LG-E960 Internal", ClassPhoneInternal, 0.008, 0.006),
		mk("Samsung", "Galaxy S EHS44 Earphones", ClassEarphone, 0.0008, 0.005),
		mk("Apple", "EarPods MD827LL/A", ClassEarphone, 0.0007, 0.005),
	}
}

// Electrostatic returns the §VII electrostatic-panel speaker: no
// permanent magnet, but the charged metal grids still disturb the field
// slightly, and the panel is physically large.
func Electrostatic() Loudspeaker {
	return Loudspeaker{
		Maker: "MartinLogan", Model: "ESL-class panel",
		Class:      ClassElectrostatic,
		GridMoment: 0.004,
		ConeRadius: 0.15,
	}
}

// Piezoelectric returns the §VII piezoelectric speaker: effectively no
// magnetic signature and mediocre audio quality (narrow usable band).
func Piezoelectric() Loudspeaker {
	return Loudspeaker{
		Maker: "Murata", Model: "piezo transducer",
		Class:      ClassPiezoelectric,
		ConeRadius: 0.010,
	}
}
