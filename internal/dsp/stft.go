package dsp

import (
	"errors"
	"fmt"
	"math"

	"voiceguard/internal/parallel"
	"voiceguard/internal/telemetry"
)

// Spectrogram is the output of a short-time Fourier transform: a sequence
// of magnitude spectra over time, as used by the paper's Fig. 6 (the
// received 19 kHz ranging tone while the phone moves).
type Spectrogram struct {
	// Frames holds one magnitude spectrum per analysis frame; each row has
	// FFTSize/2+1 bins (real input, non-negative frequencies).
	Frames [][]float64
	// SampleRate is the sample rate of the analyzed signal in Hz.
	SampleRate float64
	// FFTSize is the transform length.
	FFTSize int
	// HopSize is the frame advance in samples.
	HopSize int
}

// STFTConfig configures STFT analysis.
type STFTConfig struct {
	FrameSize  int     // analysis frame length in samples
	HopSize    int     // frame advance in samples
	FFTSize    int     // transform length; 0 means NextPow2(FrameSize)
	Window     Window  // taper; 0 value defaults to Hann
	SampleRate float64 // sample rate of the input signal in Hz
}

func (c *STFTConfig) setDefaults() error {
	if c.FrameSize <= 0 {
		return fmt.Errorf("dsp: FrameSize %d must be positive", c.FrameSize)
	}
	if c.HopSize <= 0 {
		return fmt.Errorf("dsp: HopSize %d must be positive", c.HopSize)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("dsp: SampleRate %v must be positive", c.SampleRate)
	}
	if c.FFTSize == 0 {
		c.FFTSize = NextPow2(c.FrameSize)
	}
	if c.FFTSize < c.FrameSize {
		return fmt.Errorf("dsp: FFTSize %d smaller than FrameSize %d", c.FFTSize, c.FrameSize)
	}
	if c.Window == 0 {
		c.Window = WindowHann
	}
	return nil
}

// ErrShortSignal is returned when the input is shorter than one frame.
var ErrShortSignal = errors.New("dsp: signal shorter than one analysis frame")

// STFT computes the magnitude spectrogram of x.
//
// The implementation is the planned hot path: one cached FFTPlan per
// FFTSize (precomputed twiddles and bit-reversal), cached window
// coefficients, a single backing allocation for all frame rows, pooled
// per-worker scratch buffers, and frames fanned out across cores via
// internal/parallel. Frame rows are written by index, so the output is
// bit-identical whether the fan-out runs serial or parallel.
func STFT(x []float64, cfg STFTConfig) (*Spectrogram, error) {
	return STFTSpan(nil, x, cfg)
}

// STFTSpan is STFT recording its plan execution under span: the span (nil
// disables tracing at zero cost) gains the transform geometry as
// attributes and one "stft-block" child per parallel worker block. The
// caller owns span's End; output is bit-identical to STFT.
func STFTSpan(span *telemetry.Span, x []float64, cfg STFTConfig) (*Spectrogram, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if len(x) < cfg.FrameSize {
		return nil, ErrShortSignal
	}
	nFrames := 1 + (len(x)-cfg.FrameSize)/cfg.HopSize
	win, err := cfg.Window.cachedCoefficients(cfg.FrameSize)
	if err != nil {
		return nil, err
	}
	nBins := cfg.FFTSize/2 + 1

	sp := &Spectrogram{
		Frames:     make([][]float64, nFrames),
		SampleRate: cfg.SampleRate,
		FFTSize:    cfg.FFTSize,
		HopSize:    cfg.HopSize,
	}
	backing := make([]float64, nFrames*nBins)
	for f := 0; f < nFrames; f++ {
		sp.Frames[f] = backing[f*nBins : (f+1)*nBins : (f+1)*nBins]
	}
	plan := PlanFFT(cfg.FFTSize)
	packed := plan.canPackReal()
	span.SetInt("frames", int64(nFrames))
	span.SetInt("fft_size", int64(cfg.FFTSize))
	span.SetInt("hop_size", int64(cfg.HopSize))
	span.SetBool("packed_real", packed)
	if packed {
		stftPacked(span, sp, x, cfg, plan, win)
	} else {
		stftComplex(span, sp, x, cfg, plan, win)
	}
	return sp, nil
}

// stftPacked runs the even power-of-two fast path: each frame is packed
// into a half-size complex buffer, transformed with the half-size plan,
// and unpacked straight into magnitude bins.
func stftPacked(span *telemetry.Span, sp *Spectrogram, x []float64, cfg STFTConfig, plan *FFTPlan, win []float64) {
	m := cfg.FFTSize / 2
	parallel.SpanRange(span, "stft-block", len(sp.Frames), func(lo, hi int) {
		zptr := plan.half.acquire()
		z := *zptr
		for f := lo; f < hi; f++ {
			off := f * cfg.HopSize
			for i := 0; i < m; i++ {
				var re, im float64
				if j := 2 * i; j < cfg.FrameSize {
					re = x[off+j] * win[j]
				}
				if j := 2*i + 1; j < cfg.FrameSize {
					im = x[off+j] * win[j]
				}
				z[i] = complex(re, im)
			}
			plan.half.transform(z, false)
			plan.realMagnitudes(z, sp.Frames[f])
		}
		plan.half.release(zptr)
	})
}

// stftComplex is the generic path for odd or non-power-of-two FFT sizes:
// a full complex transform per frame, still planned and pooled.
func stftComplex(span *telemetry.Span, sp *Spectrogram, x []float64, cfg STFTConfig, plan *FFTPlan, win []float64) {
	nBins := cfg.FFTSize/2 + 1
	parallel.SpanRange(span, "stft-block", len(sp.Frames), func(lo, hi int) {
		bptr := plan.acquire()
		buf := *bptr
		for f := lo; f < hi; f++ {
			off := f * cfg.HopSize
			for i := 0; i < cfg.FrameSize; i++ {
				buf[i] = complex(x[off+i]*win[i], 0)
			}
			for i := cfg.FrameSize; i < cfg.FFTSize; i++ {
				buf[i] = 0
			}
			plan.transform(buf, false)
			row := sp.Frames[f]
			for k := 0; k < nBins; k++ {
				re, im := real(buf[k]), imag(buf[k])
				row[k] = math.Sqrt(re*re + im*im)
			}
		}
		plan.release(bptr)
	})
}

// NumFrames returns the number of analysis frames.
func (s *Spectrogram) NumFrames() int { return len(s.Frames) }

// FrameTime returns the start time in seconds of frame f.
func (s *Spectrogram) FrameTime(f int) float64 {
	return float64(f*s.HopSize) / s.SampleRate
}

// BinFreq returns the center frequency in Hz of bin k.
func (s *Spectrogram) BinFreq(k int) float64 {
	return BinFrequency(k, s.FFTSize, s.SampleRate)
}

// PeakBin returns, for frame f, the bin with the largest magnitude within
// the frequency band [lo, hi] Hz, along with that magnitude. It returns
// (-1, 0) if the band is empty.
func (s *Spectrogram) PeakBin(f int, lo, hi float64) (bin int, mag float64) {
	if f < 0 || f >= len(s.Frames) {
		return -1, 0
	}
	kLo := FrequencyBin(lo, s.FFTSize, s.SampleRate)
	kHi := FrequencyBin(hi, s.FFTSize, s.SampleRate)
	if kHi >= len(s.Frames[f]) {
		kHi = len(s.Frames[f]) - 1
	}
	bin = -1
	for k := kLo; k <= kHi; k++ {
		if m := s.Frames[f][k]; m > mag {
			mag = m
			bin = k
		}
	}
	return bin, mag
}

// BandEnergy returns the total spectral energy of frame f within [lo, hi] Hz.
func (s *Spectrogram) BandEnergy(f int, lo, hi float64) float64 {
	if f < 0 || f >= len(s.Frames) {
		return 0
	}
	kLo := FrequencyBin(lo, s.FFTSize, s.SampleRate)
	kHi := FrequencyBin(hi, s.FFTSize, s.SampleRate)
	if kHi >= len(s.Frames[f]) {
		kHi = len(s.Frames[f]) - 1
	}
	var e float64
	for k := kLo; k <= kHi; k++ {
		e += s.Frames[f][k] * s.Frames[f][k]
	}
	return e
}
