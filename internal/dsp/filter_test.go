package dsp

import (
	"math"
	"testing"
)

// sineResponse measures the steady-state output amplitude of a filter for a
// unit-amplitude sine at freq.
func sineResponse(process func(float64) float64, freq, rate float64, n int) float64 {
	var peak float64
	for i := 0; i < n; i++ {
		y := process(math.Sin(2 * math.Pi * freq * float64(i) / rate))
		if i > n/2 && math.Abs(y) > peak { // skip transient
			peak = math.Abs(y)
		}
	}
	return peak
}

func TestResonatorGainAtCenter(t *testing.T) {
	const rate = 16000.0
	for _, tc := range []struct{ f, bw float64 }{
		{500, 60}, {1500, 90}, {2500, 120}, {3500, 150},
	} {
		r := NewResonator(tc.f, tc.bw, rate)
		got := sineResponse(r.Process, tc.f, rate, 16000)
		if math.Abs(got-1) > 0.05 {
			t.Errorf("resonator %v Hz: center gain %v, want ~1", tc.f, got)
		}
	}
}

func TestResonatorSelectivity(t *testing.T) {
	const rate = 16000.0
	r := NewResonator(1000, 80, rate)
	center := sineResponse(r.Process, 1000, rate, 16000)
	r.Reset()
	off := sineResponse(r.Process, 3000, rate, 16000)
	if off >= center/4 {
		t.Errorf("off-center gain %v not well below center %v", off, center)
	}
}

func TestBiquadReset(t *testing.T) {
	f := NewLowPassBiquad(1000, 48000)
	f.Process(1)
	f.Process(1)
	f.Reset()
	if f.z1 != 0 || f.z2 != 0 {
		t.Error("Reset should clear state")
	}
}

func TestLowPassBiquad(t *testing.T) {
	const rate = 48000.0
	lp := NewLowPassBiquad(1000, rate)
	pass := sineResponse(lp.Process, 100, rate, 48000)
	lp.Reset()
	stop := sineResponse(lp.Process, 10000, rate, 48000)
	if pass < 0.95 {
		t.Errorf("passband gain %v, want ~1", pass)
	}
	if stop > 0.05 {
		t.Errorf("stopband gain %v, want <0.05", stop)
	}
}

func TestHighPassBiquad(t *testing.T) {
	const rate = 48000.0
	hp := NewHighPassBiquad(5000, rate)
	stop := sineResponse(hp.Process, 200, rate, 48000)
	hp.Reset()
	pass := sineResponse(hp.Process, 20000, rate, 48000)
	if pass < 0.9 {
		t.Errorf("passband gain %v, want ~1", pass)
	}
	if stop > 0.05 {
		t.Errorf("stopband gain %v, want <0.05", stop)
	}
}

func TestBiquadProcessBlock(t *testing.T) {
	lp1 := NewLowPassBiquad(2000, 48000)
	lp2 := NewLowPassBiquad(2000, 48000)
	x := make([]float64, 100)
	for i := range x {
		x[i] = math.Sin(0.1 * float64(i))
	}
	want := make([]float64, len(x))
	for i, v := range x {
		want[i] = lp1.Process(v)
	}
	lp2.ProcessBlock(x)
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("block[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestFIRLowPass(t *testing.T) {
	const rate = 48000.0
	f, err := NewLowPassFIR(1000, rate, 101)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTaps() != 101 {
		t.Errorf("taps = %d", f.NumTaps())
	}
	pass := sineResponse(f.Process, 100, rate, 48000)
	f.Reset()
	stop := sineResponse(f.Process, 8000, rate, 48000)
	if pass < 0.95 {
		t.Errorf("passband gain %v", pass)
	}
	if stop > 0.01 {
		t.Errorf("stopband gain %v", stop)
	}
}

func TestFIREvenTapsMadeOdd(t *testing.T) {
	f, err := NewLowPassFIR(1000, 48000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTaps()%2 != 1 {
		t.Errorf("taps = %d, want odd", f.NumTaps())
	}
}

func TestFIRDCGain(t *testing.T) {
	f, err := NewLowPassFIR(2000, 48000, 63)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 200; i++ {
		last = f.Process(1)
	}
	if math.Abs(last-1) > 1e-9 {
		t.Errorf("DC gain = %v, want 1", last)
	}
}

func TestFIRInvalidDesignError(t *testing.T) {
	if _, err := NewLowPassFIR(-1, 48000, 63); err == nil {
		t.Error("expected error on invalid design")
	}
	if _, err := NewLowPassFIR(1000, 0, 63); err == nil {
		t.Error("expected error on zero sample rate")
	}
	if _, err := NewLowPassFIR(1000, 48000, 0); err == nil {
		t.Error("expected error on zero taps")
	}
}

func TestFIRReset(t *testing.T) {
	f, err := NewLowPassFIR(1000, 48000, 31)
	if err != nil {
		t.Fatal(err)
	}
	f.Process(5)
	f.Reset()
	// After reset, impulse response should match a fresh filter.
	g, err := NewLowPassFIR(1000, 48000, 31)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		in := 0.0
		if i == 0 {
			in = 1
		}
		if a, b := f.Process(in), g.Process(in); a != b {
			t.Fatalf("sample %d: %v != %v", i, a, b)
		}
	}
}

func TestDecimate(t *testing.T) {
	const rate = 48000.0
	x := make([]float64, 4800)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 100 * float64(i) / rate)
	}
	y, err := Decimate(x, 4, rate)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1200 {
		t.Errorf("len = %d, want 1200", len(y))
	}
	// A 100 Hz tone survives 4× decimation; peak should stay near 1.
	var peak float64
	for _, v := range y[len(y)/2:] {
		if math.Abs(v) > peak {
			peak = math.Abs(v)
		}
	}
	if peak < 0.9 {
		t.Errorf("decimated peak = %v, want ~1", peak)
	}
	// factor <= 1 copies.
	same, err := Decimate(x, 1, rate)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != len(x) {
		t.Errorf("factor 1 should preserve length")
	}
	same[0] = 999
	if x[0] == 999 {
		t.Error("Decimate must copy, not alias")
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	const (
		rate = 48000.0
		n    = 1024
	)
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = 0.7*math.Sin(2*math.Pi*19031.25*ti) + 0.3*math.Sin(2*math.Pi*1500*ti)
	}
	// 19031.25 Hz is exactly bin 406 at n=1024, rate=48000.
	mag := Goertzel(x, 19031.25, rate)
	spec := FFTReal(x)
	want := Magnitudes(spec)[406]
	if math.Abs(mag-want) > 1e-6*want {
		t.Errorf("goertzel = %v, fft = %v", mag, want)
	}
}

func TestGoertzelPhaseTracksDelay(t *testing.T) {
	const (
		rate = 48000.0
		freq = 18750.0 // bin-aligned for n=1024: 18750/46.875 = 400
		n    = 1024
	)
	mk := func(phi float64) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Cos(2*math.Pi*freq*float64(i)/rate + phi)
		}
		return x
	}
	_, p0 := GoertzelPhase(mk(0), freq, rate)
	_, p1 := GoertzelPhase(mk(0.5), freq, rate)
	d := p1 - p0
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	if math.Abs(d-0.5) > 1e-6 {
		t.Errorf("phase delta = %v, want 0.5", d)
	}
}

func TestGoertzelEmpty(t *testing.T) {
	if Goertzel(nil, 1000, 48000) != 0 {
		t.Error("empty input should give 0")
	}
	if m, p := GoertzelPhase(nil, 1000, 48000); m != 0 || p != 0 {
		t.Error("empty input should give 0, 0")
	}
}

func TestUnwrap(t *testing.T) {
	// A linearly increasing phase wrapped into (-π, π] should unwrap to a
	// straight line.
	n := 200
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = 0.2 * float64(i)
		w := math.Mod(truth[i]+math.Pi, 2*math.Pi) - math.Pi
		wrapped[i] = w
	}
	un := Unwrap(wrapped)
	for i := range un {
		if math.Abs(un[i]-truth[i]) > 1e-9 {
			t.Fatalf("unwrap[%d] = %v, want %v", i, un[i], truth[i])
		}
	}
}

func TestUnwrapDescending(t *testing.T) {
	n := 100
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = -0.3 * float64(i)
		wrapped[i] = math.Mod(truth[i]-math.Pi, 2*math.Pi) + math.Pi
		if wrapped[i] > math.Pi {
			wrapped[i] -= 2 * math.Pi
		}
	}
	un := Unwrap(wrapped)
	for i := 1; i < n; i++ {
		if un[i] >= un[i-1] {
			t.Fatalf("unwrap not monotone at %d: %v >= %v", i, un[i], un[i-1])
		}
	}
}

func BenchmarkGoertzel1024(b *testing.B) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = math.Sin(0.3 * float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Goertzel(x, 19000, 48000)
	}
}

func BenchmarkSTFT(b *testing.B) {
	x := chirpSignal(48000, 48000, 17000, 21000)
	cfg := STFTConfig{FrameSize: 1024, HopSize: 512, SampleRate: 48000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := STFT(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
