// Package dsp provides the signal-processing primitives the rest of the
// system is built on: FFT, short-time Fourier transform, window functions,
// Goertzel tone detection, IIR/FIR filtering, phase unwrapping and
// decimation. Everything is stdlib-only and allocation-conscious; the
// hot paths (FFT, biquads) avoid per-sample allocation entirely.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use an iterative radix-2
// Cooley–Tukey transform; other lengths fall back to Bluestein's
// algorithm. An empty input returns an empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal computes the DFT of a real-valued signal and returns the full
// complex spectrum of the same length.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

// fftInPlace transforms x in place. inverse selects the conjugate
// transform (without the 1/N normalization).
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is an iterative in-place Cooley–Tukey FFT for power-of-two sizes.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	// Bit-reversal permutation.
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		ws, wc := math.Sincos(step)
		w := complex(wc, ws)
		for start := 0; start < n; start += size {
			tw := complex(1, 0)
			for k := start; k < start+half; k++ {
				a := x[k]
				b := x[k+half] * tw
				x[k] = a + b
				x[k+half] = a - b
				tw *= w
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// reducing it to a power-of-two convolution.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w_k = exp(sign * iπ k² / n). Compute k² mod 2n to avoid
	// precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		s, c := math.Sincos(ang)
		chirp[k] = complex(c, s)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
}

// Magnitudes returns |X_k| for each bin of a spectrum.
func Magnitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// PowerSpectrum returns |X_k|² for each bin of a spectrum.
func PowerSpectrum(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		re, im := real(c), imag(c)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the center frequency in Hz of FFT bin k for a
// transform of length n over a signal sampled at sampleRate.
func BinFrequency(k, n int, sampleRate float64) float64 {
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the FFT bin index closest to freq for a transform of
// length n over a signal sampled at sampleRate.
func FrequencyBin(freq float64, n int, sampleRate float64) int {
	k := int(math.Round(freq * float64(n) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// validateLength rejects negative lengths with a descriptive error; used
// by window constructors.
func validateLength(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("dsp: %s window with negative length %d", name, n)
	}
	return nil
}
