// Package dsp provides the signal-processing primitives the rest of the
// system is built on: FFT, short-time Fourier transform, window functions,
// Goertzel tone detection, IIR/FIR filtering, phase unwrapping and
// decimation. Everything is stdlib-only and allocation-conscious; the
// hot paths (FFT, biquads) avoid per-sample allocation entirely.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// The transform implementations live in plan.go: every call below routes
// through the sync.Map-backed plan cache, so twiddle factors and
// bit-reversal permutations are computed once per size per process.

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use an iterative radix-2
// Cooley–Tukey transform; other lengths fall back to Bluestein's
// algorithm. An empty input returns an empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal computes the DFT of a real-valued signal and returns the full
// complex spectrum of the same length. Power-of-two lengths run the
// planned real-input path (one half-size complex transform plus an
// unpack pass) and mirror the conjugate-symmetric upper half.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	c := make([]complex128, n)
	p := PlanFFT(n)
	if p != nil && p.canPackReal() {
		m := n / 2
		spec := make([]complex128, m+1)
		// Lengths match the plan by construction, so the error is nil.
		if err := p.RealForward(spec, x); err == nil {
			copy(c, spec)
			for k := m + 1; k < n; k++ {
				c[k] = cmplx.Conj(spec[n-k])
			}
			return c
		}
	}
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

// fftInPlace transforms x in place through the cached plan for len(x).
// inverse selects the conjugate transform (without the 1/N
// normalization).
func fftInPlace(x []complex128, inverse bool) {
	if len(x) <= 1 {
		return
	}
	PlanFFT(len(x)).transform(x, inverse)
}

// Magnitudes returns |X_k| for each bin of a spectrum.
func Magnitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// PowerSpectrum returns |X_k|² for each bin of a spectrum.
func PowerSpectrum(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		re, im := real(c), imag(c)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the center frequency in Hz of FFT bin k for a
// transform of length n over a signal sampled at sampleRate.
func BinFrequency(k, n int, sampleRate float64) float64 {
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the FFT bin index closest to freq for a transform of
// length n over a signal sampled at sampleRate.
func FrequencyBin(freq float64, n int, sampleRate float64) int {
	k := int(math.Round(freq * float64(n) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// validateLength rejects negative lengths with a descriptive error; used
// by window constructors.
func validateLength(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("dsp: %s window with negative length %d", name, n)
	}
	return nil
}
