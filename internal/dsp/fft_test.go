package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1, 0, 0, 0] is all ones.
	got := FFT([]complex128{1, 0, 0, 0})
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
	// DFT of constant signal concentrates in bin 0.
	got = FFT([]complex128{2, 2, 2, 2})
	if cmplx.Abs(got[0]-8) > 1e-12 {
		t.Errorf("bin 0 = %v, want 8", got[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(got[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, got[i])
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Errorf("FFT(nil) = %v, want nil", got)
	}
	if got := IFFT(nil); got != nil {
		t.Errorf("IFFT(nil) = %v, want nil", got)
	}
	got := FFT([]complex128{3 + 4i})
	if len(got) != 1 || cmplx.Abs(got[0]-(3+4i)) > 1e-12 {
		t.Errorf("FFT single = %v", got)
	}
}

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := naiveDFT(x)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(re []float64) bool {
		if len(re) == 0 || len(re) > 512 {
			return true
		}
		x := make([]complex128, len(re))
		for i, v := range re {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			x[i] = complex(math.Mod(v, 1e6), 0)
		}
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-6*(1+cmplx.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: Σ|x|² == (1/N) Σ|X|².
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{16, 27, 64, 100} {
		x := make([]complex128, n)
		var tx float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tx += real(x[i]) * real(x[i])
		}
		spec := FFT(x)
		var tf float64
		for _, c := range spec {
			tf += real(c)*real(c) + imag(c)*imag(c)
		}
		tf /= float64(n)
		if math.Abs(tx-tf) > 1e-8*tx {
			t.Errorf("n=%d: time energy %v != freq energy %v", n, tx, tf)
		}
	}
}

func TestFFTRealSinusoid(t *testing.T) {
	const (
		n    = 256
		rate = 8000.0
		freq = 1000.0 // exactly bin 32
	)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
	}
	spec := FFTReal(x)
	mags := Magnitudes(spec)
	bin := FrequencyBin(freq, n, rate)
	// Peak at the expected bin with magnitude n/2.
	if math.Abs(mags[bin]-n/2) > 1e-6 {
		t.Errorf("peak magnitude = %v, want %v", mags[bin], n/2.0)
	}
	for k := 0; k <= n/2; k++ {
		if k == bin {
			continue
		}
		if mags[k] > 1e-6 {
			t.Errorf("leakage at bin %d: %v", k, mags[k])
		}
	}
}

func TestBinFrequencyRoundTrip(t *testing.T) {
	const n, rate = 1024, 48000.0
	for _, f := range []float64{0, 100, 440, 19000, 23900} {
		bin := FrequencyBin(f, n, rate)
		back := BinFrequency(bin, n, rate)
		if math.Abs(back-f) > rate/float64(n) {
			t.Errorf("freq %v -> bin %d -> %v", f, bin, back)
		}
	}
	if FrequencyBin(-10, n, rate) != 0 {
		t.Error("negative frequency should clamp to bin 0")
	}
	if FrequencyBin(1e9, n, rate) != n-1 {
		t.Error("huge frequency should clamp to last bin")
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestPowerSpectrum(t *testing.T) {
	spec := []complex128{3 + 4i, 1, 0}
	p := PowerSpectrum(spec)
	want := []float64{25, 1, 0}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Errorf("power[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	x := make([]complex128, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
