package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// FFTPlan holds everything size-dependent about a transform so the hot
// path does no trigonometry and no allocation: the bit-reversal
// permutation, per-stage twiddle-factor tables (forward and inverse), the
// half-size sub-plan plus unpack twiddles for real-input transforms, the
// precomputed chirp and chirp-filter spectra for Bluestein (non-power-of-
// two) sizes, and a sync.Pool of scratch buffers. Plans are immutable
// after construction and safe for concurrent use; obtain them from
// PlanFFT, which caches one plan per size for the life of the process.
type FFTPlan struct {
	n int

	// Power-of-two (Cooley–Tukey) tables.
	perm  []int32      // bit-reversal permutation: perm[i] is i's partner
	twFwd []complex128 // flattened forward twiddles; stage with half-size h occupies [h-1, 2h-1)
	twInv []complex128 // conjugate table for the inverse transform

	// Real-input support (even power-of-two sizes): a real n-point
	// transform runs as one complex n/2-point transform plus an unpack
	// pass using realTw[k] = exp(-2πik/n).
	half   *FFTPlan
	realTw []complex128

	// Bluestein (chirp-z) tables for non-power-of-two sizes.
	chirpF, chirpI []complex128 // exp(∓iπk²/n)
	bF, bI         []complex128 // forward FFT of the chirp filter, length conv.n
	conv           *FFTPlan     // power-of-two convolution plan

	scratch sync.Pool // *[]complex128 of length n
}

// planCache maps transform size → *FFTPlan. Plans are tiny relative to
// the signals they transform (a few tables of length ≤ 2n) and the
// process works with a handful of distinct sizes, so the cache is never
// evicted.
var planCache sync.Map // int → *FFTPlan

// PlanFFT returns the cached plan for n-point transforms, building and
// caching it on first use. It returns nil for n < 1.
func PlanFFT(n int) *FFTPlan {
	if n < 1 {
		return nil
	}
	if p, ok := planCache.Load(n); ok {
		return p.(*FFTPlan)
	}
	p, _ := planCache.LoadOrStore(n, newPlan(n))
	return p.(*FFTPlan)
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// newPlan precomputes every table for an n-point transform.
func newPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n}
	p.scratch.New = func() any {
		s := make([]complex128, n)
		return &s
	}
	if n&(n-1) == 0 {
		p.initPow2()
	} else {
		p.initBluestein()
	}
	return p
}

// initPow2 builds the Cooley–Tukey tables and the real-input sub-plan.
func (p *FFTPlan) initPow2() {
	n := p.n
	p.perm = make([]int32, n)
	for i, j := 0, 0; i < n; i++ {
		p.perm[i] = int32(j)
		// Classic bit-reversal increment: add one at the reversed MSB.
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j &^= bit
		}
		j |= bit
	}
	if n > 1 {
		p.twFwd = make([]complex128, n-1)
		p.twInv = make([]complex128, n-1)
		for half := 1; half < n; half <<= 1 {
			for k := 0; k < half; k++ {
				s, c := math.Sincos(-math.Pi * float64(k) / float64(half))
				p.twFwd[half-1+k] = complex(c, s)
				p.twInv[half-1+k] = complex(c, -s)
			}
		}
		p.half = PlanFFT(n / 2)
		p.realTw = make([]complex128, n/2)
		for k := range p.realTw {
			s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
			p.realTw[k] = complex(c, s)
		}
	}
}

// initBluestein builds the chirp tables and the spectrum of the chirp
// filter for both transform directions.
func (p *FFTPlan) initBluestein() {
	n := p.n
	p.chirpF = make([]complex128, n)
	p.chirpI = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the chirp angle accurate for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := math.Pi * float64(kk) / float64(n)
		s, c := math.Sincos(ang)
		p.chirpF[k] = complex(c, -s)
		p.chirpI[k] = complex(c, s)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.conv = PlanFFT(m)
	p.bF = chirpFilterSpectrum(p.chirpF, p.conv)
	p.bI = chirpFilterSpectrum(p.chirpI, p.conv)
}

// chirpFilterSpectrum returns the forward FFT of the Bluestein chirp
// filter b (the conjugated chirp, wrapped symmetrically).
func chirpFilterSpectrum(chirp []complex128, conv *FFTPlan) []complex128 {
	n := len(chirp)
	b := make([]complex128, conv.n)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[conv.n-k] = cmplx.Conj(chirp[k])
	}
	conv.transform(b, false)
	return b
}

// ErrPlanSize is wrapped by the exported plan methods when the buffer
// length does not match the plan size.
const errPlanSize = "dsp: buffer length %d does not match plan size %d"

// Forward transforms x in place (DFT, no normalization).
func (p *FFTPlan) Forward(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf(errPlanSize, len(x), p.n)
	}
	p.transform(x, false)
	return nil
}

// Inverse applies the inverse DFT in place, normalized by 1/N so that
// Inverse ∘ Forward is the identity.
func (p *FFTPlan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf(errPlanSize, len(x), p.n)
	}
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
	return nil
}

// transform runs the in-place transform; inverse selects the conjugate
// direction without normalization. len(x) must equal p.n.
func (p *FFTPlan) transform(x []complex128, inverse bool) {
	if p.n <= 1 {
		return
	}
	if p.perm != nil {
		p.pow2Transform(x, inverse)
		return
	}
	p.bluesteinTransform(x, inverse)
}

// pow2Transform is the table-driven iterative radix-2 butterfly.
func (p *FFTPlan) pow2Transform(x []complex128, inverse bool) {
	n := p.n
	for i := 1; i < n; i++ {
		if j := int(p.perm[i]); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := p.twFwd
	if inverse {
		tw = p.twInv
	}
	for half := 1; half < n; half <<= 1 {
		t := tw[half-1 : 2*half-1]
		size := half << 1
		for start := 0; start < n; start += size {
			hi := x[start+half : start+size : start+size]
			lo := x[start : start+half : start+half]
			for k := range lo {
				a := lo[k]
				b := hi[k] * t[k]
				lo[k] = a + b
				hi[k] = a - b
			}
		}
	}
}

// bluesteinTransform evaluates the arbitrary-length DFT as a power-of-two
// convolution against the precomputed chirp-filter spectrum.
func (p *FFTPlan) bluesteinTransform(x []complex128, inverse bool) {
	chirp, bfft := p.chirpF, p.bF
	if inverse {
		chirp, bfft = p.chirpI, p.bI
	}
	aptr := p.conv.acquire()
	a := *aptr
	n := p.n
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	for k := n; k < len(a); k++ {
		a[k] = 0
	}
	p.conv.transform(a, false)
	for i := range a {
		a[i] *= bfft[i]
	}
	p.conv.transform(a, true)
	scale := complex(1/float64(p.conv.n), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
	p.conv.release(aptr)
}

// acquire hands out a pooled scratch buffer of length p.n. The pooling
// contract: every acquire is paired with a release on the same
// goroutine-visible path, and pooled buffers never escape the function
// that acquired them (enforced by the poolescape analyzer).
func (p *FFTPlan) acquire() *[]complex128 {
	return p.scratch.Get().(*[]complex128) //lint:allow poolescape acquire/release is the managed accessor pair
}

// release returns a scratch buffer to the pool. Contents are not zeroed;
// acquirers must overwrite every element they read.
func (p *FFTPlan) release(b *[]complex128) { p.scratch.Put(b) }

// RealForward computes the non-negative-frequency half-spectrum of a
// real n-point signal into spec (length n/2+1) without modifying x. For
// even power-of-two sizes it runs as a single n/2-point complex
// transform (the standard packing trick) — about half the work of a full
// complex FFT. Other sizes fall back to the full transform.
func (p *FFTPlan) RealForward(spec []complex128, x []float64) error {
	if len(x) != p.n {
		return fmt.Errorf(errPlanSize, len(x), p.n)
	}
	if want := p.n/2 + 1; len(spec) != want {
		return fmt.Errorf("dsp: spectrum length %d, want %d for plan size %d", len(spec), want, p.n)
	}
	if !p.canPackReal() {
		fptr := p.acquire()
		full := *fptr
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		p.transform(full, false)
		copy(spec, full[:len(spec)])
		p.release(fptr)
		return nil
	}
	zptr := p.half.acquire()
	z := *zptr
	for i := range z {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	p.half.transform(z, false)
	p.realUnpack(z, spec)
	p.half.release(zptr)
	return nil
}

// canPackReal reports whether the even/odd packing path applies.
func (p *FFTPlan) canPackReal() bool { return p.n >= 2 && p.n&(p.n-1) == 0 }

// realUnpack recovers bins 0..n/2 of the real-input spectrum from the
// transformed packed buffer z (length n/2):
//
//	X[k] = E_k + w^k·O_k,  w = exp(-2πi/n)
//
// with E/O the even/odd-sample sub-spectra reconstructed from z's
// conjugate symmetry.
func (p *FFTPlan) realUnpack(z []complex128, spec []complex128) {
	m := p.n / 2
	for k := 0; k < m; k++ {
		zr := cmplx.Conj(z[(m-k)%m])
		e := (z[k] + zr) * 0.5
		o := (z[k] - zr) * complex(0, -0.5)
		spec[k] = e + p.realTw[k]*o
	}
	// Nyquist bin: E_0 - O_0.
	spec[m] = complex(real(z[0])-imag(z[0]), 0)
}

// realMagnitudes writes |X_k| for bins 0..n/2 of the real-input signal
// packed and transformed in z. Same math as realUnpack, magnitudes only.
func (p *FFTPlan) realMagnitudes(z []complex128, dst []float64) {
	m := p.n / 2
	for k := 0; k < m; k++ {
		zr := cmplx.Conj(z[(m-k)%m])
		e := (z[k] + zr) * 0.5
		o := (z[k] - zr) * complex(0, -0.5)
		xk := e + p.realTw[k]*o
		re, im := real(xk), imag(xk)
		dst[k] = math.Sqrt(re*re + im*im)
	}
	dst[m] = math.Abs(real(z[0]) - imag(z[0]))
}

// realPower writes |X_k|² for bins 0..n/2 of the real-input signal packed
// and transformed in z.
func (p *FFTPlan) realPower(z []complex128, dst []float64) {
	m := p.n / 2
	for k := 0; k < m; k++ {
		zr := cmplx.Conj(z[(m-k)%m])
		e := (z[k] + zr) * 0.5
		o := (z[k] - zr) * complex(0, -0.5)
		xk := e + p.realTw[k]*o
		re, im := real(xk), imag(xk)
		dst[k] = re*re + im*im
	}
	nyq := real(z[0]) - imag(z[0])
	dst[m] = nyq * nyq
}

// RealPower computes the power spectrum |X_k|² of the real n-point
// signal x into dst (length n/2+1). Scratch comes from the plan's pool;
// nothing pooled escapes. Even power-of-two sizes use the packed
// half-size transform, others the full complex transform.
func (p *FFTPlan) RealPower(dst []float64, x []float64) error {
	if len(x) != p.n {
		return fmt.Errorf(errPlanSize, len(x), p.n)
	}
	if want := p.n/2 + 1; len(dst) != want {
		return fmt.Errorf("dsp: power length %d, want %d for plan size %d", len(dst), want, p.n)
	}
	if p.canPackReal() {
		zptr := p.half.acquire()
		z := *zptr
		for i := range z {
			z[i] = complex(x[2*i], x[2*i+1])
		}
		p.half.transform(z, false)
		p.realPower(z, dst)
		p.half.release(zptr)
		return nil
	}
	fptr := p.acquire()
	full := *fptr
	for i, v := range x {
		full[i] = complex(v, 0)
	}
	p.transform(full, false)
	for k := range dst {
		re, im := real(full[k]), imag(full[k])
		dst[k] = re*re + im*im
	}
	p.release(fptr)
	return nil
}

// windowKey addresses one cached coefficient table.
type windowKey struct {
	w Window
	n int
}

// windowCache maps (window, size) → the shared []float64 coefficient
// table, filled on first use. Entries are read-only once stored.
var windowCache sync.Map // windowKey → []float64

// cachedCoefficients returns the shared coefficient table for (w, n).
// Callers must treat the slice as read-only; Window.Coefficients returns
// a private copy for external callers.
func (w Window) cachedCoefficients(n int) ([]float64, error) {
	if err := validateLength(w.String(), n); err != nil {
		return nil, err
	}
	key := windowKey{w, n}
	if v, ok := windowCache.Load(key); ok {
		return v.([]float64), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = w.at(i, n)
	}
	v, _ := windowCache.LoadOrStore(key, out)
	return v.([]float64), nil
}
