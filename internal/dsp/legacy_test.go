package dsp

// The legacy* helpers are the seed (pre-plan) implementations, kept
// verbatim in test code as the reference the planned hot path is checked
// and benchmarked against: per-call twiddle recurrences, per-frame
// allocations, serial frame loop.

import (
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"
)

func legacyFFTInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		legacyRadix2(x, inverse)
		return
	}
	legacyBluestein(x, inverse)
}

func legacyRadix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		ws, wc := math.Sincos(step)
		w := complex(wc, ws)
		for start := 0; start < n; start += size {
			tw := complex(1, 0)
			for k := start; k < start+half; k++ {
				a := x[k]
				b := x[k+half] * tw
				x[k] = a + b
				x[k+half] = a - b
				tw *= w
			}
		}
	}
}

func legacyBluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		s, c := math.Sincos(ang)
		chirp[k] = complex(c, s)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	legacyRadix2(a, false)
	legacyRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	legacyRadix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
}

// legacySTFT is the seed STFT: per-call window build, one shared complex
// buffer, a fresh row allocation per frame, serial loop.
func legacySTFT(x []float64, cfg STFTConfig) (*Spectrogram, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if len(x) < cfg.FrameSize {
		return nil, ErrShortSignal
	}
	nFrames := 1 + (len(x)-cfg.FrameSize)/cfg.HopSize
	win, err := cfg.Window.Coefficients(cfg.FrameSize)
	if err != nil {
		return nil, err
	}
	nBins := cfg.FFTSize/2 + 1
	sp := &Spectrogram{
		Frames:     make([][]float64, nFrames),
		SampleRate: cfg.SampleRate,
		FFTSize:    cfg.FFTSize,
		HopSize:    cfg.HopSize,
	}
	buf := make([]complex128, cfg.FFTSize)
	for f := 0; f < nFrames; f++ {
		off := f * cfg.HopSize
		for i := 0; i < cfg.FrameSize; i++ {
			buf[i] = complex(x[off+i]*win[i], 0)
		}
		for i := cfg.FrameSize; i < cfg.FFTSize; i++ {
			buf[i] = 0
		}
		legacyFFTInPlace(buf, false)
		row := make([]float64, nBins)
		for k := 0; k < nBins; k++ {
			re, im := real(buf[k]), imag(buf[k])
			row[k] = math.Sqrt(re*re + im*im)
		}
		sp.Frames[f] = row
	}
	return sp, nil
}

// TestSTFTMatchesLegacy compares the planned STFT against the seed
// implementation within float tolerance on packed and Bluestein paths.
func TestSTFTMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := make([]float64, 6400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, cfg := range []STFTConfig{
		{FrameSize: 400, HopSize: 160, SampleRate: 16000},
		{FrameSize: 256, HopSize: 64, FFTSize: 512, SampleRate: 16000},
		{FrameSize: 60, HopSize: 25, FFTSize: 100, SampleRate: 16000},
	} {
		want, err := legacySTFT(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := STFT(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Frames) != len(want.Frames) {
			t.Fatalf("cfg %+v: %d frames, want %d", cfg, len(got.Frames), len(want.Frames))
		}
		for f := range want.Frames {
			for k := range want.Frames[f] {
				w, g := want.Frames[f][k], got.Frames[f][k]
				if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("cfg %+v frame %d bin %d: planned %v vs legacy %v", cfg, f, k, g, w)
				}
			}
		}
	}
}

// TestFFTMatchesLegacy compares the planned complex transforms against
// the seed per-call implementation.
func TestFFTMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{8, 64, 100, 129, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := make([]complex128, n)
		copy(want, x)
		legacyFFTInPlace(want, false)
		got := FFT(x)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: planned %v vs legacy %v", n, k, got[k], want[k])
			}
		}
	}
}

// --- -benchmem micro-benchmarks: seed vs planned paths ---

func benchSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func benchComplex(n int) []complex128 {
	rng := rand.New(rand.NewSource(6))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func BenchmarkFFTLegacy1024(b *testing.B) {
	x := benchComplex(1024)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		legacyFFTInPlace(buf, false)
	}
}

func BenchmarkFFTPlanned1024(b *testing.B) {
	x := benchComplex(1024)
	buf := make([]complex128, len(x))
	p := PlanFFT(len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := p.Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Odd length: the Bluestein path, where the planned chirp/filter tables
// save three full transforms per call.
func BenchmarkFFTLegacyBluestein443(b *testing.B) {
	x := benchComplex(443)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		legacyFFTInPlace(buf, false)
	}
}

func BenchmarkFFTPlannedBluestein443(b *testing.B) {
	x := benchComplex(443)
	buf := make([]complex128, len(x))
	p := PlanFFT(len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := p.Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// stftBenchConfig mirrors the ranging pilot analysis (16 kHz capture,
// 25 ms frames, 512-point transforms).
var stftBenchConfig = STFTConfig{FrameSize: 400, HopSize: 160, FFTSize: 512, SampleRate: 16000}

func BenchmarkSTFTLegacy(b *testing.B) {
	x := benchSignal(16000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacySTFT(x, stftBenchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTFTPlanned(b *testing.B) {
	x := benchSignal(16000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := STFT(x, stftBenchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTReal512(b *testing.B) {
	x := benchSignal(512)
	spec := make([]complex128, 257)
	p := PlanFFT(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.RealForward(spec, x); err != nil {
			b.Fatal(err)
		}
	}
}
