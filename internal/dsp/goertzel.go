package dsp

import "math"

// Goertzel computes the magnitude of a single DFT bin at the target
// frequency over the block x. It is cheaper than a full FFT when only one
// tone matters — exactly the situation in the ranging pipeline, which
// tracks a single ~19 kHz pilot tone.
func Goertzel(x []float64, freq, sampleRate float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * freq / sampleRate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// GoertzelPhase computes both the magnitude and the phase (radians) of the
// DFT at the target frequency over the block x.
func GoertzelPhase(x []float64, freq, sampleRate float64) (mag, phase float64) {
	n := len(x)
	if n == 0 {
		return 0, 0
	}
	w := 2 * math.Pi * freq / sampleRate
	coeff := 2 * math.Cos(w)
	var s1, s2 float64
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1 - s2*math.Cos(w)
	im := s2 * math.Sin(w)
	return math.Hypot(re, im), math.Atan2(im, re)
}

// Unwrap removes 2π discontinuities from a phase sequence in place and
// returns it. Successive samples are assumed to differ by less than π in
// the underlying continuous phase.
func Unwrap(phase []float64) []float64 {
	for i := 1; i < len(phase); i++ {
		d := phase[i] - phase[i-1]
		for d > math.Pi {
			phase[i] -= 2 * math.Pi
			d = phase[i] - phase[i-1]
		}
		for d < -math.Pi {
			phase[i] += 2 * math.Pi
			d = phase[i] - phase[i-1]
		}
	}
	return phase
}
