package dsp

import (
	"fmt"
	"math"
)

// Biquad is a second-order IIR filter section in direct form II transposed.
// It is the building block for the vocal-tract formant resonators in the
// speech synthesizer and for the demodulation low-pass filters in the
// acoustic ranging pipeline.
type Biquad struct {
	B0, B1, B2 float64 // feedforward coefficients
	A1, A2     float64 // feedback coefficients (a0 normalized to 1)
	z1, z2     float64 // state
}

// Process filters a single sample.
func (f *Biquad) Process(x float64) float64 {
	y := f.B0*x + f.z1
	f.z1 = f.B1*x - f.A1*y + f.z2
	f.z2 = f.B2*x - f.A2*y
	return y
}

// ProcessBlock filters x in place.
func (f *Biquad) ProcessBlock(x []float64) {
	for i, v := range x {
		x[i] = f.Process(v)
	}
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// NewResonator returns a two-pole resonator centered at freq Hz with the
// given -3 dB bandwidth, for a signal sampled at sampleRate. The gain is
// normalized to unity at the center frequency. This is the classic Klatt
// formant resonator.
func NewResonator(freq, bandwidth, sampleRate float64) *Biquad {
	r := math.Exp(-math.Pi * bandwidth / sampleRate)
	theta := 2 * math.Pi * freq / sampleRate
	a1 := -2 * r * math.Cos(theta)
	a2 := r * r
	b0 := 1 + a1 + a2 // unity gain at DC for the all-pole section scaled below
	// Normalize gain at the resonance frequency instead of DC: evaluate
	// |H(e^{jθ})| of the all-pole filter and scale.
	re := 1 + a1*math.Cos(theta) + a2*math.Cos(2*theta)
	im := a1*math.Sin(theta) + a2*math.Sin(2*theta)
	g := math.Hypot(re, im)
	if g > 0 {
		b0 = g
	}
	return &Biquad{B0: b0, A1: a1, A2: a2}
}

// NewLowPassBiquad returns a Butterworth-style low-pass biquad with cutoff
// freq Hz (Q = 1/√2) for a signal sampled at sampleRate.
func NewLowPassBiquad(freq, sampleRate float64) *Biquad {
	return newRBJ(freq, sampleRate, math.Sqrt2/2, false)
}

// NewHighPassBiquad returns a Butterworth-style high-pass biquad with
// cutoff freq Hz (Q = 1/√2) for a signal sampled at sampleRate.
func NewHighPassBiquad(freq, sampleRate float64) *Biquad {
	return newRBJ(freq, sampleRate, math.Sqrt2/2, true)
}

// newRBJ constructs an RBJ audio-EQ-cookbook low/high-pass biquad.
func newRBJ(freq, sampleRate, q float64, highpass bool) *Biquad {
	w0 := 2 * math.Pi * freq / sampleRate
	cw, sw := math.Cos(w0), math.Sin(w0)
	alpha := sw / (2 * q)
	a0 := 1 + alpha
	var b0, b1, b2 float64
	if highpass {
		b0 = (1 + cw) / 2
		b1 = -(1 + cw)
		b2 = (1 + cw) / 2
	} else {
		b0 = (1 - cw) / 2
		b1 = 1 - cw
		b2 = (1 - cw) / 2
	}
	return &Biquad{
		B0: b0 / a0,
		B1: b1 / a0,
		B2: b2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}
}

// FIRFilter is a finite-impulse-response filter applied by direct
// convolution.
type FIRFilter struct {
	taps  []float64
	delay []float64
	pos   int
}

// NewLowPassFIR designs a windowed-sinc low-pass FIR filter with the given
// cutoff in Hz, sample rate in Hz and number of taps (made odd if even, for
// a symmetric linear-phase design). It returns an error on non-positive
// arguments so a bad runtime configuration degrades to a failed request
// instead of taking down the serving process.
func NewLowPassFIR(cutoffHz, sampleRateHz float64, taps int) (*FIRFilter, error) {
	if cutoffHz <= 0 || sampleRateHz <= 0 || taps <= 0 {
		return nil, fmt.Errorf("dsp: invalid FIR design cutoff=%v rate=%v taps=%d", cutoffHz, sampleRateHz, taps)
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoffHz / sampleRateHz
	mid := taps / 2
	h := make([]float64, taps)
	var sum float64
	for i := range h {
		n := i - mid
		var v float64
		if n == 0 {
			v = 2 * fc
		} else {
			v = math.Sin(2*math.Pi*fc*float64(n)) / (math.Pi * float64(n))
		}
		// Hamming window for side-lobe suppression.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = v
		sum += v
	}
	// Normalize DC gain to 1.
	for i := range h {
		h[i] /= sum
	}
	return &FIRFilter{taps: h, delay: make([]float64, taps)}, nil
}

// Process filters a single sample.
func (f *FIRFilter) Process(x float64) float64 {
	f.delay[f.pos] = x
	var y float64
	idx := f.pos
	for _, t := range f.taps {
		y += t * f.delay[idx]
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return y
}

// ProcessBlock filters x in place.
func (f *FIRFilter) ProcessBlock(x []float64) {
	for i, v := range x {
		x[i] = f.Process(v)
	}
}

// Reset clears the delay line.
func (f *FIRFilter) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

// NumTaps returns the filter length.
func (f *FIRFilter) NumTaps() int { return len(f.taps) }

// Decimate returns every factor-th sample of x after low-pass filtering at
// 0.45× the new Nyquist frequency to prevent aliasing. factor must be ≥ 1.
func Decimate(x []float64, factor int, sampleRateHz float64) ([]float64, error) {
	if factor <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	lp, err := NewLowPassFIR(0.45*sampleRateHz/float64(2*factor)*2, sampleRateHz, 63)
	if err != nil {
		return nil, fmt.Errorf("dsp: designing decimation filter: %w", err)
	}
	filtered := make([]float64, len(x))
	copy(filtered, x)
	lp.ProcessBlock(filtered)
	out := make([]float64, 0, len(x)/factor+1)
	for i := 0; i < len(filtered); i += factor {
		out = append(out, filtered[i])
	}
	return out, nil
}
