package dsp

import (
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// TestPlanMatchesNaiveDFT uses naiveDFT from fft_test.go as the O(n²)
// reference.
//
// TestPlanMatchesNaiveDFT covers power-of-two and Bluestein (odd,
// composite, prime) sizes against the direct transform.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 64, 100, 127, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		p := PlanFFT(n)
		if p.Size() != n {
			t.Fatalf("PlanFFT(%d).Size() = %d", n, p.Size())
		}
		if err := p.Forward(got); err != nil {
			t.Fatalf("n=%d: Forward: %v", n, err)
		}
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
		if err := p.Inverse(got); err != nil {
			t.Fatalf("n=%d: Inverse: %v", n, err)
		}
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d: round trip sample %d: got %v want %v", n, i, got[i], x[i])
			}
		}
	}
}

// TestPlanSizeMismatch pins the exported error paths.
func TestPlanSizeMismatch(t *testing.T) {
	p := PlanFFT(8)
	buf := make([]complex128, 4)
	if err := p.Forward(buf); err == nil {
		t.Error("Forward accepted a short buffer")
	}
	if err := p.Inverse(buf); err == nil {
		t.Error("Inverse accepted a short buffer")
	}
	if err := p.RealForward(make([]complex128, 5), make([]float64, 4)); err == nil {
		t.Error("RealForward accepted a mismatched signal")
	}
	if err := p.RealForward(make([]complex128, 3), make([]float64, 8)); err == nil {
		t.Error("RealForward accepted a mismatched spectrum")
	}
	if PlanFFT(0) != nil || PlanFFT(-3) != nil {
		t.Error("PlanFFT should reject non-positive sizes")
	}
}

// TestPlanCacheReturnsSameInstance checks the sync.Map cache: one plan
// per size, shared across goroutines.
func TestPlanCacheReturnsSameInstance(t *testing.T) {
	const n = 256
	first := PlanFFT(n)
	var wg sync.WaitGroup
	plans := make([]*FFTPlan, 16)
	for g := range plans {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plans[g] = PlanFFT(n)
		}()
	}
	wg.Wait()
	for g, p := range plans {
		if p != first {
			t.Fatalf("goroutine %d got a distinct plan for size %d", g, n)
		}
	}
}

// TestRealForwardMatchesComplex checks the half-size packing trick
// against the full complex transform, including the Nyquist bin and an
// odd (fallback) length.
func TestRealForwardMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 4, 16, 64, 512, 9} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		want := naiveDFT(c)
		spec := make([]complex128, n/2+1)
		if err := PlanFFT(n).RealForward(spec, x); err != nil {
			t.Fatalf("n=%d: RealForward: %v", n, err)
		}
		for k := range spec {
			if cmplx.Abs(spec[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, spec[k], want[k])
			}
		}
	}
}

// TestFFTRealMirrorsSpectrum checks the public FFTReal keeps returning
// the full-length conjugate-symmetric spectrum on the fast path.
func TestFFTRealMirrorsSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 32)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := FFTReal(x)
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	want := naiveDFT(c)
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(len(x)) {
			t.Fatalf("bin %d: got %v want %v", k, got[k], want[k])
		}
	}
}

// TestWindowCacheConcurrent hammers the (window, size) coefficient cache
// from many goroutines; under -race this is the regression test for the
// per-call recomputation fix.
func TestWindowCacheConcurrent(t *testing.T) {
	windows := []Window{WindowRect, WindowHann, WindowHamming, WindowBlackman}
	sizes := []int{63, 64, 400, 512}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				w := windows[iter%len(windows)]
				n := sizes[iter%len(sizes)]
				got, err := w.cachedCoefficients(n)
				if err != nil {
					t.Errorf("cachedCoefficients(%v, %d): %v", w, n, err)
					return
				}
				for i := range got {
					if want := w.at(i, n); got[i] != want { //lint:allow floatcmp cache must be bit-identical to the generator
						t.Errorf("%v/%d coefficient %d: %v != %v", w, n, i, got[i], want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCoefficientsReturnsPrivateCopy guards the mutation-safety contract:
// callers scribbling on the returned slice must not corrupt the cache.
func TestCoefficientsReturnsPrivateCopy(t *testing.T) {
	a, err := WindowHann.Coefficients(32)
	if err != nil {
		t.Fatal(err)
	}
	a[3] = 42
	b, err := WindowHann.Coefficients(32)
	if err != nil {
		t.Fatal(err)
	}
	if b[3] == 42 { //lint:allow floatcmp sentinel write-through check
		t.Fatal("Coefficients returned the shared cache slice")
	}
}

// TestSTFTParallelEquivalence runs the same signal through STFT at
// several sizes (packed and Bluestein paths) and checks frames are
// bit-identical across repeat runs — the fan-out must not perturb
// results. (GOMAXPROCS variation is exercised by -cpu=1,4 in CI.)
func TestSTFTParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := make([]float64, 8000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, cfg := range []STFTConfig{
		{FrameSize: 256, HopSize: 64, SampleRate: 8000},
		{FrameSize: 100, HopSize: 37, FFTSize: 100, SampleRate: 8000}, // Bluestein
		{FrameSize: 129, HopSize: 64, FFTSize: 129, SampleRate: 8000}, // odd Bluestein
	} {
		a, err := STFT(x, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		b, err := STFT(x, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if len(a.Frames) != len(b.Frames) {
			t.Fatalf("cfg %+v: frame count %d vs %d", cfg, len(a.Frames), len(b.Frames))
		}
		for f := range a.Frames {
			for k := range a.Frames[f] {
				if a.Frames[f][k] != b.Frames[f][k] { //lint:allow floatcmp determinism contract: repeat runs must be bit-identical
					t.Fatalf("cfg %+v frame %d bin %d: %v != %v",
						cfg, f, k, a.Frames[f][k], b.Frames[f][k])
				}
			}
		}
	}
}
