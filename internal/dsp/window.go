package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported window functions.
const (
	WindowRect Window = iota + 1
	WindowHann
	WindowHamming
	WindowBlackman
)

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w {
	case WindowRect:
		return "rect"
	case WindowHann:
		return "hann"
	case WindowHamming:
		return "hamming"
	case WindowBlackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients for w. Periodic windows
// (suitable for STFT) are produced: the denominator is n, not n-1. A
// negative n is a configuration error and is returned as such. The table
// is computed once per (window, size) and served from the shared cache;
// the caller receives a private copy it may mutate freely.
func (w Window) Coefficients(n int) ([]float64, error) {
	cached, err := w.cachedCoefficients(n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	copy(out, cached)
	return out, nil
}

func (w Window) at(i, n int) float64 {
	if n == 1 {
		return 1
	}
	x := 2 * math.Pi * float64(i) / float64(n)
	switch w {
	case WindowHann:
		return 0.5 - 0.5*math.Cos(x)
	case WindowHamming:
		return 0.54 - 0.46*math.Cos(x)
	case WindowBlackman:
		return 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	default: // WindowRect and unknown values behave as rectangular.
		return 1
	}
}

// SharedCoefficients returns the cached coefficient table for (w, n)
// without copying. The returned slice is shared across callers and MUST
// be treated as read-only — mutate-and-reuse callers want Coefficients.
// Hot paths (STFT, the MFCC front-end) use this to avoid rebuilding the
// window per call.
func (w Window) SharedCoefficients(n int) ([]float64, error) {
	return w.cachedCoefficients(n)
}

// Apply multiplies x element-wise by the window coefficients and returns a
// new slice. len(x) determines the window length.
func (w Window) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v * w.at(i, len(x))
	}
	return out
}

// Gain returns the coherent gain of the window (mean coefficient value),
// used to correct spectral magnitudes.
func (w Window) Gain(n int) float64 {
	if n <= 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += w.at(i, n)
	}
	return s / float64(n)
}
