package dsp

import (
	"errors"
	"math"
	"testing"
)

func chirpSignal(n int, rate, f0, f1 float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / rate
		dur := float64(n) / rate
		f := f0 + (f1-f0)*t/dur
		x[i] = math.Sin(2 * math.Pi * f * t)
	}
	return x
}

func TestSTFTTonePeak(t *testing.T) {
	const rate = 48000.0
	x := make([]float64, 48000)
	const freq = 19000.0
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
	}
	sp, err := STFT(x, STFTConfig{FrameSize: 1024, HopSize: 512, SampleRate: rate})
	if err != nil {
		t.Fatalf("STFT: %v", err)
	}
	if sp.NumFrames() != 1+(len(x)-1024)/512 {
		t.Errorf("frames = %d", sp.NumFrames())
	}
	for f := 0; f < sp.NumFrames(); f += 10 {
		bin, mag := sp.PeakBin(f, 16000, 24000)
		if bin < 0 || mag <= 0 {
			t.Fatalf("frame %d: no peak", f)
		}
		got := sp.BinFreq(bin)
		if math.Abs(got-freq) > rate/1024 {
			t.Errorf("frame %d: peak at %v Hz, want %v", f, got, freq)
		}
	}
}

func TestSTFTChirpTracksFrequency(t *testing.T) {
	const rate = 48000.0
	x := chirpSignal(48000, rate, 17000, 21000)
	sp, err := STFT(x, STFTConfig{FrameSize: 2048, HopSize: 1024, SampleRate: rate})
	if err != nil {
		t.Fatalf("STFT: %v", err)
	}
	first, _ := sp.PeakBin(0, 15000, 23000)
	last, _ := sp.PeakBin(sp.NumFrames()-1, 15000, 23000)
	if sp.BinFreq(first) >= sp.BinFreq(last) {
		t.Errorf("chirp should rise: first %v Hz, last %v Hz", sp.BinFreq(first), sp.BinFreq(last))
	}
}

func TestSTFTErrors(t *testing.T) {
	short := make([]float64, 10)
	if _, err := STFT(short, STFTConfig{FrameSize: 1024, HopSize: 512, SampleRate: 48000}); !errors.Is(err, ErrShortSignal) {
		t.Errorf("short input err = %v, want ErrShortSignal", err)
	}
	x := make([]float64, 2048)
	bad := []STFTConfig{
		{FrameSize: 0, HopSize: 1, SampleRate: 48000},
		{FrameSize: 256, HopSize: 0, SampleRate: 48000},
		{FrameSize: 256, HopSize: 128, SampleRate: 0},
		{FrameSize: 256, HopSize: 128, FFTSize: 128, SampleRate: 48000},
	}
	for i, cfg := range bad {
		if _, err := STFT(x, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestSTFTBandEnergy(t *testing.T) {
	const rate = 48000.0
	x := make([]float64, 8192)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 19000 * float64(i) / rate)
	}
	sp, err := STFT(x, STFTConfig{FrameSize: 1024, HopSize: 1024, SampleRate: rate})
	if err != nil {
		t.Fatal(err)
	}
	inBand := sp.BandEnergy(0, 18000, 20000)
	outBand := sp.BandEnergy(0, 100, 10000)
	if inBand <= 100*outBand {
		t.Errorf("in-band energy %v not dominant over out-of-band %v", inBand, outBand)
	}
	if sp.BandEnergy(-1, 0, 1000) != 0 || sp.BandEnergy(9999, 0, 1000) != 0 {
		t.Error("out-of-range frame should have zero energy")
	}
	if b, m := sp.PeakBin(-1, 0, 1000); b != -1 || m != 0 {
		t.Error("out-of-range frame should have no peak")
	}
}

func TestSTFTFrameTime(t *testing.T) {
	sp := &Spectrogram{SampleRate: 48000, HopSize: 480}
	if got := sp.FrameTime(100); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("FrameTime(100) = %v, want 1.0", got)
	}
}

func TestWindowProperties(t *testing.T) {
	for _, w := range []Window{WindowRect, WindowHann, WindowHamming, WindowBlackman} {
		t.Run(w.String(), func(t *testing.T) {
			c, err := w.Coefficients(128)
			if err != nil {
				t.Fatal(err)
			}
			if len(c) != 128 {
				t.Fatalf("len = %d", len(c))
			}
			for i, v := range c {
				if v < -1e-12 || v > 1+1e-12 {
					t.Errorf("coef[%d] = %v out of [0,1]", i, v)
				}
			}
			if g := w.Gain(128); g <= 0 || g > 1+1e-12 {
				t.Errorf("gain = %v", g)
			}
		})
	}
	if (Window(99)).String() != "unknown" {
		t.Error("unknown window String")
	}
	if got, err := WindowHann.Coefficients(1); err != nil || len(got) != 1 || got[0] != 1 {
		t.Errorf("length-1 window = %v (err %v)", got, err)
	}
	// Hann endpoints: periodic window starts at 0.
	c, err := WindowHann.Coefficients(64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]) > 1e-12 {
		t.Errorf("hann[0] = %v, want 0", c[0])
	}
	if math.Abs(c[32]-1) > 1e-12 {
		t.Errorf("hann[N/2] = %v, want 1", c[32])
	}
	// Gain of rect is exactly 1.
	if g := WindowRect.Gain(77); g != 1 {
		t.Errorf("rect gain = %v", g)
	}
	if g := WindowRect.Gain(0); g != 0 {
		t.Errorf("rect gain(0) = %v", g)
	}
}

func TestWindowApply(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	got := WindowHann.Apply(x)
	want, err := WindowHann.Coefficients(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("apply[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Input unchanged.
	for _, v := range x {
		if v != 1 {
			t.Error("Apply must not modify input")
		}
	}
}

func TestWindowNegativeLengthError(t *testing.T) {
	if _, err := WindowHann.Coefficients(-1); err == nil {
		t.Error("expected error on negative window length")
	}
}
