// Package pca implements principal component analysis via Jacobi
// eigendecomposition of the covariance matrix. The paper uses PCA to
// visualize sound-field feature separability (Fig. 8).
package pca

import (
	"errors"
	"fmt"
	"math"

	"voiceguard/internal/stats"
)

// Model holds a fitted PCA transform.
type Model struct {
	// Mean is the training-set mean, subtracted before projection.
	Mean []float64
	// Components holds the principal axes, one per row, ordered by
	// decreasing explained variance.
	Components [][]float64
	// Explained holds the variance along each component.
	Explained []float64
}

// ErrBadInput is returned for degenerate PCA input.
var ErrBadInput = errors.New("pca: bad input")

// Fit computes the top-k principal components of the rows of x.
func Fit(x [][]float64, k int) (*Model, error) {
	if len(x) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 rows, have %d", ErrBadInput, len(x))
	}
	dim := len(x[0])
	if k < 1 || k > dim {
		return nil, fmt.Errorf("%w: k=%d outside [1, %d]", ErrBadInput, k, dim)
	}
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: row %d has dim %d, want %d", ErrBadInput, i, len(row), dim)
		}
	}
	mean := make([]float64, dim)
	for _, row := range x {
		for d, v := range row {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(len(x))
	}
	// Covariance matrix.
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, row := range x {
		for i := 0; i < dim; i++ {
			di := row[i] - mean[i]
			for j := i; j < dim; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	denom := float64(len(x) - 1)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= denom
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs := jacobiEigen(cov)
	// Sort by decreasing eigenvalue (selection sort over small dims).
	idx := make([]int, dim)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < dim; i++ {
		best := i
		for j := i + 1; j < dim; j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	m := &Model{Mean: mean}
	for c := 0; c < k; c++ {
		col := idx[c]
		comp := make([]float64, dim)
		for r := 0; r < dim; r++ {
			comp[r] = vecs[r][col]
		}
		m.Components = append(m.Components, comp)
		ev := vals[col]
		if ev < 0 {
			ev = 0
		}
		m.Explained = append(m.Explained, ev)
	}
	return m, nil
}

// Project maps a raw vector into the principal subspace.
func (m *Model) Project(x []float64) []float64 {
	out := make([]float64, len(m.Components))
	for c, comp := range m.Components {
		var s float64
		for d := range comp {
			v := 0.0
			if d < len(x) {
				v = x[d]
			}
			s += comp[d] * (v - m.Mean[d])
		}
		out[c] = s
	}
	return out
}

// ProjectAll maps every row of x.
func (m *Model) ProjectAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = m.Project(row)
	}
	return out
}

// ExplainedRatio returns the fraction of the retained variance carried by
// each kept component (sums to 1 over the kept components).
func (m *Model) ExplainedRatio() []float64 {
	var total float64
	for _, v := range m.Explained {
		total += v
	}
	out := make([]float64, len(m.Explained))
	if stats.IsZero(total) {
		return out
	}
	for i, v := range m.Explained {
		out[i] = v / total
	}
	return out
}

// jacobiEigen computes eigenvalues and eigenvectors of a symmetric matrix
// by cyclic Jacobi rotations. vecs columns are eigenvectors.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	vecs = make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vecs[k][p], vecs[k][q]
					vecs[k][p] = c*vkp - s*vkq
					vecs[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, vecs
}
