package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Data stretched along (1, 1)/√2 with small orthogonal noise.
	var x [][]float64
	for i := 0; i < 500; i++ {
		a := 5 * rng.NormFloat64()
		b := 0.3 * rng.NormFloat64()
		x = append(x, []float64{a/math.Sqrt2 - b/math.Sqrt2, a/math.Sqrt2 + b/math.Sqrt2})
	}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := m.Components[0]
	// First component should be ±(1,1)/√2.
	if math.Abs(math.Abs(c0[0])-1/math.Sqrt2) > 0.05 || math.Abs(c0[0]-c0[1]) > 0.1 {
		t.Errorf("first component = %v", c0)
	}
	if m.Explained[0] <= m.Explained[1] {
		t.Error("explained variance not sorted")
	}
	ratios := m.ExplainedRatio()
	if ratios[0] < 0.9 {
		t.Errorf("dominant ratio = %v", ratios[0])
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ratios sum to %v", sum)
	}
}

func TestProjectCentersData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	for i := 0; i < 100; i++ {
		x = append(x, []float64{10 + rng.NormFloat64(), -5 + rng.NormFloat64(), 3 + rng.NormFloat64()})
	}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := m.ProjectAll(x)
	if len(proj) != len(x) || len(proj[0]) != 2 {
		t.Fatalf("projection shape %dx%d", len(proj), len(proj[0]))
	}
	// Projections are mean-centered.
	var mean0, mean1 float64
	for _, p := range proj {
		mean0 += p[0]
		mean1 += p[1]
	}
	mean0 /= float64(len(proj))
	mean1 /= float64(len(proj))
	if math.Abs(mean0) > 1e-9 || math.Abs(mean1) > 1e-9 {
		t.Errorf("projected means = %v, %v", mean0, mean1)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	for i := 0; i < 200; i++ {
		row := make([]float64, 5)
		for d := range row {
			row[d] = rng.NormFloat64() * float64(d+1)
		}
		x = append(x, row)
	}
	m, err := Fit(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var norm float64
		for _, v := range m.Components[i] {
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-8 {
			t.Errorf("component %d norm² = %v", i, norm)
		}
		for j := i + 1; j < 5; j++ {
			var dotp float64
			for d := range m.Components[i] {
				dotp += m.Components[i][d] * m.Components[j][d]
			}
			if math.Abs(dotp) > 1e-8 {
				t.Errorf("components %d,%d dot = %v", i, j, dotp)
			}
		}
	}
}

func TestExplainedMatchesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	for i := 0; i < 2000; i++ {
		x = append(x, []float64{3 * rng.NormFloat64(), rng.NormFloat64()})
	}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Axis-aligned independent Gaussians: eigenvalues ≈ 9 and 1.
	if math.Abs(m.Explained[0]-9) > 1 {
		t.Errorf("first eigenvalue = %v, want ≈9", m.Explained[0])
	}
	if math.Abs(m.Explained[1]-1) > 0.3 {
		t.Errorf("second eigenvalue = %v, want ≈1", m.Explained[1])
	}
}

func TestFitErrors(t *testing.T) {
	cases := []struct {
		name string
		x    [][]float64
		k    int
	}{
		{"too few rows", [][]float64{{1, 2}}, 1},
		{"k too large", [][]float64{{1, 2}, {3, 4}}, 3},
		{"k zero", [][]float64{{1, 2}, {3, 4}}, 0},
		{"ragged", [][]float64{{1, 2}, {3}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Fit(tc.x, tc.k); !errors.Is(err, ErrBadInput) {
				t.Errorf("err = %v, want ErrBadInput", err)
			}
		})
	}
}

func TestProjectShortVector(t *testing.T) {
	m, err := Fit([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Short input is zero-padded, not a panic.
	_ = m.Project([]float64{1})
}

func TestExplainedRatioZeroVariance(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratios := m.ExplainedRatio()
	for _, r := range ratios {
		if r != 0 {
			t.Errorf("zero-variance ratio = %v", r)
		}
	}
}
