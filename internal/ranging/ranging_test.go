package ranging

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCalibratePilot(t *testing.T) {
	// A speaker with a 20 kHz corner should calibrate to the highest
	// candidate at or below the corner region.
	resp := SpeakerRolloff(20000)
	got := CalibratePilot(resp, DefaultPilotCandidates(), 0.7)
	if got < 19500 || got > 21000 {
		t.Errorf("calibrated pilot = %v, want ≈20 kHz", got)
	}
	// A weaker speaker calibrates lower.
	low := CalibratePilot(SpeakerRolloff(17500), DefaultPilotCandidates(), 0.7)
	if low >= got {
		t.Errorf("weak speaker pilot %v not below strong %v", low, got)
	}
	if low < 16000 {
		t.Errorf("pilot %v below the inaudible floor", low)
	}
	// No candidate qualifies → 0.
	if CalibratePilot(func(float64) float64 { return 0 }, DefaultPilotCandidates(), 0.5) != 0 {
		t.Error("dead loop should calibrate to 0")
	}
	// Negative candidates ignored.
	if CalibratePilot(resp, []float64{-1, 0}, 0.5) != 0 {
		t.Error("invalid candidates should calibrate to 0")
	}
}

func TestSpeakerRolloffShape(t *testing.T) {
	resp := SpeakerRolloff(19000)
	if resp(15000) != 1 {
		t.Error("below corner should be flat")
	}
	// One octave above: −48 dB ≈ 0.004.
	if g := resp(38000); math.Abs(g-0.00398) > 0.0005 {
		t.Errorf("octave-above gain = %v", g)
	}
	if resp(20000) >= resp(19000) {
		t.Error("response must fall above the corner")
	}
}

func TestPilotProperties(t *testing.T) {
	p := Pilot(DefaultPilotHz, DefaultRate, 0.5)
	if p.Len() != 24000 {
		t.Errorf("len = %d", p.Len())
	}
	if math.Abs(p.Peak()-0.5) > 1e-3 {
		t.Errorf("peak = %v", p.Peak())
	}
}

func TestSimulateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	still := func(float64) float64 { return 0.1 }
	bad := []ChannelConfig{
		{Freq: 0, Rate: 48000},
		{Freq: 19000, Rate: 0},
		{Freq: 25000, Rate: 48000}, // above Nyquist
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg, 1, still, rng); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Simulate(DefaultChannel(), 0, still, rng); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRecoverLinearMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Phone approaches: distance falls from 12 cm to 6 cm over 1.5 s.
	dist := func(tt float64) float64 { return 0.12 - 0.04*tt }
	capture, err := Simulate(DefaultChannel(), 1.5, dist, rng)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := Recover(capture, RecoverConfig{Freq: DefaultPilotHz})
	if err != nil {
		t.Fatal(err)
	}
	// Net displacement should be -6 cm within a few millimeters.
	if math.Abs(disp.Total()-(-0.06)) > 0.004 {
		t.Errorf("total displacement = %v, want -0.06", disp.Total())
	}
	// Midpoint displacement ≈ -3 cm.
	if got := disp.At(0.75); math.Abs(got-(-0.03)) > 0.004 {
		t.Errorf("mid displacement = %v, want -0.03", got)
	}
}

func TestRecoverSinusoidalMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Oscillation of ±1.5 cm at 1.2 Hz around 8 cm.
	dist := func(tt float64) float64 { return 0.08 + 0.015*math.Sin(2*math.Pi*1.2*tt) }
	capture, err := Simulate(DefaultChannel(), 2, dist, rng)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := Recover(capture, RecoverConfig{Freq: DefaultPilotHz})
	if err != nil {
		t.Fatal(err)
	}
	// Compare recovered track against truth (both relative to start).
	var worst float64
	for i, tt := range disp.T {
		want := dist(tt) - dist(disp.T[0])
		if e := math.Abs(disp.Dr[i] - want); e > worst {
			worst = e
		}
	}
	if worst > 0.005 {
		t.Errorf("worst tracking error = %v m", worst)
	}
}

func TestRecoverStationaryIsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	capture, err := Simulate(DefaultChannel(), 1, func(float64) float64 { return 0.08 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := Recover(capture, RecoverConfig{Freq: DefaultPilotHz})
	if err != nil {
		t.Fatal(err)
	}
	// A static scene has no meaningful dynamic phasor; displacement should
	// stay bounded (noise-driven phase walk, not systematic motion).
	for i, dr := range disp.Dr {
		if math.Abs(dr) > 0.01 {
			t.Errorf("stationary drift at block %d: %v m", i, dr)
			break
		}
	}
}

func TestRecoverErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	capture, err := Simulate(DefaultChannel(), 1, func(float64) float64 { return 0.1 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(capture, RecoverConfig{Freq: 0}); err == nil {
		t.Error("zero freq accepted")
	}
	if _, err := Recover(capture, RecoverConfig{Freq: 19000, BlockSize: 8}); err == nil {
		t.Error("tiny block accepted")
	}
	short := Pilot(19000, 48000, 0.005)
	if _, err := Recover(short, RecoverConfig{Freq: 19000}); !errors.Is(err, ErrCaptureTooShort) {
		t.Errorf("short capture err = %v", err)
	}
}

func TestDisplacementAtClamps(t *testing.T) {
	d := &Displacement{T: []float64{0, 1}, Dr: []float64{0, 2}}
	if d.At(-1) != 0 || d.At(5) != 2 {
		t.Error("At should clamp")
	}
	if got := d.At(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("At(0.5) = %v", got)
	}
	empty := &Displacement{}
	if empty.At(1) != 0 || empty.Total() != 0 {
		t.Error("empty displacement should return zeros")
	}
}

func TestFig6SpectrogramShowsPilot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dist := func(tt float64) float64 { return 0.12 - 0.04*tt }
	capture, err := Simulate(DefaultChannel(), 1, dist, rng)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpectrogramOfCapture(capture)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < sp.NumFrames(); f += 20 {
		bin, mag := sp.PeakBin(f, 16000, 24000)
		if bin < 0 || mag <= 0 {
			t.Fatalf("frame %d: pilot not visible", f)
		}
		if got := sp.BinFreq(bin); math.Abs(got-DefaultPilotHz) > 100 {
			t.Errorf("frame %d: peak at %v Hz", f, got)
		}
	}
}

func BenchmarkRecover(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	capture, err := Simulate(DefaultChannel(), 1.5, func(tt float64) float64 { return 0.12 - 0.04*tt }, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := RecoverConfig{Freq: DefaultPilotHz}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recover(capture, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
