// Package ranging implements the paper's phase-based acoustic distance
// measurement (§IV-B1, following the device-free gesture tracking
// literature it cites): the phone's speaker emits an inaudible tone above
// 16 kHz; the echo off the user's head shifts phase as the phone moves,
// and I/Q demodulation of the microphone signal recovers sub-wavelength
// radial displacement. With an 18–20 kHz tone (λ ≈ 1.8 cm) the phase
// resolves millimeter-scale motion.
package ranging

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
)

// SpeedOfSound in air, m/s.
// unit: m/s
const SpeedOfSound = 343.0

// DefaultPilotHz is the default pilot frequency: inaudible to most adults
// yet inside a 48 kHz capture band. The paper selects the highest usable
// frequency per device via calibration; 19 kHz is a safe common choice.
// unit: Hz
const DefaultPilotHz = 19000.0

// DefaultRate is the capture sample rate used for the pilot.
// unit: Hz
const DefaultRate = 48000.0

// CalibratePilot implements the per-device pilot selection the paper
// adopts from the SoundWave work: sweep candidate frequencies from high
// to low through the device's playback–capture loop and pick the highest
// frequency whose measured response clears the SNR floor. response(freq)
// returns the loop gain at freq (linear, 1 = nominal); minGain is the
// acceptance floor. Returns 0 if no candidate qualifies.
// unit: candidates Hz, minGain dimensionless, return Hz
func CalibratePilot(response func(freq float64) float64, candidates []float64, minGain float64) float64 {
	best := 0.0
	for _, f := range candidates {
		if f <= 0 {
			continue
		}
		if response(f) >= minGain && f > best {
			best = f
		}
	}
	return best
}

// DefaultPilotCandidates are the frequencies the calibration sweeps: the
// inaudible band in 250 Hz steps.
// unit: return Hz
func DefaultPilotCandidates() []float64 {
	var out []float64
	for f := 16000.0; f <= 22000; f += 250 {
		out = append(out, f)
	}
	return out
}

// SpeakerRolloff models a phone speaker's high-frequency response for
// calibration simulations: flat below the corner, then a steep roll-off.
// unit: corner Hz
func SpeakerRolloff(corner float64) func(freq float64) float64 {
	return func(freq float64) float64 {
		if freq <= corner {
			return 1
		}
		// ~48 dB/octave above the corner — phone micro-speakers die
		// quickly past their passband.
		octaves := math.Log2(freq / corner)
		return math.Pow(10, -48*octaves/20)
	}
}

// Pilot renders the transmitted tone of the given duration.
// unit: freq Hz, rate Hz, duration s
func Pilot(freq, rate, duration float64) *audio.Signal {
	s := audio.NewSignal(duration, rate)
	for i := range s.Samples {
		s.Samples[i] = 0.5 * math.Sin(2*math.Pi*freq*float64(i)/rate)
	}
	return s
}

// ChannelConfig describes the acoustic path between the phone's speaker
// and microphone during the gesture.
type ChannelConfig struct {
	// Freq is the pilot frequency in Hz.
	// unit: Hz
	Freq float64
	// Rate is the capture sample rate in Hz.
	// unit: Hz
	Rate float64
	// LeakGain is the direct speaker→mic leak amplitude (dominant,
	// static).
	// unit: dimensionless
	LeakGain float64
	// EchoGain is the head-echo amplitude.
	// unit: dimensionless
	EchoGain float64
	// NoiseRMS is additive capture noise.
	// unit: dimensionless
	NoiseRMS float64
	// MultipathGain adds a second static reflection (room surface).
	// unit: dimensionless
	MultipathGain float64
}

// DefaultChannel returns a typical handset channel.
func DefaultChannel() ChannelConfig {
	return ChannelConfig{
		Freq:          DefaultPilotHz,
		Rate:          DefaultRate,
		LeakGain:      0.30,
		EchoGain:      0.08,
		NoiseRMS:      0.005,
		MultipathGain: 0.02,
	}
}

// Simulate renders the microphone capture while the phone-to-head
// distance follows dist(t) (meters) over the given duration. The echo
// travels the round trip 2·dist(t).
// unit: duration s
func Simulate(cfg ChannelConfig, duration float64, dist func(t float64) float64, rng *rand.Rand) (*audio.Signal, error) {
	if cfg.Freq <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("ranging: bad channel freq=%v rate=%v", cfg.Freq, cfg.Rate)
	}
	if cfg.Freq >= cfg.Rate/2 {
		return nil, fmt.Errorf("ranging: pilot %v Hz at/above Nyquist of %v Hz", cfg.Freq, cfg.Rate)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("ranging: duration %v must be positive", duration)
	}
	s := audio.NewSignal(duration, cfg.Rate)
	w := 2 * math.Pi * cfg.Freq
	// Fixed multipath delay off a nearby room surface.
	const reflectorMeters = 0.5
	mpPhase := w * (2 * reflectorMeters / SpeedOfSound)
	for i := range s.Samples {
		t := float64(i) / cfg.Rate
		v := cfg.LeakGain * math.Sin(w*t)
		d := dist(t)
		v += cfg.EchoGain * math.Sin(w*(t-2*d/SpeedOfSound))
		if cfg.MultipathGain > 0 {
			v += cfg.MultipathGain * math.Sin(w*t-mpPhase)
		}
		if cfg.NoiseRMS > 0 && rng != nil {
			v += rng.NormFloat64() * cfg.NoiseRMS
		}
		s.Samples[i] = v
	}
	return s, nil
}

// Displacement is a recovered radial displacement track.
type Displacement struct {
	// T holds block-center times in seconds.
	// unit: s
	T []float64
	// Dr holds radial displacement in meters relative to the start of
	// the capture (positive = moving away).
	// unit: m
	Dr []float64
}

// ErrCaptureTooShort is returned when the capture has fewer than three
// analysis blocks.
var ErrCaptureTooShort = errors.New("ranging: capture too short for displacement recovery")

// RecoverConfig tunes displacement recovery.
type RecoverConfig struct {
	// Freq is the pilot frequency in Hz.
	// unit: Hz
	Freq float64
	// BlockSize is the demodulation block in samples (default 256, i.e.
	// ~5.3 ms at 48 kHz → ~190 Hz displacement bandwidth).
	BlockSize int
}

// Recover extracts the radial displacement of the echo path from a
// capture. It demodulates the pilot to baseband I/Q per block, removes
// the static leak/multipath phasor (the capture-wide mean), and unwraps
// the phase of the remaining dynamic (echo) phasor. Displacement follows
// from Δφ = -4π·Δd/λ.
func Recover(capture *audio.Signal, cfg RecoverConfig) (*Displacement, error) {
	if cfg.Freq <= 0 {
		return nil, fmt.Errorf("ranging: bad pilot frequency %v", cfg.Freq)
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 256
	}
	if cfg.BlockSize < 16 {
		return nil, fmt.Errorf("ranging: block size %d too small", cfg.BlockSize)
	}
	n := len(capture.Samples) / cfg.BlockSize
	if n < 3 {
		return nil, ErrCaptureTooShort
	}
	w := 2 * math.Pi * cfg.Freq / capture.Rate
	iq := make([]complex128, n)
	for b := 0; b < n; b++ {
		var re, im float64
		off := b * cfg.BlockSize
		for k := 0; k < cfg.BlockSize; k++ {
			v := capture.Samples[off+k]
			ph := w * float64(off+k)
			re += v * math.Cos(ph)
			im += v * -math.Sin(ph)
		}
		iq[b] = complex(re, im)
	}
	// Remove the static component (leak + fixed multipath): the
	// capture-wide mean. The moving echo's phasor rotates through full
	// circles over centimeter-scale motion, so its contribution to the
	// mean is small.
	var mean complex128
	for _, z := range iq {
		mean += z
	}
	mean /= complex(float64(n), 0)
	// Noise gate: when the scene is static the dynamic phasor is pure
	// noise and its phase would random-walk. Estimate the noise floor
	// from block-to-block I/Q steps (motion moves the phasor smoothly;
	// noise dominates the per-block difference) and hold the phase for
	// blocks whose dynamic magnitude sits at that floor.
	steps := make([]float64, 0, n-1)
	for b := 1; b < n; b++ {
		d := iq[b] - iq[b-1]
		steps = append(steps, math.Hypot(real(d), imag(d)))
	}
	insertionSortFloats(steps)
	gate := 0.0
	if len(steps) > 0 {
		gate = 3 * steps[len(steps)/2] / math.Sqrt2
	}
	phase := make([]float64, n)
	var prev float64
	for b, z := range iq {
		d := z - mean
		if math.Hypot(real(d), imag(d)) < gate {
			phase[b] = prev
			continue
		}
		phase[b] = math.Atan2(imag(d), real(d))
		prev = phase[b]
	}
	dsp.Unwrap(phase)
	lambda := SpeedOfSound / cfg.Freq
	out := &Displacement{T: make([]float64, n), Dr: make([]float64, n)}
	for b := 0; b < n; b++ {
		out.T[b] = (float64(b) + 0.5) * float64(cfg.BlockSize) / capture.Rate
		// Round trip: Δφ = -2π·(2Δd)/λ.
		out.Dr[b] = -(phase[b] - phase[0]) * lambda / (4 * math.Pi)
	}
	return out, nil
}

// At linearly interpolates the displacement at time t, clamping to the
// track ends.
// unit: t s, return m
func (d *Displacement) At(t float64) float64 {
	if len(d.T) == 0 {
		return 0
	}
	if t <= d.T[0] {
		return d.Dr[0]
	}
	if t >= d.T[len(d.T)-1] {
		return d.Dr[len(d.Dr)-1]
	}
	lo, hi := 0, len(d.T)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if d.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - d.T[lo]) / (d.T[hi] - d.T[lo])
	return d.Dr[lo] + f*(d.Dr[hi]-d.Dr[lo])
}

// Total returns the net displacement over the track.
// unit: return m
func (d *Displacement) Total() float64 {
	if len(d.Dr) == 0 {
		return 0
	}
	return d.Dr[len(d.Dr)-1] - d.Dr[0]
}

// insertionSortFloats sorts a small slice in place.
func insertionSortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// SpectrogramOfCapture computes the pilot-band magnitude spectrogram of a
// capture — the artifact the paper shows as Fig. 6.
func SpectrogramOfCapture(capture *audio.Signal) (*dsp.Spectrogram, error) {
	return dsp.STFT(capture.Samples, dsp.STFTConfig{
		FrameSize:  1024,
		HopSize:    256,
		SampleRate: capture.Rate,
	})
}
