package trajectory

import (
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/fusion"
	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/ranging"
	"voiceguard/internal/sensors"
	"voiceguard/internal/stats"
)

// GestureConfig describes one simulated verification gesture: the motion,
// the magnetic scene it happens in, and the acoustic ranging channel.
type GestureConfig struct {
	// UseCase is the scripted motion.
	UseCase UseCase
	// Scene is the magnetic environment (ambient plus any loudspeaker
	// sources). Nil means a quiet default environment.
	Scene magnetics.FieldSource
	// PhoneZ is the height of the motion plane in meters.
	PhoneZ float64 // unit: m
	// Channel is the acoustic ranging channel; the zero value selects
	// ranging.DefaultChannel.
	Channel ranging.ChannelConfig
	// EchoDist overrides the echo path distance function; nil uses the
	// true phone→source distance of the use case.
	EchoDist func(t float64) float64
	// MagOffset is how far the magnetometer sits ahead of the phone
	// center toward the source, in meters. On the paper's test phones
	// the AK8975 is at the top edge, which points at the mouth during
	// the gesture; default 0.03.
	MagOffset float64 // unit: m
	// Seed drives all sensor noise for this gesture.
	Seed int64
}

// Gesture is the full sensor record of one verification attempt — what a
// real client app would upload to the server.
type Gesture struct {
	// Gyro, Accel and Mag are the raw sensor traces. Mag is in the
	// phone frame; its magnitude is orientation-invariant and drives
	// loudspeaker detection, while heading fusion consumes it with the
	// phone-frame convention (fusion.Config.MagSign = -1).
	Gyro, Accel, Mag *sensors.Trace
	// LinAccel is the gravity-removed accelerometer trace.
	LinAccel *sensors.Trace
	// Capture is the microphone recording of the ranging pilot.
	Capture *audio.Signal
	// Disp is the recovered acoustic radial displacement.
	Disp *ranging.Displacement
	// Heading is the fused heading estimate.
	Heading *fusion.HeadingEstimate
	// SweepStart and SweepEnd bound the sweep segment in seconds.
	SweepStart, SweepEnd float64 // unit: s
}

// gravityMS2 is standard gravity in m/s².
const gravityMS2 = 9.80665

// SimulateGesture renders the complete sensor record of a gesture.
func SimulateGesture(cfg GestureConfig) (*Gesture, error) {
	if err := cfg.UseCase.Validate(); err != nil {
		return nil, err
	}
	scene := cfg.Scene
	if scene == nil {
		scene = magnetics.NewEnvironment(magnetics.EnvQuiet, cfg.Seed)
	}
	ch := cfg.Channel
	if stats.IsZero(ch.Freq) && stats.IsZero(ch.Rate) {
		ch = ranging.DefaultChannel()
	}
	echo := cfg.EchoDist
	if echo == nil {
		echo = cfg.UseCase.DistanceAt
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dur := cfg.UseCase.Duration()

	gyroSensor := sensors.New(sensors.PhoneGyroscope(), rng)
	accelSensor := sensors.New(sensors.PhoneAccelerometer(), rng)
	magSensor := sensors.New(sensors.AK8975(), rng)

	gyro, err := gyroSensor.Record(dur, func(t float64) geometry.Vec3 {
		return geometry.Vec3{Z: cfg.UseCase.TurnRateAt(t)}
	})
	if err != nil {
		return nil, fmt.Errorf("trajectory: recording gyro: %w", err)
	}
	accel, err := accelSensor.Record(dur, func(t float64) geometry.Vec3 {
		a := cfg.UseCase.AccelAt(t)
		return geometry.Vec3{X: a.X, Y: a.Y, Z: gravityMS2}
	})
	if err != nil {
		return nil, fmt.Errorf("trajectory: recording accel: %w", err)
	}
	magOffset := cfg.MagOffset
	if stats.IsZero(magOffset) {
		magOffset = 0.03
	}
	mag, err := magSensor.Record(dur, func(t float64) geometry.Vec3 {
		p := cfg.UseCase.PositionAt(t)
		theta := cfg.UseCase.HeadingAt(t)
		// The sensor sits ahead of the phone center along the heading.
		sp := p.Add(geometry.Vec2{X: math.Cos(theta), Y: math.Sin(theta)}.Scale(magOffset))
		world := scene.FieldAt(geometry.Vec3{X: sp.X, Y: sp.Y, Z: cfg.PhoneZ}, t)
		// Rotate the horizontal components into the phone frame.
		c, s := math.Cos(theta), math.Sin(theta)
		return geometry.Vec3{
			X: c*world.X + s*world.Y,
			Y: -s*world.X + c*world.Y,
			Z: world.Z,
		}
	})
	if err != nil {
		return nil, fmt.Errorf("trajectory: recording magnetometer: %w", err)
	}

	capture, err := ranging.Simulate(ch, dur, echo, rng)
	if err != nil {
		return nil, fmt.Errorf("trajectory: simulating ranging channel: %w", err)
	}
	disp, err := ranging.Recover(capture, ranging.RecoverConfig{Freq: ch.Freq})
	if err != nil {
		return nil, fmt.Errorf("trajectory: recovering displacement: %w", err)
	}
	heading, err := fusion.EstimateHeading(gyro, mag, fusion.Config{MagSign: -1})
	if err != nil {
		return nil, fmt.Errorf("trajectory: fusing heading: %w", err)
	}
	linAccel := fusion.RemoveGravity(accel, func(float64) (float64, float64, float64) {
		return 0, 0, gravityMS2
	})
	return &Gesture{
		Gyro:       gyro,
		Accel:      accel,
		Mag:        mag,
		LinAccel:   linAccel,
		Capture:    capture,
		Disp:       disp,
		Heading:    heading,
		SweepStart: cfg.UseCase.ApproachDur,
		SweepEnd:   cfg.UseCase.Duration(),
	}, nil
}

// Estimate runs the distance estimator over the gesture's sweep segment.
func (g *Gesture) Estimate() (Estimate, error) {
	return EstimateDistance(g.Heading, g.LinAccel, g.Disp, g.SweepStart, g.SweepEnd)
}

// FromUpload reconstructs a Gesture from raw uploaded traces and the
// ranging capture — the server-side path: heading fusion, gravity
// removal and displacement recovery are re-run on the received data.
// unit: pilotHz Hz, sweepStart s, sweepEnd s
func FromUpload(gyro, accel, mag *sensors.Trace, capture *audio.Signal, pilotHz, sweepStart, sweepEnd float64) (*Gesture, error) {
	if gyro == nil || accel == nil || mag == nil || capture == nil {
		return nil, fmt.Errorf("trajectory: upload missing traces")
	}
	heading, err := fusion.EstimateHeading(gyro, mag, fusion.Config{MagSign: -1})
	if err != nil {
		return nil, fmt.Errorf("trajectory: fusing uploaded heading: %w", err)
	}
	disp, err := ranging.Recover(capture, ranging.RecoverConfig{Freq: pilotHz})
	if err != nil {
		return nil, fmt.Errorf("trajectory: recovering uploaded displacement: %w", err)
	}
	linAccel := fusion.RemoveGravity(accel, func(float64) (float64, float64, float64) {
		return 0, 0, gravityMS2
	})
	return &Gesture{
		Gyro:       gyro,
		Accel:      accel,
		Mag:        mag,
		LinAccel:   linAccel,
		Capture:    capture,
		Disp:       disp,
		Heading:    heading,
		SweepStart: sweepStart,
		SweepEnd:   sweepEnd,
	}, nil
}
