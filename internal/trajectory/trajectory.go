// Package trajectory models the paper's interaction gesture (§III-C,
// Fig. 3) and recovers the phone→source distance from sensor data
// (§IV-B1). The user holds the phone near the head, moves it toward the
// mouth while speaking, then sweeps it across the mouth. The approach
// segment is close to a straight line; the sweep segment is an arc pivoting
// around the sound source. Distance recovery combines three signals:
//
//   - the gyroscope turn rate ω(t) during the sweep,
//   - the centripetal acceleration a_c(t) = r·ω² from the accelerometer,
//     giving the pivot radius r = a_c/ω²,
//   - the acoustic radial displacement from internal/ranging, which both
//     scales the approach and certifies that the sweep really is centered
//     on the sound source (a loudspeaker standing behind a fake pivot
//     point produces a large radial variation).
//
// The recovered 2D positions are then circle-fitted (internal/geometry)
// exactly as the paper describes, and the fit radius/residual become the
// distance estimate and its quality gate.
package trajectory

import (
	"errors"
	"fmt"
	"math"

	"voiceguard/internal/fusion"
	"voiceguard/internal/geometry"
	"voiceguard/internal/ranging"
	"voiceguard/internal/sensors"
)

// UseCase is the scripted motion of one verification gesture. The sound
// source sits at SourcePos; the phone approaches from StartPos and then
// sweeps across the source at FinalDistance.
type UseCase struct {
	// SourcePos is the sound-source (mouth/loudspeaker) location, m.
	SourcePos geometry.Vec2
	// StartPos is where the gesture begins (near the ear), m.
	StartPos geometry.Vec2
	// FinalDistance is the standoff during the sweep, m.
	FinalDistance float64 // unit: m
	// ApproachDur is the approach segment duration, s.
	ApproachDur float64 // unit: s
	// SweepDur is the sweep segment duration, s.
	SweepDur float64 // unit: s
	// SweepHalfAngle is the sweep amplitude in radians.
	SweepHalfAngle float64 // unit: rad
}

// StandardUseCase returns the paper's gesture at the given sweep
// distance: start 14 cm from the mouth (phone at the ear), approach for
// 1 s, sweep ±50° for 1.5 s.
// unit: finalDistance m
func StandardUseCase(finalDistance float64) UseCase {
	return UseCase{
		SourcePos:      geometry.Vec2{X: 0, Y: 0},
		StartPos:       geometry.Vec2{X: 0.10, Y: 0.10},
		FinalDistance:  finalDistance,
		ApproachDur:    1.0,
		SweepDur:       1.5,
		SweepHalfAngle: 50 * math.Pi / 180,
	}
}

// Validate reports whether the gesture parameters are usable.
func (u UseCase) Validate() error {
	switch {
	case u.FinalDistance <= 0:
		return fmt.Errorf("trajectory: FinalDistance %v must be positive", u.FinalDistance)
	case u.ApproachDur <= 0 || u.SweepDur <= 0:
		return fmt.Errorf("trajectory: durations must be positive (%v, %v)", u.ApproachDur, u.SweepDur)
	case u.SweepHalfAngle <= 0 || u.SweepHalfAngle > math.Pi:
		return fmt.Errorf("trajectory: SweepHalfAngle %v outside (0, π]", u.SweepHalfAngle)
	case u.StartPos.Dist(u.SourcePos) <= u.FinalDistance:
		return fmt.Errorf("trajectory: start %v closer than final distance %v", u.StartPos, u.FinalDistance)
	}
	return nil
}

// Duration returns the total gesture time in seconds.
func (u UseCase) Duration() float64 { return u.ApproachDur + u.SweepDur }

// sweepAngle returns the pivot angle offset at sweep-relative time ts.
// One full out-and-back cycle: α(ts) = A·sin(2π ts/T).
func (u UseCase) sweepAngle(ts float64) float64 {
	return u.SweepHalfAngle * math.Sin(2*math.Pi*ts/u.SweepDur)
}

// PositionAt returns the phone's true position at time t.
// unit: t s
func (u UseCase) PositionAt(t float64) geometry.Vec2 {
	dir := u.StartPos.Sub(u.SourcePos).Normalize()
	baseAngle := dir.Angle()
	if t <= 0 {
		return u.StartPos
	}
	if t < u.ApproachDur {
		// Smooth-step approach from start radius to FinalDistance along
		// the start bearing.
		f := t / u.ApproachDur
		s := f * f * (3 - 2*f)
		r0 := u.StartPos.Dist(u.SourcePos)
		r := r0 + (u.FinalDistance-r0)*s
		return u.SourcePos.Add(dir.Scale(r))
	}
	ts := t - u.ApproachDur
	if ts > u.SweepDur {
		ts = u.SweepDur
	}
	ang := baseAngle + u.sweepAngle(ts)
	return u.SourcePos.Add(geometry.Vec2{X: math.Cos(ang), Y: math.Sin(ang)}.Scale(u.FinalDistance))
}

// HeadingAt returns the phone's true heading at time t: the phone screen
// faces the source, so the heading is the bearing from phone to source.
// unit: t s
func (u UseCase) HeadingAt(t float64) float64 {
	p := u.PositionAt(t)
	return u.SourcePos.Sub(p).Angle()
}

// DistanceAt returns the true phone→source distance at time t.
// unit: t s
func (u UseCase) DistanceAt(t float64) float64 {
	return u.PositionAt(t).Dist(u.SourcePos)
}

// TurnRateAt returns the true heading rate (rad/s) via central difference.
// unit: t s
func (u UseCase) TurnRateAt(t float64) float64 {
	const h = 1e-3
	a := u.HeadingAt(t + h)
	b := u.HeadingAt(t - h)
	d := a - b
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return d / (2 * h)
}

// AccelAt returns the true planar acceleration (m/s²) via central
// difference of positions.
// unit: t s
func (u UseCase) AccelAt(t float64) geometry.Vec2 {
	const h = 2e-3
	p0 := u.PositionAt(t - h)
	p1 := u.PositionAt(t)
	p2 := u.PositionAt(t + h)
	return p2.Sub(p1.Scale(2)).Add(p0).Scale(1 / (h * h))
}

// Estimate is the recovered gesture geometry.
type Estimate struct {
	// Distance is the estimated phone→source distance during the sweep, m.
	Distance float64 // unit: m
	// Fit is the circle fitted to the reconstructed sweep positions.
	Fit geometry.Circle
	// Residual is the RMS circle-fit residual, m.
	Residual float64 // unit: m
	// SweepRadialStd is the standard deviation of the acoustic radial
	// displacement across the sweep, m. A sweep genuinely centered on
	// the sound source keeps this small; a fake pivot in front of a
	// distant loudspeaker does not.
	SweepRadialStd float64 // unit: m
	// Turn is the total heading excursion during the sweep, rad.
	Turn float64 // unit: rad
	// Positions are the reconstructed sweep positions (source-centric
	// frame up to rotation/translation).
	Positions []geometry.Vec2
}

// ErrInsufficientMotion is returned when the sweep has too little turning
// for the pivot radius to be observable.
var ErrInsufficientMotion = errors.New("trajectory: insufficient sweep motion for distance estimation")

// EstimateDistance recovers the gesture geometry from fused heading, the
// gravity-free accelerometer trace and the acoustic displacement track.
// sweepStart/sweepEnd bound the sweep segment in seconds.
// unit: sweepStart s, sweepEnd s
func EstimateDistance(head *fusion.HeadingEstimate, linAccel *sensors.Trace, disp *ranging.Displacement, sweepStart, sweepEnd float64) (Estimate, error) {
	if head == nil || linAccel == nil || disp == nil {
		return Estimate{}, errors.New("trajectory: nil inputs")
	}
	if sweepEnd <= sweepStart {
		return Estimate{}, fmt.Errorf("trajectory: empty sweep window [%v, %v]", sweepStart, sweepEnd)
	}
	// Collect sweep-window accelerometer samples with their turn rates.
	type obs struct {
		t     float64
		r     float64 // centripetal acceleration magnitude
		omega float64
	}
	var observations []obs
	var maxOmega float64
	for _, s := range linAccel.Samples {
		if s.T < sweepStart || s.T > sweepEnd {
			continue
		}
		w := head.OmegaAt(s.T)
		if math.Abs(w) > maxOmega {
			maxOmega = math.Abs(w)
		}
		// The centripetal component points from the phone toward the
		// pivot — along the phone's heading, since the screen faces the
		// source. Projecting isolates it from the tangential component,
		// which would otherwise bias the radius upward. The heading
		// carries a constant magnetic-declination offset; its cosine
		// error is second-order here.
		theta := head.ThetaAt(s.T)
		aC := s.V.X*math.Cos(theta) + s.V.Y*math.Sin(theta)
		observations = append(observations, obs{t: s.T, r: math.Abs(aC), omega: w})
	}
	if len(observations) < 8 || maxOmega < 0.3 {
		return Estimate{}, ErrInsufficientMotion
	}
	// Pivot radius from samples with enough turning for a_c = r·ω² to be
	// observable above sensor noise.
	var radii []float64
	for _, o := range observations {
		if math.Abs(o.omega) < 0.5*maxOmega {
			continue
		}
		radii = append(radii, o.r/(o.omega*o.omega))
	}
	if len(radii) < 4 {
		return Estimate{}, ErrInsufficientMotion
	}
	insertionSort(radii)
	rPivot := radii[len(radii)/2]

	// Acoustic radial statistics over the sweep.
	var drs []float64
	for i, t := range disp.T {
		if t >= sweepStart && t <= sweepEnd {
			drs = append(drs, disp.Dr[i])
		}
	}
	var drMean, drStd float64
	if len(drs) > 0 {
		for _, v := range drs {
			drMean += v
		}
		drMean /= float64(len(drs))
		for _, v := range drs {
			drStd += (v - drMean) * (v - drMean)
		}
		drStd = math.Sqrt(drStd / float64(len(drs)))
	}

	// Reconstruct source-centric positions: radius = pivot radius plus
	// the acoustic radial deviation, bearing from the fused heading
	// (phone faces the source, so bearing = heading + π).
	est := Estimate{SweepRadialStd: drStd}
	var thetaMin, thetaMax float64
	first := true
	for _, o := range observations {
		theta := head.ThetaAt(o.t)
		if first {
			thetaMin, thetaMax = theta, theta
			first = false
		} else {
			thetaMin = math.Min(thetaMin, theta)
			thetaMax = math.Max(thetaMax, theta)
		}
		r := rPivot + (disp.At(o.t) - drMean)
		if r < 1e-3 {
			r = 1e-3
		}
		bearing := theta + math.Pi
		est.Positions = append(est.Positions, geometry.Vec2{
			X: r * math.Cos(bearing),
			Y: r * math.Sin(bearing),
		})
	}
	est.Turn = thetaMax - thetaMin

	if fit, err := geometry.FitCircle(est.Positions); err == nil {
		est.Fit = fit
		est.Residual = fit.RMSResidual(est.Positions)
		est.Distance = fit.Radius
	} else {
		// Degenerate arc (e.g. nearly constant heading): fall back to the
		// centripetal estimate.
		est.Distance = rPivot
		est.Residual = drStd
	}
	return est, nil
}

func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
