package trajectory

import (
	"errors"
	"math"
	"testing"

	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
)

func TestUseCaseValidate(t *testing.T) {
	good := StandardUseCase(0.06)
	if err := good.Validate(); err != nil {
		t.Fatalf("standard use case invalid: %v", err)
	}
	bad := []func(*UseCase){
		func(u *UseCase) { u.FinalDistance = 0 },
		func(u *UseCase) { u.ApproachDur = 0 },
		func(u *UseCase) { u.SweepDur = 0 },
		func(u *UseCase) { u.SweepHalfAngle = 0 },
		func(u *UseCase) { u.SweepHalfAngle = 4 },
		func(u *UseCase) { u.StartPos = u.SourcePos },
	}
	for i, mut := range bad {
		u := StandardUseCase(0.06)
		mut(&u)
		if err := u.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestUseCaseGeometry(t *testing.T) {
	u := StandardUseCase(0.06)
	// Start at the start.
	if u.PositionAt(0).Dist(u.StartPos) > 1e-9 {
		t.Error("position at t=0 should be StartPos")
	}
	if u.PositionAt(-1).Dist(u.StartPos) > 1e-9 {
		t.Error("positions before t=0 clamp to start")
	}
	// After the approach, distance equals FinalDistance and stays there.
	for _, tt := range []float64{u.ApproachDur, u.ApproachDur + 0.5, u.Duration()} {
		if d := u.DistanceAt(tt); math.Abs(d-0.06) > 1e-9 {
			t.Errorf("t=%v: distance %v, want 0.06", tt, d)
		}
	}
	// Approach is monotone toward the source.
	prev := u.DistanceAt(0)
	for tt := 0.1; tt <= u.ApproachDur; tt += 0.1 {
		d := u.DistanceAt(tt)
		if d > prev+1e-9 {
			t.Fatalf("approach not monotone at %v", tt)
		}
		prev = d
	}
	// Heading always points at the source.
	for tt := 0.0; tt < u.Duration(); tt += 0.2 {
		p := u.PositionAt(tt)
		want := u.SourcePos.Sub(p).Angle()
		if math.Abs(u.HeadingAt(tt)-want) > 1e-9 {
			t.Fatalf("heading at %v wrong", tt)
		}
	}
}

func TestUseCaseSweepCoversArc(t *testing.T) {
	u := StandardUseCase(0.06)
	var minAng, maxAng float64
	first := true
	for ts := 0.0; ts <= u.SweepDur; ts += 0.01 {
		a := u.sweepAngle(ts)
		if first {
			minAng, maxAng = a, a
			first = false
		}
		minAng = math.Min(minAng, a)
		maxAng = math.Max(maxAng, a)
	}
	if math.Abs(maxAng-u.SweepHalfAngle) > 1e-3 || math.Abs(minAng+u.SweepHalfAngle) > 1e-3 {
		t.Errorf("sweep covers [%v, %v], want ±%v", minAng, maxAng, u.SweepHalfAngle)
	}
}

func TestCentripetalConsistency(t *testing.T) {
	// During the sweep at turn-rate peaks, |a| ≈ r·ω².
	u := StandardUseCase(0.06)
	tt := u.ApproachDur + u.SweepDur/2 // α=0 crossing: peak ω, zero tangential
	a := u.AccelAt(tt).Norm()
	w := u.TurnRateAt(tt)
	r := a / (w * w)
	if math.Abs(r-0.06) > 0.005 {
		t.Errorf("centripetal radius = %v, want 0.06", r)
	}
}

func TestSimulateGestureAndEstimate(t *testing.T) {
	for _, dist := range []float64{0.04, 0.06, 0.10} {
		g, err := SimulateGesture(GestureConfig{
			UseCase: StandardUseCase(dist),
			Seed:    7,
		})
		if err != nil {
			t.Fatalf("dist %v: %v", dist, err)
		}
		est, err := g.Estimate()
		if err != nil {
			t.Fatalf("dist %v: %v", dist, err)
		}
		if math.Abs(est.Distance-dist) > 0.25*dist {
			t.Errorf("dist %v: estimate %v (>25%% off)", dist, est.Distance)
		}
		if est.Turn < 1.0 {
			t.Errorf("dist %v: turn %v too small", dist, est.Turn)
		}
		// A genuine source-centered sweep keeps the acoustic radius steady.
		if est.SweepRadialStd > 0.01 {
			t.Errorf("dist %v: sweep radial std %v", dist, est.SweepRadialStd)
		}
	}
}

func TestEstimateDetectsFakePivot(t *testing.T) {
	// Attack: the phone performs the gesture around a fake pivot 6 cm in
	// front of it, but the actual sound source (loudspeaker) is 20 cm
	// away. The acoustic echo then tracks the distant speaker, whose
	// radial distance varies during the sweep.
	u := StandardUseCase(0.06)
	speakerPos := geometry.Vec2{X: -0.20, Y: 0}
	g, err := SimulateGesture(GestureConfig{
		UseCase: u,
		Seed:    8,
		EchoDist: func(t float64) float64 {
			return u.PositionAt(t).Dist(speakerPos)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := g.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	genuine, err := SimulateGesture(GestureConfig{UseCase: u, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	gEst, err := genuine.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.SweepRadialStd < 3*gEst.SweepRadialStd {
		t.Errorf("fake pivot radial std %v not well above genuine %v",
			est.SweepRadialStd, gEst.SweepRadialStd)
	}
}

func TestEstimateDistanceErrors(t *testing.T) {
	g, err := SimulateGesture(GestureConfig{UseCase: StandardUseCase(0.06), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateDistance(nil, g.LinAccel, g.Disp, 1, 2); err == nil {
		t.Error("nil heading accepted")
	}
	if _, err := EstimateDistance(g.Heading, g.LinAccel, g.Disp, 2, 1); err == nil {
		t.Error("empty window accepted")
	}
	// A window inside the (motionless) pre-sweep segment lacks turning.
	if _, err := EstimateDistance(g.Heading, g.LinAccel, g.Disp, 0.0, 0.2); !errors.Is(err, ErrInsufficientMotion) {
		t.Errorf("err = %v, want ErrInsufficientMotion", err)
	}
}

func TestSimulateGestureInvalidUseCase(t *testing.T) {
	u := StandardUseCase(0.06)
	u.FinalDistance = 0
	if _, err := SimulateGesture(GestureConfig{UseCase: u}); err == nil {
		t.Error("invalid use case accepted")
	}
}

func TestGestureMagnetometerSeesLoudspeaker(t *testing.T) {
	// With a loudspeaker at the source position, the magnetometer
	// magnitude deviates strongly from the ambient baseline; without it,
	// it stays near the geomagnetic level.
	u := StandardUseCase(0.05)
	ambient := magnetics.NewEnvironment(magnetics.EnvQuiet, 3)

	quiet, err := SimulateGesture(GestureConfig{UseCase: u, Scene: ambient, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	speaker := magnetics.NewEnvironment(magnetics.EnvQuiet, 3)
	speaker.Add(magnetics.Dipole{
		Position: geometry.Vec3{X: u.SourcePos.X, Y: u.SourcePos.Y, Z: 0},
		Moment:   geometry.Vec3{X: 0.06},
	})
	attacked, err := SimulateGesture(GestureConfig{UseCase: u, Scene: speaker, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	rangeOf := func(m []float64) float64 {
		lo, hi := m[0], m[0]
		for _, v := range m {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	quietRange := rangeOf(quiet.Mag.Magnitudes())
	attackRange := rangeOf(attacked.Mag.Magnitudes())
	if attackRange < quietRange+20 {
		t.Errorf("loudspeaker should swing the magnitude: quiet %v, attack %v", quietRange, attackRange)
	}
}

func BenchmarkSimulateGesture(b *testing.B) {
	cfg := GestureConfig{UseCase: StandardUseCase(0.06), Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateGesture(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateDistance(b *testing.B) {
	g, err := SimulateGesture(GestureConfig{UseCase: StandardUseCase(0.06), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Estimate(); err != nil {
			b.Fatal(err)
		}
	}
}
