package fusion

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/geometry"
	"voiceguard/internal/sensors"
)

// makeTraces simulates a rotation profile theta(t) and produces gyro and
// magnetometer traces for it. The magnetometer sees a fixed horizontal
// field rotated by -theta in the phone frame (so its heading is +theta).
func makeTraces(t *testing.T, dur float64, theta func(float64) float64, seed int64) (gyro, mag *sensors.Trace) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gs := sensors.New(sensors.PhoneGyroscope(), rng)
	ms := sensors.New(sensors.Spec{Name: "mag", NoiseRMS: 0.35, SampleRate: 100}, rng)
	const dt = 1e-3
	rate := func(tt float64) float64 { return (theta(tt+dt) - theta(tt-dt)) / (2 * dt) }
	var err error
	gyro, err = gs.Record(dur, func(tt float64) geometry.Vec3 {
		return geometry.Vec3{Z: rate(tt)}
	})
	if err != nil {
		t.Fatal(err)
	}
	mag, err = ms.Record(dur, func(tt float64) geometry.Vec3 {
		a := theta(tt)
		// Horizontal field of 30 µT at heading a.
		return geometry.Vec3{X: 30 * math.Cos(a), Y: 30 * math.Sin(a), Z: -40}
	})
	if err != nil {
		t.Fatal(err)
	}
	return gyro, mag
}

func TestEstimateHeadingTracksTruth(t *testing.T) {
	truth := func(tt float64) float64 { return 0.3 + 1.2*math.Sin(1.5*tt) }
	gyro, mag := makeTraces(t, 3, truth, 1)
	est, err := EstimateHeading(gyro, mag, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i, tt := range est.T {
		e := math.Abs(est.Theta[i] - truth(tt))
		if e > worst {
			worst = e
		}
	}
	if worst > 0.08 {
		t.Errorf("worst heading error = %v rad", worst)
	}
}

func TestEstimateHeadingTotalTurn(t *testing.T) {
	truth := func(tt float64) float64 { return 0.8 * tt } // steady turn
	gyro, mag := makeTraces(t, 2, truth, 2)
	est, err := EstimateHeading(gyro, mag, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.TotalTurn()-1.6) > 0.1 {
		t.Errorf("total turn = %v, want ≈1.6", est.TotalTurn())
	}
}

func TestEstimateHeadingUnwrapsAcrossPi(t *testing.T) {
	// Rotation passing through ±π must not produce 2π jumps.
	truth := func(tt float64) float64 { return 2.5 + 1.5*tt }
	gyro, mag := makeTraces(t, 2, truth, 3)
	est, err := EstimateHeading(gyro, mag, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(est.Theta); i++ {
		if math.Abs(est.Theta[i]-est.Theta[i-1]) > 0.5 {
			t.Fatalf("heading jump at %d: %v -> %v", i, est.Theta[i-1], est.Theta[i])
		}
	}
}

func TestEstimateHeadingCorrectsGyroDrift(t *testing.T) {
	// A biased gyro drifts; the magnetometer correction should bound the
	// error. Build traces with a deliberate extra gyro bias.
	rng := rand.New(rand.NewSource(4))
	gspec := sensors.PhoneGyroscope()
	gspec.BiasRMS = 0 // we'll inject a known bias instead
	gs := sensors.New(gspec, rng)
	ms := sensors.New(sensors.Spec{Name: "mag", NoiseRMS: 0.35, SampleRate: 100}, rng)
	truth := func(tt float64) float64 { return 0.5 * math.Sin(tt) }
	const bias = 0.08 // rad/s — large drift: 0.8 rad over 10 s
	gyro, err := gs.Record(10, func(tt float64) geometry.Vec3 {
		const dt = 1e-3
		rate := (truth(tt+dt) - truth(tt-dt)) / (2 * dt)
		return geometry.Vec3{Z: rate + bias}
	})
	if err != nil {
		t.Fatal(err)
	}
	mag, err := ms.Record(10, func(tt float64) geometry.Vec3 {
		a := truth(tt)
		return geometry.Vec3{X: 30 * math.Cos(a), Y: 30 * math.Sin(a), Z: -40}
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateHeading(gyro, mag, Config{})
	if err != nil {
		t.Fatal(err)
	}
	finalErr := math.Abs(est.Theta[len(est.Theta)-1] - truth(10))
	if finalErr > 0.15 {
		t.Errorf("drift-corrected final error = %v rad (pure gyro would be ≈0.8)", finalErr)
	}
}

func TestEstimateHeadingErrors(t *testing.T) {
	gyro, mag := makeTraces(t, 1, func(tt float64) float64 { return 0 }, 5)
	cases := []struct {
		g, m *sensors.Trace
	}{
		{nil, mag},
		{gyro, nil},
		{&sensors.Trace{}, mag},
		{gyro, &sensors.Trace{}},
	}
	for i, tc := range cases {
		if _, err := EstimateHeading(tc.g, tc.m, Config{}); !errors.Is(err, ErrMismatchedTraces) {
			t.Errorf("case %d: err = %v, want ErrMismatchedTraces", i, err)
		}
	}
}

func TestThetaOmegaAtInterpolation(t *testing.T) {
	est := &HeadingEstimate{
		T:     []float64{0, 1, 2},
		Theta: []float64{0, 2, 2},
		Omega: []float64{1, 1, 0},
	}
	if got := est.ThetaAt(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("ThetaAt(0.5) = %v", got)
	}
	if got := est.ThetaAt(-1); got != 0 {
		t.Errorf("clamp low = %v", got)
	}
	if got := est.ThetaAt(99); got != 2 {
		t.Errorf("clamp high = %v", got)
	}
	if got := est.OmegaAt(1.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OmegaAt(1.5) = %v", got)
	}
	empty := &HeadingEstimate{}
	if empty.ThetaAt(1) != 0 || empty.TotalTurn() != 0 {
		t.Error("empty estimate should return zeros")
	}
}

func TestRemoveGravity(t *testing.T) {
	tr := &sensors.Trace{Name: "acc", Samples: []sensors.Sample{
		{T: 0, V: geometry.Vec3{X: 1, Y: 2, Z: 9.81}},
		{T: 0.01, V: geometry.Vec3{X: 0, Y: 0, Z: 9.81}},
	}}
	lin := RemoveGravity(tr, func(float64) (float64, float64, float64) { return 0, 0, 9.81 })
	if lin.Samples[0].V.Z != 0 || lin.Samples[1].V.Z != 0 {
		t.Errorf("gravity not removed: %v", lin.Samples)
	}
	if lin.Samples[0].V.X != 1 {
		t.Error("other axes must be preserved")
	}
	if tr.Samples[0].V.Z != 9.81 {
		t.Error("input trace must not be mutated")
	}
}
