// Package fusion estimates the phone's in-plane heading and turn rate
// from the gyroscope, magnetometer and accelerometer, following the
// paper's approach of jointly using all three because magnetometer-only
// headings are unreliable indoors (§IV-B1, citing Zee and walking-
// direction work). A complementary filter blends the gyro-integrated
// heading (accurate short-term, drifts long-term) with the magnetometer
// heading (noisy short-term, stable long-term).
package fusion

import (
	"errors"
	"math"

	"voiceguard/internal/sensors"
	"voiceguard/internal/stats"
)

// HeadingEstimate is the fused heading track.
type HeadingEstimate struct {
	// T holds sample times in seconds.
	// unit: s
	T []float64
	// Theta holds the unwrapped heading in radians at each time.
	// unit: rad
	Theta []float64
	// Omega holds the turn rate in rad/s at each time.
	// unit: rad/s
	Omega []float64
}

// ErrMismatchedTraces is returned when input traces are empty or
// incompatible.
var ErrMismatchedTraces = errors.New("fusion: empty or mismatched sensor traces")

// Config tunes the complementary filter.
type Config struct {
	// GyroWeight is the short-term trust in the integrated gyro heading,
	// in [0, 1); the magnetometer correction gets 1-GyroWeight per step.
	// Default 0.98.
	// unit: dimensionless
	GyroWeight float64
	// MagSign selects the magnetometer heading convention. +1 (default)
	// expects traces where atan2(Y, X) tracks the heading directly. -1
	// is the physical phone-frame convention: a fixed world field seen
	// from a phone at heading θ appears at angle (β - θ), so the heading
	// is recovered as -atan2(Y, X) up to the constant field angle β.
	// All downstream geometry (turn, bearings, circle fits) is invariant
	// to that constant offset.
	// unit: dimensionless
	MagSign float64
}

func (c *Config) setDefaults() {
	if stats.IsZero(c.GyroWeight) {
		c.GyroWeight = 0.98
	}
	if stats.IsZero(c.MagSign) {
		c.MagSign = 1
	}
}

// EstimateHeading fuses a gyroscope trace (rad/s, Z axis is the rotation
// axis of the 2D motion plane) with a magnetometer trace (µT). The traces
// may have different rates; magnetometer samples are consumed as they
// become current. The initial heading is taken from the first
// magnetometer sample.
func EstimateHeading(gyro, mag *sensors.Trace, cfg Config) (*HeadingEstimate, error) {
	cfg.setDefaults()
	if gyro == nil || mag == nil || gyro.Len() < 2 || mag.Len() < 1 {
		return nil, ErrMismatchedTraces
	}
	est := &HeadingEstimate{
		T:     make([]float64, gyro.Len()),
		Theta: make([]float64, gyro.Len()),
		Omega: make([]float64, gyro.Len()),
	}
	magHeading := func(i int) float64 {
		v := mag.Samples[i].V
		return cfg.MagSign * math.Atan2(v.Y, v.X)
	}
	theta := magHeading(0)
	magIdx := 0
	// Track unwrap offset for the magnetometer reference so the blend
	// compares like with like.
	magRef := theta
	for i := range gyro.Samples {
		s := gyro.Samples[i]
		if i > 0 {
			dt := s.T - gyro.Samples[i-1].T
			theta += s.V.Z * dt
		}
		// Advance the magnetometer cursor to the latest sample ≤ t.
		for magIdx+1 < mag.Len() && mag.Samples[magIdx+1].T <= s.T {
			magIdx++
			raw := magHeading(magIdx)
			// Unwrap the magnetometer heading toward the previous ref.
			for raw-magRef > math.Pi {
				raw -= 2 * math.Pi
			}
			for raw-magRef < -math.Pi {
				raw += 2 * math.Pi
			}
			magRef = raw
			theta = cfg.GyroWeight*theta + (1-cfg.GyroWeight)*magRef
		}
		est.T[i] = s.T
		est.Theta[i] = theta
		est.Omega[i] = s.V.Z
	}
	return est, nil
}

// TotalTurn returns the net heading change Δω over the estimate.
func (h *HeadingEstimate) TotalTurn() float64 {
	if len(h.Theta) == 0 {
		return 0
	}
	return h.Theta[len(h.Theta)-1] - h.Theta[0]
}

// ThetaAt linearly interpolates the heading at time t, clamping to the
// ends.
// unit: t s, return rad
func (h *HeadingEstimate) ThetaAt(t float64) float64 {
	return interp(h.T, h.Theta, t)
}

// OmegaAt linearly interpolates the turn rate at time t.
// unit: t s, return rad/s
func (h *HeadingEstimate) OmegaAt(t float64) float64 {
	return interp(h.T, h.Omega, t)
}

func interp(ts, vs []float64, t float64) float64 {
	if len(ts) == 0 {
		return 0
	}
	if t <= ts[0] {
		return vs[0]
	}
	if t >= ts[len(ts)-1] {
		return vs[len(vs)-1]
	}
	lo, hi := 0, len(ts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - ts[lo]) / (ts[hi] - ts[lo])
	return vs[lo] + f*(vs[hi]-vs[lo])
}

// RemoveGravity subtracts the gravity vector from an accelerometer trace
// given the known orientation of the motion plane (the paper constrains
// the use case to a pre-defined 2D plane, so gravity is constant in the
// plane frame). gravity is expressed in the same frame as the trace.
func RemoveGravity(accel *sensors.Trace, gravity func(t float64) (x, y, z float64)) *sensors.Trace {
	out := &sensors.Trace{Name: accel.Name + "-linear", Samples: make([]sensors.Sample, len(accel.Samples))}
	for i, s := range accel.Samples {
		gx, gy, gz := gravity(s.T)
		v := s.V
		v.X -= gx
		v.Y -= gy
		v.Z -= gz
		out.Samples[i] = sensors.Sample{T: s.T, V: v}
	}
	return out
}
