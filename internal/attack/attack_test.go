package attack

import (
	"math/rand"
	"testing"

	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/speech"
)

func testSystem(t testing.TB) *core.System {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func victimProfile(seed int64) speech.Profile {
	return speech.RandomProfile("victim", rand.New(rand.NewSource(seed)))
}

func TestGenuineSessionAccepted(t *testing.T) {
	sys := testSystem(t)
	victim := victimProfile(1)
	for seed := int64(0); seed < 5; seed++ {
		s, err := Genuine(victim, Scenario{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if s.ClaimedUser != "victim" {
			t.Errorf("claimed user = %q", s.ClaimedUser)
		}
		d, err := sys.Verify(s)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Accepted {
			t.Errorf("seed %d: genuine rejected: %v (%s)", seed, d.FailedStage,
				d.Stages[len(d.Stages)-1].Detail)
		}
	}
}

func TestReplayAttackRejected(t *testing.T) {
	sys := testSystem(t)
	victim := victimProfile(2)
	rec, err := Record(victim, "472913", 2)
	if err != nil {
		t.Fatal(err)
	}
	// A representative cross-section of the catalog.
	for _, idx := range []int{0, 4, 7, 13, 19, 23} {
		spk := device.Catalog()[idx]
		s, err := Replay(rec, spk, Scenario{Seed: int64(10 + idx)})
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.Verify(s)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			t.Errorf("replay via %s %s accepted", spk.Maker, spk.Model)
		}
	}
}

func TestEarphoneReplayCaughtBySoundField(t *testing.T) {
	// The paper's motivating case for stage 2: earphone magnets are weak,
	// so the sound-field verifier must catch them.
	sys := testSystem(t)
	// Remove the magnetic stage entirely to prove stage 2 suffices.
	sys.Speaker = nil
	victim := victimProfile(3)
	rec, err := Record(victim, "472913", 3)
	if err != nil {
		t.Fatal(err)
	}
	earphone := device.Catalog()[24] // Apple EarPods
	if earphone.Class != device.ClassEarphone {
		t.Fatal("catalog order changed")
	}
	var rejected int
	const n = 6
	for seed := int64(0); seed < n; seed++ {
		s, err := Replay(rec, earphone, Scenario{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.Verify(s)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Accepted {
			rejected++
			if d.FailedStage != core.StageSoundField && d.FailedStage != core.StageDistance {
				t.Logf("seed %d rejected at %v", seed, d.FailedStage)
			}
		}
	}
	if rejected < n {
		t.Errorf("earphone replay rejected %d/%d without magnetics", rejected, n)
	}
}

func TestMorphAndSynthesisRejected(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(4))
	victim := speech.RandomProfile("victim", rng)
	attacker := speech.RandomProfile("attacker", rng)
	spk := device.Catalog()[0]

	morph, err := Morph(attacker, victim, speech.ConverterAdvanced, spk, Scenario{Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := sys.Verify(morph); err != nil || d.Accepted {
		t.Errorf("morph attack accepted (err %v)", err)
	}
	synth, err := Synthesis(victim, spk, Scenario{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := sys.Verify(synth); err != nil || d.Accepted {
		t.Errorf("synthesis attack accepted (err %v)", err)
	}
}

func TestImitationPassesMachineStagesOnly(t *testing.T) {
	// A human imitator produces a genuine-looking physical session; the
	// machine-attack stages must NOT reject it (that is the ASV stage's
	// job, evaluated in the experiment harness).
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(5))
	victim := speech.RandomProfile("victim", rng)
	attacker := speech.RandomProfile("attacker", rng)
	s, err := Imitation(attacker, victim, speech.ImitatorProfessional, Scenario{Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if s.ClaimedUser != "victim" {
		t.Errorf("imitation should claim the victim, got %q", s.ClaimedUser)
	}
	d, err := sys.Verify(s)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Errorf("imitation rejected by machine stages at %v", d.FailedStage)
	}
}

func TestShieldedReplayStillCaughtClose(t *testing.T) {
	sys := testSystem(t)
	victim := victimProfile(6)
	rec, err := Record(victim, "472913", 6)
	if err != nil {
		t.Fatal(err)
	}
	spk := device.Catalog()[0]
	s, err := ShieldedReplay(rec, spk, Scenario{Distance: 0.05, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.Verify(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Error("shielded replay at 5 cm accepted")
	}
}

func TestShieldWeakensMagneticSignature(t *testing.T) {
	victim := victimProfile(7)
	rec, err := Record(victim, "472913", 7)
	if err != nil {
		t.Fatal(err)
	}
	spk := device.Catalog()[1] // strong outdoor speaker
	bare, err := Replay(rec, spk, Scenario{Distance: 0.10, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	shielded, err := ShieldedReplay(rec, spk, Scenario{Distance: 0.10, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	mb := core.Measure(bare.Gesture.Mag)
	ms := core.Measure(shielded.Gesture.Mag)
	if ms.Swing >= mb.Swing {
		t.Errorf("shield did not weaken signature: %v vs %v µT", ms.Swing, mb.Swing)
	}
}

func TestSoundTubeRejected(t *testing.T) {
	sys := testSystem(t)
	victim := victimProfile(8)
	rec, err := Record(victim, "472913", 8)
	if err != nil {
		t.Fatal(err)
	}
	spk := device.Catalog()[0]
	for i, tube := range []*soundfield.Tube{
		{OpeningRadius: 0.010, Length: 0.22, LevelAt1m: 62},
		{OpeningRadius: 0.015, Length: 0.33, LevelAt1m: 62},
		{OpeningRadius: 0.020, Length: 0.42, LevelAt1m: 62},
	} {
		s, err := SoundTube(rec, spk, tube, Scenario{Seed: int64(80 + i)})
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.Verify(s)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			t.Errorf("tube %s accepted", tube.Name())
		}
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{}.withDefaults()
	if sc.Distance != 0.06 || sc.Environment != magnetics.EnvQuiet || sc.Passphrase == "" {
		t.Errorf("defaults = %+v", sc)
	}
}

func TestRecordProducesUsableAudio(t *testing.T) {
	victim := victimProfile(9)
	rec, err := Record(victim, "123456", 9)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RMS() < 0.01 {
		t.Errorf("recording RMS = %v", rec.RMS())
	}
	if _, err := Record(victim, "12x", 9); err == nil {
		t.Error("bad passphrase accepted")
	}
}

func TestDriveFromSignal(t *testing.T) {
	if driveFromSignal(nil) != nil {
		t.Error("nil signal should give nil drive")
	}
	rec, err := Record(victimProfile(10), "11", 10)
	if err != nil {
		t.Fatal(err)
	}
	drive := driveFromSignal(rec)
	if drive(-1) != 0 || drive(9999) != 0 {
		t.Error("out-of-range drive should be 0")
	}
	if drive(0.5) != rec.Samples[int(0.5*rec.Rate)] {
		t.Error("drive should sample the signal")
	}
}

func BenchmarkGenuineSession(b *testing.B) {
	victim := victimProfile(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Genuine(victim, Scenario{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyPipeline(b *testing.B) {
	sys := testSystem(b)
	s, err := Genuine(victimProfile(1), Scenario{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Verify(s); err != nil {
			b.Fatal(err)
		}
	}
}
