// Package attack builds complete verification sessions — genuine and
// adversarial — against the VoiceGuard pipeline. It wires together the
// speech substrate (what audio is produced), the device catalog (which
// loudspeaker plays it), the magnetics scene (what the magnetometer
// sees), the sound-field models (what the sweep measures) and the gesture
// simulator (how the phone moves), covering the paper's full adversary
// model (§III-A): replay, voice-morphing, TTS synthesis, human imitation,
// plus the §VII sound-tube and shielded-speaker variants.
package attack

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/dsp"
	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/ranging"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/speech"
	"voiceguard/internal/stats"
	"voiceguard/internal/trajectory"
)

// Scenario fixes the physical conditions of one session.
type Scenario struct {
	// Environment selects the ambient EMF conditions.
	Environment magnetics.EnvironmentKind
	// Distance is the true phone→source distance during the sweep, m.
	Distance float64
	// Passphrase is the digit string spoken/played.
	Passphrase string
	// ClaimedUser is the identity asserted to the verifier.
	ClaimedUser string
	// Seed drives all randomness of the session.
	Seed int64
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Environment == 0 {
		sc.Environment = magnetics.EnvQuiet
	}
	if stats.IsZero(sc.Distance) {
		sc.Distance = 0.06
	}
	if sc.Passphrase == "" {
		sc.Passphrase = "472913"
	}
	if sc.ClaimedUser == "" {
		sc.ClaimedUser = "victim"
	}
	return sc
}

// phoneZ is the height of the gesture plane used by all sessions.
const phoneZ = 0.0

// Genuine builds a legitimate session: the victim speaks the passphrase
// with the phone swept in front of their mouth.
func Genuine(victim speech.Profile, sc Scenario) (*core.SessionData, error) {
	sc = sc.withDefaults()
	if sc.ClaimedUser == "" {
		sc.ClaimedUser = victim.Name
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	scene := magnetics.NewEnvironment(sc.Environment, sc.Seed)
	gesture, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: trajectory.StandardUseCase(sc.Distance),
		Scene:   scene,
		PhoneZ:  phoneZ,
		Seed:    sc.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("attack: genuine gesture: %w", err)
	}
	field, err := soundfield.Sweep(soundfield.Mouth(), soundfield.DefaultSweep(sc.Distance), rng)
	if err != nil {
		return nil, fmt.Errorf("attack: genuine sweep: %w", err)
	}
	synth, err := speech.NewSynthesizer(victim, rng)
	if err != nil {
		return nil, fmt.Errorf("attack: genuine synth: %w", err)
	}
	voice, err := synth.SayDigits(sc.Passphrase)
	if err != nil {
		return nil, fmt.Errorf("attack: genuine voice: %w", err)
	}
	return &core.SessionData{
		ClaimedUser: sc.ClaimedUser,
		Gesture:     gesture,
		Field:       field,
		Voice:       voice,
	}, nil
}

// machineSession builds the common machine-attack structure: audio played
// through the given loudspeaker at the scenario distance, optionally
// shielded with Mu-metal.
func machineSession(voice *audio.Signal, spk device.Loudspeaker, shielded bool, sc Scenario) (*core.SessionData, error) {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	useCase := trajectory.StandardUseCase(sc.Distance)

	// Magnetic scene: ambient + the loudspeaker at the source position,
	// its coil driven by the playback audio.
	scene := magnetics.NewEnvironment(sc.Environment, sc.Seed)
	speakerPos := geometry.Vec3{X: useCase.SourcePos.X, Y: useCase.SourcePos.Y, Z: phoneZ}
	drive := driveFromSignal(voice)
	sources := spk.FieldSources(speakerPos, drive)
	if shielded {
		geo := magnetics.DefaultGeomagnetic()
		for _, src := range sources {
			scene.Add(&magnetics.Shield{
				Enclosed:      src,
				Position:      speakerPos,
				Attenuation:   magnetics.MuMetalAttenuation,
				InducedMoment: 2e-4,
				Ambient:       geo,
			})
		}
	} else {
		for _, src := range sources {
			scene.Add(src)
		}
	}

	gesture, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: useCase,
		Scene:   scene,
		PhoneZ:  phoneZ,
		Seed:    sc.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("attack: machine gesture: %w", err)
	}
	field, err := soundfield.Sweep(spk.Source(), soundfield.DefaultSweep(sc.Distance), rng)
	if err != nil {
		return nil, fmt.Errorf("attack: machine sweep: %w", err)
	}
	return &core.SessionData{
		ClaimedUser: sc.ClaimedUser,
		Gesture:     gesture,
		Field:       field,
		Voice:       PlaybackColoration(voice, rng),
	}, nil
}

// Replay builds the Type-1 attack: a prior recording of the victim played
// through a loudspeaker.
func Replay(recording *audio.Signal, spk device.Loudspeaker, sc Scenario) (*core.SessionData, error) {
	return machineSession(recording, spk, false, sc)
}

// ShieldedReplay is Replay with the loudspeaker wrapped in Mu-metal
// (§VI "Magnetic Field Shielding").
func ShieldedReplay(recording *audio.Signal, spk device.Loudspeaker, sc Scenario) (*core.SessionData, error) {
	return machineSession(recording, spk, true, sc)
}

// Morph builds the Type-2 attack: the attacker's speech converted toward
// the victim and played through a loudspeaker.
func Morph(attacker, victim speech.Profile, q speech.ConversionQuality, spk device.Loudspeaker, sc Scenario) (*core.SessionData, error) {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed + 2))
	voice, err := speech.Convert(attacker, victim, q, sc.Passphrase, rng)
	if err != nil {
		return nil, fmt.Errorf("attack: morphing: %w", err)
	}
	return machineSession(voice, spk, false, sc)
}

// Synthesis builds the Type-3 attack: TTS in the victim's voice played
// through a loudspeaker.
func Synthesis(victim speech.Profile, spk device.Loudspeaker, sc Scenario) (*core.SessionData, error) {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed + 3))
	voice, err := speech.Synthesize(victim, sc.Passphrase, rng)
	if err != nil {
		return nil, fmt.Errorf("attack: synthesis: %w", err)
	}
	return machineSession(voice, spk, false, sc)
}

// Imitation builds the human-based attack: a live impostor imitating the
// victim. No loudspeaker is involved, so stages 1–3 see a genuine-looking
// session; only the ASV stage can stop it.
func Imitation(attacker, victim speech.Profile, skill speech.ImitationSkill, sc Scenario) (*core.SessionData, error) {
	sc = sc.withDefaults()
	if sc.ClaimedUser == "" {
		sc.ClaimedUser = victim.Name
	}
	rng := rand.New(rand.NewSource(sc.Seed + 4))
	imitated := speech.Imitate(attacker, victim, skill, rng)
	session, err := Genuine(imitated, Scenario{
		Environment: sc.Environment,
		Distance:    sc.Distance,
		Passphrase:  sc.Passphrase,
		ClaimedUser: sc.ClaimedUser,
		Seed:        sc.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("attack: imitation: %w", err)
	}
	return session, nil
}

// SoundTube builds the §VII sound-tube attack: a loudspeaker feeds a
// plastic tube whose opening is presented at mouth distance while the
// speaker itself sits a tube length away. The magnetometer sees only the
// distant speaker; the sound field carries the tube's signature.
func SoundTube(recording *audio.Signal, spk device.Loudspeaker, tube *soundfield.Tube, sc Scenario) (*core.SessionData, error) {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed + 5))
	useCase := trajectory.StandardUseCase(sc.Distance)

	scene := magnetics.NewEnvironment(sc.Environment, sc.Seed)
	// The speaker body sits a tube length behind the opening.
	speakerPos := geometry.Vec3{
		X: useCase.SourcePos.X - tube.Length,
		Y: useCase.SourcePos.Y,
		Z: phoneZ,
	}
	for _, src := range spk.FieldSources(speakerPos, driveFromSignal(recording)) {
		scene.Add(src)
	}
	gesture, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: useCase,
		Scene:   scene,
		PhoneZ:  phoneZ,
		Seed:    sc.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("attack: tube gesture: %w", err)
	}
	field, err := soundfield.Sweep(tube, soundfield.DefaultSweep(sc.Distance), rng)
	if err != nil {
		return nil, fmt.Errorf("attack: tube sweep: %w", err)
	}
	return &core.SessionData{
		ClaimedUser: sc.ClaimedUser,
		Gesture:     gesture,
		Field:       field,
		Voice:       PlaybackColoration(recording, rng),
	}, nil
}

// Record captures the victim's voice as an attacker would (public
// exposure per §I): the utterance rendered through a mild room/recorder
// channel.
func Record(victim speech.Profile, passphrase string, seed int64) (*audio.Signal, error) {
	rng := rand.New(rand.NewSource(seed))
	synth, err := speech.NewSynthesizer(victim, rng)
	if err != nil {
		return nil, fmt.Errorf("attack: recording synth: %w", err)
	}
	voice, err := synth.SayDigits(passphrase)
	if err != nil {
		return nil, fmt.Errorf("attack: recording voice: %w", err)
	}
	ch := speech.Channel{Gain: 0.8, NoiseRMS: 0.004, LowCut: 80, HighCut: 7000}
	return ch.Apply(voice, rng), nil
}

// PlaybackColoration applies the mild spectral coloration of playback
// through a loudspeaker: band-limiting and a touch of noise. Deliberately
// gentle — the paper's premise is that replayed audio passes spectral ASV
// checks.
func PlaybackColoration(s *audio.Signal, rng *rand.Rand) *audio.Signal {
	out := s.Clone()
	hp := dsp.NewHighPassBiquad(90, out.Rate)
	hp.ProcessBlock(out.Samples)
	lp := dsp.NewLowPassBiquad(7200, out.Rate)
	lp.ProcessBlock(out.Samples)
	for i := range out.Samples {
		out.Samples[i] += rng.NormFloat64() * 0.003
	}
	return out
}

// driveFromSignal converts an audio signal into a voice-coil drive
// function over gesture time.
func driveFromSignal(s *audio.Signal) func(t float64) float64 {
	if s == nil || s.Len() == 0 {
		return nil
	}
	return func(t float64) float64 {
		i := int(t * s.Rate)
		if i < 0 || i >= s.Len() {
			return 0
		}
		return s.Samples[i]
	}
}

// Pilot re-exports the ranging pilot for examples that want to show the
// full capture chain.
func Pilot(duration float64) *audio.Signal {
	return ranging.Pilot(ranging.DefaultPilotHz, ranging.DefaultRate, duration)
}
