package attack

// Adversarial evasion tests: an attacker who knows how the pipeline works
// tries to game individual stages. Each test encodes one evasion strategy
// and asserts the defense that is supposed to stop it actually does.

import (
	"math/rand"
	"testing"

	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/trajectory"
)

// TestEvasionVolumeGaming: the attacker turns the playback volume up or
// down hoping to shift the sound-field features into the accept region.
// The features are loudness-invariant by construction, so level gaming
// must not help.
func TestEvasionVolumeGaming(t *testing.T) {
	sys := testSystem(t)
	victim := victimProfile(20)
	rec, err := Record(victim, "472913", 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for _, level := range []float64{48, 56, 66, 76, 84} {
		// A mid-size cone at the attacker's chosen volume.
		src := &soundfield.Piston{Label: "volume-gamed", Radius: 0.03, LevelAt1m: level}
		field, err := soundfield.Sweep(src, soundfield.DefaultSweep(0.06), rng)
		if err != nil {
			t.Fatal(err)
		}
		session, err := Replay(rec, device.Catalog()[3], Scenario{Seed: 200 + int64(level)})
		if err != nil {
			t.Fatal(err)
		}
		session.Field = field
		d, err := sys.Verify(session)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			t.Errorf("volume %v dB: attack accepted", level)
		}
	}
}

// TestEvasionFakePivotGesture: the attacker keeps the loudspeaker 25 cm
// away (outside magnetometer range) and waves the phone around a fake
// pivot point at mouth distance, hoping the distance stage reads the
// gesture radius. The acoustic echo tracks the *actual* sound source, so
// the radial-consistency check fires.
func TestEvasionFakePivotGesture(t *testing.T) {
	sys := testSystem(t)
	sys.Field = nil // even with the sound-field stage blinded
	victim := victimProfile(22)
	rec, err := Record(victim, "472913", 22)
	if err != nil {
		t.Fatal(err)
	}
	// Enable the distance stage for this test.
	fullSys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 22})
	if err != nil {
		t.Fatal(err)
	}
	fullSys.Field = nil
	_ = sys

	u := trajectory.StandardUseCase(0.06)
	speakerPos := geometry.Vec2{X: -0.25, Y: 0}
	scene := magnetics.NewEnvironment(magnetics.EnvQuiet, 22)
	spk := device.Catalog()[0]
	for _, s := range spk.FieldSources(geometry.Vec3{X: speakerPos.X, Y: speakerPos.Y}, driveFromSignal(rec)) {
		scene.Add(s)
	}
	gesture, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: u,
		Scene:   scene,
		Seed:    22,
		EchoDist: func(tt float64) float64 {
			return u.PositionAt(tt).Dist(speakerPos)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	field, err := soundfield.Sweep(spk.Source(), soundfield.DefaultSweep(0.25), rng)
	if err != nil {
		t.Fatal(err)
	}
	session := &core.SessionData{
		ClaimedUser: "victim",
		Gesture:     gesture,
		Field:       field,
		Voice:       PlaybackColoration(rec, rng),
	}
	d, err := fullSys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("fake-pivot gesture accepted")
	}
	if d.FailedStage != core.StageDistance {
		t.Errorf("fake pivot rejected at %v, want the distance stage", d.FailedStage)
	}
}

// TestEvasionMotionlessReplay: the attacker props the phone in front of
// the loudspeaker without performing the gesture. The distance stage must
// reject the missing sweep.
func TestEvasionMotionlessReplay(t *testing.T) {
	fullSys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 24})
	if err != nil {
		t.Fatal(err)
	}
	victim := victimProfile(24)
	rec, err := Record(victim, "472913", 24)
	if err != nil {
		t.Fatal(err)
	}
	u := trajectory.StandardUseCase(0.06)
	u.SweepHalfAngle = 0.01 // essentially motionless
	scene := magnetics.NewEnvironment(magnetics.EnvQuiet, 24)
	gesture, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: u, Scene: scene, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	field, err := soundfield.Sweep(device.Catalog()[0].Source(), soundfield.DefaultSweep(0.06), rng)
	if err != nil {
		t.Fatal(err)
	}
	session := &core.SessionData{
		ClaimedUser: "victim",
		Gesture:     gesture,
		Field:       field,
		Voice:       PlaybackColoration(rec, rng),
	}
	d, err := fullSys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("motionless replay accepted")
	}
	if d.FailedStage != core.StageDistance {
		t.Errorf("motionless replay rejected at %v, want the distance stage", d.FailedStage)
	}
}

// TestEvasionQuietCoil: the attacker plays the recording at very low
// volume (weak coil drive) hoping the dynamic magnetic signature fades.
// The permanent magnet is still there; detection must hold at close
// range.
func TestEvasionQuietCoil(t *testing.T) {
	sys := testSystem(t)
	sys.Field = nil // force the decision onto the magnetometer stage
	victim := victimProfile(26)
	rec, err := Record(victim, "472913", 26)
	if err != nil {
		t.Fatal(err)
	}
	rec.Scale(0.05) // barely audible playback
	spk := device.Catalog()[0]
	session, err := Replay(rec, spk, Scenario{Distance: 0.05, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("quiet-coil replay accepted — permanent magnet should betray it")
	}
	if d.FailedStage != core.StageLoudspeaker {
		t.Errorf("rejected at %v, want loudspeaker detection", d.FailedStage)
	}
}
