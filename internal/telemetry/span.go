package telemetry

// Hierarchical, evidence-carrying tracing. A Trace is one verification
// attempt; Spans form its tree (request → pipeline stage → sub-operation
// → parallel worker block) and carry typed attributes — the numeric
// evidence behind each stage's verdict (estimated distance vs Dt, SVM
// margin, magnetic swing vs Mt/βt, ASV log-likelihood ratio vs threshold)
// that the flat PR 1 histograms discard. Completed traces land in a
// FlightRecorder ring so a rejected attempt can be replayed span-by-span
// after the fact, the serving-time half of the paper's §VII adaptive
// threshold calibration.
//
// Every Span method is safe on a nil receiver and does nothing, so the
// hot path (DSP → MFCC → GMM) threads spans unconditionally and pays a
// single pointer test per call when tracing is off or the trace was not
// sampled.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// spanFallback numbers span IDs when the system entropy source is
// unavailable (never in practice; keeps NewSpanID total).
var spanFallback atomic.Uint64

// NewSpanID returns a 16-hex-character random span identifier, the
// parent-id field width of a W3C traceparent.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := spanFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// AttrKind discriminates the typed values an attribute can carry.
type AttrKind uint8

// Attribute kinds.
const (
	KindFloat AttrKind = iota + 1
	KindInt
	KindString
	KindBool
)

// String implements fmt.Stringer.
func (k AttrKind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the kind as its string name so JSONL dumps stay
// readable and stable across kind renumbering.
func (k AttrKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind name.
func (k *AttrKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("telemetry: attr kind: %w", err)
	}
	switch s {
	case "float":
		*k = KindFloat
	case "int":
		*k = KindInt
	case "string":
		*k = KindString
	case "bool":
		*k = KindBool
	default:
		return fmt.Errorf("telemetry: unknown attr kind %q", s)
	}
	return nil
}

// Attr is one typed span attribute. Exactly one of the value fields is
// meaningful, selected by Kind.
type Attr struct {
	// Key names the attribute (e.g. "distance_cm", "llr").
	Key string `json:"key"`
	// Kind selects the populated value field.
	Kind AttrKind `json:"kind"`
	// Float carries KindFloat values; its physical unit, if any, is in
	// the Unit field. unit: any
	Float float64 `json:"float,omitempty"`
	// Int carries KindInt values.
	Int int64 `json:"int,omitempty"`
	// Str carries KindString values.
	Str string `json:"str,omitempty"`
	// Bool carries KindBool values.
	Bool bool `json:"bool,omitempty"`
	// Unit is the optional physical unit of Float ("cm", "µT", ...).
	Unit string `json:"unit,omitempty"`
}

// Number returns the attribute as a float64 and whether it is numeric
// (KindFloat or KindInt) — the accessor evidence aggregation uses.
func (a Attr) Number() (float64, bool) {
	switch a.Kind {
	case KindFloat:
		return a.Float, true
	case KindInt:
		return float64(a.Int), true
	default:
		return 0, false
	}
}

// String renders the attribute compactly for span-tree displays.
func (a Attr) String() string {
	switch a.Kind {
	case KindFloat:
		return fmt.Sprintf("%s=%.4g%s", a.Key, a.Float, a.Unit)
	case KindInt:
		return fmt.Sprintf("%s=%d%s", a.Key, a.Int, a.Unit)
	case KindString:
		return fmt.Sprintf("%s=%q", a.Key, a.Str)
	case KindBool:
		return fmt.Sprintf("%s=%t", a.Key, a.Bool)
	default:
		return a.Key
	}
}

// Span is one timed operation within a trace. The zero Span is not used;
// spans come from Tracer.StartTrace and Span.StartSpan. All methods are
// nil-receiver-safe no-ops, so untraced call paths carry nil spans for
// free.
type Span struct {
	trace    *Trace
	name     string
	spanID   string
	parentID string
	start    time.Time

	mu    sync.Mutex
	end   time.Time
	attrs []Attr
}

// Name returns the span's operation name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's 16-hex identifier.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// TraceID returns the owning trace's identifier.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace.id
}

// Traceparent renders the span in the W3C traceparent layout
// (version-traceid-spanid-flags). Trace IDs that are not 32-hex already
// are normalized: hex IDs are zero-padded, anything else is hashed.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-01", normalizeTraceID(s.trace.id), s.spanID)
}

// normalizeTraceID maps an arbitrary request ID onto the 32-hex trace-id
// field of a traceparent: valid hex is left-padded, anything else is
// FNV-hashed into 16 bytes. Deterministic, so the same request ID always
// renders the same traceparent.
func normalizeTraceID(id string) string {
	if len(id) <= 32 && isHex(id) {
		pad := "00000000000000000000000000000000"
		return pad[:32-len(id)] + id
	}
	h1 := fnv.New64a()
	h1.Write([]byte(id))
	h2 := fnv.New64a()
	h2.Write([]byte(id))
	h2.Write([]byte{0xff})
	var b [16]byte
	s1, s2 := h1.Sum64(), h2.Sum64()
	for i := 0; i < 8; i++ {
		b[i] = byte(s1 >> (8 * i))
		b[8+i] = byte(s2 >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// isHex reports whether s is non-empty lowercase hex.
func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// StartSpan opens a child span. It returns nil — still safe to use —
// when the receiver is nil or the trace hit its span budget; the trace
// then counts the drop instead of growing without bound.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.newSpan(name, s.spanID)
}

// End stamps the span's end time. The first End wins; later calls are
// no-ops, so a deferred End after an explicit one is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetFloat attaches a float attribute; unit names its physical unit ("cm",
// "µT", ...) or "" for dimensionless values.
func (s *Span) SetFloat(key string, value float64, unit string) {
	if s == nil {
		return
	}
	s.append(Attr{Key: key, Kind: KindFloat, Float: value, Unit: unit})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.append(Attr{Key: key, Kind: KindInt, Int: value})
}

// SetString attaches a string attribute.
func (s *Span) SetString(key, value string) {
	if s == nil {
		return
	}
	s.append(Attr{Key: key, Kind: KindString, Str: value})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, value bool) {
	if s == nil {
		return
	}
	s.append(Attr{Key: key, Kind: KindBool, Bool: value})
}

func (s *Span) append(a Attr) {
	s.mu.Lock()
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// Trace collects the spans of one verification attempt. Spans register in
// start order under a mutex; the per-trace span count is bounded so a
// runaway fan-out cannot balloon memory.
type Trace struct {
	id       string
	maxSpans int
	start    time.Time

	mu      sync.Mutex
	spans   []*Span
	dropped int
}

func (t *Trace) newSpan(name, parentID string) *Span {
	sp := &Span{
		trace:    t,
		name:     name,
		spanID:   NewSpanID(),
		parentID: parentID,
		start:    time.Now(),
	}
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// snapshot freezes the trace into a TraceRecord. Unended spans (a worker
// that never returned) are closed at snapshot time so durations stay
// well-defined.
func (t *Trace) snapshot(v Verdict) *TraceRecord {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	now := time.Now()
	rec := &TraceRecord{
		TraceID:     t.id,
		Start:       t.start,
		Accepted:    v.Accepted,
		FailedStage: v.FailedStage,
		ElapsedUS:   v.Elapsed.Microseconds(),
		Dropped:     dropped,
		Spans:       make([]SpanRecord, 0, len(spans)),
	}
	for _, sp := range spans {
		sp.mu.Lock()
		end := sp.end
		if end.IsZero() {
			end = now
		}
		attrs := make([]Attr, len(sp.attrs))
		copy(attrs, sp.attrs)
		sp.mu.Unlock()
		rec.Spans = append(rec.Spans, SpanRecord{
			SpanID:   sp.spanID,
			ParentID: sp.parentID,
			Name:     sp.name,
			StartUS:  sp.start.Sub(t.start).Microseconds(),
			DurUS:    end.Sub(sp.start).Microseconds(),
			Attrs:    attrs,
		})
	}
	return rec
}

// Verdict is the decision outcome stamped on a finished trace.
type Verdict struct {
	// Accepted is the cascade's final answer.
	Accepted bool
	// FailedStage is the metric name of the first failing stage ("" when
	// accepted).
	FailedStage string
	// Elapsed is the total pipeline latency.
	Elapsed time.Duration
}

// DefMaxSpansPerTrace bounds a trace's span count when TracerConfig does
// not: deep enough for request → 4 stages → sub-ops → one worker block
// per core on large machines, small enough that a trace stays a few KB.
const DefMaxSpansPerTrace = 256

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// MaxSpans bounds the span count of one trace (default
	// DefMaxSpansPerTrace). Spans past the budget are dropped and
	// counted.
	MaxSpans int
	// Sample decides per trace ID whether to record the trace; nil
	// samples everything. Deciding on the ID keeps the choice
	// deterministic across replays of the same request.
	Sample func(traceID string) bool
	// Recorder receives every finished sampled trace; nil discards them
	// (spans still flow to the caller via Finish's return).
	Recorder *FlightRecorder
}

// Tracer mints traces. A nil *Tracer is valid and disables tracing: its
// StartTrace returns a nil root span and every downstream span operation
// no-ops.
type Tracer struct {
	maxSpans int
	sample   func(string) bool
	recorder *FlightRecorder
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefMaxSpansPerTrace
	}
	return &Tracer{maxSpans: cfg.MaxSpans, sample: cfg.Sample, recorder: cfg.Recorder}
}

// Recorder returns the tracer's flight recorder (nil when none).
func (t *Tracer) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.recorder
}

// AttachRecorder installs f as the tracer's flight recorder when it has
// none, so finished traces become queryable after the fact; a recorder
// the tracer was built with is kept. Call before the tracer serves
// traffic — the field is read without synchronization by Finish.
func (t *Tracer) AttachRecorder(f *FlightRecorder) {
	if t == nil || t.recorder != nil {
		return
	}
	t.recorder = f
}

// StartTrace opens a trace under the given request ID and returns its
// root span, or nil when the tracer is nil or the sampler declines.
func (t *Tracer) StartTrace(traceID, rootName string) *Span {
	if t == nil {
		return nil
	}
	if t.sample != nil && !t.sample(traceID) {
		return nil
	}
	now := time.Now()
	tr := &Trace{id: traceID, maxSpans: t.maxSpans, start: now}
	sp := &Span{trace: tr, name: rootName, spanID: NewSpanID(), start: now}
	tr.spans = append(tr.spans, sp)
	return sp
}

// Finish ends the root span, freezes the trace into a TraceRecord,
// stamps the verdict, hands the record to the flight recorder (when
// configured) and returns it. Nil tracer or root → nil.
func (t *Tracer) Finish(root *Span, v Verdict) *TraceRecord {
	if t == nil || root == nil {
		return nil
	}
	root.End()
	rec := root.trace.snapshot(v)
	if t.recorder != nil {
		t.recorder.Record(rec)
	}
	return rec
}

// SampleAll samples every trace — the default policy.
func SampleAll() func(string) bool {
	return func(string) bool { return true }
}

// SampleNone samples nothing; spans become free no-ops everywhere.
func SampleNone() func(string) bool {
	return func(string) bool { return false }
}

// SampleRatio samples approximately the given fraction of traces,
// deterministically per trace ID (the same request is always in or
// always out). Ratios ≤ 0 sample nothing; ≥ 1 everything.
func SampleRatio(ratio float64) func(string) bool {
	if ratio <= 0 {
		return SampleNone()
	}
	if ratio >= 1 {
		return SampleAll()
	}
	threshold := uint64(ratio * (1 << 32))
	return func(id string) bool {
		h := fnv.New64a()
		h.Write([]byte(id))
		return mix64(h.Sum64())&0xffffffff < threshold
	}
}

// mix64 is the splitmix64 finalizer. FNV's raw bits are not uniform over
// the short, near-sequential request IDs clients actually send (the low
// 32 bits of "req-<n>" hashes cluster in one band, which once made a 0.5
// ratio sample nothing); the finalizer spreads them before thresholding.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
