package telemetry

// The decision flight recorder: a lock-free ring of the last N finished
// decision traces, complete with their evidence-carrying span trees. The
// serving path pays one atomic increment and one pointer CAS per decision
// (retrying only when writers race on a wrapped slot); readers snapshot
// without blocking writers. The ring
// backs the server's /debug/decisions and /debug/trace/{id} endpoints and
// the JSONL export consumed by cmd/voiceguard-trace.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// SpanRecord is one frozen span of a finished trace. Parent links (not
// nesting) encode the tree so the flat slice marshals naturally to JSON
// and JSONL.
type SpanRecord struct {
	// SpanID is the span's 16-hex identifier.
	SpanID string `json:"span_id"`
	// ParentID is the parent span's ID ("" for the root).
	ParentID string `json:"parent_id,omitempty"`
	// Name is the operation name ("verify", "stage:distance", ...).
	Name string `json:"name"`
	// StartUS is the span start in microseconds after the trace start.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Attrs are the typed attributes attached while the span ran.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the attribute with the given key and whether it exists.
func (s SpanRecord) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// TraceRecord is one finished decision trace.
type TraceRecord struct {
	// TraceID is the request ID the attempt ran under.
	TraceID string `json:"trace_id"`
	// Seq is the recorder's global sequence number, stamped by Record;
	// ordering snapshots oldest-first.
	Seq uint64 `json:"seq"`
	// Start is the wall-clock trace start.
	Start time.Time `json:"start"`
	// Accepted is the cascade verdict.
	Accepted bool `json:"accepted"`
	// FailedStage is the metric name of the first failing stage ("" when
	// accepted).
	FailedStage string `json:"failed_stage,omitempty"`
	// ElapsedUS is the total pipeline latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Dropped counts spans discarded past the per-trace budget.
	Dropped int `json:"dropped_spans,omitempty"`
	// Spans is the span tree in start order, root first.
	Spans []SpanRecord `json:"spans"`
}

// StageSpanName is the span-name prefix of pipeline-stage spans; the
// stage's metric name follows it.
const StageSpanName = "stage:"

// StageSpan returns the record's span for the named stage (metric name)
// and whether it exists.
func (r *TraceRecord) StageSpan(stage string) (SpanRecord, bool) {
	for _, sp := range r.Spans {
		if sp.Name == StageSpanName+stage {
			return sp, true
		}
	}
	return SpanRecord{}, false
}

// TraceSummary is the one-line digest of a TraceRecord served by
// /debug/decisions.
type TraceSummary struct {
	// TraceID identifies the attempt.
	TraceID string `json:"trace_id"`
	// Start is the wall-clock trace start.
	Start time.Time `json:"start"`
	// Accepted is the verdict.
	Accepted bool `json:"accepted"`
	// FailedStage is the first failing stage ("" when accepted).
	FailedStage string `json:"failed_stage,omitempty"`
	// ElapsedUS is the total pipeline latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Spans is the recorded span count.
	Spans int `json:"spans"`
	// Evidence holds the failing stage's numeric attributes (evidence
	// values and the thresholds they violated); empty when accepted.
	Evidence map[string]float64 `json:"evidence,omitempty"`
}

// Summary digests the record for list displays.
func (r *TraceRecord) Summary() TraceSummary {
	s := TraceSummary{
		TraceID:     r.TraceID,
		Start:       r.Start,
		Accepted:    r.Accepted,
		FailedStage: r.FailedStage,
		ElapsedUS:   r.ElapsedUS,
		Spans:       len(r.Spans),
	}
	if r.FailedStage == "" {
		return s
	}
	if sp, ok := r.StageSpan(r.FailedStage); ok {
		s.Evidence = make(map[string]float64, len(sp.Attrs))
		for _, a := range sp.Attrs {
			if v, ok := a.Number(); ok {
				s.Evidence[a.Key] = v
			}
		}
	}
	return s
}

// DefFlightRecorderSize is the default ring capacity: enough recent
// decisions for on-call forensics, small enough (~a few hundred KB) to
// forget about.
const DefFlightRecorderSize = 128

// FlightRecorder retains the last N finished decision traces in a
// lock-free ring. Record is one atomic add plus a CAS that only retries
// under slot contention; Snapshot and Find read the slots without
// blocking writers.
type FlightRecorder struct {
	slots []atomic.Pointer[TraceRecord]
	seq   atomic.Uint64
}

// NewFlightRecorder returns a recorder keeping the last n traces
// (DefFlightRecorderSize when n ≤ 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefFlightRecorderSize
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[TraceRecord], n)}
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Record stores a finished trace, evicting the oldest once the ring is
// full. The record's Seq field is stamped here; callers hand ownership
// over and must not mutate the record afterwards. Nil recorder or record
// is a no-op.
//
// Once the ring wraps, two concurrent Records with sequence numbers a
// whole capacity apart target the same slot; the CAS loop keeps the
// higher-Seq record so a slow old writer can never evict a newer trace.
func (f *FlightRecorder) Record(r *TraceRecord) {
	if f == nil || r == nil {
		return
	}
	seq := f.seq.Add(1) - 1
	r.Seq = seq
	slot := &f.slots[int(seq%uint64(len(f.slots)))]
	for {
		old := slot.Load()
		if old != nil && old.Seq > seq {
			return // slot already holds a newer wrap of this position
		}
		if slot.CompareAndSwap(old, r) {
			return
		}
	}
}

// Snapshot returns the retained traces oldest-first. The returned records
// are shared; treat them as read-only.
func (f *FlightRecorder) Snapshot() []*TraceRecord {
	if f == nil {
		return nil
	}
	out := make([]*TraceRecord, 0, len(f.slots))
	for i := range f.slots {
		if r := f.slots[i].Load(); r != nil {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SnapshotRecent returns the newest n retained traces, still ordered
// oldest-first like Snapshot. n <= 0 or n >= the retained count returns
// everything — the bound exists so debug endpoints on a large ring can
// page instead of dumping megabytes per scrape.
func (f *FlightRecorder) SnapshotRecent(n int) []*TraceRecord {
	all := f.Snapshot()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Find returns the retained trace with the given ID, preferring the most
// recent when a client reused an ID, or nil when it has been evicted.
func (f *FlightRecorder) Find(traceID string) *TraceRecord {
	var best *TraceRecord
	for _, r := range f.Snapshot() {
		if r.TraceID == traceID {
			best = r
		}
	}
	return best
}

// WriteJSONL streams the retained traces oldest-first, one JSON record
// per line — the export cmd/voiceguard-trace consumes offline.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, f.Snapshot())
}

// WriteJSONL writes trace records one JSON object per line.
func WriteJSONL(w io.Writer, records []*TraceRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("telemetry: encoding trace %s: %w", r.TraceID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("telemetry: flushing JSONL: %w", err)
	}
	return nil
}

// ReadJSONL parses a JSONL trace dump back into records, preserving file
// order. Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]*TraceRecord, error) {
	var out []*TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		rec := &TraceRecord{}
		if err := json.Unmarshal(b, rec); err != nil {
			return nil, fmt.Errorf("telemetry: JSONL line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading JSONL: %w", err)
	}
	return out, nil
}
