package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// traceFallback numbers trace IDs when the system entropy source is
// unavailable (never in practice; keeps NewTraceID total).
var traceFallback atomic.Uint64

// NewTraceID returns a 16-hex-character random request identifier, the
// value carried in X-Request-ID headers, Decision.TraceID and structured
// log lines so one verification attempt can be followed across client,
// server and pipeline.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}
