package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic, concurrency-safe time source for window
// tests: rotation and drift must be reproducible, so nothing here reads
// the real clock.
type fakeClock struct {
	ns atomic.Int64
}

func newFakeClock(at time.Time) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(at.UnixNano())
	return c
}

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }
func (c *fakeClock) Set(at time.Time)        { c.ns.Store(at.UnixNano()) }

// testBase is an arbitrary fixed origin; all window tests run on the
// fake clock relative to it.
var testBase = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func testWindowSet(clock *fakeClock) *WindowSet {
	return NewWindowSet(WindowConfig{
		Now:              clock.Now,
		LatencyGoodUnder: 500 * time.Millisecond,
	}, []SeriesDef{
		{Stage: "loudspeaker", Metric: "field_ut", Edges: []float64{1, 2, 4, 8, 16}},
		{Stage: "identity", Metric: "llr", Edges: []float64{-1, -0.5, 0, 0.5, 1}},
	})
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_hist", []float64{1, 2, 4}, nil)
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram quantile = %v, want NaN", q)
	}
	if q := h.Quantile(math.NaN()); !math.IsNaN(q) {
		t.Errorf("NaN quantile request = %v, want NaN", q)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("single_bucket", []float64{10}, nil)
	for i := 0; i < 5; i++ {
		h.Observe(3)
	}
	// Every observation lives in [0, 10]; any quantile interpolates
	// inside that bucket and out-of-range requests clamp to [0, 1].
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := h.Quantile(q)
		if math.IsNaN(got) || got < 0 || got > 10 {
			t.Errorf("Quantile(%v) = %v, want within [0, 10]", q, got)
		}
	}
	if q0, q1 := h.Quantile(0), h.Quantile(1); q0 > q1 {
		t.Errorf("quantiles not monotone: q0 %v > q1 %v", q0, q1)
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("overflow_hist", []float64{1, 2, 4}, nil)
	for i := 0; i < 7; i++ {
		h.Observe(100) // far past the last finite bound
	}
	// With every sample in the +Inf bucket the best available estimate
	// is the highest finite bound — never +Inf, never NaN.
	for _, q := range []float64{0.1, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("all-overflow Quantile(%v) = %v, want 4 (highest finite bound)", q, got)
		}
	}
}

func TestWindowSetObserveAndDist(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	id, ok := w.SeriesByName("loudspeaker", "field_ut")
	if !ok {
		t.Fatal("registered series not found")
	}
	for _, v := range []float64{0.5, 1.5, 3, 3, 100} {
		w.ObserveEvidence(id, v)
	}
	d := w.SeriesDist(id, 5*time.Minute)
	if d.Total != 5 {
		t.Fatalf("total = %d, want 5", d.Total)
	}
	// Bins: ≤1, ≤2, ≤4, ≤8, ≤16, overflow.
	want := []int64{1, 1, 2, 0, 0, 1}
	for i, c := range want {
		if d.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, d.Counts[i], c)
		}
	}
	if mean := d.Mean(); math.Abs(mean-(0.5+1.5+3+3+100)/5) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
}

func TestWindowRotationExpiresOldSlots(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	id, _ := w.SeriesByName("identity", "llr")
	w.ObserveEvidence(id, 0.3)
	// Advance past the entire fine ring: the old minute's slot must be
	// recycled, not double-counted.
	clock.Advance(time.Duration(DefFineSlots+5) * time.Minute)
	w.ObserveEvidence(id, 0.4)
	if d := w.SeriesDist(id, 5*time.Minute); d.Total != 1 {
		t.Errorf("live total after rotation = %d, want 1", d.Total)
	}
	// The coarse ring still covers both (24h window, ~65 min apart).
	if d := w.SeriesDist(id, 12*time.Hour); d.Total != 2 {
		t.Errorf("coarse total = %d, want 2", d.Total)
	}
	// Rotate past the coarse ring too.
	clock.Advance(time.Duration(DefCoarseSlots+2) * time.Hour)
	if d := w.SeriesDist(id, 12*time.Hour); d.Total != 0 {
		t.Errorf("coarse total after full rotation = %d, want 0", d.Total)
	}
}

func TestWindowConcurrentWriters(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	fieldID, _ := w.SeriesByName("loudspeaker", "field_ut")
	llrID, _ := w.SeriesByName("identity", "llr")

	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				w.ObserveEvidence(fieldID, float64(i%20))
				w.ObserveEvidence(llrID, float64(i%3)-1)
				w.ObserveVerify(OutcomeAccepted, time.Duration(i)*time.Millisecond)
				if i%50 == 0 {
					// Writers racing rotation: the clock moves forward
					// while observations are in flight.
					clock.Advance(11 * time.Second)
				}
			}
		}(g)
	}
	wg.Wait()

	// Everything was written within the last writers*perWriter/50 * 11s
	// ≈ 15 min of fake time; the fine ring (60 min) holds it all.
	d := w.SeriesDist(fieldID, time.Hour)
	if d.Total != writers*perWriter {
		t.Errorf("field total = %d, want %d", d.Total, writers*perWriter)
	}
	outcomes, _, latTotal, _ := w.OutcomeTotals(time.Hour)
	if outcomes[OutcomeAccepted] != writers*perWriter {
		t.Errorf("accepted = %d, want %d", outcomes[OutcomeAccepted], writers*perWriter)
	}
	if latTotal != writers*perWriter {
		t.Errorf("latency total = %d, want %d", latTotal, writers*perWriter)
	}
}

func TestPSIAndKSSeparateShiftedDistributions(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	id, _ := w.SeriesByName("loudspeaker", "field_ut")

	// Baseline: tight genuine-like distribution near zero swing.
	for i := 0; i < 200; i++ {
		w.ObserveEvidence(id, 0.4+0.02*float64(i%10))
	}
	w.PinBaseline(5 * time.Minute)

	// Same-shaped live traffic: drift must stay quiet.
	clock.Advance(time.Minute)
	for i := 0; i < 100; i++ {
		w.ObserveEvidence(id, 0.4+0.02*float64(i%10))
	}
	quiet := w.Drift()[int(id)]
	if quiet.PSI > 0.1 {
		t.Errorf("matched traffic PSI = %v, want < 0.1", quiet.PSI)
	}

	// Shifted wave (loudspeaker swings): drift must fire.
	clock.Advance(10 * time.Minute) // move the quiet live window out of scope
	for i := 0; i < 100; i++ {
		w.ObserveEvidence(id, 20+float64(i%10))
	}
	loud := w.Drift()[int(id)]
	if loud.PSI < 0.25 {
		t.Errorf("shifted traffic PSI = %v, want > 0.25", loud.PSI)
	}
	if loud.KS < 0.5 {
		t.Errorf("shifted traffic KS = %v, want > 0.5", loud.KS)
	}
	if quiet.PSI >= loud.PSI {
		t.Errorf("PSI did not separate: quiet %v vs shifted %v", quiet.PSI, loud.PSI)
	}
}

func TestDriftWithoutBaselineIsZero(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	id, _ := w.SeriesByName("identity", "llr")
	w.ObserveEvidence(id, 0.5)
	for _, ds := range w.Drift() {
		if ds.PSI != 0 || ds.KS != 0 {
			t.Errorf("series %s/%s drift without baseline = PSI %v KS %v, want 0",
				ds.Stage, ds.Metric, ds.PSI, ds.KS)
		}
	}
}

func TestPSIEmptyAndMismatchedWindows(t *testing.T) {
	full := Dist{Counts: []int64{5, 5}, Total: 10}
	empty := Dist{Counts: []int64{0, 0}}
	if got := PSI(full, empty); got != 0 {
		t.Errorf("PSI vs empty = %v, want 0", got)
	}
	if got := KSStat(empty, full); got != 0 {
		t.Errorf("KS from empty = %v, want 0", got)
	}
	mismatched := Dist{Counts: []int64{10}, Total: 10}
	if got := PSI(full, mismatched); got != 0 {
		t.Errorf("PSI across layouts = %v, want 0", got)
	}
	if got := PSI(full, full); math.Abs(got) > 1e-12 {
		t.Errorf("PSI self = %v, want 0", got)
	}
	if got := KSStat(full, full); got != 0 {
		t.Errorf("KS self = %v, want 0", got)
	}
}

func TestBurnRates(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)

	// 90 good decisions, 5 slow decisions, 5 errors.
	for i := 0; i < 90; i++ {
		w.ObserveVerify(OutcomeAccepted, 100*time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		w.ObserveVerify(OutcomeRejected, 2*time.Second) // over the 500ms good threshold
	}
	for i := 0; i < 5; i++ {
		w.ObserveVerify(OutcomeError, 0)
	}

	slo := SLOConfig{AvailabilityObjective: 0.999, LatencyObjective: 0.99}
	rates := w.BurnRates(slo, []time.Duration{5 * time.Minute})
	if len(rates) != 2 {
		t.Fatalf("got %d burn rates, want 2", len(rates))
	}
	byName := map[string]BurnRate{}
	for _, br := range rates {
		byName[br.SLO] = br
	}
	// Availability: 5 bad of 100 attempts, budget 0.001 → burn 50.
	avail := byName["availability"]
	if math.Abs(avail.BadRatio-0.05) > 1e-9 || math.Abs(avail.Burn-50) > 1e-6 {
		t.Errorf("availability burn = %+v, want bad 0.05 burn 50", avail)
	}
	// Latency: 5 slow of 95 decided, budget 0.01 → burn ≈ 5.26.
	lat := byName["latency"]
	wantBad := 5.0 / 95.0
	if math.Abs(lat.BadRatio-wantBad) > 1e-9 || math.Abs(lat.Burn-wantBad/0.01) > 1e-6 {
		t.Errorf("latency burn = %+v, want bad %v burn %v", lat, wantBad, wantBad/0.01)
	}
	if avail.Window != "5m" {
		t.Errorf("window label = %q, want 5m", avail.Window)
	}
}

func TestBurnRatesNoTraffic(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	for _, br := range w.BurnRates(SLOConfig{AvailabilityObjective: 0.999, LatencyObjective: 0.99}, nil) {
		if br.Burn != 0 || br.BadRatio != 0 || br.Total != 0 {
			t.Errorf("idle burn rate %+v, want zeros", br)
		}
	}
}

func TestTimelineAndRuntimeSamples(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	id, _ := w.SeriesByName("identity", "llr")

	w.ObserveEvidence(id, 0.5)
	w.ObserveVerify(OutcomeAccepted, 100*time.Millisecond)
	w.RecordRuntime(RuntimeSample{HeapBytes: 1 << 20, Goroutines: 7, AllocBytesTotal: 1000})
	clock.Advance(time.Minute)
	w.ObserveVerify(OutcomeRejected, 200*time.Millisecond)
	w.RecordRuntime(RuntimeSample{HeapBytes: 2 << 20, Goroutines: 9, AllocBytesTotal: 3000})

	tl := w.Timeline(10)
	if len(tl) != 2 {
		t.Fatalf("timeline slots = %d, want 2", len(tl))
	}
	if tl[0].Unix >= tl[1].Unix {
		t.Error("timeline not oldest-first")
	}
	if tl[0].Accepted != 1 || tl[1].Rejected != 1 {
		t.Errorf("timeline outcomes wrong: %+v", tl)
	}
	if tl[1].HeapBytes != 2<<20 || tl[1].Goroutines != 9 {
		t.Errorf("timeline runtime sample wrong: %+v", tl[1])
	}

	u := w.Resources()
	if u.Samples != 2 {
		t.Fatalf("resource samples = %d, want 2", u.Samples)
	}
	// 2000 alloc bytes across 2 decided verifies.
	if math.Abs(u.AllocPerDecisionBytes-1000) > 1e-9 {
		t.Errorf("alloc/decision = %v, want 1000", u.AllocPerDecisionBytes)
	}
}

func TestReadRuntimeSample(t *testing.T) {
	s := ReadRuntimeSample()
	if s.HeapBytes <= 0 {
		t.Errorf("heap bytes = %d, want > 0", s.HeapBytes)
	}
	if s.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", s.Goroutines)
	}
	if s.AllocBytesTotal <= 0 {
		t.Errorf("alloc total = %d, want > 0", s.AllocBytesTotal)
	}
}

func TestObserveEvidenceNoAllocs(t *testing.T) {
	clock := newFakeClock(testBase)
	w := testWindowSet(clock)
	id, _ := w.SeriesByName("loudspeaker", "field_ut")
	allocs := testing.AllocsPerRun(200, func() {
		w.ObserveEvidence(id, 3.5)
		w.ObserveVerify(OutcomeAccepted, 50*time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("observe path allocates %v per op, want 0", allocs)
	}
}
