// Package telemetry is the measurement substrate for the serving path: a
// dependency-free metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with quantile estimation) exposable in the
// Prometheus text format, plus trace-ID generation for request
// correlation. The paper reports end-to-end response time as a headline
// result (§V); this package makes the per-stage breakdown of that number
// observable on a running server.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Labels are the dimensions of one metric series. They are copied on
// registration; callers may reuse the map.
type Labels map[string]string

// metricKind discriminates the family types in a registry.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family groups all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only
	order   []string  // label-set keys in registration order
	series  map[string]metric
}

// metric is one labeled series.
type metric interface {
	// write emits the series in Prometheus text format. name is the
	// family name and labels the serialized label set ("" when
	// unlabeled). openMetrics selects the OpenMetrics exposition, the
	// only format in which exemplar suffixes are legal.
	write(w io.Writer, name, labels string, openMetrics bool) error
}

// Registry is a set of named metric families. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serializes labels deterministically: `{a="x",b="y"}` with keys
// sorted, or "" for an empty set.
func labelKey(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, ls[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the family for name, creating it on first use, and
// panics when an existing family has a different kind — mixing kinds
// under one name is a programming error, not a runtime condition.
func (r *Registry) lookup(name string, kind metricKind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]metric)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		//lint:allow nopanic mixing kinds under one metric name is a programming error, documented on lookup
		panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter series for name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, kindCounter, nil)
	key := labelKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	f.order = append(f.order, key)
	return c
}

// Gauge returns the gauge series for name+labels, creating it on first
// use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, kindGauge, nil)
	key := labelKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	f.order = append(f.order, key)
	return g
}

// Histogram returns the histogram series for name+labels, creating it on
// first use. buckets are upper bounds in increasing order; nil uses
// DefLatencyBuckets. The bucket layout is fixed by the first
// registration of the family; later calls inherit it.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.lookup(name, kindHistogram, buckets)
	key := labelKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(f.buckets)
	f.series[key] = h
	f.order = append(f.order, key)
	return h
}

// SetHelp attaches a HELP line to a family (created lazily as untyped
// help-only entries are not useful, the family must already exist or be
// created right after).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

// snapshot copies the family/series structure under the lock so Expose
// can write without holding it (series values are read atomically).
type seriesEntry struct {
	labels string
	m      metric
}

type familySnapshot struct {
	name, help string
	kind       metricKind
	series     []seriesEntry
}

func (r *Registry) snapshot() []familySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familySnapshot, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fs := familySnapshot{name: f.name, help: f.help, kind: f.kind}
		for _, key := range f.order {
			fs.series = append(fs.series, seriesEntry{labels: key, m: f.series[key]})
		}
		out = append(out, fs)
	}
	return out
}

// TextContentType is the Content-Type of the classic Prometheus text
// exposition served by Expose.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the Content-Type of the OpenMetrics
// exposition served by ExposeOpenMetrics; scrapers negotiate it via the
// Accept header.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Expose writes every registered series in the classic Prometheus text
// exposition format (version 0.0.4), families in registration order.
// The classic format has no exemplar syntax, so histogram exemplars are
// omitted here; scrapers that want them negotiate ExposeOpenMetrics.
func (r *Registry) Expose(w io.Writer) error {
	return r.expose(w, false)
}

// ExposeOpenMetrics writes every registered series in the OpenMetrics
// text exposition: counter families drop their `_total` suffix on
// HELP/TYPE lines (samples keep it), histogram buckets carry their
// exemplars, and the body ends with the mandatory `# EOF` terminator.
func (r *Registry) ExposeOpenMetrics(w io.Writer) error {
	if err := r.expose(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) expose(w io.Writer, openMetrics bool) error {
	for _, f := range r.snapshot() {
		famName := f.name
		if openMetrics && f.kind == kindCounter {
			// OpenMetrics names the counter family without the _total
			// sample suffix.
			famName = strings.TrimSuffix(famName, "_total")
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", famName, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", famName, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := s.m.write(w, f.name, s.labels, openMetrics); err != nil {
				return err
			}
		}
	}
	return nil
}
