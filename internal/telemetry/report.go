package telemetry

// JSON shapes for the /debug/drift endpoint, shared by the server (which
// renders them), the client (which decodes them), and voiceguard-top
// (which displays them). Keeping them here avoids a client→server import.

// DriftEntry is one series' drift score as serialized on /debug/drift.
type DriftEntry struct {
	// Stage and Metric identify the evidence series.
	Stage  string `json:"stage"`
	Metric string `json:"metric"`
	// PSI and KS are the live-vs-baseline drift statistics (0 without a
	// baseline or traffic).
	PSI float64 `json:"psi"` // unit: dimensionless
	KS  float64 `json:"ks"`  // unit: dimensionless
	// Alert is true when PSI exceeds the configured alert threshold.
	Alert bool `json:"alert"`
	// LiveCount / BaselineCount are the compared window sample counts.
	LiveCount     int64 `json:"live_count"`
	BaselineCount int64 `json:"baseline_count"`
	// LiveMean / BaselineMean are the window means (omitted when empty).
	LiveMean     float64 `json:"live_mean,omitempty"`     // unit: any
	BaselineMean float64 `json:"baseline_mean,omitempty"` // unit: any
}

// BurnEntry is one SLO burn rate as serialized on /debug/drift.
type BurnEntry struct {
	// SLO names the objective; Window labels the lookback ("5m"...).
	SLO    string `json:"slo"`
	Window string `json:"window"`
	// Burn is badRatio / errorBudget; BadRatio the observed violation
	// fraction; Total the attempts in the window.
	Burn     float64 `json:"burn"`      // unit: dimensionless
	BadRatio float64 `json:"bad_ratio"` // unit: dimensionless
	Total    int64   `json:"total"`
}

// ResourceEntry summarizes the sampled process state on /debug/drift.
type ResourceEntry struct {
	// HeapBytes / Goroutines are the latest sampled values.
	HeapBytes  int64 `json:"heap_bytes"`
	Goroutines int64 `json:"goroutines"`
	// GCPauseTotalUS is the cumulative GC pause at the latest sample.
	GCPauseTotalUS int64 `json:"gc_pause_total_us"` // unit: µs
	// AllocPerDecisionBytes / GCPausePerDecisionUS attribute the live
	// window's cumulative-counter deltas to decided verifies.
	AllocPerDecisionBytes float64 `json:"alloc_per_decision_bytes,omitempty"` // unit: any
	GCPausePerDecisionUS  float64 `json:"gc_pause_per_decision_us,omitempty"` // unit: µs
	// Samples is how many sampled fine-ring slots fed the summary.
	Samples int `json:"samples"`
}

// DriftReport is the full /debug/drift JSON document.
type DriftReport struct {
	// GeneratedUnix is when the report was computed (seconds).
	GeneratedUnix int64 `json:"generated_unix"`
	// BaselinePinnedUnix is when the baseline was pinned (0 = none).
	BaselinePinnedUnix int64 `json:"baseline_pinned_unix,omitempty"`
	// BaselineWindow is the baseline's lookback ("10m0s"; empty = none).
	BaselineWindow string `json:"baseline_window,omitempty"`
	// LiveWindow is the drift comparison lookback ("5m0s").
	LiveWindow string `json:"live_window"`
	// AlertPSI is the PSI threshold above which a series alerts.
	AlertPSI float64 `json:"alert_psi"` // unit: dimensionless
	// Drift holds one entry per registered evidence series.
	Drift []DriftEntry `json:"drift"`
	// Burn holds the multi-window SLO burn rates (empty without SLOs).
	Burn []BurnEntry `json:"burn,omitempty"`
	// Resources summarizes the live window's process samples.
	Resources ResourceEntry `json:"resources"`
	// Timeline lists the recent fine-ring slots, oldest first.
	Timeline []TimelinePoint `json:"timeline,omitempty"`
}
