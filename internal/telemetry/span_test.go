package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeParentLinksAndAttrs(t *testing.T) {
	rec := NewFlightRecorder(4)
	tr := NewTracer(TracerConfig{Recorder: rec})
	root := tr.StartTrace("req-1", "verify")
	if root == nil {
		t.Fatal("StartTrace returned nil with no sampler")
	}
	stage := root.StartSpan("stage:distance")
	stage.SetFloat("distance_cm", 4.2, "cm")
	stage.SetInt("frames", 128)
	stage.SetString("detail", "ok")
	stage.SetBool("pass", true)
	sub := stage.StartSpan("trajectory-estimate")
	sub.End()
	stage.End()
	out := tr.Finish(root, Verdict{Accepted: false, FailedStage: "distance", Elapsed: 3 * time.Millisecond})
	if out == nil {
		t.Fatal("Finish returned nil")
	}
	if out.TraceID != "req-1" || out.Accepted || out.FailedStage != "distance" {
		t.Fatalf("verdict not stamped: %+v", out)
	}
	if out.ElapsedUS != 3000 {
		t.Fatalf("ElapsedUS = %d, want 3000", out.ElapsedUS)
	}
	if len(out.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(out.Spans))
	}
	if out.Spans[0].Name != "verify" || out.Spans[0].ParentID != "" {
		t.Fatalf("root span wrong: %+v", out.Spans[0])
	}
	if out.Spans[1].ParentID != out.Spans[0].SpanID {
		t.Fatalf("stage span parent = %q, want root %q", out.Spans[1].ParentID, out.Spans[0].SpanID)
	}
	if out.Spans[2].ParentID != out.Spans[1].SpanID {
		t.Fatalf("sub span parent = %q, want stage %q", out.Spans[2].ParentID, out.Spans[1].SpanID)
	}
	if len(out.Spans[1].Attrs) != 4 {
		t.Fatalf("stage attrs = %v, want 4", out.Spans[1].Attrs)
	}
	if a, ok := out.Spans[1].Attr("distance_cm"); !ok || a.Float != 4.2 || a.Unit != "cm" {
		t.Fatalf("distance_cm attr = %+v, %v", a, ok)
	}
	if got := rec.Find("req-1"); got != out {
		t.Fatalf("recorder did not retain the finished trace")
	}
}

func TestNilSpanAndTracerAreNoOps(t *testing.T) {
	var tr *Tracer
	root := tr.StartTrace("id", "verify")
	if root != nil {
		t.Fatal("nil tracer minted a span")
	}
	if tr.Recorder() != nil {
		t.Fatal("nil tracer returned a recorder")
	}
	if rec := tr.Finish(root, Verdict{}); rec != nil {
		t.Fatal("nil tracer finished a trace")
	}
	// Every method on a nil span must be callable.
	child := root.StartSpan("child")
	if child != nil {
		t.Fatal("nil span minted a child")
	}
	child.SetFloat("x", 1, "")
	child.SetInt("y", 2)
	child.SetString("z", "s")
	child.SetBool("w", true)
	child.End()
	if child.Name() != "" || child.ID() != "" || child.TraceID() != "" || child.Traceparent() != "" {
		t.Fatal("nil span leaked identity")
	}
}

func TestSpanBudgetDropsAndCounts(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpans: 3})
	root := tr.StartTrace("req", "verify")
	a := root.StartSpan("a")
	b := root.StartSpan("b")
	if a == nil || b == nil {
		t.Fatal("spans within budget were dropped")
	}
	c := root.StartSpan("c")
	if c != nil {
		t.Fatal("span past the budget was kept")
	}
	// Dropped spans still take attribute calls safely.
	c.SetInt("k", 1)
	rec := tr.Finish(root, Verdict{Accepted: true})
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	if rec.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", rec.Dropped)
	}
}

func TestUnendedSpanClosedAtSnapshot(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("req", "verify")
	hung := root.StartSpan("worker")
	_ = hung // never ended //lint:allow spanclose exercising snapshot-time closing
	rec := tr.Finish(root, Verdict{Accepted: true})
	for _, sp := range rec.Spans {
		if sp.DurUS < 0 {
			t.Fatalf("span %s has negative duration %d", sp.Name, sp.DurUS)
		}
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("req", "verify")
	sp := root.StartSpan("op")
	sp.End()
	time.Sleep(2 * time.Millisecond)
	sp.End() // must not restamp
	rec := tr.Finish(root, Verdict{})
	if rec.Spans[1].DurUS >= 2000 {
		t.Fatalf("second End restamped the span: %dµs", rec.Spans[1].DurUS)
	}
}

func TestTraceparentNormalization(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	cases := []struct {
		id   string
		want string // expected 32-hex trace-id field, "" to only check shape
	}{
		{"abc123", "00000000000000000000000000abc123"},
		{"not hex!", ""},
		{strings.Repeat("a", 40), ""}, // too long even though hex
	}
	for _, c := range cases {
		root := tr.StartTrace(c.id, "verify")
		tp := root.Traceparent()
		parts := strings.Split(tp, "-")
		if len(parts) != 4 || parts[0] != "00" || parts[3] != "01" {
			t.Fatalf("traceparent %q not version-traceid-spanid-flags", tp)
		}
		if len(parts[1]) != 32 || len(parts[2]) != 16 {
			t.Fatalf("traceparent %q has wrong field widths", tp)
		}
		if c.want != "" && parts[1] != c.want {
			t.Fatalf("trace-id field for %q = %s, want %s", c.id, parts[1], c.want)
		}
		// Normalization must be deterministic per request ID.
		if again := tr.StartTrace(c.id, "verify").Traceparent(); !strings.Contains(again, "-"+parts[1]+"-") {
			t.Fatalf("traceparent for %q not deterministic: %q vs %q", c.id, tp, again)
		}
	}
}

func TestSamplers(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: SampleNone()})
	if root := tr.StartTrace("req", "verify"); root != nil {
		t.Fatal("SampleNone still traced")
	}
	tr = NewTracer(TracerConfig{Sample: SampleAll()})
	if root := tr.StartTrace("req", "verify"); root == nil {
		t.Fatal("SampleAll dropped a trace")
	}
	half := SampleRatio(0.5)
	in := 0
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("req-%d", i)
		first := half(id)
		if first != half(id) {
			t.Fatalf("SampleRatio not deterministic for %s", id)
		}
		if first {
			in++
		}
	}
	if in < 350 || in > 650 {
		t.Fatalf("SampleRatio(0.5) sampled %d/1000", in)
	}
	if SampleRatio(0)("x") || SampleRatio(-1)("x") {
		t.Fatal("non-positive ratio sampled")
	}
	if !SampleRatio(1)("x") || !SampleRatio(2)("x") {
		t.Fatal("ratio ≥ 1 dropped")
	}
}

// TestFlightRecorderEviction pins the ring's retention contract: writing
// 2N traces into a size-N ring keeps exactly the newest N, and Snapshot
// returns them oldest-first.
func TestFlightRecorderEviction(t *testing.T) {
	const n = 4
	rec := NewFlightRecorder(n)
	if rec.Cap() != n {
		t.Fatalf("Cap = %d, want %d", rec.Cap(), n)
	}
	for i := 0; i < 2*n; i++ {
		rec.Record(&TraceRecord{TraceID: fmt.Sprintf("t%d", i)})
	}
	snap := rec.Snapshot()
	if len(snap) != n {
		t.Fatalf("snapshot kept %d traces, want %d", len(snap), n)
	}
	for i, r := range snap {
		want := fmt.Sprintf("t%d", n+i) // t4 t5 t6 t7, oldest first
		if r.TraceID != want {
			t.Fatalf("snapshot[%d] = %s, want %s (got %v)", i, r.TraceID, want, ids(snap))
		}
		if i > 0 && snap[i-1].Seq >= r.Seq {
			t.Fatalf("snapshot not in ascending Seq order: %v", ids(snap))
		}
	}
	if got := rec.Find("t0"); got != nil {
		t.Fatal("evicted trace still findable")
	}
	if got := rec.Find(fmt.Sprintf("t%d", 2*n-1)); got == nil {
		t.Fatal("newest trace not findable")
	}
}

func ids(rs []*TraceRecord) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.TraceID
	}
	return out
}

func TestFlightRecorderFindPrefersNewest(t *testing.T) {
	rec := NewFlightRecorder(8)
	rec.Record(&TraceRecord{TraceID: "dup", ElapsedUS: 1})
	rec.Record(&TraceRecord{TraceID: "dup", ElapsedUS: 2})
	if got := rec.Find("dup"); got == nil || got.ElapsedUS != 2 {
		t.Fatalf("Find returned %+v, want the newest duplicate", got)
	}
}

func TestNilFlightRecorderIsSafe(t *testing.T) {
	var rec *FlightRecorder
	rec.Record(&TraceRecord{TraceID: "x"})
	if rec.Cap() != 0 || rec.Snapshot() != nil {
		t.Fatal("nil recorder not inert")
	}
}

// TestFlightRecorderConcurrentRecordSnapshot drives writers and readers
// through the ring together; run under -race this checks the lock-free
// slot protocol, and the invariants below check snapshot consistency.
func TestFlightRecorderConcurrentRecordSnapshot(t *testing.T) {
	const (
		writers = 8
		each    = 200
	)
	rec := NewFlightRecorder(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := rec.Snapshot()
				if len(snap) > rec.Cap() {
					t.Errorf("snapshot larger than ring: %d > %d", len(snap), rec.Cap())
					return
				}
				for i := 1; i < len(snap); i++ {
					if snap[i-1].Seq >= snap[i].Seq {
						t.Errorf("snapshot out of Seq order at %d", i)
						return
					}
				}
				rec.Find("w0-199")
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < each; i++ {
				rec.Record(&TraceRecord{TraceID: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := rec.seq.Load(); got != writers*each {
		t.Fatalf("sequence counter = %d, want %d", got, writers*each)
	}
	final := rec.Snapshot()
	if len(final) != rec.Cap() {
		t.Fatalf("ring not full after %d records", writers*each)
	}
	// Retain-newest under wrap races: once every writer has returned, a
	// slot must hold the highest-Seq record that targeted it, so nothing
	// older than the last Cap() sequence numbers may survive.
	for _, r := range final {
		if r.Seq < uint64(writers*each-rec.Cap()) {
			t.Errorf("stale record seq %d survived; retain-newest requires ≥ %d",
				r.Seq, writers*each-rec.Cap())
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := NewFlightRecorder(4)
	tr := NewTracer(TracerConfig{Recorder: rec})
	for i := 0; i < 3; i++ {
		root := tr.StartTrace(fmt.Sprintf("req-%d", i), "verify")
		sp := root.StartSpan("stage:distance")
		sp.SetFloat("distance_cm", float64(i), "cm")
		sp.SetBool("pass", i == 0)
		sp.End()
		tr.Finish(root, Verdict{Accepted: i == 0, FailedStage: map[bool]string{true: "", false: "distance"}[i == 0]})
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	orig := rec.Snapshot()
	if len(back) != len(orig) {
		t.Fatalf("round trip kept %d records, want %d", len(back), len(orig))
	}
	for i := range back {
		a, b := orig[i], back[i]
		if a.TraceID != b.TraceID || a.Seq != b.Seq || a.Accepted != b.Accepted ||
			a.FailedStage != b.FailedStage || a.ElapsedUS != b.ElapsedUS || len(a.Spans) != len(b.Spans) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, b, a)
		}
		for j := range a.Spans {
			sa, sb := a.Spans[j], b.Spans[j]
			if sa.SpanID != sb.SpanID || sa.ParentID != sb.ParentID || sa.Name != sb.Name ||
				sa.StartUS != sb.StartUS || sa.DurUS != sb.DurUS || len(sa.Attrs) != len(sb.Attrs) {
				t.Fatalf("record %d span %d mismatch: %+v vs %+v", i, j, sb, sa)
			}
			for k := range sa.Attrs {
				if sa.Attrs[k] != sb.Attrs[k] {
					t.Fatalf("record %d span %d attr %d: %+v vs %+v", i, j, k, sb.Attrs[k], sa.Attrs[k])
				}
			}
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"trace_id\":\"ok\"}\nnot json\n")); err == nil {
		t.Fatal("ReadJSONL accepted garbage")
	}
	recs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank lines: recs=%v err=%v", recs, err)
	}
}

func TestSummaryCarriesFailingStageEvidence(t *testing.T) {
	rec := &TraceRecord{
		TraceID:     "r",
		Accepted:    false,
		FailedStage: "loudspeaker",
		Spans: []SpanRecord{
			{SpanID: "1", Name: "verify"},
			{SpanID: "2", ParentID: "1", Name: "stage:loudspeaker", Attrs: []Attr{
				{Key: "field_ut", Kind: KindFloat, Float: 601.3, Unit: "µT"},
				{Key: "threshold_mt_ut", Kind: KindFloat, Float: 28, Unit: "µT"},
				{Key: "detail", Kind: KindString, Str: "swing"},
			}},
		},
	}
	s := rec.Summary()
	if s.FailedStage != "loudspeaker" || s.Spans != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Evidence["field_ut"] != 601.3 || s.Evidence["threshold_mt_ut"] != 28 {
		t.Fatalf("evidence = %v", s.Evidence)
	}
	if _, ok := s.Evidence["detail"]; ok {
		t.Fatal("non-numeric attr leaked into evidence")
	}
	ok := &TraceRecord{TraceID: "a", Accepted: true, Spans: rec.Spans}
	if ev := ok.Summary().Evidence; ev != nil {
		t.Fatalf("accepted summary carries evidence: %v", ev)
	}
}

func TestHistogramExemplar(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.5, "trace-b")
	h.ObserveExemplar(5, "trace-c")
	h.ObserveExemplar(0.06, "") // no trace: must not clobber the exemplar
	if ex := h.BucketExemplar(0); ex == nil || ex.TraceID != "trace-a" || ex.Value != 0.05 {
		t.Fatalf("bucket 0 exemplar = %+v", ex)
	}
	if ex := h.BucketExemplar(1); ex == nil || ex.TraceID != "trace-b" {
		t.Fatalf("bucket 1 exemplar = %+v", ex)
	}
	if ex := h.BucketExemplar(2); ex == nil || ex.TraceID != "trace-c" {
		t.Fatalf("+Inf bucket exemplar = %+v", ex)
	}
	if ex := h.BucketExemplar(99); ex != nil {
		t.Fatal("out-of-range bucket returned an exemplar")
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	h.ObserveExemplar(0.01, "trace-d")
	if ex := h.BucketExemplar(0); ex.TraceID != "trace-d" {
		t.Fatalf("newer exemplar did not replace: %+v", ex)
	}
}
