package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("requests_total", nil) != c {
		t.Error("re-registration returned a new series")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", Labels{"route": "/verify"})
	b := r.Counter("hits", Labels{"route": "/stats"})
	if a == b {
		t.Fatal("distinct label sets shared a series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("label isolation broken")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", nil)
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Errorf("value = %v, want 2", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", nil)
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", nil)
}

func TestHistogramCountSumBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-12 {
		t.Errorf("sum = %v", h.Sum())
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 5 {
		t.Errorf("count after duration = %d", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 3, 4}, nil)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
	// 100 uniform samples in (0,4]: quantiles track the sample value.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.25, 1, 0.1}, {0.5, 2, 0.1}, {0.95, 3.8, 0.1},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	// Overflow samples clamp to the top finite bound.
	h2 := r.Histogram("lat2", []float64{1}, nil)
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want 1", got)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing buckets accepted")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 1}, nil)
}

func TestExposeFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vg_requests_total", Labels{"route": "/verify", "code": "200"})
	c.Add(3)
	r.SetHelp("vg_requests_total", "requests by route and status")
	g := r.Gauge("vg_inflight", nil)
	g.Set(1.5)
	h := r.Histogram("vg_latency_seconds", []float64{0.1, 1}, Labels{"stage": "distance"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)

	var sb strings.Builder
	if err := r.Expose(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP vg_requests_total requests by route and status\n",
		"# TYPE vg_requests_total counter\n",
		`vg_requests_total{code="200",route="/verify"} 3` + "\n",
		"# TYPE vg_inflight gauge\n",
		"vg_inflight 1.5\n",
		"# TYPE vg_latency_seconds histogram\n",
		`vg_latency_seconds_bucket{stage="distance",le="0.1"} 1` + "\n",
		`vg_latency_seconds_bucket{stage="distance",le="1"} 2` + "\n",
		`vg_latency_seconds_bucket{stage="distance",le="+Inf"} 3` + "\n",
		`vg_latency_seconds_sum{stage="distance"} 7.55` + "\n",
		`vg_latency_seconds_count{stage="distance"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
}

// TestExposeFormatsSplitOnExemplars pins the format contract the /metrics
// content negotiation relies on: the classic text exposition stays
// exemplar-free (a standard Prometheus text parser errors on the trailing
// `#`), while ExposeOpenMetrics carries the exemplars, strips counter
// `_total` suffixes on metadata lines, and terminates with `# EOF`.
func TestExposeFormatsSplitOnExemplars(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vg_requests_total", Labels{"route": "/verify"})
	c.Add(2)
	r.SetHelp("vg_requests_total", "requests by route")
	h := r.Histogram("vg_latency_seconds", []float64{0.1, 1}, nil)
	h.ObserveExemplar(0.05, "trace-1")

	var classic strings.Builder
	if err := r.Expose(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), " # {") {
		t.Errorf("classic exposition carries exemplar syntax:\n%s", classic.String())
	}
	if strings.Contains(classic.String(), "# EOF") {
		t.Errorf("classic exposition carries the OpenMetrics terminator:\n%s", classic.String())
	}
	if !strings.Contains(classic.String(), "# TYPE vg_requests_total counter\n") {
		t.Errorf("classic exposition renamed the counter family:\n%s", classic.String())
	}

	var om strings.Builder
	if err := r.ExposeOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		"# HELP vg_requests requests by route\n",
		"# TYPE vg_requests counter\n",
		`vg_requests_total{route="/verify"} 2` + "\n",
		`# {trace_id="trace-1"} 0.05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics exposition missing %q\ngot:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated by # EOF:\n%s", out)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n", nil)
			h := r.Histogram("h", nil, nil)
			g := r.Gauge("g", nil)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n", nil).Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h", nil, nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g", nil).Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if math.Abs(r.Histogram("h", nil, nil).Sum()-workers*per*0.001) > 1e-6 {
		t.Errorf("histogram sum = %v", r.Histogram("h", nil, nil).Sum())
	}
}

func TestNewTraceID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}
