package telemetry

// Time-aware observability: fixed-memory rings of rolling windows that
// turn the per-decision counters and evidence values into distributions
// over time. Two rings run in parallel — a fine ring (default 60 × 1 min)
// answering "what changed in the last minutes" and a coarse ring (default
// 24 × 1 h) answering "how does today compare to this morning". Every
// observation lands in both rings with a handful of atomic adds: the
// serving path allocates nothing and takes no locks.
//
// On top of the rings sit the fleet-level signals the thresholds-fit-
// offline cascade cannot see per decision: streaming drift scores (PSI
// and a binned two-sample KS statistic) between the live window and a
// pinned baseline distribution, multi-window SLO burn rates, and sampled
// process resource timelines.

import (
	"math"
	"sync/atomic"
	"time"
)

// VerifyOutcome classifies one verification attempt for window
// accounting. The order mirrors the server's outcome counters.
type VerifyOutcome int

// Verification outcomes.
const (
	OutcomeAccepted VerifyOutcome = iota
	OutcomeRejected
	OutcomeError
	OutcomeDeadlineExceeded
	OutcomeShed
	numOutcomes
)

// String implements fmt.Stringer.
func (o VerifyOutcome) String() string {
	switch o {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeRejected:
		return "rejected"
	case OutcomeError:
		return "error"
	case OutcomeDeadlineExceeded:
		return "deadline_exceeded"
	case OutcomeShed:
		return "shed"
	default:
		return "unknown"
	}
}

// SeriesID indexes one registered evidence series of a WindowSet.
type SeriesID int

// SeriesDef declares one per-stage evidence distribution captured by the
// rolling windows: the stage's metric name, the evidence metric, and the
// fixed bin edges its histogram uses. Edges are strictly increasing upper
// bounds; values above the last edge land in an implicit overflow bin, so
// a series with E edges has E+1 bins. Fixed deterministic edges are what
// make PSI/KS between two windows well-defined.
type SeriesDef struct {
	// Stage is the pipeline stage's metric name ("distance", ...).
	Stage string
	// Metric names the evidence quantity ("distance_cm", "llr", ...).
	Metric string
	// Edges are the strictly increasing histogram upper bounds.
	Edges []float64
}

// WindowConfig sizes a WindowSet. The zero value selects the defaults.
type WindowConfig struct {
	// FineSlots × FineWidth is the fine ring (default 60 × 1 min).
	FineSlots int
	FineWidth time.Duration
	// CoarseSlots × CoarseWidth is the coarse ring (default 24 × 1 h).
	CoarseSlots int
	CoarseWidth time.Duration
	// LiveWindow is the lookback drift scores compare against the pinned
	// baseline (default 5 min).
	LiveWindow time.Duration
	// LatencyGoodUnder is the latency-SLO threshold: a decided verify at
	// or under it counts as "good". 0 counts every decided verify good.
	LatencyGoodUnder time.Duration
	// Now is the clock (default time.Now). Injectable so rotation and
	// drift are deterministic under test and in replay experiments.
	Now func() time.Time
}

// Default window geometry.
const (
	DefFineSlots   = 60
	DefFineWidth   = time.Minute
	DefCoarseSlots = 24
	DefCoarseWidth = time.Hour
	DefLiveWindow  = 5 * time.Minute
)

func (c *WindowConfig) setDefaults() {
	if c.FineSlots <= 0 {
		c.FineSlots = DefFineSlots
	}
	if c.FineWidth <= 0 {
		c.FineWidth = DefFineWidth
	}
	if c.CoarseSlots <= 0 {
		c.CoarseSlots = DefCoarseSlots
	}
	if c.CoarseWidth <= 0 {
		c.CoarseWidth = DefCoarseWidth
	}
	if c.LiveWindow <= 0 {
		c.LiveWindow = DefLiveWindow
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// windowSlot is one rotation period's counts. All fields are atomics so
// concurrent writers never block; a slot is recycled in place when its
// epoch passes (fixed memory, no allocation at rotation).
type windowSlot struct {
	// epoch is the slot's period number (unixNano / width); -1 while a
	// writer is recycling the slot for a new period.
	epoch atomic.Int64

	// counts is the flattened evidence histogram (see WindowSet.offsets);
	// sums holds one float64-bit sum per series for window means.
	counts []atomic.Int64
	sums   []atomic.Uint64

	outcomes [numOutcomes]atomic.Int64
	latOK    atomic.Int64
	latTotal atomic.Int64
	latSumUS atomic.Int64

	// Sampled process state (last write in the period wins). allocTotal
	// and gcPauseTotalUS are cumulative process counters at sample time,
	// so deltas between slots give per-window rates.
	sampleUnix     atomic.Int64
	heapBytes      atomic.Int64
	goroutines     atomic.Int64
	gcPauseTotalUS atomic.Int64
	allocTotal     atomic.Int64
}

func (s *windowSlot) reset() {
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	for i := range s.sums {
		s.sums[i].Store(0)
	}
	for i := range s.outcomes {
		s.outcomes[i].Store(0)
	}
	s.latOK.Store(0)
	s.latTotal.Store(0)
	s.latSumUS.Store(0)
	s.sampleUnix.Store(0)
	s.heapBytes.Store(0)
	s.goroutines.Store(0)
	s.gcPauseTotalUS.Store(0)
	s.allocTotal.Store(0)
}

// windowRing is a fixed ring of slots keyed by epoch (time / width).
type windowRing struct {
	width int64 // slot width in nanoseconds
	slots []windowSlot
}

func newWindowRing(n int, width time.Duration, bins, series int) *windowRing {
	r := &windowRing{width: int64(width), slots: make([]windowSlot, n)}
	for i := range r.slots {
		r.slots[i].counts = make([]atomic.Int64, bins)
		r.slots[i].sums = make([]atomic.Uint64, series)
	}
	return r
}

// slot returns the slot for nowNS, recycling it in place when its stored
// epoch is stale. Writers that lose the recycle race spin until the
// winner finishes zeroing — the window is a few atomic stores wide.
func (r *windowRing) slot(nowNS int64) *windowSlot {
	e := nowNS / r.width
	s := &r.slots[int(e%int64(len(r.slots)))]
	for {
		cur := s.epoch.Load()
		switch {
		case cur == e:
			return s
		case cur == -1 || cur > e:
			// Another writer is recycling (or a newer period already owns
			// the slot — a straggler with a stale clock drops its sample).
			if cur > e {
				return nil
			}
		default:
			if s.epoch.CompareAndSwap(cur, -1) {
				s.reset()
				s.epoch.Store(e)
				return s
			}
		}
	}
}

// visit calls fn for every slot whose period overlaps [nowNS-lookback,
// nowNS], oldest first.
func (r *windowRing) visit(nowNS, lookbackNS int64, fn func(*windowSlot)) {
	cur := nowNS / r.width
	first := (nowNS - lookbackNS) / r.width
	if span := int64(len(r.slots)) - 1; cur-first > span {
		first = cur - span
	}
	for e := first; e <= cur; e++ {
		s := &r.slots[int(e%int64(len(r.slots)))]
		if s.epoch.Load() == e {
			fn(s)
		}
	}
}

// WindowSet is the time-aware aggregation layer: a fine and a coarse
// ring of rolling windows over the registered evidence series, verdict
// and latency counts, and sampled process state. All Observe methods are
// safe for concurrent use and allocation-free.
type WindowSet struct {
	cfg     WindowConfig
	defs    []SeriesDef
	offsets []int // series i's bins start at offsets[i]
	bins    int
	fine    *windowRing
	coarse  *windowRing

	baseline atomic.Pointer[Baseline]
}

// NewWindowSet builds a window set over the given evidence series. The
// series list is fixed for the set's lifetime so every slot can
// preallocate its counts.
func NewWindowSet(cfg WindowConfig, defs []SeriesDef) *WindowSet {
	cfg.setDefaults()
	w := &WindowSet{cfg: cfg, defs: defs, offsets: make([]int, len(defs))}
	for i, d := range defs {
		w.offsets[i] = w.bins
		w.bins += len(d.Edges) + 1
	}
	w.fine = newWindowRing(cfg.FineSlots, cfg.FineWidth, w.bins, len(defs))
	w.coarse = newWindowRing(cfg.CoarseSlots, cfg.CoarseWidth, w.bins, len(defs))
	return w
}

// Defs returns the registered series definitions (shared slice; treat as
// read-only).
func (w *WindowSet) Defs() []SeriesDef { return w.defs }

// SeriesByName returns the series ID for a stage/metric pair.
func (w *WindowSet) SeriesByName(stage, metric string) (SeriesID, bool) {
	for i, d := range w.defs {
		if d.Stage == stage && d.Metric == metric {
			return SeriesID(i), true
		}
	}
	return 0, false
}

// LiveWindow returns the drift comparison lookback.
func (w *WindowSet) LiveWindow() time.Duration { return w.cfg.LiveWindow }

// binIndex returns the bin v falls into for series id.
func (w *WindowSet) binIndex(id SeriesID, v float64) int {
	edges := w.defs[id].Edges
	i := 0
	for i < len(edges) && v > edges[i] {
		i++
	}
	return w.offsets[id] + i
}

// ObserveEvidence records one evidence value into both rings.
func (w *WindowSet) ObserveEvidence(id SeriesID, v float64) {
	if w == nil || int(id) >= len(w.defs) {
		return
	}
	nowNS := w.cfg.Now().UnixNano()
	bin := w.binIndex(id, v)
	for _, r := range [2]*windowRing{w.fine, w.coarse} {
		s := r.slot(nowNS)
		if s == nil {
			continue
		}
		s.counts[bin].Add(1)
		addFloat(&s.sums[id], v)
	}
}

// ObserveVerify records one verification outcome. Decided verifies
// (accept/reject) also feed the latency-SLO counts; refused or abandoned
// attempts count only against availability.
func (w *WindowSet) ObserveVerify(o VerifyOutcome, latency time.Duration) {
	if w == nil || o < 0 || o >= numOutcomes {
		return
	}
	nowNS := w.cfg.Now().UnixNano()
	decided := o == OutcomeAccepted || o == OutcomeRejected
	good := w.cfg.LatencyGoodUnder <= 0 || latency <= w.cfg.LatencyGoodUnder
	for _, r := range [2]*windowRing{w.fine, w.coarse} {
		s := r.slot(nowNS)
		if s == nil {
			continue
		}
		s.outcomes[o].Add(1)
		if decided {
			s.latTotal.Add(1)
			s.latSumUS.Add(latency.Microseconds())
			if good {
				s.latOK.Add(1)
			}
		}
	}
}

// RecordRuntime stamps a process resource sample into the current slot
// of both rings (last sample in a period wins).
func (w *WindowSet) RecordRuntime(sample RuntimeSample) {
	if w == nil {
		return
	}
	now := w.cfg.Now()
	nowNS := now.UnixNano()
	for _, r := range [2]*windowRing{w.fine, w.coarse} {
		s := r.slot(nowNS)
		if s == nil {
			continue
		}
		s.sampleUnix.Store(now.Unix())
		s.heapBytes.Store(sample.HeapBytes)
		s.goroutines.Store(sample.Goroutines)
		s.gcPauseTotalUS.Store(sample.GCPauseTotalUS)
		s.allocTotal.Store(sample.AllocBytesTotal)
	}
}

// addFloat CAS-adds v into a float64-bits atomic.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Dist is a binned distribution snapshot of one series over a window.
type Dist struct {
	// Counts holds one count per bin (len(Edges)+1, last = overflow).
	Counts []int64
	// Total is the sample count.
	Total int64
	// Sum is the sum of observed values.
	Sum float64
}

// Mean returns the window mean (NaN when empty).
func (d Dist) Mean() float64 {
	if d.Total == 0 {
		return math.NaN()
	}
	return d.Sum / float64(d.Total)
}

// ringFor picks the tightest ring covering a lookback.
func (w *WindowSet) ringFor(lookback time.Duration) *windowRing {
	if int64(lookback) <= w.fine.width*int64(len(w.fine.slots)) {
		return w.fine
	}
	return w.coarse
}

// SeriesDist aggregates one series over the trailing lookback.
func (w *WindowSet) SeriesDist(id SeriesID, lookback time.Duration) Dist {
	d := Dist{Counts: make([]int64, len(w.defs[id].Edges)+1)}
	if int(id) >= len(w.defs) {
		return d
	}
	off := w.offsets[id]
	w.ringFor(lookback).visit(w.cfg.Now().UnixNano(), int64(lookback), func(s *windowSlot) {
		for i := range d.Counts {
			d.Counts[i] += s.counts[off+i].Load()
		}
		d.Sum += math.Float64frombits(s.sums[id].Load())
	})
	for _, c := range d.Counts {
		d.Total += c
	}
	return d
}

// OutcomeTotals aggregates the outcome and latency counters over the
// trailing lookback.
func (w *WindowSet) OutcomeTotals(lookback time.Duration) (outcomes [5]int64, latOK, latTotal, latSumUS int64) {
	w.ringFor(lookback).visit(w.cfg.Now().UnixNano(), int64(lookback), func(s *windowSlot) {
		for i := range outcomes {
			outcomes[i] += s.outcomes[i].Load()
		}
		latOK += s.latOK.Load()
		latTotal += s.latTotal.Load()
		latSumUS += s.latSumUS.Load()
	})
	return outcomes, latOK, latTotal, latSumUS
}

// Baseline is a pinned reference distribution set drift scores compare
// the live window against.
type Baseline struct {
	// PinnedUnix is when the baseline was pinned (seconds).
	PinnedUnix int64
	// Window is the lookback the baseline aggregated.
	Window time.Duration
	// Dists holds one distribution per registered series.
	Dists []Dist
}

// PinBaseline snapshots the trailing lookback of every series as the
// drift baseline and returns it.
func (w *WindowSet) PinBaseline(lookback time.Duration) *Baseline {
	b := &Baseline{
		PinnedUnix: w.cfg.Now().Unix(),
		Window:     lookback,
		Dists:      make([]Dist, len(w.defs)),
	}
	for i := range w.defs {
		b.Dists[i] = w.SeriesDist(SeriesID(i), lookback)
	}
	w.baseline.Store(b)
	return b
}

// Baseline returns the pinned baseline (nil before any pin).
func (w *WindowSet) Baseline() *Baseline { return w.baseline.Load() }

// DriftScore is one series' live-vs-baseline comparison.
type DriftScore struct {
	// Stage and Metric identify the series.
	Stage, Metric string
	// PSI is the population stability index between the live window and
	// the baseline; KS the binned two-sample Kolmogorov–Smirnov
	// statistic. Both are 0 when either window is empty.
	PSI, KS float64 // unit: psi dimensionless, ks dimensionless
	// LiveCount and BaselineCount are the window sample counts.
	LiveCount, BaselineCount int64
	// LiveMean and BaselineMean are the window means (NaN when empty).
	LiveMean, BaselineMean float64 // unit: any
}

// Drift scores every series' live window against the pinned baseline.
// Without a baseline every score is zero (counts still report).
func (w *WindowSet) Drift() []DriftScore {
	b := w.baseline.Load()
	out := make([]DriftScore, len(w.defs))
	for i, def := range w.defs {
		live := w.SeriesDist(SeriesID(i), w.cfg.LiveWindow)
		ds := DriftScore{
			Stage: def.Stage, Metric: def.Metric,
			LiveCount: live.Total, LiveMean: live.Mean(),
			BaselineMean: math.NaN(),
		}
		if b != nil && i < len(b.Dists) {
			ref := b.Dists[i]
			ds.BaselineCount = ref.Total
			ds.BaselineMean = ref.Mean()
			ds.PSI = PSI(live, ref)
			ds.KS = KSStat(live, ref)
		}
		out[i] = ds
	}
	return out
}

// psiSmoothing is the additive (Laplace) count added to every bin before
// PSI's log-ratio, so empty bins cannot produce infinities. Half an
// observation is the conventional Jeffreys choice.
const psiSmoothing = 0.5

// Conventional PSI interpretation thresholds: below PSIStableBelow the
// live population matches the baseline, between the two it has shifted
// moderately, above PSIActionAbove the shift demands action.
const (
	PSIStableBelow = 0.1  // unit: dimensionless
	PSIActionAbove = 0.25 // unit: dimensionless
)

// PSI computes the population stability index between two binned
// distributions sharing one bin layout: Σ (p−q)·ln(p/q) over smoothed
// bin proportions. The conventional reading: < 0.1 stable, 0.1–0.25
// moderate shift, > 0.25 action required. Returns 0 when either window
// is empty or the layouts disagree.
func PSI(live, base Dist) float64 {
	if live.Total == 0 || base.Total == 0 || len(live.Counts) != len(base.Counts) {
		return 0
	}
	bins := float64(len(live.Counts))
	ln := float64(live.Total) + psiSmoothing*bins
	bn := float64(base.Total) + psiSmoothing*bins
	var psi float64
	for i := range live.Counts {
		p := (float64(live.Counts[i]) + psiSmoothing) / ln
		q := (float64(base.Counts[i]) + psiSmoothing) / bn
		psi += (p - q) * math.Log(p/q)
	}
	return psi
}

// KSStat computes the binned two-sample Kolmogorov–Smirnov statistic:
// the maximum absolute difference between the two empirical CDFs
// evaluated at the shared bin edges. Returns 0 when either window is
// empty or the layouts disagree.
func KSStat(live, base Dist) float64 {
	if live.Total == 0 || base.Total == 0 || len(live.Counts) != len(base.Counts) {
		return 0
	}
	var ks, cl, cb float64
	for i := range live.Counts {
		cl += float64(live.Counts[i]) / float64(live.Total)
		cb += float64(base.Counts[i]) / float64(base.Total)
		if d := math.Abs(cl - cb); d > ks {
			ks = d
		}
	}
	return ks
}

// SLOConfig declares the serving objectives burn rates are computed
// against. Zero objectives disable the corresponding SLO.
type SLOConfig struct {
	// AvailabilityObjective is the target fraction of attempts answered
	// with a decision (errors, deadline-exceeded and shed burn budget).
	AvailabilityObjective float64 // unit: dimensionless
	// LatencyObjective is the target fraction of decided verifies at or
	// under the WindowConfig.LatencyGoodUnder threshold.
	LatencyObjective float64 // unit: dimensionless
}

// BurnRate is one SLO's budget burn over one window: the observed bad
// ratio divided by the error budget (1 − objective). Burn 1 exactly
// spends the budget; a 0.1% objective burning at 14 for an hour is the
// classic page condition.
type BurnRate struct {
	// SLO names the objective ("availability", "latency").
	SLO string
	// Window labels the lookback ("5m", "1h", "6h").
	Window string
	// Burn is badRatio / (1 − objective); 0 with no traffic.
	Burn float64 // unit: dimensionless
	// BadRatio is the observed violation fraction in the window.
	BadRatio float64 // unit: dimensionless
	// Total is the attempts considered in the window.
	Total int64
}

// DefBurnWindows are the standard multi-window burn-rate lookbacks.
var DefBurnWindows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}

// burnLabel renders a lookback compactly ("5m", "1h", "6h").
func burnLabel(d time.Duration) string {
	if d%time.Hour == 0 {
		h := int64(d / time.Hour)
		return itoa(h) + "h"
	}
	return itoa(int64(d/time.Minute)) + "m"
}

// itoa is a minimal positive-int formatter (avoids strconv in the hot
// import graph — this file otherwise needs only math and sync/atomic).
func itoa(v int64) string {
	if v <= 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BurnRates computes multi-window burn rates for the configured SLOs
// over the given lookbacks (nil selects DefBurnWindows).
func (w *WindowSet) BurnRates(slo SLOConfig, windows []time.Duration) []BurnRate {
	if windows == nil {
		windows = DefBurnWindows
	}
	var out []BurnRate
	for _, win := range windows {
		outcomes, latOK, latTotal, _ := w.OutcomeTotals(win)
		var total int64
		for _, n := range outcomes {
			total += n
		}
		if slo.AvailabilityObjective > 0 && slo.AvailabilityObjective < 1 {
			bad := outcomes[OutcomeError] + outcomes[OutcomeDeadlineExceeded] + outcomes[OutcomeShed]
			out = append(out, burnRate("availability", win, bad, total, slo.AvailabilityObjective))
		}
		if slo.LatencyObjective > 0 && slo.LatencyObjective < 1 {
			out = append(out, burnRate("latency", win, latTotal-latOK, latTotal, slo.LatencyObjective))
		}
	}
	return out
}

func burnRate(name string, win time.Duration, bad, total int64, objective float64) BurnRate {
	br := BurnRate{SLO: name, Window: burnLabel(win), Total: total}
	if total > 0 {
		br.BadRatio = float64(bad) / float64(total)
		br.Burn = br.BadRatio / (1 - objective)
	}
	return br
}

// ResourceUsage summarizes the sampled process state over the live
// window, with per-decision attribution derived from cumulative-counter
// deltas between the window's first and last samples.
type ResourceUsage struct {
	// HeapBytes and Goroutines are the latest sampled values.
	HeapBytes, Goroutines int64
	// GCPauseTotalUS is the cumulative stop-the-world GC pause at the
	// latest sample, microseconds.
	GCPauseTotalUS int64
	// AllocPerDecisionBytes is heap bytes allocated per decided verify
	// across the window (0 without two samples or without decisions).
	AllocPerDecisionBytes float64 // unit: any
	// GCPausePerDecisionUS is GC pause microseconds accrued per decided
	// verify across the window.
	GCPausePerDecisionUS float64 // unit: µs
	// Samples is how many sampled slots the window held.
	Samples int
}

// Resources derives the live-window resource summary from the fine ring.
func (w *WindowSet) Resources() ResourceUsage {
	var u ResourceUsage
	var firstAlloc, lastAlloc, firstPause, lastPause int64
	var decisions int64
	w.fine.visit(w.cfg.Now().UnixNano(), int64(w.cfg.LiveWindow), func(s *windowSlot) {
		decisions += s.outcomes[OutcomeAccepted].Load() + s.outcomes[OutcomeRejected].Load()
		if s.sampleUnix.Load() == 0 {
			return
		}
		if u.Samples == 0 {
			firstAlloc = s.allocTotal.Load()
			firstPause = s.gcPauseTotalUS.Load()
		}
		u.Samples++
		lastAlloc = s.allocTotal.Load()
		lastPause = s.gcPauseTotalUS.Load()
		u.HeapBytes = s.heapBytes.Load()
		u.Goroutines = s.goroutines.Load()
		u.GCPauseTotalUS = lastPause
	})
	if u.Samples >= 2 && decisions > 0 {
		u.AllocPerDecisionBytes = float64(lastAlloc-firstAlloc) / float64(decisions)
		u.GCPausePerDecisionUS = float64(lastPause-firstPause) / float64(decisions)
	}
	return u
}

// TimelineSeries is one series' summary within a timeline point.
type TimelineSeries struct {
	// Stage and Metric identify the series.
	Stage  string `json:"stage"`
	Metric string `json:"metric"`
	// Count is the window's sample count; Mean its mean (omitted when
	// empty).
	Count int64   `json:"count"`
	Mean  float64 `json:"mean,omitempty"` // unit: any
}

// TimelinePoint is one fine-ring slot rendered for the /debug/drift
// timeline.
type TimelinePoint struct {
	// Unix is the slot period's start, seconds since the epoch.
	Unix int64 `json:"unix"`
	// Accepted/Rejected/Errors/DeadlineExceeded/Shed are the outcome
	// counts of the period.
	Accepted         int64 `json:"accepted"`
	Rejected         int64 `json:"rejected"`
	Errors           int64 `json:"errors,omitempty"`
	DeadlineExceeded int64 `json:"deadline_exceeded,omitempty"`
	Shed             int64 `json:"shed,omitempty"`
	// LatencyMeanUS is the mean decided-verify latency, µs.
	LatencyMeanUS float64 `json:"latency_mean_us,omitempty"` // unit: µs
	// HeapBytes and Goroutines carry the period's process sample (0 when
	// unsampled).
	HeapBytes  int64 `json:"heap_bytes,omitempty"`
	Goroutines int64 `json:"goroutines,omitempty"`
	// Series summarizes every registered evidence series in the period.
	Series []TimelineSeries `json:"series,omitempty"`
}

// Timeline renders the newest n fine-ring slots oldest-first (n ≤ 0 =
// all). Only slots that saw traffic or a sample are included.
func (w *WindowSet) Timeline(n int) []TimelinePoint {
	span := w.fine.width * int64(len(w.fine.slots))
	if n > 0 && n < len(w.fine.slots) {
		span = w.fine.width * int64(n)
	}
	var out []TimelinePoint
	w.fine.visit(w.cfg.Now().UnixNano(), span-1, func(s *windowSlot) {
		p := TimelinePoint{
			Unix:             s.epoch.Load() * w.fine.width / int64(time.Second),
			Accepted:         s.outcomes[OutcomeAccepted].Load(),
			Rejected:         s.outcomes[OutcomeRejected].Load(),
			Errors:           s.outcomes[OutcomeError].Load(),
			DeadlineExceeded: s.outcomes[OutcomeDeadlineExceeded].Load(),
			Shed:             s.outcomes[OutcomeShed].Load(),
			HeapBytes:        s.heapBytes.Load(),
			Goroutines:       s.goroutines.Load(),
		}
		if lt := s.latTotal.Load(); lt > 0 {
			p.LatencyMeanUS = float64(s.latSumUS.Load()) / float64(lt)
		}
		empty := p.Accepted+p.Rejected+p.Errors+p.DeadlineExceeded+p.Shed == 0 &&
			s.sampleUnix.Load() == 0
		if empty {
			return
		}
		for i, def := range w.defs {
			var count int64
			for b := 0; b <= len(def.Edges); b++ {
				count += s.counts[w.offsets[i]+b].Load()
			}
			ts := TimelineSeries{Stage: def.Stage, Metric: def.Metric, Count: count}
			if count > 0 {
				ts.Mean = math.Float64frombits(s.sums[i].Load()) / float64(count)
			}
			p.Series = append(p.Series, ts)
		}
		out = append(out, p)
	})
	return out
}
