package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer series.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n. Negative n panics: counters only go up.
func (c *Counter) Add(n int64) {
	if n < 0 {
		//lint:allow nopanic a negative Add is a bug at the call site, not a runtime condition
		panic("telemetry: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string, _ bool) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
	return err
}

// Gauge is a float series that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (CAS loop: atomic float add).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string, _ bool) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
	return err
}

// DefLatencyBuckets are the default histogram bounds in seconds: 50 µs
// to 10 s, covering both the tens-of-microseconds individual pipeline
// stages and the paper's §V end-to-end response-time range (hundreds of
// milliseconds).
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution with atomic observation. The
// bucket slice holds cumulative-format upper bounds; an implicit +Inf
// bucket catches the overflow. Each bucket additionally retains one
// exemplar — the most recent traced observation that landed in it — so
// /metrics latency buckets link back to a replayable trace in the flight
// recorder (OpenMetrics exemplar syntax).
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1, last is +Inf
	count     atomic.Int64
	sumBits   atomic.Uint64              // float64 sum, CAS-updated
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, last is +Inf
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	// Value is the observed sample.
	Value float64 // unit: any
	// TraceID identifies the trace behind the sample.
	TraceID string
	// Unix is the observation time in seconds since the epoch.
	Unix float64 // unit: s
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			//lint:allow nopanic bucket layouts are compile-time constants; a bad one is a programming error
			panic("telemetry: histogram buckets not strictly increasing")
		}
	}
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// bucketIndex returns the index of the bucket v falls into (the +Inf
// bucket being len(bounds)).
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// replaces the sample's bucket exemplar so the exposition links the
// bucket to a recent trace.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID != "" {
		i := h.bucketIndex(v)
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Unix: float64(time.Now().UnixMicro()) / 1e6})
	}
	h.Observe(v)
}

// ObserveDuration records a latency sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationExemplar records a latency sample in seconds with a
// trace-ID exemplar.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// BucketExemplar returns bucket i's exemplar (i counting finite bounds
// first, len(bounds) being +Inf) or nil when none was recorded.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the standard
// fixed-bucket estimator. Samples in the +Inf bucket clamp to the
// highest finite bound. Returns NaN for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the finite upper edge is the best estimate.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// write emits the histogram series. Exemplar suffixes are only legal in
// the OpenMetrics exposition — the classic Prometheus text parser errors
// on the trailing `#` — so they are gated on openMetrics.
func (h *Histogram) write(w io.Writer, name, labels string, openMetrics bool) error {
	suffix := func(i int) string {
		if !openMetrics {
			return ""
		}
		return h.exemplarSuffix(i)
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			name, mergeLabel(labels, "le", formatFloat(bound)), cum, suffix(i)); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, mergeLabel(labels, "le", "+Inf"),
		cum, suffix(len(h.bounds))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// exemplarSuffix renders bucket i's exemplar in the OpenMetrics layout
// (` # {trace_id="..."} value timestamp`), or "" when the bucket has
// none.
func (h *Histogram) exemplarSuffix(i int) string {
	ex := h.exemplars[i].Load()
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %s", ex.TraceID, formatFloat(ex.Value), formatFloat(ex.Unix))
}

// mergeLabel splices an extra label pair into a serialized label set.
func mergeLabel(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + pair + "}"
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
