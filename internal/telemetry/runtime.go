package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// RuntimeSample is one point-in-time reading of the process state the
// rolling windows track: live heap, goroutine count, and the cumulative
// GC pause and allocation counters whose deltas give per-window rates.
type RuntimeSample struct {
	// HeapBytes is the live heap object footprint.
	HeapBytes int64
	// Goroutines is the current goroutine count.
	Goroutines int64
	// GCPauseTotalUS is the cumulative stop-the-world pause time since
	// process start, microseconds.
	GCPauseTotalUS int64
	// AllocBytesTotal is the cumulative heap allocation since process
	// start.
	AllocBytesTotal int64
}

// runtimeSampleKeys are the runtime/metrics keys one sample reads. The
// histogram-valued pause metric is read separately.
const (
	keyHeapObjects = "/memory/classes/heap/objects:bytes"
	keyGoroutines  = "/sched/goroutines:goroutines"
	keyAllocTotal  = "/gc/heap/allocs:bytes"
	keyGCPauses    = "/gc/pauses:seconds"
)

// ReadRuntimeSample reads the current process state via runtime/metrics.
// The GC pause total is approximated from the pause histogram (bucket
// counts × midpoints), which is stable across reads and cheap; exactness
// is not needed for per-window deltas.
func ReadRuntimeSample() RuntimeSample {
	samples := []metrics.Sample{
		{Name: keyHeapObjects},
		{Name: keyGoroutines},
		{Name: keyAllocTotal},
		{Name: keyGCPauses},
	}
	metrics.Read(samples)
	var out RuntimeSample
	for _, s := range samples {
		switch s.Name {
		case keyHeapObjects:
			if s.Value.Kind() == metrics.KindUint64 {
				out.HeapBytes = int64(s.Value.Uint64())
			}
		case keyGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				out.Goroutines = int64(s.Value.Uint64())
			}
		case keyAllocTotal:
			if s.Value.Kind() == metrics.KindUint64 {
				out.AllocBytesTotal = int64(s.Value.Uint64())
			}
		case keyGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				out.GCPauseTotalUS = int64(histogramTotal(s.Value.Float64Histogram()) * 1e6)
			}
		}
	}
	if out.Goroutines == 0 {
		out.Goroutines = int64(runtime.NumGoroutine())
	}
	return out
}

// histogramTotal approximates the total of a runtime/metrics histogram
// as Σ count × bucket midpoint, clamping the open-ended edge buckets to
// their finite neighbor.
func histogramTotal(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		total += float64(count) * mid
	}
	return total
}
