package server

// Fast ASV serving path: compiled-model scoring, a hot speaker-model
// cache, and cross-request UBM batching. The server owns the wiring —
// metric plumbing, option surface and the batcher's lifecycle — while
// the mechanics live in internal/gmm and internal/core.

import (
	"errors"
	"fmt"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/gmm"
	"voiceguard/internal/telemetry"
)

// asvBatchBuckets buckets the batch-size histogram: batches coalesce at
// most a handful of concurrent verifies, so powers of two up to 64
// resolve the interesting range (1 = no coalescing happened).
var asvBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// WithASVFastPath serves speaker verification through the compiled
// top-C shortlist path instead of exact per-frame scoring. topC ≤ 0
// uses gmm.DefaultShortlistC. Scores stay within gmm.ShortlistEpsilon
// nat/frame of the exact path at the default width; the pipeline is
// otherwise unchanged. Requires the attached system to carry a GMM-UBM
// identity stage — New fails otherwise.
func WithASVFastPath(topC int) Option {
	return func(s *Server) {
		s.asvFast = true
		s.asvTopC = topC
	}
}

// WithASVModelCache sizes the hot compiled-speaker-model LRU (default
// gmm.DefaultModelCacheSize). Only meaningful together with
// WithASVFastPath / WithASVBatching; cache traffic is exported through
// the model-cache metric families.
func WithASVModelCache(n int) Option {
	return func(s *Server) { s.asvCacheSize = n }
}

// WithASVBatching coalesces concurrent verifications' UBM passes into
// one matrix-shaped scoring call: each verify's frames join a bounded
// window (default gmm.DefaultBatchWindow / gmm.DefaultBatchMaxFrames
// for window ≤ 0 / maxFrames ≤ 0) and the combined batch runs one
// parallel fan-out instead of one per request. Per-frame results are
// independent of how frames are grouped, so batched scores are
// bit-identical to unbatched ones. Implies WithASVFastPath.
func WithASVBatching(window time.Duration, maxFrames int) Option {
	return func(s *Server) {
		s.asvBatch = true
		s.asvBatchWindow = window
		s.asvBatchFrames = maxFrames
	}
}

// enableFastASV compiles the identity stage's scoring models and wires
// the cache (and, when configured, the cross-request batcher) with
// their metric families. Called from New after the registry exists.
func (s *Server) enableFastASV() error {
	id := s.system.Identity
	if id == nil {
		return errors.New("server: ASV fast path requires an identity stage (enable -asv)")
	}
	r := s.registry
	metrics := gmm.CacheMetrics{
		Hits:          r.Counter(MetricASVModelCacheEvents, telemetry.Labels{"event": "hit"}),
		Misses:        r.Counter(MetricASVModelCacheEvents, telemetry.Labels{"event": "miss"}),
		Evictions:     r.Counter(MetricASVModelCacheEvents, telemetry.Labels{"event": "eviction"}),
		ResidentBytes: r.Gauge(MetricASVModelCacheBytes, nil),
	}
	r.SetHelp(MetricASVModelCacheEvents, "compiled speaker-model cache traffic by event")
	r.SetHelp(MetricASVModelCacheBytes, "bytes held by compiled speaker models resident in the cache")
	cache := gmm.NewModelCache(s.asvCacheSize, metrics)
	s.asvCache = cache
	s.asvCacheHits = metrics.Hits
	s.asvCacheMiss = metrics.Misses
	if err := id.EnableFastPath(core.FastPathConfig{TopC: s.asvTopC, Cache: cache}); err != nil {
		return fmt.Errorf("server: enabling ASV fast path: %w", err)
	}
	if !s.asvBatch {
		return nil
	}
	hist := r.Histogram(MetricASVBatchSize, asvBatchBuckets, nil)
	r.SetHelp(MetricASVBatchSize, "verify requests coalesced per batched UBM scoring pass")
	topC, _ := id.FastPath()
	b, err := gmm.NewBatcher(id.CompiledUBM(), gmm.BatchConfig{
		Window:    s.asvBatchWindow,
		MaxFrames: s.asvBatchFrames,
		TopC:      topC,
		OnFlush:   func(requests, frames int) { hist.Observe(float64(requests)) },
	})
	if err != nil {
		return fmt.Errorf("server: building ASV batcher: %w", err)
	}
	if err := id.SetUBMShortlister(b); err != nil {
		return fmt.Errorf("server: attaching ASV batcher: %w", err)
	}
	s.batcher = b
	return nil
}
