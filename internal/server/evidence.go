package server

// Evidence-pack export: the server retains the decoded request and
// decision of recent /verify attempts (only when evidence export is
// enabled) and serves them as self-contained digest-chained packs —
// GET /debug/evidence/{trace_id} downloads one, and -evidence-dir spools
// a pack to disk for every rejected decision so production incidents
// survive the process. The hot path pays one nil test when evidence
// export is disabled.

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/evidence"
	"voiceguard/internal/protocol"
)

// EvidenceRoute is the URL prefix of the evidence-pack download
// endpoint; the trace ID follows it. Optional query parameter
// redact=digests strips raw audio from the embedded session, leaving
// content digests (the pack then verifies but cannot be replayed).
const EvidenceRoute = "/debug/evidence/"

// DefEvidenceRetention is the default session retention ring capacity:
// evidence packs need the raw request, which is ~2 MB a session, so the
// ring is much smaller than the flight recorder's.
const DefEvidenceRetention = 32

// evidenceEntry is one retained verification: everything a pack needs
// beyond the flight recorder's span tree.
type evidenceEntry struct {
	seq      uint64
	traceID  string
	req      *protocol.VerifyRequest
	decision core.Decision
}

// evidenceRetainer is a small mutex-guarded ring of recent
// verifications. It sits off the hot path: one append per decision, only
// when evidence export is enabled.
type evidenceRetainer struct {
	mu      sync.Mutex
	entries []evidenceEntry
	next    int
	seq     uint64
}

func newEvidenceRetainer(n int) *evidenceRetainer {
	if n <= 0 {
		n = DefEvidenceRetention
	}
	return &evidenceRetainer{entries: make([]evidenceEntry, 0, n)}
}

func (er *evidenceRetainer) add(e evidenceEntry) {
	er.mu.Lock()
	defer er.mu.Unlock()
	er.seq++
	e.seq = er.seq
	if len(er.entries) < cap(er.entries) {
		er.entries = append(er.entries, e)
		return
	}
	er.entries[er.next] = e
	er.next = (er.next + 1) % cap(er.entries)
}

// find returns the retained entry for a trace ID, preferring the most
// recently added when a client reused an ID.
func (er *evidenceRetainer) find(traceID string) (evidenceEntry, bool) {
	er.mu.Lock()
	defer er.mu.Unlock()
	best := -1
	for i, e := range er.entries {
		if e.traceID == traceID && (best == -1 || e.seq > er.entries[best].seq) {
			best = i
		}
	}
	if best == -1 {
		return evidenceEntry{}, false
	}
	return er.entries[best], true
}

// WithEvidenceEndpoint mounts GET /debug/evidence/{trace_id}, serving a
// decision's evidence pack as a zip. Off by default and gated exactly
// like WithDecisionEndpoints: packs carry biometric verdicts, per-stage
// evidence and (unless ?redact=digests) the raw session audio, which
// must not be reachable by anyone who can hit the serving listener
// unless the operator opted in. Enabling it turns on session retention
// for the last DefEvidenceRetention verifications.
func WithEvidenceEndpoint() Option {
	return func(s *Server) { s.evidenceDebug = true }
}

// WithEvidenceDir spools an evidence pack (pack-<trace_id>.zip) into dir
// for every rejected decision, asynchronously off the request path —
// the -evidence-dir flag. Spooled packs embed the raw session so they
// replay offline; point the flag at a directory with appropriate access
// controls.
func WithEvidenceDir(dir string) Option {
	return func(s *Server) { s.evidenceDir = dir }
}

// WithEvidenceRetention sizes the session retention ring backing
// evidence export (default DefEvidenceRetention).
func WithEvidenceRetention(n int) Option {
	return func(s *Server) { s.evidenceSize = n }
}

// WithEvidenceProvenance embeds the system construction recipe in every
// exported pack, enabling `voiceguard-trace pack replay` to rebuild the
// producing system from the pack alone.
func WithEvidenceProvenance(p evidence.Provenance) Option {
	return func(s *Server) { s.evidenceProv = &p }
}

// evidenceEnabled reports whether any evidence-export surface is on.
func (s *Server) evidenceEnabled() bool { return s.retainer != nil }

// retainEvidence records a finished verification for evidence export and
// spools rejected decisions when configured. Called from handleVerify
// only when evidence export is enabled.
func (s *Server) retainEvidence(traceID string, req *protocol.VerifyRequest, d core.Decision) {
	s.retainer.add(evidenceEntry{traceID: traceID, req: req, decision: d})
	if s.evidenceDir == "" || d.Accepted {
		return
	}
	s.spoolWG.Add(1)
	go func() {
		defer s.spoolWG.Done()
		if err := s.spoolPack(traceID); err != nil {
			s.logger.Error("spooling evidence pack", "err", err, "trace_id", traceID)
		}
	}()
}

// spoolPack writes one retained decision's pack into the evidence dir.
func (s *Server) spoolPack(traceID string) error {
	data, err := s.buildPack(traceID, evidence.RedactNone)
	if err != nil {
		return err
	}
	path := filepath.Join(s.evidenceDir, "pack-"+sanitizeTraceID(traceID)+".zip")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("server: writing evidence pack: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("server: placing evidence pack: %w", err)
	}
	s.logger.Info("spooled evidence pack", "trace_id", traceID, "path", path, "bytes", len(data))
	return nil
}

// sanitizeTraceID keeps spool filenames flat: anything outside the safe
// set becomes '_' so a hostile X-Request-ID cannot traverse paths.
func sanitizeTraceID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
}

// buildPack assembles one retained decision's evidence pack.
func (s *Server) buildPack(traceID, redact string) ([]byte, error) {
	entry, ok := s.retainer.find(traceID)
	if !ok {
		return nil, errEvidenceNotRetained
	}
	b := evidence.NewBuilder(time.Now())
	env, err := protocol.SessionEnvelopeFromRequest(traceID, entry.req, redact)
	if err != nil {
		return nil, fmt.Errorf("server: building session envelope: %w", err)
	}
	b.AddDecision(core.DecisionEvidence(entry.decision), s.recorder.Find(traceID), env)
	digests, err := s.system.ModelDigests()
	if err != nil {
		return nil, fmt.Errorf("server: digesting models: %w", err)
	}
	b.SetModels(digests, s.evidenceProv)
	var buf bytes.Buffer
	if err := b.WriteZip(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// errEvidenceNotRetained distinguishes "unknown trace" from build
// failures so the handler can answer 404 rather than 500.
var errEvidenceNotRetained = fmt.Errorf("server: decision not retained (evicted or never recorded)")

// handleEvidence serves one decision's evidence pack as a zip download.
func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, EvidenceRoute)
	if id == "" {
		http.Error(w, "trace ID required", http.StatusBadRequest)
		return
	}
	redact := evidence.RedactNone
	switch mode := r.URL.Query().Get("redact"); mode {
	case "", evidence.RedactNone:
	case evidence.RedactDigests:
		redact = evidence.RedactDigests
	default:
		http.Error(w, fmt.Sprintf("unknown redact mode %q (want %q or %q)",
			mode, evidence.RedactNone, evidence.RedactDigests), http.StatusBadRequest)
		return
	}
	data, err := s.buildPack(id, redact)
	if err != nil {
		if err == errEvidenceNotRetained {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		s.logger.Error("building evidence pack", "err", err, "trace_id", id)
		http.Error(w, "building evidence pack failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/zip")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", "pack-"+sanitizeTraceID(id)+".zip"))
	if _, err := w.Write(data); err != nil {
		s.logger.Error("writing evidence pack", "err", err, "trace_id", id)
	}
}
