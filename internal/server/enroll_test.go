package server

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/speech"
)

// asvServer builds a server with the identity stage attached.
func asvServer(t *testing.T) (*httptest.Server, *core.SpeakerVerifier) {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	roster := speech.NewRoster(4, 900)
	utts, err := roster.Generate(speech.CorpusConfig{Sessions: 2, UtterancesPerSession: 2, Digits: 6})
	if err != nil {
		t.Fatal(err)
	}
	bg := make(map[string][][]*audio.Signal)
	for spk, us := range speech.BySpeaker(utts) {
		perSession := map[int][]*audio.Signal{}
		maxSess := 0
		for _, u := range us {
			perSession[u.Session] = append(perSession[u.Session], u.Audio)
			if u.Session > maxSess {
				maxSess = u.Session
			}
		}
		for s := 0; s <= maxSess; s++ {
			bg[spk] = append(bg[spk], perSession[s])
		}
	}
	verifier, err := core.TrainSpeakerVerifier(bg, core.SpeakerVerifierConfig{Components: 8, Seed: 900})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachIdentity(verifier)
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, verifier
}

func TestEnrollEndToEnd(t *testing.T) {
	ts, verifier := asvServer(t)
	rng := rand.New(rand.NewSource(901))
	victim := speech.RandomProfile("alice", rng)
	synth, err := speech.NewSynthesizer(victim, rng)
	if err != nil {
		t.Fatal(err)
	}
	var session []*audio.Signal
	for k := 0; k < 3; k++ {
		utt, err := synth.SayDigits("314159")
		if err != nil {
			t.Fatal(err)
		}
		session = append(session, utt)
	}
	c := client.New(ts.URL)
	if err := c.Enroll("alice", [][]*audio.Signal{session}); err != nil {
		t.Fatal(err)
	}
	// The enrolled user scores well against their own voice.
	test, err := synth.SayDigits("314159")
	if err != nil {
		t.Fatal(err)
	}
	score, err := verifier.Score("alice", test)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Errorf("enrolled genuine score = %v, want positive LLR", score)
	}
	// And a full verification session including stage 4 succeeds.
	verifier.Threshold = score - 1
	genuine, err := attack.Genuine(victim, attack.Scenario{
		ClaimedUser: "alice", Passphrase: "314159", Seed: 902,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Verify(genuine)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Response.Accepted {
		t.Errorf("full four-stage verification rejected: %+v", res.Response)
	}
	if len(res.Response.Stages) != 4 {
		t.Errorf("stages = %d, want 4", len(res.Response.Stages))
	}
}

func TestEnrollWithoutASV(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	rng := rand.New(rand.NewSource(903))
	p := speech.RandomProfile("bob", rng)
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.SayDigits("111111")
	if err != nil {
		t.Fatal(err)
	}
	err = client.New(ts.URL).Enroll("bob", [][]*audio.Signal{{utt}})
	if err == nil {
		t.Error("enrollment without ASV stage accepted")
	}
}

func TestEnrollRejectsGarbage(t *testing.T) {
	ts, _ := asvServer(t)
	resp, err := http.Post(ts.URL+"/enroll", "application/gzip", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(ts.URL + "/enroll")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", getResp.StatusCode)
	}
}
