package server

// Flight-recorder endpoint tests: /debug/decisions, /debug/decisions.jsonl
// and /debug/trace/{id} against real verification traffic, driven through
// the typed client helpers.

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

// spanDepth returns the number of levels in a record's span tree.
func spanDepth(rec *telemetry.TraceRecord) int {
	parent := make(map[string]string, len(rec.Spans))
	for _, sp := range rec.Spans {
		parent[sp.SpanID] = sp.ParentID
	}
	max := 0
	for _, sp := range rec.Spans {
		d, id := 0, sp.SpanID
		for id != "" {
			d++
			id = parent[id]
		}
		if d > max {
			max = d
		}
	}
	return max
}

func TestDebugEndpointsServeRejectionForensics(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 51})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil, WithFlightRecorder(8), WithDecisionEndpoints())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)

	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(51)))
	genuine, err := attack.Genuine(victim, attack.Scenario{Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(genuine); err != nil {
		t.Fatal(err)
	}
	recd, err := attack.Record(victim, "472913", 52)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := attack.Replay(recd, device.Catalog()[0], attack.Scenario{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Verify(replay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response.Accepted {
		t.Fatal("replay accepted; nothing to examine")
	}
	rejectedID := res.Response.TraceID
	if rejectedID == "" {
		t.Fatal("rejected response carries no trace ID")
	}

	// /debug/decisions: newest first, so the rejection leads, with the
	// failing stage's evidence in the digest.
	sums, err := c.RecentDecisions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d decision summaries, want 2", len(sums))
	}
	if sums[0].TraceID != rejectedID || sums[0].Accepted {
		t.Fatalf("newest summary = %+v, want the rejection first", sums[0])
	}
	if sums[0].FailedStage == "" || len(sums[0].Evidence) == 0 {
		t.Fatalf("rejection summary carries no evidence: %+v", sums[0])
	}

	// /debug/trace/{id}: the full span tree, deep enough to replay the
	// decision, with evidence and threshold attrs on the failing stage.
	rec, err := c.Trace(rejectedID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TraceID != rejectedID || rec.Accepted {
		t.Fatalf("trace = %+v", rec)
	}
	if d := spanDepth(rec); d < 3 {
		t.Fatalf("span tree depth = %d, want ≥ 3", d)
	}
	sp, ok := rec.StageSpan(rec.FailedStage)
	if !ok {
		t.Fatalf("no stage span for failing stage %q", rec.FailedStage)
	}
	var evidence, thresholds int
	for _, a := range sp.Attrs {
		if _, numeric := a.Number(); !numeric {
			continue
		}
		if len(a.Key) > 10 && a.Key[:10] == "threshold_" {
			thresholds++
		} else {
			evidence++
		}
	}
	if evidence == 0 || thresholds == 0 {
		t.Fatalf("failing stage attrs lack evidence (%d) or thresholds (%d): %+v",
			evidence, thresholds, sp.Attrs)
	}

	// /debug/decisions.jsonl: the export reparses into the same traces.
	var buf bytes.Buffer
	if err := c.DumpDecisionsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("JSONL export has %d traces, want 2", len(recs))
	}
	if recs[1].TraceID != rejectedID || len(recs[1].Spans) != len(rec.Spans) {
		t.Fatalf("JSONL trace mismatch: %s/%d spans vs %s/%d",
			recs[1].TraceID, len(recs[1].Spans), rejectedID, len(rec.Spans))
	}

	// Unknown and empty IDs.
	for _, path := range []string{TraceRoute + "no-such-trace", TraceRoute} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s status = %d", path, resp.StatusCode)
		}
	}
	if _, err := c.Trace("no-such-trace"); err == nil {
		t.Error("client returned a trace for an unknown ID")
	}
}

func TestTraceSamplingDisablesRecording(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 53, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil, WithFlightRecorder(4), WithTraceSampling(0), WithDecisionEndpoints())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)

	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(53)))
	genuine, err := attack.Genuine(victim, attack.Scenario{Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Verify(genuine)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response.TraceID == "" {
		t.Error("sampling off must not strip the response trace ID")
	}
	sums, err := c.RecentDecisions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 0 {
		t.Fatalf("sampling off still recorded %d decisions", len(sums))
	}
}

// TestDecisionEndpointsOptIn pins the security default: without
// WithDecisionEndpoints the flight-recorder routes are not mounted, so
// verdicts and evidence are unreachable over HTTP.
func TestDecisionEndpointsOptIn(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 54, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, path := range []string{DecisionsRoute, DecisionsJSONLRoute, TraceRoute + "some-id"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without opt-in = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestCustomTracerWithoutRecorderGetsServerRing: a caller-installed
// tracer with no flight recorder must still feed the server's ring, or
// the decision endpoints would silently serve empty results forever.
func TestCustomTracerWithoutRecorderGetsServerRing(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 55})
	if err != nil {
		t.Fatal(err)
	}
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{}) // no Recorder
	srv, err := New(sys, nil, WithDecisionEndpoints())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(55)))
	genuine, err := attack.Genuine(victim, attack.Scenario{Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	c := client.New(ts.URL)
	if _, err := c.Verify(genuine); err != nil {
		t.Fatal(err)
	}
	sums, err := c.RecentDecisions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("custom recorder-less tracer recorded %d decisions, want 1", len(sums))
	}
}
