package server

// Streaming listener tests: lifecycle, version negotiation, admission
// control, digest validation, deadline mapping, and the early-exit path
// observed end to end over a real TCP connection.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/speech"
	"voiceguard/internal/stream"
)

// streamTestServer starts a server with a live streaming listener and
// returns it with the bound address. Shutdown runs in cleanup and the
// serve loop must exit with http.ErrServerClosed.
func streamTestServer(t *testing.T, sys *core.System, opts ...Option) (*Server, string) {
	t.Helper()
	if sys == nil {
		var err error
		sys, err = core.BuildSystem(core.SystemConfig{FieldSeed: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(sys, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServeStream("127.0.0.1:0", ready) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("stream listener never reported ready")
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("serve loop exited with %v, want ErrServerClosed", err)
		}
	})
	if got := srv.StreamAddr(); got != addr {
		t.Fatalf("StreamAddr() = %q, ready reported %q", got, addr)
	}
	return srv, addr
}

// dialStream connects and completes the protocol handshake.
func dialStream(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := stream.WriteHandshake(conn, stream.Version); err != nil {
		t.Fatal(err)
	}
	ver, err := stream.ReadHandshake(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ver != stream.Version {
		t.Fatalf("negotiated version %d, want %d", ver, stream.Version)
	}
	return conn
}

// sessionFrames slices a session into its streaming frame sequence.
func sessionFrames(t *testing.T, traceID string, session *core.SessionData) []stream.Frame {
	t.Helper()
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := protocol.StreamFrames(traceID, req)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

// streamSession writes every frame then reads the server's reply. The
// server drains late frames after an early decision, so writing the full
// sequence before reading is always safe.
func streamSession(t *testing.T, addr, traceID string, session *core.SessionData) stream.Frame {
	t.Helper()
	conn := dialStream(t, addr)
	for _, f := range sessionFrames(t, traceID, session) {
		if err := stream.WriteFrame(conn, f); err != nil {
			t.Fatalf("writing %v frame: %v", f.Type, err)
		}
	}
	reply, err := stream.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	return reply
}

func replaySession(t *testing.T, seed int64) *core.SessionData {
	t.Helper()
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(seed)))
	rec, err := attack.Record(victim, "472913", seed)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := attack.Replay(rec, device.Catalog()[0], attack.Scenario{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return replay
}

func TestStreamGenuineSessionAccepted(t *testing.T) {
	srv, addr := streamTestServer(t, nil)
	reply := streamSession(t, addr, "stream-genuine-1", genuineSession(t, 21))

	resp, early, err := protocol.DecisionFromStreamFrame(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted {
		t.Fatalf("genuine session rejected: %+v", resp)
	}
	if early {
		t.Error("genuine session decided before its upload finished")
	}
	if resp.TraceID != "stream-genuine-1" {
		t.Errorf("trace ID = %q", resp.TraceID)
	}
	// BuildSystem without an enrolled roster runs the three sensor-side
	// stages; speaker identity joins only after enrollment.
	if len(resp.Stages) != 3 {
		t.Errorf("stage count = %d, want 3", len(resp.Stages))
	}
	st := srv.Stats()
	if st.Accepted != 1 || st.Requests != 1 {
		t.Errorf("stats = %+v, want one accepted request", st)
	}
	if srv.streamFramesIn.Value() == 0 || srv.streamFramesOut.Value() == 0 {
		t.Error("frame counters not fed")
	}
	if srv.streamBytesIn.Value() == 0 || srv.streamBytesOut.Value() == 0 {
		t.Error("byte counters not fed")
	}
}

func TestStreamReplayRejectedWithEarlyExit(t *testing.T) {
	srv, addr := streamTestServer(t, nil)
	reply := streamSession(t, addr, "stream-replay-1", replaySession(t, 22))

	resp, early, err := protocol.DecisionFromStreamFrame(reply)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatalf("replay attack accepted: %+v", resp)
	}
	st := srv.Stats()
	if st.Rejected != 1 {
		t.Errorf("stats = %+v, want one rejected request", st)
	}
	var exits int64
	for _, c := range srv.streamEarlyExit {
		exits += c.Value()
	}
	if early && exits == 0 {
		t.Error("early decision not counted in the early-exit series")
	}
	if !early && exits != 0 {
		t.Error("early-exit counted for a full-session decision")
	}
	// A loudspeaker replay carries its magnetic signature from the first
	// chunk; the decision must beat the finish frame.
	if !early {
		t.Error("replay attack not rejected before its upload finished")
	}
}

func TestStreamVersionNegotiationRefusesAncientClient(t *testing.T) {
	_, addr := streamTestServer(t, nil)
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := stream.WriteHandshake(conn, 0); err != nil {
		t.Fatal(err)
	}
	ver, err := stream.ReadHandshake(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 0 {
		t.Fatalf("server negotiated version %d with a version-0 client, want refusal", ver)
	}
	// The server closes after refusing; the next read sees EOF.
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after version refusal")
	}
}

func TestStreamNonProtocolPeerDroppedSilently(t *testing.T) {
	srv, addr := streamTestServer(t, nil)
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An HTTP client hitting the wrong port: bad magic, no session.
	if _, err := conn.Write([]byte("POST /verify HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("non-protocol peer kept a session open")
	}
	if st := srv.Stats(); st.Requests != 0 {
		t.Errorf("bad-magic connection accounted an outcome: %+v", st)
	}
}

func TestStreamShedsWhenOverloaded(t *testing.T) {
	srv, addr := streamTestServer(t, nil, WithMaxInflightVerifies(1))

	// The first connection takes the only slot right after its handshake
	// and then stalls mid-session.
	hold := dialStream(t, addr)
	defer hold.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.verifyInflight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first stream session never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	conn := dialStream(t, addr)
	reply, err := stream.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, retryAfter, env, err := protocol.ErrorFromStreamFrame(reply)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", status)
	}
	if retryAfter != 1 {
		t.Errorf("retry-after = %d, want 1", retryAfter)
	}
	if env.Error == "" {
		t.Error("shed envelope has no error message")
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Errorf("stats = %+v, want one shed", st)
	}
}

func TestStreamDigestMismatchRefused(t *testing.T) {
	srv, addr := streamTestServer(t, nil)
	conn := dialStream(t, addr)
	frames := sessionFrames(t, "stream-tamper-1", genuineSession(t, 23))
	// Corrupt the finish digest: flip one byte of the client's sum.
	fin, err := stream.DecodeFinish(frames[len(frames)-1].Payload)
	if err != nil {
		t.Fatal(err)
	}
	fin.Digest[0] ^= 0x01
	frames[len(frames)-1].Payload = stream.EncodeFinish(fin)
	for _, f := range frames {
		if err := stream.WriteFrame(conn, f); err != nil {
			t.Fatalf("writing %v frame: %v", f.Type, err)
		}
	}
	reply, err := stream.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, _, env, err := protocol.ErrorFromStreamFrame(reply)
	if err != nil {
		t.Fatalf("reply is not an error frame: %v", err)
	}
	if status != http.StatusBadRequest {
		t.Fatalf("digest mismatch status = %d, want 400", status)
	}
	if env.TraceID != "stream-tamper-1" {
		t.Errorf("envelope trace ID = %q", env.TraceID)
	}
	st := srv.Stats()
	if st.Errors != 1 || st.Accepted != 0 {
		t.Errorf("stats = %+v, want one error and no verdicts", st)
	}
}

func TestStreamVerifyTimeoutMapsToDeadline(t *testing.T) {
	srv, addr := streamTestServer(t, nil, WithVerifyTimeout(time.Nanosecond))
	conn := dialStream(t, addr)
	for _, f := range sessionFrames(t, "stream-deadline-1", genuineSession(t, 24)) {
		if err := stream.WriteFrame(conn, f); err != nil {
			// The server may cut the stream as soon as it refuses; late
			// writes racing the close are expected.
			break
		}
	}
	reply, err := stream.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, _, env, err := protocol.ErrorFromStreamFrame(reply)
	if err != nil {
		t.Fatalf("reply is not an error frame: %v", err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("deadline status = %d, want 503", status)
	}
	if env.Error == "" {
		t.Error("deadline envelope has no message")
	}
	st := srv.Stats()
	if st.DeadlineExceeded != 1 {
		t.Errorf("stats = %+v, want one deadline_exceeded", st)
	}
	if st.Accepted != 0 && st.Rejected != 0 {
		t.Error("expired deadline fabricated a verdict")
	}
}

func TestStreamFrameTimeoutReleasesStalledSession(t *testing.T) {
	srv, addr := streamTestServer(t, nil, WithStreamFrameTimeout(100*time.Millisecond))
	// Synthesize the session before dialing: the per-frame deadline starts
	// at the handshake, and session synthesis can outlast it under -race.
	frames := sessionFrames(t, "stream-stall-1", genuineSession(t, 25))
	conn := dialStream(t, addr)
	// Send only the hello, then stall past the per-frame deadline.
	if err := stream.WriteFrame(conn, frames[0]); err != nil {
		t.Fatal(err)
	}
	reply, err := stream.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("stalled session got no error frame: %v", err)
	}
	status, _, _, err := protocol.ErrorFromStreamFrame(reply)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest {
		t.Fatalf("stall status = %d, want 400", status)
	}
	if st := srv.Stats(); st.Errors != 1 {
		t.Errorf("stats = %+v, want one error", st)
	}
}
