package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
	"voiceguard/internal/stream"
	"voiceguard/internal/telemetry"
)

// Streaming metric names exported on /metrics.
const (
	// MetricStreamFrames counts protocol frames by direction ("in"/"out").
	MetricStreamFrames = "voiceguard_stream_frames_total"
	// MetricStreamBytes counts protocol bytes on the wire by direction.
	MetricStreamBytes = "voiceguard_stream_bytes_total"
	// MetricStreamEarlyExit counts sessions rejected before their upload
	// finished, labeled by the deciding stage.
	MetricStreamEarlyExit = "voiceguard_stream_early_exit_total"
	// MetricStreamTTD is the stream path's time-to-decision histogram:
	// first handshake byte to verdict, upload included — the number the
	// HTTP path's pipeline latency cannot capture because its upload
	// happens before the pipeline starts.
	MetricStreamTTD = "voiceguard_stream_time_to_decision_seconds"
)

// DefStreamFrameTimeout bounds the wait for each client frame: a stalled
// or vanished uploader releases its connection (and its admission slot)
// after this long, independent of the whole-session verify timeout.
const DefStreamFrameTimeout = 30 * time.Second

// WithStreamFrameTimeout overrides the per-frame read deadline of the
// streaming listener (default DefStreamFrameTimeout).
func WithStreamFrameTimeout(d time.Duration) Option {
	return func(s *Server) { s.streamFrameTimeout = d }
}

// initStream registers the streaming metrics; called from New so the
// series exist (at zero) whether or not a stream listener ever starts.
func (s *Server) initStream() {
	if s.streamFrameTimeout == 0 {
		s.streamFrameTimeout = DefStreamFrameTimeout
	}
	r := s.registry
	s.streamFramesIn = r.Counter(MetricStreamFrames, telemetry.Labels{"dir": "in"})
	s.streamFramesOut = r.Counter(MetricStreamFrames, telemetry.Labels{"dir": "out"})
	r.SetHelp(MetricStreamFrames, "streaming protocol frames by direction")
	s.streamBytesIn = r.Counter(MetricStreamBytes, telemetry.Labels{"dir": "in"})
	s.streamBytesOut = r.Counter(MetricStreamBytes, telemetry.Labels{"dir": "out"})
	r.SetHelp(MetricStreamBytes, "streaming protocol bytes by direction")
	s.streamEarlyExit = make(map[core.Stage]*telemetry.Counter)
	for _, st := range []core.Stage{
		core.StageDistance, core.StageSoundField, core.StageLoudspeaker, core.StageSpeakerID,
	} {
		s.streamEarlyExit[st] = r.Counter(MetricStreamEarlyExit, telemetry.Labels{"stage": st.MetricName()})
	}
	r.SetHelp(MetricStreamEarlyExit, "stream sessions rejected before upload completed, by deciding stage")
	s.streamTTD = r.Histogram(MetricStreamTTD, nil, nil)
	r.SetHelp(MetricStreamTTD, "stream time to decision (handshake to verdict, upload included)")
	s.streamConns = make(map[net.Conn]struct{})
}

// StreamAddr returns the address ListenAndServeStream bound, or ""
// before the stream listener exists.
func (s *Server) StreamAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streamAddr
}

// ListenAndServeStream starts the binary streaming listener on addr and
// blocks until Shutdown or listener failure, reporting the bound address
// through ready exactly like ListenAndServe.
func (s *Server) ListenAndServeStream(addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: stream listening on %s: %w", addr, err)
	}
	bound := ln.Addr().String()
	s.mu.Lock()
	s.streamAddr = bound
	s.mu.Unlock()
	if ready != nil {
		select {
		case ready <- bound:
		default:
		}
	}
	return s.ServeStream(ln)
}

// ServeStream accepts streaming-protocol connections on ln until
// Shutdown. Each connection carries exactly one verification session.
// Returns http.ErrServerClosed after a clean shutdown, mirroring Serve.
func (s *Server) ServeStream(ln net.Listener) error {
	s.mu.Lock()
	if s.streamShutdown {
		s.mu.Unlock()
		ln.Close()
		return http.ErrServerClosed
	}
	s.streamLn = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.streamShutdown
			s.mu.Unlock()
			if closed {
				return http.ErrServerClosed
			}
			return fmt.Errorf("server: stream accept: %w", err)
		}
		s.mu.Lock()
		s.streamConns[conn] = struct{}{}
		s.mu.Unlock()
		s.streamWG.Add(1)
		go func() {
			defer s.streamWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.streamConns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleStreamConn(conn)
		}()
	}
}

// shutdownStream closes the streaming listener and drains in-flight
// sessions until ctx expires, then force-closes their connections (the
// per-frame deadline guarantees the handlers notice promptly).
func (s *Server) shutdownStream(ctx context.Context) {
	s.mu.Lock()
	s.streamShutdown = true
	ln := s.streamLn
	s.mu.Unlock()
	if ln == nil {
		return
	}
	ln.Close()
	done := make(chan struct{})
	go func() {
		s.streamWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.streamConns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// readStreamFrame reads one frame under the per-frame deadline, counting
// it toward the ingress metrics.
func (s *Server) readStreamFrame(conn net.Conn) (stream.Frame, error) {
	if err := conn.SetReadDeadline(time.Now().Add(s.streamFrameTimeout)); err != nil {
		return stream.Frame{}, fmt.Errorf("server: arming frame deadline: %w", err)
	}
	f, err := stream.ReadFrame(conn, 0)
	if err != nil {
		return stream.Frame{}, err
	}
	s.streamFramesIn.Inc()
	s.streamBytesIn.Add(f.WireSize())
	return f, nil
}

// writeStreamFrame writes one frame under the per-frame deadline,
// counting it toward the egress metrics.
func (s *Server) writeStreamFrame(conn net.Conn, f stream.Frame) error {
	if err := conn.SetWriteDeadline(time.Now().Add(s.streamFrameTimeout)); err != nil {
		return fmt.Errorf("server: arming frame write deadline: %w", err)
	}
	if err := stream.WriteFrame(conn, f); err != nil {
		return err
	}
	s.streamFramesOut.Inc()
	s.streamBytesOut.Add(f.WireSize())
	return nil
}

// sendStreamError answers a refused session with the same JSON envelope
// writeJSONError sends on HTTP, wrapped in an error frame.
func (s *Server) sendStreamError(conn net.Conn, traceID string, status, retryAfterSec int, msg string) {
	f, err := protocol.StreamError(status, retryAfterSec, &protocol.VerifyResponse{Error: msg, TraceID: traceID})
	if err != nil {
		s.logger.Error("encoding stream error frame", "err", err, "trace_id", traceID)
		return
	}
	if err := s.writeStreamFrame(conn, f); err != nil {
		s.logger.Warn("writing stream error frame", "err", err, "trace_id", traceID)
	}
}

// handleStreamConn speaks one streaming verification session: handshake,
// admission, incremental evaluation frame by frame, one decision or
// error frame back. Outcome accounting mirrors handleVerify — every
// session that completes the handshake lands in exactly one of
// accepted/rejected/errored/deadlined/shed, so the Stats invariant holds
// across both transports.
func (s *Server) handleStreamConn(conn net.Conn) {
	if err := conn.SetDeadline(time.Now().Add(s.streamFrameTimeout)); err != nil {
		return
	}
	clientVer, err := stream.ReadHandshake(conn)
	if err != nil {
		// Not a protocol peer (port scan, HTTP client): drop silently,
		// nothing to account.
		return
	}
	ver := stream.NegotiateVersion(clientVer)
	if err := stream.WriteHandshake(conn, ver); err != nil || ver == 0 {
		return
	}

	start := time.Now()
	// The streaming session outlives any single read, so its context is
	// rooted here and bounded by the verify timeout when configured.
	//lint:allow ctxfirst connection handler owns the session lifetime; there is no inbound request context
	ctx := context.Background()
	if s.verifyTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.verifyTimeout)
		defer cancel()
	}

	// Admission control before any session state exists, as on HTTP.
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed.Inc()
			s.observeOutcome(telemetry.OutcomeShed, 0)
			s.logger.Warn("stream verify shed", "max_inflight", s.maxInflight)
			s.sendStreamError(conn, "", http.StatusTooManyRequests, 1,
				fmt.Sprintf("overloaded: %d verifications already in flight", s.maxInflight))
			return
		}
	}
	s.verifyInflight.Add(1)
	defer s.verifyInflight.Add(-1)

	fail := func(traceID string, status int, msg string) {
		s.errored.Inc()
		s.observeOutcome(telemetry.OutcomeError, time.Since(start))
		s.logger.Warn("stream verify failed", "trace_id", traceID, "status", status, "err", msg)
		s.sendStreamError(conn, traceID, status, 0, msg)
	}

	// The first frame must be the hello: it names the session before any
	// evidence arrives.
	first, err := s.readStreamFrame(conn)
	if err != nil {
		fail("", http.StatusBadRequest, fmt.Sprintf("reading hello frame: %v", err))
		return
	}
	if first.Type != stream.TypeHello {
		fail("", http.StatusBadRequest, fmt.Sprintf("first frame is %v, want hello", first.Type))
		return
	}
	hello, err := stream.DecodeHello(first.Payload)
	if err != nil {
		fail("", http.StatusBadRequest, fmt.Sprintf("decoding hello: %v", err))
		return
	}
	verifier, err := s.system.NewStreamVerifier(hello.TraceID)
	if err != nil {
		fail(hello.TraceID, http.StatusInternalServerError, fmt.Sprintf("opening stream verification: %v", err))
		return
	}
	traceID := verifier.TraceID()
	digest := stream.NewSessionDigest()
	digest.Add(first)
	if _, err := protocol.ApplyStreamFrame(ctx, verifier, first); err != nil {
		s.streamSessionError(conn, verifier, traceID, start, err)
		return
	}

	frames := uint32(1)
	for {
		f, err := s.readStreamFrame(conn)
		if err != nil {
			verifier.Abandon("error")
			fail(traceID, http.StatusBadRequest, fmt.Sprintf("reading frame: %v", err))
			return
		}
		if f.Type == stream.TypeFinish {
			fin, err := stream.DecodeFinish(f.Payload)
			if err != nil {
				verifier.Abandon("error")
				fail(traceID, http.StatusBadRequest, fmt.Sprintf("decoding finish: %v", err))
				return
			}
			// Raw-byte digest comparison: the client's sum must reproduce
			// over the frames actually received, or the session was
			// corrupted/reordered in transit.
			if fin.Digest != digest.Sum() || fin.Frames != frames {
				verifier.Abandon("error")
				fail(traceID, http.StatusBadRequest, fmt.Sprintf(
					"session digest mismatch over %d frames", frames))
				return
			}
			decision, err := verifier.Finish(ctx)
			if err != nil {
				s.streamSessionError(conn, verifier, traceID, start, err)
				return
			}
			s.respondStream(conn, &decision, false, start)
			return
		}
		digest.Add(f)
		frames++
		decision, err := protocol.ApplyStreamFrame(ctx, verifier, f)
		if err != nil {
			s.streamSessionError(conn, verifier, traceID, start, err)
			return
		}
		if decision != nil {
			s.respondStream(conn, decision, true, start)
			s.drainStream(conn)
			return
		}
	}
}

// streamSessionError maps an evaluator error onto the stream the way
// handleVerify maps one onto HTTP: deadline/cancellation becomes an
// honest 503 (deadline_exceeded outcome, never a fabricated rejection),
// anything else a 400-class error.
func (s *Server) streamSessionError(conn net.Conn, v *core.StreamVerifier, traceID string, start time.Time, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.deadlined.Inc()
		s.observeOutcome(telemetry.OutcomeDeadlineExceeded, time.Since(start))
		s.logger.Warn("stream verify deadline exceeded", "trace_id", traceID,
			"timeout", s.verifyTimeout, "err", err)
		s.sendStreamError(conn, traceID, http.StatusServiceUnavailable, 0,
			fmt.Sprintf("verification abandoned: %v", err))
		return
	}
	v.Abandon("error")
	s.errored.Inc()
	s.observeOutcome(telemetry.OutcomeError, time.Since(start))
	s.logger.Warn("stream verify failed", "trace_id", traceID, "err", err)
	s.sendStreamError(conn, traceID, http.StatusBadRequest, 0, err.Error())
}

// respondStream accounts a decision and answers with a decision frame
// (FlagEarly when the verdict beat the client's finish frame).
func (s *Server) respondStream(conn net.Conn, decision *core.Decision, early bool, start time.Time) {
	ttd := time.Since(start)
	if decision.Accepted {
		s.accepted.Inc()
		s.observeOutcome(telemetry.OutcomeAccepted, ttd)
	} else {
		s.rejected.Inc()
		s.observeOutcome(telemetry.OutcomeRejected, ttd)
	}
	s.observeDecision(decision)
	s.streamTTD.ObserveDurationExemplar(ttd, decision.TraceID)
	if early && !decision.Accepted {
		if c, ok := s.streamEarlyExit[decision.FailedStage]; ok {
			c.Inc()
		}
	}
	for _, st := range decision.Stages {
		if h, ok := s.stageHist[st.Stage]; ok {
			h.ObserveDurationExemplar(st.Elapsed, decision.TraceID)
		}
	}
	s.logger.Info("stream verify",
		"trace_id", decision.TraceID,
		"decision", decision.String(),
		"early_exit", early,
		"time_to_decision", ttd,
	)
	f, err := protocol.StreamDecision(protocol.DecisionToResponse(*decision), early)
	if err != nil {
		s.logger.Error("encoding stream decision", "err", err, "trace_id", decision.TraceID)
		return
	}
	if err := s.writeStreamFrame(conn, f); err != nil {
		s.logger.Warn("writing stream decision", "err", err, "trace_id", decision.TraceID)
	}
}

// drainStream consumes frames still in flight after an early decision so
// the client's writes do not error mid-upload; the per-frame deadline
// and the finish frame (or the client closing on receipt of the
// decision) bound the drain.
func (s *Server) drainStream(conn net.Conn) {
	for {
		f, err := s.readStreamFrame(conn)
		if err != nil || f.Type == stream.TypeFinish {
			return
		}
	}
}
