package server

// Cross-protocol parity, observed end to end: the same session replayed
// over HTTP/JSON and over the binary stream must yield bit-identical
// verdicts, stage scores, and recorded trace evidence. Runs under -race
// in CI — the streaming path shares the pipeline with concurrent HTTP
// traffic and must stay data-race free.

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/telemetry"
)

// dualProtocolServer runs one server on both transports and returns the
// HTTP base URL and the stream address.
func dualProtocolServer(t *testing.T) (*Server, string, string) {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil, WithDecisionEndpoints())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServeStream("127.0.0.1:0", ready) }()
	var streamAddr string
	select {
	case streamAddr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("stream listener never ready")
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, ts.URL, streamAddr
}

// stageEvidence extracts the float attributes of every stage span,
// keyed stage/attr — the evidence the trace recorded while deciding.
func stageEvidence(t *testing.T, rec *telemetry.TraceRecord) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, sp := range rec.Spans {
		if len(sp.Name) < len(telemetry.StageSpanName) || sp.Name[:len(telemetry.StageSpanName)] != telemetry.StageSpanName {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Kind == telemetry.KindFloat {
				out[sp.Name+"/"+a.Key] = a.Float
			}
		}
	}
	return out
}

func TestStreamAndHTTPVerdictsBitIdentical(t *testing.T) {
	srv, httpURL, streamAddr := dualProtocolServer(t)
	session := genuineSession(t, 61)
	c := client.New(httpURL)

	httpRes, err := c.VerifyContext(context.Background(), session)
	if err != nil {
		t.Fatal(err)
	}
	streamRes, err := c.VerifyStream(context.Background(), streamAddr, session)
	if err != nil {
		t.Fatal(err)
	}

	h, s := httpRes.Response, streamRes.Response
	if h.Accepted != s.Accepted {
		t.Fatalf("verdicts differ: http=%v stream=%v", h.Accepted, s.Accepted)
	}
	if !h.Accepted {
		t.Fatalf("genuine session rejected on both protocols: %+v", h)
	}
	if len(h.Stages) != len(s.Stages) {
		t.Fatalf("stage counts differ: http=%d stream=%d", len(h.Stages), len(s.Stages))
	}
	for i := range h.Stages {
		hs, ss := h.Stages[i], s.Stages[i]
		if hs.Stage != ss.Stage || hs.Pass != ss.Pass {
			t.Errorf("stage %d: http=%s/%v stream=%s/%v", i, hs.Stage, hs.Pass, ss.Stage, ss.Pass)
		}
		if math.Float64bits(hs.Score) != math.Float64bits(ss.Score) {
			t.Errorf("stage %s score bits differ: http=%x stream=%x",
				hs.Stage, math.Float64bits(hs.Score), math.Float64bits(ss.Score))
		}
		if hs.Detail != ss.Detail {
			t.Errorf("stage %s detail differs: %q vs %q", hs.Stage, hs.Detail, ss.Detail)
		}
	}

	// The recorded trace evidence — every float attribute on every stage
	// span — is bitwise identical across transports.
	httpTrace := srv.FlightRecorder().Find(httpRes.TraceID)
	streamTrace := srv.FlightRecorder().Find(streamRes.TraceID)
	if httpTrace == nil || streamTrace == nil {
		t.Fatalf("traces not recorded: http=%v stream=%v", httpTrace != nil, streamTrace != nil)
	}
	he, se := stageEvidence(t, httpTrace), stageEvidence(t, streamTrace)
	if len(he) == 0 {
		t.Fatal("HTTP trace recorded no stage evidence")
	}
	if len(he) != len(se) {
		t.Fatalf("evidence key counts differ: http=%d stream=%d", len(he), len(se))
	}
	for k, hv := range he {
		sv, ok := se[k]
		if !ok {
			t.Errorf("stream trace missing evidence %s", k)
			continue
		}
		if math.Float64bits(hv) != math.Float64bits(sv) {
			t.Errorf("evidence %s differs: http=%x stream=%x", k, math.Float64bits(hv), math.Float64bits(sv))
		}
	}
}

func TestStreamAndHTTPAgreeOnReplayAttack(t *testing.T) {
	srv, httpURL, streamAddr := dualProtocolServer(t)
	replay := replaySession(t, 62)
	c := client.New(httpURL)

	httpRes, err := c.VerifyContext(context.Background(), replay)
	if err != nil {
		t.Fatal(err)
	}
	streamRes, err := c.VerifyStream(context.Background(), streamAddr, replay)
	if err != nil {
		t.Fatal(err)
	}
	if httpRes.Response.Accepted || streamRes.Response.Accepted {
		t.Fatalf("replay accepted: http=%v stream=%v",
			httpRes.Response.Accepted, streamRes.Response.Accepted)
	}
	// The stream decided early, and said so in the metrics.
	if !streamRes.EarlyExit {
		t.Error("stream did not reject the replay before upload finished")
	}
	var exits int64
	for _, ctr := range srv.streamEarlyExit {
		exits += ctr.Value()
	}
	if exits == 0 {
		t.Error("early-exit counter still zero after an early rejection")
	}
}
