package server

// Satellite regression tests: oversized uploads answer 413 with the JSON
// envelope on every decode route, and error outcomes carry their real
// latency without ever polluting the latency-SLO windows.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

// gzipBomb builds a small wire payload that inflates past the decoded
// payload cap — the cheap way to exercise the oversized path without a
// 64 MiB upload.
func gzipBomb(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zeros := make([]byte, 1<<20)
	for written := int64(0); written <= protocol.MaxPayloadBytes; written += int64(len(zeros)) {
		if _, err := zw.Write(zeros); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOversizedUploadsAnswer413(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The enroll route refuses before decoding unless an identity stage
	// exists; attach a small one so its size cap is reachable too.
	roster := speech.NewRoster(2, 901)
	utts, err := roster.Generate(speech.CorpusConfig{Sessions: 1, UtterancesPerSession: 2, Digits: 4})
	if err != nil {
		t.Fatal(err)
	}
	bg := make(map[string][][]*audio.Signal)
	for spk, us := range speech.BySpeaker(utts) {
		var sess []*audio.Signal
		for _, u := range us {
			sess = append(sess, u.Audio)
		}
		bg[spk] = [][]*audio.Signal{sess}
	}
	verifier, err := core.TrainSpeakerVerifier(bg, core.SpeakerVerifierConfig{Components: 4, Seed: 901})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachIdentity(verifier)
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	bomb := gzipBomb(t)

	for _, route := range []string{"verify", "enroll", "voiceprint"} {
		resp, err := http.Post(ts.URL+"/"+route, "application/gzip", bytes.NewReader(bomb))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("/%s status = %d, want 413", route, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("/%s Content-Type = %q, want application/json", route, ct)
		}
		resp.Body.Close()
		if got := srv.tooLarge[route].Value(); got != 1 {
			t.Errorf("too-large counter for %s = %d, want 1", route, got)
		}
	}
	// The oversized verify attempt is an error outcome, never a verdict.
	st := srv.Stats()
	if st.Errors == 0 || st.Accepted != 0 || st.Rejected != 0 {
		t.Errorf("stats = %+v, want errors only", st)
	}
}

func TestRequestTooLargeClassifier(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("decoding: %w", &http.MaxBytesError{Limit: 1}), true},
		{fmt.Errorf("reading: %w", protocol.ErrTooLarge), true},
		{protocol.ErrTooLarge, true},
		{fmt.Errorf("protocol: opening gzip stream: unexpected EOF"), false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := requestTooLarge(tc.err); got != tc.want {
			t.Errorf("requestTooLarge(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestErrorOutcomeLatencyStaysOutOfSLOWindows pins the fail-path
// accounting: a refused request counts an error outcome (with its real
// latency attached to the observation), and the latency-SLO counters —
// which only decided verifies may feed — stay untouched.
func TestErrorOutcomeLatencyStaysOutOfSLOWindows(t *testing.T) {
	clock := newDriftClock()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil,
		WithWindowConfig(telemetry.WindowConfig{Now: clock.Now, LatencyGoodUnder: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/verify", "application/gzip", strings.NewReader("not gzip"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status = %d, want 400", resp.StatusCode)
	}

	outcomes, latOK, latTotal, latSum := srv.Windows().OutcomeTotals(5 * time.Minute)
	if outcomes[telemetry.OutcomeError] != 1 {
		t.Errorf("error outcomes = %d, want 1", outcomes[telemetry.OutcomeError])
	}
	if latTotal != 0 || latOK != 0 || latSum != 0 {
		t.Errorf("error latency leaked into SLO windows: ok=%d total=%d sum=%d", latOK, latTotal, latSum)
	}

	// A decided verify still feeds the latency counters.
	srv.Windows().ObserveVerify(telemetry.OutcomeAccepted, 10*time.Millisecond)
	_, latOK, latTotal, _ = srv.Windows().OutcomeTotals(5 * time.Minute)
	if latTotal != 1 || latOK != 1 {
		t.Errorf("decided verify not counted: ok=%d total=%d", latOK, latTotal)
	}
}
