package server

// Observability tests: /metrics exposition after real traffic, trace-ID
// propagation through response and log line, the JSON readiness probe,
// graceful shutdown, and counter/histogram consistency under concurrent
// load (run with -race).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/speech"
)

// scrapeMetrics fetches /metrics and parses the exposition into a
// series → value map (HELP/TYPE lines skipped).
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Strip a trailing OpenMetrics exemplar (` # {...} value ts`) so
		// the value parse below sees the series value.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// genuinePayload builds one encoded genuine session upload.
func genuinePayload(t *testing.T, seed int64) []byte {
	t.Helper()
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(seed)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestMetricsEndpointAfterTraffic(t *testing.T) {
	srv, ts := testServer(t)

	// Drive one genuine accept, one replay reject, one garbage error.
	c := client.New(ts.URL)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(21)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(session); err != nil {
		t.Fatal(err)
	}
	rec, err := attack.Record(victim, "472913", 22)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := attack.Replay(rec, device.Catalog()[0], attack.Scenario{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(replay); err != nil {
		t.Fatal(err)
	}
	if code := postVerify(t, ts.URL, []byte("junk")); code != http.StatusBadRequest {
		t.Fatalf("garbage status = %d", code)
	}

	m := scrapeMetrics(t, ts.URL)

	// One histogram series per paper stage, registered even before any
	// sample lands in it.
	for _, stage := range []string{"distance", "soundfield", "loudspeaker", "identity"} {
		key := fmt.Sprintf(`voiceguard_stage_latency_seconds_count{stage=%q}`, stage)
		if _, ok := m[key]; !ok {
			t.Errorf("missing stage series %s", key)
		}
	}
	// No ASV attached: stages 1–3 saw the two decided sessions, the
	// identity stage none.
	st := srv.Stats()
	decided := float64(st.Accepted + st.Rejected)
	for _, stage := range []string{"distance"} {
		key := fmt.Sprintf(`voiceguard_stage_latency_seconds_count{stage=%q}`, stage)
		if m[key] != decided {
			t.Errorf("%s = %v, want %v", key, m[key], decided)
		}
	}
	if got := m[`voiceguard_stage_latency_seconds_count{stage="identity"}`]; got != 0 {
		t.Errorf("identity stage count = %v, want 0", got)
	}
	// Outcome counters match /stats.
	if got := m[`voiceguard_verify_total{outcome="accepted"}`]; got != float64(st.Accepted) {
		t.Errorf("accepted = %v, stats %d", got, st.Accepted)
	}
	if got := m[`voiceguard_verify_total{outcome="rejected"}`]; got != float64(st.Rejected) {
		t.Errorf("rejected = %v, stats %d", got, st.Rejected)
	}
	if got := m[`voiceguard_verify_total{outcome="error"}`]; got != float64(st.Errors) {
		t.Errorf("error = %v, stats %d", got, st.Errors)
	}
	// Pipeline histogram counted the decided sessions.
	if got := m["voiceguard_pipeline_latency_seconds_count"]; got != decided {
		t.Errorf("pipeline count = %v, want %v", got, decided)
	}
	// Per-route HTTP metrics counted every /verify call (the /metrics
	// scrape itself is on a different route).
	if got := m[`voiceguard_http_request_duration_seconds_count{route="/verify"}`]; got != float64(st.Requests) {
		t.Errorf("http duration count = %v, want %d", got, st.Requests)
	}
	if got := m[`voiceguard_http_requests_total{code="200",route="/verify"}`]; got != decided {
		t.Errorf("http 200 count = %v, want %v", got, decided)
	}
	if got := m[`voiceguard_http_requests_total{code="400",route="/verify"}`]; got != 1 {
		t.Errorf("http 400 count = %v, want 1", got)
	}
}

func TestTraceIDInResponseHeaderAndLog(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&syncWriter{w: &logBuf, mu: &logMu}, nil))
	srv, err := New(sys, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	res, err := client.New(ts.URL).Verify(mustGenuine(t, 31))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("client surfaced no trace ID")
	}
	if res.Response.TraceID != res.TraceID {
		t.Errorf("response trace_id = %q, header trace = %q", res.Response.TraceID, res.TraceID)
	}
	if res.Response.ElapsedUS <= 0 {
		t.Error("response missing total elapsed_us")
	}
	if res.ServerElapsed <= 0 {
		t.Error("client did not surface server elapsed")
	}
	if len(res.Response.Stages) == 0 {
		t.Fatal("no stage diagnostics")
	}
	for i, st := range res.Response.Stages {
		if st.ElapsedUS <= 0 {
			t.Errorf("stage %d (%s) missing elapsed_us", i, st.Stage)
		}
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "trace_id="+res.TraceID) {
		t.Errorf("structured log missing trace_id=%s:\n%s", res.TraceID, logged)
	}
	if !strings.Contains(logged, "stage_distance=") {
		t.Errorf("structured log missing per-stage timing:\n%s", logged)
	}
}

// syncWriter serializes writes from concurrent request handlers.
type syncWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func mustGenuine(t *testing.T, seed int64) *core.SessionData {
	t.Helper()
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(seed)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return session
}

func TestClientRequestIDPropagated(t *testing.T) {
	// A caller-supplied X-Request-ID must come back on response, body and
	// decision rather than being replaced.
	_, ts := testServer(t)
	payload := genuinePayload(t, 33)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/verify", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "caller-chosen-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "caller-chosen-id-1" {
		t.Errorf("echoed ID = %q", got)
	}
	var vr protocol.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.TraceID != "caller-chosen-id-1" {
		t.Errorf("body trace_id = %q", vr.TraceID)
	}
}

func TestHealthzReportsConfiguredStages(t *testing.T) {
	// Distance disabled: the probe must say so.
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1, DisableDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Errorf("status = %q", hr.Status)
	}
	want := map[string]bool{"distance": false, "soundfield": true, "loudspeaker": true, "identity": false}
	for stage, expect := range want {
		if hr.Stages[stage] != expect {
			t.Errorf("stage %s = %v, want %v", stage, hr.Stages[stage], expect)
		}
	}
}

func TestReadOnlyEndpointsRejectNonGET(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestMetricsEndpointCanBeDisabled(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil, WithMetricsEndpoint(false))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled /metrics = %d, want 404", resp.StatusCode)
	}
}

func TestPprofOptional(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := New(sys, nil, WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	tsPlain := httptest.NewServer(plain.Handler())
	t.Cleanup(tsPlain.Close)
	tsProf := httptest.NewServer(profiled.Handler())
	t.Cleanup(tsProf.Close)

	resp, err := http.Get(tsPlain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(tsProf.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with opt-in = %d, want 200", resp.StatusCode)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// The server answers while up.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// Further connections are refused.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
	// Shutdown with nothing running is a no-op.
	idle, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := idle.Shutdown(context.Background()); err != nil {
		t.Errorf("idle shutdown: %v", err)
	}
}

// TestConcurrentLoadCounterConsistency is the satellite load test: 8
// workers × 50 requests, a mix of valid sessions and malformed uploads.
// Counters must satisfy Requests == Accepted+Rejected+Errors, the
// /verify route histogram must have counted every request, and every
// request must have received a unique trace ID.
func TestConcurrentLoadCounterConsistency(t *testing.T) {
	srv, ts := testServer(t)
	valid := genuinePayload(t, 41)

	const workers = 8
	const perWorker = 50
	const validPerWorker = 2 // full-pipeline verifies are expensive; keep wall time sane

	type outcome struct {
		traceID string
		status  int
	}
	results := make(chan outcome, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload := []byte(fmt.Sprintf("garbage-%d-%d", w, i))
				if i < validPerWorker {
					payload = valid
				}
				resp, err := http.Post(ts.URL+"/verify", "application/gzip", bytes.NewReader(payload))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results <- outcome{traceID: resp.Header.Get(RequestIDHeader), status: resp.StatusCode}
			}
		}(w)
	}
	wg.Wait()
	close(results)

	const total = workers * perWorker
	seen := make(map[string]bool)
	n := 0
	for out := range results {
		n++
		if out.traceID == "" {
			t.Error("response missing X-Request-ID")
			continue
		}
		if seen[out.traceID] {
			t.Errorf("trace ID %q served twice", out.traceID)
		}
		seen[out.traceID] = true
	}
	if n != total {
		t.Fatalf("completed %d requests, want %d", n, total)
	}

	st := srv.Stats()
	if st.Requests != st.Accepted+st.Rejected+st.Errors {
		t.Errorf("counter invariant broken: %+v", st)
	}
	if st.Requests != total {
		t.Errorf("requests = %d, want %d", st.Requests, total)
	}
	if got := st.Accepted + st.Rejected; got != workers*validPerWorker {
		t.Errorf("decided = %d, want %d", got, workers*validPerWorker)
	}
	if st.Errors != total-workers*validPerWorker {
		t.Errorf("errors = %d, want %d", st.Errors, total-workers*validPerWorker)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := m[`voiceguard_http_request_duration_seconds_count{route="/verify"}`]; got != float64(total) {
		t.Errorf("route histogram count = %v, want %d", got, total)
	}
	var statusSum float64
	for key, v := range m {
		if strings.HasPrefix(key, `voiceguard_http_requests_total{`) && strings.Contains(key, `route="/verify"`) {
			statusSum += v
		}
	}
	if statusSum != float64(total) {
		t.Errorf("status counter sum = %v, want %d", statusSum, total)
	}
	if got := m["voiceguard_pipeline_latency_seconds_count"]; got != float64(workers*validPerWorker) {
		t.Errorf("pipeline histogram count = %v, want %d", got, workers*validPerWorker)
	}
}
