package server

// Decision flight-recorder endpoints: /debug/decisions lists the retained
// decision traces, /debug/decisions.jsonl exports them as JSONL for
// cmd/voiceguard-trace, and /debug/trace/{id} returns one full
// evidence-carrying span tree. All three read the lock-free ring without
// blocking the serving path.

import (
	"encoding/json"
	"net/http"
	"strings"
)

// TraceRoute is the URL prefix of the single-trace endpoint; the trace ID
// follows it.
const TraceRoute = "/debug/trace/"

// DecisionsRoute lists retained decision summaries.
const DecisionsRoute = "/debug/decisions"

// DecisionsJSONLRoute exports retained decision traces as JSONL.
const DecisionsJSONLRoute = "/debug/decisions.jsonl"

// handleDecisions serves the retained decision summaries, newest first.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	records := s.recorder.Snapshot()
	summaries := make([]any, 0, len(records))
	for i := len(records) - 1; i >= 0; i-- {
		summaries = append(summaries, records[i].Summary())
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(summaries); err != nil {
		s.logger.Error("encoding decision summaries", "err", err)
	}
}

// handleDecisionsJSONL streams the retained traces oldest-first, one JSON
// record per line.
func (s *Server) handleDecisionsJSONL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	if err := s.recorder.WriteJSONL(w); err != nil {
		s.logger.Error("writing decision JSONL", "err", err)
	}
}

// handleTrace serves one retained trace's full span tree by ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, TraceRoute)
	if id == "" {
		http.Error(w, "trace ID required", http.StatusBadRequest)
		return
	}
	rec := s.recorder.Find(id)
	if rec == nil {
		http.Error(w, "trace not retained (evicted or never recorded)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(rec); err != nil {
		s.logger.Error("encoding trace", "err", err, "trace_id", id)
	}
}
