package server

// Decision flight-recorder endpoints: /debug/decisions lists the retained
// decision traces, /debug/decisions.jsonl exports them as JSONL for
// cmd/voiceguard-trace, and /debug/trace/{id} returns one full
// evidence-carrying span tree. All three read the lock-free ring without
// blocking the serving path.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"voiceguard/internal/telemetry"
)

// TraceRoute is the URL prefix of the single-trace endpoint; the trace ID
// follows it.
const TraceRoute = "/debug/trace/"

// DecisionsRoute lists retained decision summaries.
const DecisionsRoute = "/debug/decisions"

// DecisionsJSONLRoute exports retained decision traces as JSONL.
const DecisionsJSONLRoute = "/debug/decisions.jsonl"

// parseLimit reads the optional ?limit=N query parameter bounding how
// many of the newest retained traces a listing returns. Absent or
// empty means unbounded (0); anything non-numeric or negative is a
// client error.
func parseLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("server: bad limit %q: want a non-negative integer", raw)
	}
	return n, nil
}

// handleDecisions serves the retained decision summaries, newest first.
// ?limit=N keeps only the newest N.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	records := s.recorder.SnapshotRecent(limit)
	summaries := make([]any, 0, len(records))
	for i := len(records) - 1; i >= 0; i-- {
		summaries = append(summaries, records[i].Summary())
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(summaries); err != nil {
		s.logger.Error("encoding decision summaries", "err", err)
	}
}

// handleDecisionsJSONL streams retained traces oldest-first, one JSON
// record per line. ?limit=N keeps only the newest N (still emitted
// oldest-first, so the dump stays chronologically ordered for
// voiceguard-trace).
func (s *Server) handleDecisionsJSONL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	if err := telemetry.WriteJSONL(w, s.recorder.SnapshotRecent(limit)); err != nil {
		s.logger.Error("writing decision JSONL", "err", err)
	}
}

// handleTrace serves one retained trace's full span tree by ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, TraceRoute)
	if id == "" {
		http.Error(w, "trace ID required", http.StatusBadRequest)
		return
	}
	rec := s.recorder.Find(id)
	if rec == nil {
		http.Error(w, "trace not retained (evicted or never recorded)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(rec); err != nil {
		s.logger.Error("encoding trace", "err", err, "trace_id", id)
	}
}
