package server

// Failure-injection tests: malformed and adversarial uploads must yield
// clean HTTP errors, never panics or accepts.

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"testing/quick"

	"voiceguard/internal/attack"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/speech"
)

func postVerify(t *testing.T, url string, payload []byte) int {
	t.Helper()
	resp, err := http.Post(url+"/verify", "application/gzip", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

func TestVerifyRandomGarbageNeverPanics(t *testing.T) {
	_, ts := testServer(t)
	f := func(junk []byte) bool {
		code := postVerify(t, ts.URL, junk)
		return code == http.StatusBadRequest || code == http.StatusUnprocessableEntity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// corruptedSession returns a valid session request mutated by mutate.
func corruptedSession(t *testing.T, seed int64, mutate func(*protocol.VerifyRequest)) []byte {
	t.Helper()
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(seed)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		t.Fatal(err)
	}
	mutate(req)
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestVerifyStructurallyCorruptSessions(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name   string
		mutate func(*protocol.VerifyRequest)
	}{
		{"no gyro", func(r *protocol.VerifyRequest) { r.Gyro = nil }},
		{"no mag", func(r *protocol.VerifyRequest) { r.Mag = nil }},
		{"no field", func(r *protocol.VerifyRequest) { r.Field = nil }},
		{"no voice", func(r *protocol.VerifyRequest) { r.VoiceWAV = nil }},
		{"bad pilot", func(r *protocol.VerifyRequest) { r.PilotHz = -1 }},
		{"truncated capture", func(r *protocol.VerifyRequest) { r.CaptureWAV = r.CaptureWAV[:16] }},
		{"no user", func(r *protocol.VerifyRequest) { r.ClaimedUser = "" }},
		{"inverted sweep window", func(r *protocol.VerifyRequest) {
			r.SweepStart, r.SweepEnd = r.SweepEnd, r.SweepStart
		}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload := corruptedSession(t, int64(500+i), tc.mutate)
			code := postVerify(t, ts.URL, payload)
			switch code {
			case http.StatusBadRequest, http.StatusUnprocessableEntity:
				// clean rejection
			case http.StatusOK:
				// Some mutations still form a verifiable session (e.g. an
				// inverted sweep window); the pipeline must then REJECT.
				// Re-send and decode to check the decision.
				resp, err := http.Post(ts.URL+"/verify", "application/gzip", bytes.NewReader(payload))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				var vr protocol.VerifyResponse
				if err := decodeJSON(resp.Body, &vr); err != nil {
					t.Fatal(err)
				}
				if vr.Accepted {
					t.Errorf("corrupt session accepted")
				}
			default:
				t.Errorf("unexpected status %d", code)
			}
		})
	}
}

// decodeJSON decodes a JSON body.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
