package server

// Coverage for the time-aware observability layer: the /debug/drift
// surface, baseline pinning, drift gauges on /metrics, SLO burn rates,
// the /healthz ASV section, and the no-allocation contract of the
// window feed on the decision path.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

// driftClock is a deterministic window clock for server tests.
type driftClock struct{ ns atomic.Int64 }

func newDriftClock() *driftClock {
	c := &driftClock{}
	c.ns.Store(time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *driftClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *driftClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestDriftEndpointLifecycle(t *testing.T) {
	clock := newDriftClock()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil,
		WithWindowConfig(telemetry.WindowConfig{Now: clock.Now, LatencyGoodUnder: time.Second}),
		WithSLO(0.999, 0.99, time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)

	w := srv.Windows()
	fieldID, ok := w.SeriesByName("loudspeaker", core.EvidenceFieldUT)
	if !ok {
		t.Fatal("field_ut series not registered")
	}

	// Genuine-shaped baseline traffic.
	for i := 0; i < 120; i++ {
		w.ObserveEvidence(fieldID, 0.5+0.05*float64(i%8))
		w.ObserveVerify(telemetry.OutcomeAccepted, 100*time.Millisecond)
	}
	if err := c.PinDriftBaseline(context.Background(), 5*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Attack-shaped live traffic: loudspeaker swings far above baseline.
	clock.Advance(time.Minute)
	for i := 0; i < 60; i++ {
		w.ObserveEvidence(fieldID, 25+float64(i%10))
		w.ObserveVerify(telemetry.OutcomeRejected, 100*time.Millisecond)
	}

	rep, err := c.DriftReport(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselinePinnedUnix == 0 {
		t.Error("baseline not pinned in report")
	}
	if rep.AlertPSI != DefaultDriftAlertPSI {
		t.Errorf("alert threshold = %v, want %v", rep.AlertPSI, DefaultDriftAlertPSI)
	}
	var fieldEntry *telemetry.DriftEntry
	for i := range rep.Drift {
		if rep.Drift[i].Metric == core.EvidenceFieldUT {
			fieldEntry = &rep.Drift[i]
		}
	}
	if fieldEntry == nil {
		t.Fatalf("field_ut missing from report: %+v", rep.Drift)
	}
	if !fieldEntry.Alert || fieldEntry.PSI <= DefaultDriftAlertPSI {
		t.Errorf("attack wave did not alert: %+v", fieldEntry)
	}
	if len(rep.Burn) == 0 {
		t.Error("no burn rates with SLOs configured")
	}
	if len(rep.Timeline) == 0 {
		t.Error("no timeline slots")
	}

	// The same drift lands on /metrics as voiceguard_stage_drift gauges,
	// next to the process gauges.
	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricStageDrift + `{metric="field_ut",stage="loudspeaker"}`,
		MetricStageDriftKS,
		MetricSLOBurnRate + `{slo="availability",window="5m"}`,
		MetricGoHeapBytes,
		MetricGoGCPauseUS,
		MetricGoGoroutines,
		MetricAllocsPerDecision,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestDriftEndpointDisabled(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil, WithDriftEndpoint(false))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + DriftRoute)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled drift endpoint returned %d, want 404", resp.StatusCode)
	}
	// Windows are still fed with the surface off.
	if srv.Windows() == nil {
		t.Error("window set missing with drift endpoint disabled")
	}
}

func TestDriftPinValidation(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + DriftPinRoute)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET pin returned %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+DriftPinRoute+"?window=bogus", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window returned %d, want 400", resp.StatusCode)
	}
}

func TestVerifyFeedsEvidenceWindows(t *testing.T) {
	srv, ts := testServer(t)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(7)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.New(ts.URL).Verify(session); err != nil {
		t.Fatal(err)
	}
	w := srv.Windows()
	outcomes, _, latTotal, _ := w.OutcomeTotals(5 * time.Minute)
	if outcomes[telemetry.OutcomeAccepted]+outcomes[telemetry.OutcomeRejected] != 1 {
		t.Errorf("decision outcomes = %v, want exactly one decided verify", outcomes)
	}
	if latTotal != 1 {
		t.Errorf("latency count = %d, want 1", latTotal)
	}
	// The cascade's executed stages must have deposited evidence.
	var total int64
	for i := range w.Defs() {
		total += w.SeriesDist(telemetry.SeriesID(i), 5*time.Minute).Total
	}
	if total == 0 {
		t.Error("no evidence values landed in the rolling windows")
	}
}

func TestObserveDecisionAllocationFree(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Decision{
		Accepted: true,
		Stages: []core.StageResult{
			{
				Stage: core.StageLoudspeaker,
				Evidence: [2]core.EvidenceValue{
					{Metric: core.EvidenceFieldUT, Value: 1.5},
					{Metric: core.EvidenceBetaUTPerS, Value: 30},
				},
			},
			{
				Stage:    core.StageSpeakerID,
				Evidence: [2]core.EvidenceValue{{Metric: core.EvidenceLLR, Value: 0.4}},
			},
		},
	}
	allocs := testing.AllocsPerRun(200, func() {
		srv.observeOutcome(telemetry.OutcomeAccepted, 100*time.Millisecond)
		srv.observeDecision(&d)
	})
	if allocs != 0 {
		t.Errorf("window feed allocates %v per decision, want 0", allocs)
	}
}

func TestHealthzASVSection(t *testing.T) {
	// Without the fast ASV path /healthz must not grow an asv section.
	_, plain := testServer(t)
	var doc map[string]json.RawMessage
	getJSON(t, plain.URL+"/healthz", &doc)
	if _, ok := doc["asv"]; ok {
		t.Error("asv section present without the fast path")
	}

	// With batching on, the section reports cache and queue state.
	ts, victim := fastServer(t, WithASVBatching(0, 0), WithASVModelCache(4))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	session.ClaimedUser = "carol"
	if _, err := client.New(ts.URL).Verify(session); err != nil {
		t.Fatal(err)
	}
	var health struct {
		ASV *asvHealth `json:"asv"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.ASV == nil {
		t.Fatal("asv section missing with the fast path on")
	}
	if !health.ASV.Batching {
		t.Error("batching not reported")
	}
	if health.ASV.CacheHits+health.ASV.CacheMisses == 0 {
		t.Error("no cache traffic after a scored verify")
	}
	if health.ASV.CacheResidentBytes <= 0 {
		t.Error("no resident model bytes after a scored verify")
	}
	if health.ASV.CacheHitRatio < 0 || health.ASV.CacheHitRatio > 1 {
		t.Errorf("hit ratio %v outside [0,1]", health.ASV.CacheHitRatio)
	}
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s returned %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
